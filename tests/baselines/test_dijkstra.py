"""Unit tests for the BaseDijkstra baseline."""

import pytest

from repro.baselines import (
    BaseDijkstraRanker,
    max_probability_path,
    path_probability,
)
from repro.graph import GraphBuilder
from repro.topics import TopicIndex


class TestPathProbability:
    def test_product(self, chain_graph):
        assert path_probability(chain_graph, [0, 1, 2]) == pytest.approx(0.25)

    def test_single_node_path(self, chain_graph):
        assert path_probability(chain_graph, [2]) == 1.0


class TestMaxProbabilityPath:
    def test_prefers_probable_path(self, diamond_graph):
        # 0 -> 1 -> 3 has probability 0.25; direct 0 -> 3 only 0.1.
        path = max_probability_path(diamond_graph, 0, 3)
        assert path == [0, 1, 3]

    def test_unreachable_returns_none(self, chain_graph):
        assert max_probability_path(chain_graph, 4, 0) is None

    def test_same_node(self, chain_graph):
        assert max_probability_path(chain_graph, 2, 2) == [2]

    def test_banned_edge_forces_detour(self, diamond_graph):
        # Without 0->1 the two remaining routes tie at probability 0.1;
        # either is a valid max-probability path.
        path = max_probability_path(
            diamond_graph, 0, 3, banned_edges={(0, 1)}
        )
        assert path in ([0, 2, 3], [0, 3])
        assert path_probability(diamond_graph, path) == pytest.approx(0.1)

    def test_banned_node_excluded(self, diamond_graph):
        path = max_probability_path(diamond_graph, 0, 3, banned_nodes={1, 2})
        assert path == [0, 3]

    def test_banned_target_returns_none(self, diamond_graph):
        assert max_probability_path(diamond_graph, 0, 3, banned_nodes={3}) is None


class TestDistinctPaths:
    @pytest.fixture
    def ranker(self, diamond_graph):
        topic_index = TopicIndex(4, {0: ["topic zero"]})
        return BaseDijkstraRanker(diamond_graph, topic_index, max_alternatives=3)

    def test_best_path_first(self, ranker):
        paths = ranker.distinct_paths(0, 3)
        assert paths[0] == [0, 1, 3]

    def test_alternatives_are_distinct(self, ranker):
        paths = ranker.distinct_paths(0, 3)
        assert len({tuple(p) for p in paths}) == len(paths)

    def test_unreachable_gives_no_paths(self, chain_graph):
        topic_index = TopicIndex(5, {4: ["end topic"]})
        ranker = BaseDijkstraRanker(chain_graph, topic_index)
        assert ranker.distinct_paths(4, 0) == []

    def test_max_alternatives_bound(self, diamond_graph):
        topic_index = TopicIndex(4, {0: ["topic zero"]})
        ranker = BaseDijkstraRanker(
            diamond_graph, topic_index, max_alternatives=0
        )
        assert len(ranker.distinct_paths(0, 3)) == 1


class TestNodeInfluence:
    def test_aggregates_distinct_paths(self, diamond_graph):
        topic_index = TopicIndex(4, {0: ["topic zero"]})
        ranker = BaseDijkstraRanker(diamond_graph, topic_index, max_alternatives=3)
        influence = ranker.node_influence(0, 3)
        # Best path (0.25) plus one deviation (0.1): the edge-ban search
        # yields one alternative per banned edge, and banning (1, 3) leaves
        # node 1 with no outlet. The third route is deliberately missed -
        # that under-counting is the approximation the paper penalizes
        # BaseDijkstra for.
        assert influence == pytest.approx(0.35)

    def test_self_influence_zero(self, diamond_graph):
        topic_index = TopicIndex(4, {0: ["topic zero"]})
        ranker = BaseDijkstraRanker(diamond_graph, topic_index)
        assert ranker.node_influence(3, 3) == 0.0


class TestSearch:
    def test_topic_ranking(self):
        builder = GraphBuilder(4)
        builder.add_edges([(1, 0, 0.8), (2, 0, 0.2), (3, 0, 0.1)])
        graph = builder.build()
        topic_index = TopicIndex(
            4, {1: ["strong topic"], 2: ["weak topic"], 3: ["faint topic"]}
        )
        ranker = BaseDijkstraRanker(graph, topic_index)
        results = ranker.search(0, "topic", k=3)
        assert [r.label for r in results] == [
            "strong topic", "weak topic", "faint topic"
        ]

    def test_reverse_tree_cached_per_user(self, diamond_graph):
        topic_index = TopicIndex(4, {0: ["topic zero"]})
        ranker = BaseDijkstraRanker(diamond_graph, topic_index)
        ranker.search(3, "topic", k=1)
        assert 3 in ranker._tree_cache
