"""Unit tests for the BasePropagation baseline."""

import pytest

from repro.baselines import BasePropagationRanker
from repro.core import PropagationIndex
from repro.exceptions import ConfigurationError
from repro.graph import GraphBuilder
from repro.topics import TopicIndex


@pytest.fixture
def stack():
    builder = GraphBuilder(5)
    builder.add_edges([
        (1, 0, 0.5),
        (2, 0, 0.3),
        (3, 1, 0.4),    # 3 -> 1 -> 0 = 0.2
        (4, 3, 0.02),   # below theta anywhere
    ])
    graph = builder.build()
    topic_index = TopicIndex(
        5, {1: ["near topic"], 3: ["mid topic"], 4: ["lost topic"]}
    )
    return graph, topic_index


class TestTopicInfluence:
    def test_direct_lookup(self, stack):
        graph, topic_index = stack
        ranker = BasePropagationRanker(graph, topic_index, theta=0.05)
        near = topic_index.resolve("near topic")
        assert ranker.topic_influence(near, 0) == pytest.approx(0.5)

    def test_multi_hop_within_theta(self, stack):
        graph, topic_index = stack
        ranker = BasePropagationRanker(graph, topic_index, theta=0.05)
        mid = topic_index.resolve("mid topic")
        assert ranker.topic_influence(mid, 0) == pytest.approx(0.2)

    def test_below_theta_invisible(self, stack):
        graph, topic_index = stack
        ranker = BasePropagationRanker(graph, topic_index, theta=0.05)
        lost = topic_index.resolve("lost topic")
        assert ranker.topic_influence(lost, 0) == 0.0

    def test_averages_over_topic_nodes(self):
        builder = GraphBuilder(3)
        builder.add_edges([(1, 0, 0.4), (2, 0, 0.2)])
        graph = builder.build()
        topic_index = TopicIndex(3, {1: ["pair topic"], 2: ["pair topic"]})
        ranker = BasePropagationRanker(graph, topic_index, theta=0.05)
        assert ranker.topic_influence(0, 0) == pytest.approx((0.4 + 0.2) / 2)


class TestSearch:
    def test_ranks_by_influence(self, stack):
        graph, topic_index = stack
        ranker = BasePropagationRanker(graph, topic_index, theta=0.05)
        results = ranker.search(0, "topic", k=3)
        assert [r.label for r in results] == [
            "near topic", "mid topic", "lost topic"
        ]


class TestSharedIndex:
    def test_accepts_shared_index(self, stack):
        graph, topic_index = stack
        shared = PropagationIndex(graph, 0.05)
        ranker = BasePropagationRanker(
            graph, topic_index, propagation_index=shared
        )
        assert ranker.propagation_index is shared

    def test_rejects_foreign_index(self, stack, chain_graph):
        graph, topic_index = stack
        foreign = PropagationIndex(chain_graph, 0.05)
        with pytest.raises(ConfigurationError):
            BasePropagationRanker(
                graph, topic_index, propagation_index=foreign
            )
