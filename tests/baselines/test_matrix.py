"""Unit tests for the BaseMatrix baseline."""

import numpy as np
import pytest

from repro.baselines import BaseMatrixRanker
from repro.core import topic_influence_vector
from repro.exceptions import ConfigurationError
from repro.topics import TopicIndex


@pytest.fixture
def stack(diamond_graph):
    topic_index = TopicIndex(
        4, {0: ["upstream topic"], 1: ["middle topic"], 2: ["middle topic"]}
    )
    return diamond_graph, topic_index


class TestInfluence:
    def test_matches_walk_propagation(self, stack):
        graph, topic_index = stack
        ranker = BaseMatrixRanker(graph, topic_index, length=3)
        topic = topic_index.resolve("middle topic")
        expected = topic_influence_vector(
            graph, topic_index.topic_nodes(topic), 3
        )
        assert np.allclose(ranker.influence_vector(topic), expected)

    def test_materialized_equals_iterative(self, stack):
        graph, topic_index = stack
        iterative = BaseMatrixRanker(graph, topic_index, length=4)
        materialized = BaseMatrixRanker(
            graph, topic_index, length=4, materialize=True
        )
        for topic in range(topic_index.n_topics):
            assert np.allclose(
                iterative.influence_vector(topic),
                materialized.influence_vector(topic),
            )

    def test_topic_influence_scalar(self, stack):
        graph, topic_index = stack
        ranker = BaseMatrixRanker(graph, topic_index, length=2)
        topic = topic_index.resolve("upstream topic")
        # Node 0 -> 3: 0.1 direct + 0.25 via 1 + 0.1 via 2.
        assert ranker.topic_influence(topic, 3) == pytest.approx(0.45)

    def test_search_ranks_topics(self, stack):
        graph, topic_index = stack
        ranker = BaseMatrixRanker(graph, topic_index, length=2)
        results = ranker.search(3, "topic", k=2)
        assert results[0].label == "upstream topic"

    def test_length_validated(self, stack):
        graph, topic_index = stack
        with pytest.raises(ConfigurationError):
            BaseMatrixRanker(graph, topic_index, length=0)


class TestCaching:
    def test_vector_cache(self, stack):
        graph, topic_index = stack
        ranker = BaseMatrixRanker(graph, topic_index, cache_vectors=True)
        a = ranker.influence_vector(0)
        b = ranker.influence_vector(0)
        assert a is b

    def test_no_cache_by_default(self, stack):
        graph, topic_index = stack
        ranker = BaseMatrixRanker(graph, topic_index)
        a = ranker.influence_vector(0)
        b = ranker.influence_vector(0)
        assert a is not b

    def test_memory_reporting(self, stack):
        graph, topic_index = stack
        ranker = BaseMatrixRanker(graph, topic_index, materialize=True)
        assert ranker.memory_bytes() == 0  # nothing built yet
        ranker.influence_vector(0)
        assert ranker.memory_bytes() > 0

    def test_cumulative_matrix_cached(self, stack):
        graph, topic_index = stack
        ranker = BaseMatrixRanker(graph, topic_index, materialize=True)
        assert ranker.cumulative_power_matrix() is ranker.cumulative_power_matrix()
