"""Unit tests for the relevance-only and hybrid rankers."""

import pytest

from repro.baselines import HybridRanker, RelevanceOnlyRanker
from repro.core import PropagationIndex, PersonalizedSearcher, TopicSummary
from repro.exceptions import ConfigurationError
from repro.graph import GraphBuilder
from repro.topics import TopicIndex


@pytest.fixture
def stack():
    builder = GraphBuilder(4)
    builder.add_edges([(1, 0, 0.9), (2, 0, 0.1)])
    graph = builder.build()
    topic_index = TopicIndex(
        4,
        {
            1: ["phone phone deals"],   # term-heavy label
            2: ["samsung phone"],
        },
    )
    return graph, topic_index


@pytest.fixture
def influence_search(stack):
    graph, topic_index = stack
    heavy = topic_index.resolve("phone phone deals")
    samsung = topic_index.resolve("samsung phone")
    summaries = {
        heavy: TopicSummary(heavy, {1: 1.0}),
        samsung: TopicSummary(samsung, {2: 1.0}),
    }
    searcher = PersonalizedSearcher(
        topic_index, summaries, PropagationIndex(graph, 0.05)
    )
    return lambda user, query, k: searcher.search(user, query, k)[0]


class TestRelevanceOnly:
    def test_same_ranking_for_all_users(self, stack):
        graph, topic_index = stack
        ranker = RelevanceOnlyRanker(graph, topic_index)
        a = [r.topic_id for r in ranker.search(0, "phone", k=2)]
        b = [r.topic_id for r in ranker.search(3, "phone", k=2)]
        assert a == b

    def test_term_frequency_drives_ranking(self, stack):
        graph, topic_index = stack
        ranker = RelevanceOnlyRanker(graph, topic_index)
        results = ranker.search(0, "phone", k=2)
        # "phone phone deals" repeats the query term.
        assert results[0].label == "phone phone deals"

    def test_only_related_topics_returned(self, stack):
        graph, topic_index = stack
        ranker = RelevanceOnlyRanker(graph, topic_index)
        assert ranker.search(0, "samsung", k=5)[0].label == "samsung phone"
        assert len(ranker.search(0, "samsung", k=5)) == 1


class TestHybrid:
    def test_weight_zero_is_pure_relevance(self, stack, influence_search):
        graph, topic_index = stack
        hybrid = HybridRanker(
            topic_index, influence_search, influence_weight=0.0
        )
        relevance = RelevanceOnlyRanker(graph, topic_index)
        assert [r.topic_id for r in hybrid.search(0, "phone", 2)] == [
            r.topic_id for r in relevance.search(0, "phone", 2)
        ]

    def test_weight_one_is_pure_influence(self, stack, influence_search):
        _, topic_index = stack
        hybrid = HybridRanker(
            topic_index, influence_search, influence_weight=1.0
        )
        results = hybrid.search(0, "phone", 2)
        # Influence: node 1 (0.9) carries "phone phone deals".
        assert results[0].label == "phone phone deals"

    def test_blend_changes_with_weight(self, stack, influence_search):
        _, topic_index = stack
        low = HybridRanker(topic_index, influence_search, influence_weight=0.1)
        high = HybridRanker(topic_index, influence_search, influence_weight=0.9)
        low_scores = {r.topic_id: r.influence for r in low.search(0, "phone", 2)}
        high_scores = {r.topic_id: r.influence for r in high.search(0, "phone", 2)}
        assert low_scores != high_scores

    def test_no_related_topics(self, stack, influence_search):
        _, topic_index = stack
        hybrid = HybridRanker(topic_index, influence_search)
        assert hybrid.search(0, "zzz qqq", 2) == []

    def test_weight_validated(self, stack, influence_search):
        _, topic_index = stack
        with pytest.raises(ConfigurationError):
            HybridRanker(topic_index, influence_search, influence_weight=1.5)
