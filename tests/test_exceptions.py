"""Regression tests for the exception hierarchy.

The parallel offline build ships exceptions across the
``ProcessPoolExecutor`` boundary, which pickles them. Default exception
pickling re-calls ``__init__`` with ``args`` - the *formatted message* -
which breaks any exception whose ``__init__`` signature is not a single
message string. Every such exception defines ``__reduce__``; these tests
round-trip each one so a future constructor change cannot silently make
worker errors unpicklable again.
"""

import pickle

import pytest

from repro.exceptions import (
    ArtifactCorruptedError,
    BudgetExceededError,
    BuildFailedError,
    NodeNotFoundError,
    ReproError,
    UnknownTopicError,
)

MULTI_ARG_ERRORS = [
    NodeNotFoundError(7, 100),
    UnknownTopicError("phone"),
    BudgetExceededError("propagation tree", 50_000),
    ArtifactCorruptedError("/tmp/prop.npz", expected="aa" * 32, actual="bb" * 32),
    ArtifactCorruptedError("/tmp/prop.npz", reason="missing keys ['theta']"),
    BuildFailedError([3, 1, 2], n_built=97),
]


@pytest.mark.parametrize(
    "error", MULTI_ARG_ERRORS, ids=lambda e: type(e).__name__
)
class TestPickleRoundTrip:
    def test_survives_pickle(self, error):
        restored = pickle.loads(pickle.dumps(error))
        assert type(restored) is type(error)
        assert str(restored) == str(error)

    def test_attributes_survive(self, error):
        restored = pickle.loads(pickle.dumps(error))
        original_attrs = {
            k: v for k, v in vars(error).items() if k != "partial_index"
        }
        restored_attrs = {
            k: v for k, v in vars(restored).items() if k != "partial_index"
        }
        assert restored_attrs == original_attrs


class TestNodeNotFoundError:
    def test_message_is_not_double_wrapped(self):
        # KeyError.__str__ repr-quotes its single arg; the pickle round
        # trip must not add another layer of quoting.
        error = NodeNotFoundError(5, 10)
        restored = pickle.loads(pickle.dumps(error))
        assert str(restored).count("node 5") == 1

    def test_is_keyerror(self):
        assert issubclass(NodeNotFoundError, KeyError)
        assert issubclass(NodeNotFoundError, ReproError)


class TestBuildFailedError:
    def test_failed_nodes_sorted_and_previewed(self):
        error = BuildFailedError(range(20, 0, -1), n_built=0)
        assert error.failed_nodes == sorted(error.failed_nodes)
        assert "..." in str(error)

    def test_partial_index_not_pickled(self):
        error = BuildFailedError([1], n_built=5)
        error.partial_index = object()  # stand-in for a live index
        restored = pickle.loads(pickle.dumps(error))
        assert restored.partial_index is None


class TestArtifactCorruptedError:
    def test_checksum_message_carries_both_digests(self):
        error = ArtifactCorruptedError("x.npz", expected="abc", actual="def")
        assert "abc" in str(error) and "def" in str(error)

    def test_reason_only_message(self):
        error = ArtifactCorruptedError("x.npz", reason="truncated")
        assert str(error) == "x.npz: truncated"
