"""Unit tests for the JSON / Prometheus / table exporters."""

import json

import pytest

from repro.obs.export import (
    SCHEMA,
    prometheus_name,
    render_prometheus,
    render_table,
    snapshot_to_json,
    validate_metrics_json,
    write_metrics_files,
)
from repro.obs.registry import MetricsRegistry


@pytest.fixture()
def snapshot():
    registry = MetricsRegistry()
    registry.inc("search.requests", 3)
    registry.set_gauge("cache.propagation-entries.hit_ratio", 0.75)
    for value in (0.0002, 0.0007, 0.004):
        registry.observe("search.latency_seconds", value,
                         buckets=(0.0005, 0.001, 0.005))
    return registry.snapshot()


class TestJsonSchema:
    def test_round_trip_validates(self, snapshot):
        payload = snapshot_to_json(snapshot)
        assert payload["schema"] == SCHEMA
        validate_metrics_json(payload)
        # Survives an actual serialize/parse cycle.
        validate_metrics_json(json.loads(json.dumps(payload)))

    def test_histogram_payload_contents(self, snapshot):
        payload = snapshot_to_json(snapshot)
        h = payload["histograms"]["search.latency_seconds"]
        assert h["count"] == 3
        assert sum(h["counts"]) == 3
        assert h["p50"] is not None and h["p99"] is not None

    def test_non_dict_rejected(self):
        with pytest.raises(ValueError, match="must be an object"):
            validate_metrics_json([1, 2])

    def test_wrong_schema_rejected(self, snapshot):
        payload = snapshot_to_json(snapshot)
        payload["schema"] = "repro.metrics/v0"
        with pytest.raises(ValueError, match="schema"):
            validate_metrics_json(payload)

    @pytest.mark.parametrize("section", ["counters", "gauges", "histograms"])
    def test_missing_section_rejected(self, snapshot, section):
        payload = snapshot_to_json(snapshot)
        del payload[section]
        with pytest.raises(ValueError, match=section):
            validate_metrics_json(payload)

    @pytest.mark.parametrize("bad", ["3", None, True])
    def test_non_numeric_counter_rejected(self, snapshot, bad):
        payload = snapshot_to_json(snapshot)
        payload["counters"]["search.requests"] = bad
        with pytest.raises(ValueError, match="not a number"):
            validate_metrics_json(payload)

    def test_histogram_missing_field_rejected(self, snapshot):
        payload = snapshot_to_json(snapshot)
        del payload["histograms"]["search.latency_seconds"]["p90"]
        with pytest.raises(ValueError, match="missing 'p90'"):
            validate_metrics_json(payload)

    def test_unsorted_buckets_rejected(self, snapshot):
        payload = snapshot_to_json(snapshot)
        payload["histograms"]["search.latency_seconds"]["buckets"] = [2.0, 1.0, 3.0]
        with pytest.raises(ValueError, match="not sorted"):
            validate_metrics_json(payload)

    def test_counts_length_mismatch_rejected(self, snapshot):
        payload = snapshot_to_json(snapshot)
        payload["histograms"]["search.latency_seconds"]["counts"] = [1, 2]
        with pytest.raises(ValueError, match="expected buckets"):
            validate_metrics_json(payload)

    def test_count_total_mismatch_rejected(self, snapshot):
        payload = snapshot_to_json(snapshot)
        payload["histograms"]["search.latency_seconds"]["count"] = 99
        with pytest.raises(ValueError, match="counts sum"):
            validate_metrics_json(payload)

    def test_nonempty_histogram_without_percentiles_rejected(self, snapshot):
        payload = snapshot_to_json(snapshot)
        payload["histograms"]["search.latency_seconds"]["p50"] = None
        with pytest.raises(ValueError, match="no percentiles"):
            validate_metrics_json(payload)


class TestPrometheusNames:
    @pytest.mark.parametrize("dotted, expected", [
        ("search.latency_seconds", "repro_search_latency_seconds"),
        ("cache.propagation-entries.hit_ratio",
         "repro_cache_propagation_entries_hit_ratio"),
        ("phase.summarize.rcl.no_overlap.seconds",
         "repro_phase_summarize_rcl_no_overlap_seconds"),
        (".edge.case.", "repro_edge_case"),
    ])
    def test_sanitization(self, dotted, expected):
        assert prometheus_name(dotted) == expected


class TestPrometheusRendering:
    def test_type_lines_and_series(self, snapshot):
        text = render_prometheus(snapshot)
        assert "# TYPE repro_search_requests counter" in text
        assert "repro_search_requests 3" in text
        assert ("# TYPE repro_cache_propagation_entries_hit_ratio gauge"
                in text)
        assert "repro_cache_propagation_entries_hit_ratio 0.75" in text
        assert "# TYPE repro_search_latency_seconds histogram" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self, snapshot):
        lines = render_prometheus(snapshot).splitlines()
        buckets = [l for l in lines
                   if l.startswith("repro_search_latency_seconds_bucket")]
        # Observations 0.0002, 0.0007, 0.004 against (0.0005, 0.001, 0.005).
        assert buckets == [
            'repro_search_latency_seconds_bucket{le="0.0005"} 1',
            'repro_search_latency_seconds_bucket{le="0.001"} 2',
            'repro_search_latency_seconds_bucket{le="0.005"} 3',
            'repro_search_latency_seconds_bucket{le="+Inf"} 3',
        ]
        assert "repro_search_latency_seconds_count 3" in lines
        assert any(l.startswith("repro_search_latency_seconds_sum ")
                   for l in lines)

    def test_integral_floats_render_without_trailing_zero(self):
        registry = MetricsRegistry()
        registry.inc("c", 5)
        registry.observe("h", 1.0, buckets=(2.0,))
        text = render_prometheus(registry.snapshot())
        assert "repro_c 5\n" in text
        assert 'repro_h_bucket{le="2"} 1' in text


class TestTableRendering:
    def test_scalar_and_histogram_tables(self, snapshot):
        tables = render_table(snapshot, title="Check")
        assert len(tables) == 2
        rendered = "\n".join(str(t) for t in tables)
        assert "search.requests" in rendered
        assert "search.latency_seconds" in rendered

    def test_no_histogram_table_when_empty(self):
        registry = MetricsRegistry()
        registry.inc("only.counter")
        assert len(render_table(registry.snapshot())) == 1


class TestWriteMetricsFiles:
    def test_writes_json_and_prom_sibling(self, snapshot, tmp_path):
        json_path = tmp_path / "metrics.json"
        prom_path = write_metrics_files(snapshot, json_path)
        assert prom_path == tmp_path / "metrics.prom"
        payload = json.loads(json_path.read_text(encoding="utf-8"))
        validate_metrics_json(payload)
        assert "# TYPE repro_search_requests counter" in prom_path.read_text(
            encoding="utf-8"
        )

    def test_explicit_prom_destination(self, snapshot, tmp_path):
        prom_path = write_metrics_files(
            snapshot, tmp_path / "m.json", prom_path=tmp_path / "custom.txt"
        )
        assert prom_path == tmp_path / "custom.txt"
        assert prom_path.exists()
