"""Unit tests for the metrics registry: counters, gauges, histograms."""

import math

import pytest

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS,
    Histogram,
    HistogramSnapshot,
    MetricsRegistry,
    NullRegistry,
    get_registry,
    null_registry,
    set_registry,
    use_registry,
)


class TestCounters:
    def test_inc_defaults_to_one(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.inc("a")
        assert registry.counter_value("a") == 2.0

    def test_inc_custom_value(self):
        registry = MetricsRegistry()
        registry.inc("a", 5)
        registry.inc("a", 2.5)
        assert registry.counter_value("a") == 7.5

    def test_unknown_counter_reads_zero(self):
        assert MetricsRegistry().counter_value("never") == 0.0

    def test_snapshot_counter_default(self):
        snapshot = MetricsRegistry().snapshot()
        assert snapshot.counter("never") == 0.0
        assert snapshot.counter("never", default=-1.0) == -1.0


class TestGauges:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 1)
        registry.set_gauge("g", 9.5)
        assert registry.snapshot().gauge("g") == 9.5

    def test_value_coerced_to_float(self):
        registry = MetricsRegistry()
        registry.set_gauge("g", 3)
        assert isinstance(registry.snapshot().gauge("g"), float)


class TestHistogram:
    def test_bucket_assignment_and_aggregates(self):
        registry = MetricsRegistry()
        for value in (0.5, 1.5, 3.0, 5.0):
            registry.observe("h", value, buckets=(1.0, 2.0, 4.0))
        h = registry.snapshot().histogram("h")
        assert h.counts == (1, 1, 1, 1)  # one per bucket incl. overflow
        assert h.count == 4
        assert h.sum == 10.0
        assert h.max == 5.0
        assert h.min == 0.5

    def test_buckets_fixed_on_first_touch(self):
        registry = MetricsRegistry()
        registry.observe("h", 0.1, buckets=(1.0, 2.0))
        registry.observe("h", 0.2, buckets=(99.0,))  # ignored
        assert registry.snapshot().histogram("h").buckets == (1.0, 2.0)

    def test_default_buckets(self):
        registry = MetricsRegistry()
        registry.observe("h", 0.001)
        h = registry.snapshot().histogram("h")
        assert h.buckets == DEFAULT_LATENCY_BUCKETS

    def test_unsorted_buckets_rejected(self):
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(())

    def test_quantiles_interpolate_within_bucket(self):
        registry = MetricsRegistry()
        for value in (0.5, 1.5, 3.0, 5.0):
            registry.observe("h", value, buckets=(1.0, 2.0, 4.0))
        h = registry.snapshot().histogram("h")
        assert h.p50 == pytest.approx(2.0)
        # Ranks landing in the overflow bucket report the exact max.
        assert h.quantile(1.0) == 5.0
        # The low end is clamped to the exact observed minimum.
        assert h.quantile(0.0) == 0.5

    def test_quantile_never_exceeds_observed_extremes(self):
        registry = MetricsRegistry()
        registry.observe("h", 0.3, buckets=(1.0,))
        h = registry.snapshot().histogram("h")
        for q in (0.0, 0.5, 0.99, 1.0):
            assert 0.3 <= h.quantile(q) <= 0.3

    def test_quantile_out_of_range_rejected(self):
        registry = MetricsRegistry()
        registry.observe("h", 1.0)
        with pytest.raises(ValueError):
            registry.snapshot().histogram("h").quantile(1.5)

    def test_empty_histogram_statistics(self):
        h = HistogramSnapshot(
            buckets=(1.0,), counts=(0, 0), count=0, sum=0.0, max=0.0, min=0.0
        )
        assert math.isnan(h.quantile(0.5))
        assert math.isnan(h.mean)
        d = h.as_dict()
        assert d["p50"] is None and d["mean"] is None and d["max"] is None

    def test_as_dict_round_numbers(self):
        registry = MetricsRegistry()
        registry.observe("h", 2.0, buckets=(1.0, 4.0))
        d = registry.snapshot().histogram("h").as_dict()
        assert d["buckets"] == [1.0, 4.0]
        assert d["counts"] == [0, 1, 0]
        assert d["count"] == 1
        assert d["sum"] == 2.0
        assert d["p50"] == d["p90"] == d["p99"] == 2.0

    def test_timer_observes_wall_time(self):
        registry = MetricsRegistry()
        with registry.timer("t"):
            pass
        h = registry.snapshot().histogram("t")
        assert h.count == 1
        assert h.sum >= 0.0


class TestDelta:
    def test_counter_and_histogram_delta(self):
        registry = MetricsRegistry()
        registry.inc("c", 3)
        registry.observe("h", 1.0, buckets=(2.0,))
        before = registry.snapshot()
        registry.inc("c", 2)
        registry.observe("h", 5.0)
        delta = registry.snapshot().delta(before)
        assert delta.counter("c") == 2.0
        h = delta.histogram("h")
        assert h.count == 1
        assert h.counts == (0, 1)
        assert h.sum == 5.0

    def test_new_metrics_taken_whole(self):
        registry = MetricsRegistry()
        before = registry.snapshot()
        registry.inc("fresh", 7)
        registry.observe("hist", 1.0)
        delta = registry.snapshot().delta(before)
        assert delta.counter("fresh") == 7.0
        assert delta.histogram("hist").count == 1

    def test_mismatched_buckets_rejected(self):
        a = Histogram((1.0,)).snapshot()
        b = Histogram((2.0,)).snapshot()
        with pytest.raises(ValueError):
            a.delta(b)

    def test_snapshot_is_isolated_from_later_mutation(self):
        registry = MetricsRegistry()
        registry.inc("c")
        registry.observe("h", 1.0)
        snapshot = registry.snapshot()
        registry.inc("c")
        registry.observe("h", 2.0)
        assert snapshot.counter("c") == 1.0
        assert snapshot.histogram("h").count == 1


class TestRegistryLifecycle:
    def test_clear_and_len(self):
        registry = MetricsRegistry()
        registry.inc("a")
        registry.set_gauge("b", 1.0)
        registry.observe("c", 1.0)
        assert len(registry) == 3
        registry.clear()
        assert len(registry) == 0
        assert registry.snapshot().as_dict() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_use_registry_scopes_the_default(self):
        scoped = MetricsRegistry()
        outer = get_registry()
        with use_registry(scoped) as active:
            assert active is scoped
            assert get_registry() is scoped
        assert get_registry() is outer

    def test_set_registry_returns_previous(self):
        replacement = MetricsRegistry()
        previous = set_registry(replacement)
        try:
            assert get_registry() is replacement
        finally:
            set_registry(previous)


class TestNullRegistry:
    def test_records_nothing(self):
        registry = NullRegistry()
        registry.inc("a", 10)
        registry.set_gauge("b", 1.0)
        registry.observe("c", 1.0)
        with registry.timer("d"):
            pass
        assert len(registry) == 0
        assert registry.snapshot().as_dict() == {
            "counters": {}, "gauges": {}, "histograms": {}
        }

    def test_disabled_flag(self):
        assert MetricsRegistry().enabled is True
        assert NullRegistry().enabled is False

    def test_shared_instance(self):
        assert null_registry() is null_registry()
        assert isinstance(null_registry(), NullRegistry)
