"""Unit tests for span-based phase tracing."""

import pytest

from repro.obs.registry import MetricsRegistry
from repro.obs.tracing import Tracer, get_tracer, set_tracer, trace


@pytest.fixture()
def tracer():
    return Tracer()


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestSpanTree:
    def test_nested_spans_reconstruct_the_tree(self, tracer, registry):
        with tracer.trace("outer", registry=registry):
            with tracer.trace("child_a", registry=registry):
                with tracer.trace("grandchild", registry=registry):
                    pass
            with tracer.trace("child_b", registry=registry):
                pass
        by_name = {e.name: e for e in tracer.events}
        outer = by_name["outer"]
        assert outer.parent_id == -1
        assert outer.depth == 0
        assert by_name["child_a"].parent_id == outer.span_id
        assert by_name["child_b"].parent_id == outer.span_id
        assert by_name["child_a"].depth == 1
        assert by_name["grandchild"].parent_id == by_name["child_a"].span_id
        assert by_name["grandchild"].depth == 2
        # Children close before their parents.
        names = [e.name for e in tracer.events]
        assert names == ["grandchild", "child_a", "child_b", "outer"]

    def test_span_ids_are_unique(self, tracer, registry):
        with tracer.trace("a", registry=registry):
            with tracer.trace("b", registry=registry):
                pass
        with tracer.trace("c", registry=registry):
            pass
        ids = [e.span_id for e in tracer.events]
        assert len(ids) == len(set(ids))

    def test_sibling_roots_have_no_parent(self, tracer, registry):
        with tracer.trace("first", registry=registry):
            pass
        with tracer.trace("second", registry=registry):
            pass
        assert all(e.parent_id == -1 for e in tracer.events)

    def test_self_seconds_excludes_children(self, tracer, registry):
        with tracer.trace("outer", registry=registry):
            with tracer.trace("inner", registry=registry):
                sum(range(2000))
        by_name = {e.name: e for e in tracer.events}
        outer, inner = by_name["outer"], by_name["inner"]
        assert inner.self_seconds == inner.seconds  # leaf: all time is own
        assert outer.self_seconds <= outer.seconds
        assert outer.self_seconds == pytest.approx(
            outer.seconds - inner.seconds, abs=1e-9
        )

    def test_attrs_and_as_dict(self, tracer, registry):
        with tracer.trace("phase", registry=registry, node=7, tag="x"):
            pass
        event = tracer.events[0]
        assert event.attrs == {"node": 7, "tag": "x"}
        d = event.as_dict()
        assert d["name"] == "phase"
        assert d["attrs"] == {"node": 7, "tag": "x"}
        assert set(d) == {
            "name", "span_id", "parent_id", "start",
            "seconds", "self_seconds", "depth", "attrs",
        }

    def test_event_recorded_on_exception(self, tracer, registry):
        with pytest.raises(RuntimeError):
            with tracer.trace("doomed", registry=registry):
                raise RuntimeError("boom")
        assert [e.name for e in tracer.events] == ["doomed"]


class TestBoundedLog:
    def test_events_beyond_cap_are_counted_not_stored(self, registry):
        tracer = Tracer(max_events=2)
        for i in range(5):
            with tracer.trace(f"s{i}", registry=registry):
                pass
        assert len(tracer.events) == 2
        assert tracer.n_dropped == 3
        # Dropped spans still feed the phase histograms.
        snapshot = registry.snapshot()
        for i in range(5):
            assert snapshot.histogram(f"phase.s{i}.seconds").count == 1

    def test_zero_capacity_keeps_no_log(self, registry):
        tracer = Tracer(max_events=0)
        with tracer.trace("s", registry=registry):
            pass
        assert tracer.events == []
        assert tracer.n_dropped == 1

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            Tracer(max_events=-1)

    def test_clear_resets_log_and_drop_count(self, registry):
        tracer = Tracer(max_events=1)
        for _ in range(3):
            with tracer.trace("s", registry=registry):
                pass
        tracer.clear()
        assert tracer.events == []
        assert tracer.n_dropped == 0


class TestHistogramFeed:
    def test_span_duration_lands_in_phase_histogram(self, tracer, registry):
        with tracer.trace("propagation.build_entry", registry=registry):
            pass
        h = registry.snapshot().histogram("phase.propagation.build_entry.seconds")
        assert h.count == 1
        assert h.sum >= 0.0

    def test_phase_totals_aggregate_by_name(self, tracer, registry):
        for _ in range(3):
            with tracer.trace("repeat", registry=registry):
                pass
        totals = tracer.phase_totals()
        count, seconds, self_seconds = totals["repeat"]
        assert count == 3
        assert seconds >= self_seconds >= 0.0

    def test_as_dicts_matches_events(self, tracer, registry):
        with tracer.trace("a", registry=registry):
            pass
        assert tracer.as_dicts() == [tracer.events[0].as_dict()]


class TestModuleLevelTrace:
    def test_trace_uses_the_process_tracer_and_registry(self, registry):
        from repro.obs.registry import use_registry

        scoped = Tracer()
        previous = set_tracer(scoped)
        try:
            assert get_tracer() is scoped
            with use_registry(registry):
                with trace("module.span", answer=42):
                    pass
        finally:
            set_tracer(previous)
        assert [e.name for e in scoped.events] == ["module.span"]
        assert scoped.events[0].attrs == {"answer": 42}
        assert registry.snapshot().histogram("phase.module.span.seconds").count == 1

    def test_explicit_registry_bypasses_the_default(self, registry):
        scoped = Tracer()
        previous = set_tracer(scoped)
        try:
            with trace("routed", registry=registry):
                pass
        finally:
            set_tracer(previous)
        assert registry.snapshot().histogram("phase.routed.seconds").count == 1
