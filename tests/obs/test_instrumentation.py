"""End-to-end instrumentation tests: engine, build stats, disabled path."""

import pytest

from repro.core import PITEngine
from repro.core.propagation import PropagationIndex
from repro.datasets import data_2k
from repro.graph import preferential_attachment_graph
from repro.obs.registry import MetricsRegistry, null_registry

THETA = 0.01


@pytest.fixture(scope="module")
def bundle():
    return data_2k(seed=17, n_nodes=300, with_corpus=False)


def _engine(bundle, metrics):
    return PITEngine.from_dataset(
        bundle,
        summarizer="lrw",
        samples_per_node=5,
        seed=17,
        entry_cache_bytes=16 << 20,
        summary_cache_bytes=4 << 20,
        metrics=metrics,
    )


REQUESTS = [(3, "phone"), (11, "camera phone"), (3, "phone"), (40, "laptop")]


class TestDisabledPathIsIdentical:
    def test_null_registry_search_output_byte_identical(self, bundle):
        instrumented = _engine(bundle, MetricsRegistry())
        disabled = _engine(bundle, null_registry())
        for user, query in REQUESTS:
            got, got_stats = instrumented.search(user, query, k=5,
                                                 with_stats=True)
            want, want_stats = disabled.search(user, query, k=5,
                                               with_stats=True)
            assert [
                (r.topic_id, r.label, r.influence) for r in got
            ] == [
                (r.topic_id, r.label, r.influence) for r in want
            ]
            assert got_stats == want_stats

    def test_null_registry_records_nothing_through_the_engine(self, bundle):
        engine = _engine(bundle, null_registry())
        engine.search(3, "phone", k=5)
        assert len(null_registry()) == 0


class TestEngineSnapshot:
    def test_search_counters_and_latency_histogram(self, bundle):
        registry = MetricsRegistry()
        engine = _engine(bundle, registry)
        for user, query in REQUESTS:
            engine.search(user, query, k=5)
        snapshot = engine.metrics_snapshot()
        assert snapshot.counter("search.requests") == len(REQUESTS)
        latency = snapshot.histogram("search.latency_seconds")
        assert latency.count == len(REQUESTS)
        assert latency.p50 is not None and latency.sum > 0.0
        assert snapshot.counter("search.topics_considered") > 0
        assert snapshot.counter("summaries.built") > 0
        assert snapshot.histogram(
            "phase.summarize.lrw.repnodes.seconds"
        ).count > 0

    def test_snapshot_publishes_cache_and_size_gauges(self, bundle):
        registry = MetricsRegistry()
        engine = _engine(bundle, registry)
        engine.search(3, "phone", k=5)
        engine.search(3, "phone", k=5)  # warm hit for the ratio
        snapshot = engine.metrics_snapshot()
        for name in (
            "cache.propagation-entries.hit_ratio",
            "cache.propagation-entries.current_bytes",
            "cache.summary-arrays.hit_ratio",
            "propagation.entries_cached",
            "propagation.index_bytes",
            "summaries.cached",
            "engine.memory_bytes",
        ):
            assert name in snapshot.gauges, name
        assert 0.0 <= snapshot.gauge("cache.propagation-entries.hit_ratio") <= 1.0
        assert snapshot.gauge("summaries.cached") == engine.n_summaries

    def test_batch_counts_every_request(self, bundle):
        registry = MetricsRegistry()
        engine = _engine(bundle, registry)
        engine.search_batch(REQUESTS, k=5)
        assert registry.counter_value("search.requests") == len(REQUESTS)

    def test_set_metrics_reroutes_everything(self, bundle):
        engine = _engine(bundle, MetricsRegistry())
        engine.search(3, "phone", k=5)
        rerouted = MetricsRegistry()
        engine.set_metrics(rerouted)
        engine.search(3, "phone", k=5)
        assert rerouted.counter_value("search.requests") == 1


class TestBuildStatsAreDeltaViews:
    def test_stats_match_registry_counters(self):
        graph = preferential_attachment_graph(60, 3, seed=5)
        registry = MetricsRegistry()
        index = PropagationIndex(graph, THETA, metrics=registry)
        index.build_all(workers=1)
        stats = index.last_build_stats
        snapshot = registry.snapshot()
        assert stats.n_built == graph.n_nodes
        assert stats.n_built == snapshot.counter("propagation.entries_built")
        assert stats.total_branches == snapshot.counter("propagation.branches")
        assert stats.total_members == snapshot.counter("propagation.members")
        phase = snapshot.histogram("phase.propagation.build_all.seconds")
        assert stats.wall_seconds == phase.sum
        entry_bytes = snapshot.histogram("propagation.entry_bytes")
        assert stats.peak_entry_bytes == int(entry_bytes.max)
        assert entry_bytes.count == graph.n_nodes

    def test_shared_registry_accumulates_but_stats_stay_per_call(self):
        graph = preferential_attachment_graph(60, 3, seed=5)
        registry = MetricsRegistry()
        PropagationIndex(graph, THETA, metrics=registry).build_all(workers=1)
        second = PropagationIndex(graph, THETA, metrics=registry)
        second.build_all(workers=1)
        # The registry is cumulative across both builds...
        assert registry.counter_value(
            "propagation.entries_built"
        ) == 2 * graph.n_nodes
        # ...while the per-call stats are a delta view of the second only.
        assert second.last_build_stats.n_built == graph.n_nodes

    def test_null_registry_build_still_yields_stats(self):
        graph = preferential_attachment_graph(60, 3, seed=5)
        index = PropagationIndex(graph, THETA, metrics=null_registry())
        index.build_all(workers=1)
        assert index.last_build_stats.n_built == graph.n_nodes
        assert index.last_build_stats.wall_seconds >= 0.0
        assert len(null_registry()) == 0
