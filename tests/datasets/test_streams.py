"""Unit tests for the temporal activity stream."""

import pytest

from repro.core.dynamics import updated_topic_index
from repro.datasets import ActivityStream
from repro.exceptions import ConfigurationError
from repro.graph import SocialGraph, preferential_attachment_graph
from repro.topics import TopicIndex


@pytest.fixture
def graph():
    return preferential_attachment_graph(50, 3, seed=8)


@pytest.fixture
def topic_index():
    return TopicIndex(
        50,
        {v: ["seed topic"] for v in range(10)}
        | {v: ["other topic"] for v in range(10, 14)},
    )


class TestConstruction:
    def test_mismatched_sizes_rejected(self, graph):
        with pytest.raises(ConfigurationError):
            ActivityStream(graph, TopicIndex(3, {0: ["t"]}))

    def test_rate_validation(self, graph, topic_index):
        with pytest.raises(ConfigurationError):
            ActivityStream(graph, topic_index, adoption_rate=1.5)
        with pytest.raises(ConfigurationError):
            ActivityStream(graph, topic_index, max_changes_per_epoch=0)

    def test_initial_membership_matches_index(self, graph, topic_index):
        stream = ActivityStream(graph, topic_index, seed=1)
        assert stream.membership(0) == {"seed topic"}
        assert stream.membership(30) == set()


class TestEpochs:
    def test_epoch_changes_applied_to_state(self, graph, topic_index):
        stream = ActivityStream(
            graph, topic_index, adoption_rate=0.9, churn_rate=0.0, seed=2
        )
        update = stream.next_epoch()
        for node, labels in update.add.items():
            assert set(labels) <= stream.membership(node)

    def test_churn_removes_topics(self, graph, topic_index):
        stream = ActivityStream(
            graph, topic_index, adoption_rate=0.0, churn_rate=1.0, seed=2
        )
        update = stream.next_epoch()
        assert update.remove  # everyone drops everything
        assert all(stream.membership(v) == set() for v in range(14))

    def test_contagion_spreads_along_edges(self, graph, topic_index):
        stream = ActivityStream(
            graph, topic_index, adoption_rate=1.0, churn_rate=0.0, seed=2
        )
        update = stream.next_epoch()
        # Every adopter must have an in-neighbour carrying the topic.
        for node, labels in update.add.items():
            neighbours = [int(x) for x in graph.in_neighbors(node)]
            for label in labels:
                carriers = [
                    v for v in neighbours
                    if label in stream.membership(v)
                    or v in update.remove and label in update.remove.get(v, ())
                ]
                # The carrier may itself have churned this epoch, but with
                # churn 0 it must still carry the topic.
                assert any(
                    label in stream.membership(v) for v in neighbours
                )

    def test_change_cap_respected(self, graph, topic_index):
        stream = ActivityStream(
            graph, topic_index,
            adoption_rate=1.0, churn_rate=1.0,
            max_changes_per_epoch=5, seed=2,
        )
        update = stream.next_epoch()
        total = sum(len(v) for v in update.add.values()) + sum(
            len(v) for v in update.remove.values()
        )
        # Cap is approximate at node granularity: one node's batch may
        # overshoot by its own label count.
        assert total <= 5 + 4

    def test_deterministic(self, graph, topic_index):
        a = ActivityStream(graph, topic_index, seed=9).next_epoch()
        b = ActivityStream(graph, topic_index, seed=9).next_epoch()
        assert a.add == b.add and a.remove == b.remove


class TestIndexRoundTrip:
    def test_current_index_consistent_with_updates(self, graph, topic_index):
        stream = ActivityStream(
            graph, topic_index, adoption_rate=0.5, churn_rate=0.1, seed=3
        )
        index = topic_index
        for update in stream.epochs(3):
            index = updated_topic_index(index, update)
        materialized = stream.current_index()
        assert materialized.labels == index.labels
        for topic in materialized.labels:
            assert (
                materialized.topic_nodes(topic).tolist()
                == index.topic_nodes(topic).tolist()
            )
