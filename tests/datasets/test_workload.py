"""Unit tests for query workload generation."""

import pytest

from repro.datasets import data_2k, generate_workload, rank_query_tokens
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def bundle():
    return data_2k(seed=6, n_nodes=400, with_corpus=False)


class TestRankQueryTokens:
    def test_tokens_ranked_by_coverage(self, bundle):
        ranked = rank_query_tokens(bundle.topic_index)
        counts = [count for _, count in ranked]
        assert counts == sorted(counts, reverse=True)

    def test_counts_match_related_topics(self, bundle):
        ranked = rank_query_tokens(bundle.topic_index)
        token, count = ranked[0]
        assert len(bundle.topic_index.related_topics(token)) == count


class TestGenerateWorkload:
    def test_sizes(self, bundle):
        workload = generate_workload(bundle, n_queries=4, n_users=3, seed=1)
        assert len(workload.queries) == 4
        assert len(workload.users) == 3
        assert workload.size == 12

    def test_pairs_cross_product(self, bundle):
        workload = generate_workload(bundle, n_queries=2, n_users=2, seed=1)
        pairs = list(workload.pairs())
        assert len(pairs) == 4
        users = {user for user, _ in pairs}
        assert users == set(workload.users)

    def test_queries_hit_min_topics(self, bundle):
        workload = generate_workload(
            bundle, n_queries=3, n_users=1, min_topics_per_query=2, seed=1
        )
        for query in workload.queries:
            assert len(bundle.topic_index.related_topics(query)) >= 2

    def test_too_many_queries_rejected(self, bundle):
        with pytest.raises(ConfigurationError):
            generate_workload(bundle, n_queries=10_000, n_users=1, seed=1)

    def test_too_many_users_rejected(self, bundle):
        with pytest.raises(ConfigurationError):
            generate_workload(bundle, n_queries=1, n_users=10_000, seed=1)

    def test_deterministic(self, bundle):
        a = generate_workload(bundle, n_queries=3, n_users=2, seed=5)
        b = generate_workload(bundle, n_queries=3, n_users=2, seed=5)
        assert a == b

    def test_users_are_valid_nodes(self, bundle):
        workload = generate_workload(bundle, n_queries=2, n_users=5, seed=2)
        assert all(0 <= u < bundle.graph.n_nodes for u in workload.users)
