"""Unit tests for dataset bundles (scaled, so sizes are reduced here)."""

import pytest

from repro.datasets import DATASETS, data_2k, data_350k
from repro.graph import is_weakly_connected


class TestData2k:
    @pytest.fixture(scope="class")
    def bundle(self):
        return data_2k(seed=5, n_nodes=400, with_corpus=True)

    def test_connected(self, bundle):
        assert is_weakly_connected(bundle.graph)

    def test_node_count(self, bundle):
        assert bundle.graph.n_nodes == 400

    def test_has_corpus(self, bundle):
        assert bundle.corpus is not None
        assert bundle.corpus.n_tweets > 0

    def test_topics_cover_users(self, bundle):
        covered = sum(
            1 for node in bundle.graph.nodes
            if bundle.topic_index.topics_of_node(node)
        )
        assert covered == bundle.graph.n_nodes

    def test_meta_records_scale(self, bundle):
        assert bundle.meta["paper_nodes"] == 2000
        assert bundle.meta["scale"] == pytest.approx(400 / 2000)

    def test_describe_mentions_name(self, bundle):
        assert "data_2k" in bundle.describe()

    def test_deterministic(self):
        a = data_2k(seed=5, n_nodes=300, with_corpus=False)
        b = data_2k(seed=5, n_nodes=300, with_corpus=False)
        assert sorted(a.graph.iter_edges()) == sorted(b.graph.iter_edges())
        assert a.topic_index.labels == b.topic_index.labels


class TestData350k:
    def test_degree_band(self):
        bundle = data_350k(seed=5, n_nodes=500)
        degrees = bundle.graph.out_degrees()
        # Band (5, 10) plus possible bridge edges.
        assert degrees.max() <= 12
        assert bundle.meta["paper_degree_band"] == (51, 100)

    def test_no_corpus(self):
        bundle = data_350k(seed=5, n_nodes=300)
        assert bundle.corpus is None


class TestRegistry:
    def test_all_factories_present(self):
        assert set(DATASETS) == {"data_2k", "data_350k", "data_1.2m", "data_3m"}

    def test_factories_accept_node_override(self):
        for name, factory in DATASETS.items():
            bundle = factory(seed=3, n_nodes=250)
            assert bundle.graph.n_nodes == 250, name
            assert is_weakly_connected(bundle.graph), name
