"""Unit tests for synthetic topic assignment and tweet generation."""

import numpy as np
import pytest

from repro.datasets import assign_topics, generate_tweets
from repro.exceptions import ConfigurationError
from repro.topics import TagBank, tokenize


@pytest.fixture
def bank():
    return TagBank.synthetic(100, seed=1)


class TestAssignTopics:
    def test_every_user_assigned(self, bank):
        assignment = assign_topics(50, bank, topics_per_user=3, seed=2)
        assert set(assignment) == set(range(50))
        assert all(len(v) == 3 for v in assignment.values())

    def test_topics_distinct_per_user(self, bank):
        assignment = assign_topics(50, bank, topics_per_user=5, seed=2)
        assert all(len(set(v)) == 5 for v in assignment.values())

    def test_popular_tags_drawn_more(self, bank):
        assignment = assign_topics(300, bank, topics_per_user=3, seed=2)
        counts = {}
        for topics in assignment.values():
            for topic in topics:
                counts[topic] = counts.get(topic, 0) + 1
        popularity = {bank.tags[i]: bank.popularity(i) for i in range(len(bank))}
        hot = max(popularity, key=popularity.get)
        cold = min(popularity, key=popularity.get)
        assert counts.get(hot, 0) > counts.get(cold, 0)

    def test_zero_exponent_is_uniformish(self, bank):
        assignment = assign_topics(
            400, bank, topics_per_user=2, popularity_exponent=0.0, seed=2
        )
        counts = {}
        for topics in assignment.values():
            for topic in topics:
                counts[topic] = counts.get(topic, 0) + 1
        values = np.asarray(list(counts.values()))
        assert values.max() < 10 * max(1, values.min())

    def test_validation(self, bank):
        with pytest.raises(ConfigurationError):
            assign_topics(0, bank)
        with pytest.raises(ConfigurationError):
            assign_topics(10, bank, topics_per_user=0)
        with pytest.raises(ConfigurationError):
            assign_topics(10, bank, topics_per_user=1000)
        with pytest.raises(ConfigurationError):
            assign_topics(10, bank, popularity_exponent=-1)

    def test_deterministic(self, bank):
        a = assign_topics(20, bank, seed=9)
        b = assign_topics(20, bank, seed=9)
        assert a == b


class TestGenerateTweets:
    def test_tweet_counts(self, bank):
        assignment = assign_topics(10, bank, topics_per_user=2, seed=1)
        corpus = generate_tweets(assignment, 10, tweets_per_user=4, seed=1)
        assert corpus.n_tweets == 40

    def test_users_without_topics_stay_silent(self, bank):
        corpus = generate_tweets({0: ["phone"]}, 3, tweets_per_user=2, seed=1)
        assert len(corpus.tweets(1)) == 0
        assert len(corpus.tweets(0)) == 2

    def test_tweets_mention_topic_tokens(self, bank):
        assignment = {0: ["samsung phone"]}
        corpus = generate_tweets(
            assignment, 1, tweets_per_user=10, filler_ratio=0.0, seed=1
        )
        for tweet in corpus.tweets(0):
            tokens = set(tokenize(tweet))
            assert tokens <= {"samsung", "phone"}

    def test_filler_ratio_adds_noise(self, bank):
        assignment = {0: ["samsung phone"]}
        corpus = generate_tweets(
            assignment, 1, tweets_per_user=20, filler_ratio=0.9, seed=1
        )
        all_tokens = set()
        for tweet in corpus.tweets(0):
            all_tokens |= set(tokenize(tweet))
        assert not all_tokens <= {"samsung", "phone"}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            generate_tweets({}, 0)
        with pytest.raises(ConfigurationError):
            generate_tweets({0: ["x y"]}, 1, filler_ratio=1.0)
