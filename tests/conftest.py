"""Shared fixtures: the paper's worked examples and small reusable graphs."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import GraphBuilder, SocialGraph


@pytest.fixture
def triangle_graph() -> SocialGraph:
    """0 -> 1 -> 2 -> 0 with distinct probabilities."""
    return SocialGraph(3, [(0, 1, 0.5), (1, 2, 0.25), (2, 0, 0.75)])


@pytest.fixture
def chain_graph() -> SocialGraph:
    """0 -> 1 -> 2 -> 3 -> 4, probability 0.5 each."""
    return SocialGraph(5, [(i, i + 1, 0.5) for i in range(4)])


@pytest.fixture
def diamond_graph() -> SocialGraph:
    """Two parallel paths 0->1->3 and 0->2->3 plus shortcut 0->3."""
    return SocialGraph(
        4,
        [
            (0, 1, 0.5),
            (0, 2, 0.4),
            (0, 3, 0.1),
            (1, 3, 0.5),
            (2, 3, 0.25),
        ],
    )


def build_fig3_graph() -> SocialGraph:
    """The 12-node graph of the paper's Figure 3 (propagation index example).

    The paper's figure is not fully legible in text form, so this fixture is
    a faithful *structural* reconstruction: node 8 is the indexed target,
    nodes 1, 5, 7, 9, 12 reach it directly or in two hops with probability
    >= 0.05, node 11's extension is cut by the threshold (so 11 is marked),
    and node 4 has no in-edges. Node ids follow the figure (1-12 mapped to
    0-11 by subtracting 1 would obscure the narrative, so we keep 0 as an
    isolated padding node and use ids 1-12 directly).
    """
    builder = GraphBuilder(13)
    edges = [
        # direct in-edges of 8
        (5, 8, 0.4),
        (7, 8, 0.3),
        (9, 8, 0.2),
        # two-hop paths into 8
        (1, 5, 0.5),    # 1 -> 5 -> 8 : 0.2
        (12, 7, 0.4),   # 12 -> 7 -> 8 : 0.12
        (11, 9, 0.2),   # 11 -> 9 -> 8 : 0.04 < theta -> cut, 9 stays in
        # in-edges of the two-hop nodes, all inside the index
        (5, 1, 0.6),    # 1's in-neighbour 5 is in Gamma
        (9, 12, 0.5),   # 12's in-neighbour 9 is in Gamma
        (1, 9, 0.3),    # 9's other in-neighbour 1 is in Gamma (11 is not)
        (7, 12, 0.3),   # extra edge inside the neighbourhood
        # 11 has an in-neighbour outside the index
        (10, 11, 0.5),
        (2, 10, 0.5),
        (3, 2, 0.5),
        (4, 3, 0.5),    # 4 has no in-edges at all
        (6, 3, 0.4),
        (2, 6, 0.4),
    ]
    builder.add_edges(edges)
    return builder.build()


@pytest.fixture
def fig3_graph() -> SocialGraph:
    return build_fig3_graph()


def build_example1_graph() -> SocialGraph:
    """The 15-user social network of the paper's Example 1 (Figure 1).

    Edge weights are chosen so the influence-path table of Figure 2
    reproduces: e.g. path 5 -> 3 carries probability 0.6 and path
    2 -> 1 -> 3 carries 0.06, and the longer paths through
    13 -> 12 -> 10 -> 6 -> 3 carry small mass. Topic memberships
    (t1/t2/t3) live in the companion fixture below.
    """
    builder = GraphBuilder(16)  # users 1..15, node 0 unused padding
    edges = [
        (2, 1, 0.1),
        (1, 3, 0.6),     # 2 -> 1 -> 3 = 0.06 (paper's table row)
        (5, 3, 0.6),     # 5 -> 3 = 0.6 (paper's table row)
        (5, 7, 0.1),
        (7, 13, 0.4),
        (13, 12, 0.8),
        (12, 10, 0.5),
        (10, 6, 0.4),
        (6, 3, 0.15),    # 13 -> 12 -> 10 -> 6 -> 3 = 0.024 (paper's row)
        (9, 8, 0.3),
        (8, 13, 0.14),   # 9 -> 8 -> 13 ... -> 3 ~ 0.001 (paper's row)
        (15, 9, 0.9),
        (1, 2, 0.3),
        (3, 4, 0.4),
        (4, 14, 0.5),
        (11, 12, 0.3),
        (14, 11, 0.4),
        (6, 10, 0.3),
        (13, 7, 0.2),
    ]
    builder.add_edges(edges)
    return builder.build()


@pytest.fixture
def example1_graph() -> SocialGraph:
    return build_example1_graph()


#: Topic memberships of Example 1: users who expressed opinions about each
#: phone topic. User 13 mentions several phones, as in the paper.
EXAMPLE1_TOPICS = {
    "apple phone": [2, 5, 13, 9, 15],   # t1 - five users, weight 1/5 each
    "samsung phone": [1, 13, 12, 14],   # t2
    "htc phone": [6, 13, 10],           # t3
}


@pytest.fixture
def example1_topic_assignment() -> dict:
    assignment: dict = {}
    for label, users in EXAMPLE1_TOPICS.items():
        for user in users:
            assignment.setdefault(user, []).append(label)
    return assignment
