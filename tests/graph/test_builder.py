"""Unit tests for GraphBuilder."""

import pytest

from repro.exceptions import EdgeError
from repro.graph import GraphBuilder


class TestBuilder:
    def test_empty_build(self):
        graph = GraphBuilder().build()
        assert graph.n_nodes == 0
        assert graph.n_edges == 0

    def test_infers_node_count(self):
        builder = GraphBuilder()
        builder.add_edge(0, 7, 0.5)
        assert builder.n_nodes == 8
        assert builder.build().n_nodes == 8

    def test_fixed_node_count(self):
        builder = GraphBuilder(10)
        builder.add_edge(0, 1, 0.5)
        assert builder.build().n_nodes == 10

    def test_fixed_node_count_enforced(self):
        builder = GraphBuilder(3)
        with pytest.raises(EdgeError, match="outside fixed node count"):
            builder.add_edge(0, 5, 0.5)

    def test_rejects_negative_fixed_count(self):
        with pytest.raises(EdgeError):
            GraphBuilder(-2)

    def test_readding_same_edge_is_noop(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1, 0.5)
        builder.add_edge(0, 1, 0.5)
        assert builder.n_edges == 1

    def test_readding_with_different_probability_raises(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1, 0.5)
        with pytest.raises(EdgeError, match="refusing to overwrite"):
            builder.add_edge(0, 1, 0.6)

    def test_rejects_self_loop(self):
        with pytest.raises(EdgeError, match="self-loop"):
            GraphBuilder().add_edge(2, 2, 0.5)

    @pytest.mark.parametrize("probability", [0.0, -0.1, 1.01])
    def test_rejects_bad_probability(self, probability):
        with pytest.raises(EdgeError):
            GraphBuilder().add_edge(0, 1, probability)

    def test_rejects_negative_node(self):
        with pytest.raises(EdgeError):
            GraphBuilder().add_edge(-1, 1, 0.5)

    def test_add_edges_bulk(self):
        builder = GraphBuilder()
        builder.add_edges([(0, 1, 0.5), (1, 2, 0.25)])
        graph = builder.build()
        assert graph.n_edges == 2
        assert graph.edge_probability(1, 2) == 0.25

    def test_has_edge_and_discard(self):
        builder = GraphBuilder()
        builder.add_edge(0, 1, 0.5)
        assert builder.has_edge(0, 1)
        assert builder.discard_edge(0, 1)
        assert not builder.has_edge(0, 1)
        assert not builder.discard_edge(0, 1)

    def test_build_output_matches_input(self):
        edges = [(0, 1, 0.5), (2, 0, 0.3), (1, 2, 0.9)]
        builder = GraphBuilder()
        builder.add_edges(edges)
        assert sorted(builder.build().iter_edges()) == sorted(edges)
