"""Unit tests for node sampling."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, EmptyGraphError
from repro.graph import (
    SocialGraph,
    sample_nodes_by_degree,
    sample_nodes_uniform,
    sample_rate_to_count,
)


@pytest.fixture
def hub_graph():
    """Node 0 is a hub (degree 10); nodes 1..10 have degree 1; 11 isolated."""
    edges = [(i, 0, 0.5) for i in range(1, 11)]
    return SocialGraph(12, edges)


class TestSampleRate:
    def test_rounding(self, hub_graph):
        assert sample_rate_to_count(hub_graph, 0.5) == 6

    def test_minimum_one(self, hub_graph):
        assert sample_rate_to_count(hub_graph, 0.0001) == 1

    def test_full_rate(self, hub_graph):
        assert sample_rate_to_count(hub_graph, 1.0) == 12

    def test_invalid_rate(self, hub_graph):
        with pytest.raises(ConfigurationError):
            sample_rate_to_count(hub_graph, 0.0)
        with pytest.raises(ConfigurationError):
            sample_rate_to_count(hub_graph, 1.5)

    def test_empty_graph(self):
        with pytest.raises(EmptyGraphError):
            sample_rate_to_count(SocialGraph(0, []), 0.5)


class TestDegreeSampling:
    def test_sample_distinct_and_sorted(self, hub_graph):
        sample = sample_nodes_by_degree(hub_graph, 5, seed=1)
        assert sample.size == 5
        assert len(set(sample.tolist())) == 5
        assert sample.tolist() == sorted(sample.tolist())

    def test_hub_sampled_most_often(self, hub_graph):
        hits = sum(
            0 in sample_nodes_by_degree(hub_graph, 3, seed=s).tolist()
            for s in range(100)
        )
        # Hub holds 10/20 of total degree; with 3 draws it should appear
        # in the clear majority of samples.
        assert hits > 60

    def test_isolated_node_only_when_forced(self, hub_graph):
        for s in range(30):
            sample = sample_nodes_by_degree(hub_graph, 5, seed=s)
            assert 11 not in sample.tolist()
        # Asking for all nodes must include the isolated one.
        sample = sample_nodes_by_degree(hub_graph, 12, seed=1)
        assert 11 in sample.tolist()

    def test_all_isolated_falls_back_to_uniform(self):
        graph = SocialGraph(5, [])
        sample = sample_nodes_by_degree(graph, 3, seed=2)
        assert sample.size == 3

    def test_count_validated(self, hub_graph):
        with pytest.raises(ConfigurationError):
            sample_nodes_by_degree(hub_graph, 0)
        with pytest.raises(ConfigurationError):
            sample_nodes_by_degree(hub_graph, 100)

    def test_deterministic(self, hub_graph):
        a = sample_nodes_by_degree(hub_graph, 4, seed=9)
        b = sample_nodes_by_degree(hub_graph, 4, seed=9)
        assert a.tolist() == b.tolist()


class TestUniformSampling:
    def test_sample_shape(self, hub_graph):
        sample = sample_nodes_uniform(hub_graph, 6, seed=1)
        assert sample.size == 6
        assert len(set(sample.tolist())) == 6

    def test_covers_all_nodes_eventually(self, hub_graph):
        seen = set()
        for s in range(60):
            seen.update(sample_nodes_uniform(hub_graph, 3, seed=s).tolist())
        assert seen == set(range(12))

    def test_empty_graph(self):
        with pytest.raises(EmptyGraphError):
            sample_nodes_uniform(SocialGraph(0, []), 1)
