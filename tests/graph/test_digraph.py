"""Unit tests for the CSR social graph."""

import numpy as np
import pytest

from repro.exceptions import EdgeError, EmptyGraphError, NodeNotFoundError
from repro.graph import SocialGraph


class TestConstruction:
    def test_empty_graph(self):
        graph = SocialGraph(0, [])
        assert graph.n_nodes == 0
        assert graph.n_edges == 0

    def test_nodes_without_edges(self):
        graph = SocialGraph(5, [])
        assert graph.n_nodes == 5
        assert graph.n_edges == 0
        assert graph.out_degree(4) == 0

    def test_basic_counts(self, triangle_graph):
        assert triangle_graph.n_nodes == 3
        assert triangle_graph.n_edges == 3
        assert len(triangle_graph) == 3

    def test_rejects_negative_node_count(self):
        with pytest.raises(EdgeError):
            SocialGraph(-1, [])

    def test_rejects_self_loop(self):
        with pytest.raises(EdgeError, match="self-loop"):
            SocialGraph(2, [(0, 0, 0.5)])

    def test_rejects_out_of_range_endpoint(self):
        with pytest.raises(NodeNotFoundError):
            SocialGraph(2, [(0, 5, 0.5)])

    def test_rejects_negative_endpoint(self):
        with pytest.raises(EdgeError):
            SocialGraph(2, [(-1, 0, 0.5)])

    @pytest.mark.parametrize("probability", [0.0, -0.5, 1.5, 2.0])
    def test_rejects_bad_probability(self, probability):
        with pytest.raises(EdgeError, match="probabilit"):
            SocialGraph(2, [(0, 1, probability)])

    def test_probability_one_allowed(self):
        graph = SocialGraph(2, [(0, 1, 1.0)])
        assert graph.edge_probability(0, 1) == 1.0

    def test_rejects_duplicate_edges(self):
        with pytest.raises(EdgeError, match="duplicate"):
            SocialGraph(2, [(0, 1, 0.5), (0, 1, 0.5)])


class TestAdjacency:
    def test_out_neighbors_sorted(self):
        graph = SocialGraph(4, [(0, 3, 0.1), (0, 1, 0.2), (0, 2, 0.3)])
        assert graph.out_neighbors(0).tolist() == [1, 2, 3]

    def test_out_edges_probabilities_aligned(self):
        graph = SocialGraph(4, [(0, 3, 0.1), (0, 1, 0.2), (0, 2, 0.3)])
        targets, probs = graph.out_edges(0)
        assert dict(zip(targets.tolist(), probs.tolist())) == {
            1: 0.2,
            2: 0.3,
            3: 0.1,
        }

    def test_in_neighbors(self, triangle_graph):
        assert triangle_graph.in_neighbors(0).tolist() == [2]
        assert triangle_graph.in_neighbors(1).tolist() == [0]

    def test_in_edges_probability_matches_out(self, diamond_graph):
        sources, probs = diamond_graph.in_edges(3)
        lookup = dict(zip(sources.tolist(), probs.tolist()))
        assert lookup == {0: 0.1, 1: 0.5, 2: 0.25}

    def test_degrees(self, diamond_graph):
        assert diamond_graph.out_degree(0) == 3
        assert diamond_graph.in_degree(3) == 3
        assert diamond_graph.out_degrees().tolist() == [3, 1, 1, 0]
        assert diamond_graph.in_degrees().tolist() == [0, 1, 1, 3]

    def test_total_degrees(self, triangle_graph):
        assert triangle_graph.total_degrees().tolist() == [2, 2, 2]

    def test_node_check(self, triangle_graph):
        with pytest.raises(NodeNotFoundError):
            triangle_graph.out_neighbors(7)
        with pytest.raises(NodeNotFoundError):
            triangle_graph.in_degree(-1)


class TestEdgeQueries:
    def test_has_edge(self, triangle_graph):
        assert triangle_graph.has_edge(0, 1)
        assert not triangle_graph.has_edge(1, 0)

    def test_edge_probability(self, triangle_graph):
        assert triangle_graph.edge_probability(1, 2) == 0.25

    def test_edge_probability_missing_raises(self, triangle_graph):
        with pytest.raises(EdgeError):
            triangle_graph.edge_probability(2, 1)

    def test_iter_edges_roundtrip(self, diamond_graph):
        edges = sorted(diamond_graph.iter_edges())
        rebuilt = SocialGraph(4, edges)
        assert sorted(rebuilt.iter_edges()) == edges


class TestConversions:
    def test_transition_matrix_values(self, triangle_graph):
        matrix = triangle_graph.transition_matrix()
        assert matrix.shape == (3, 3)
        assert matrix[0, 1] == 0.5
        assert matrix[1, 2] == 0.25
        assert matrix[2, 0] == 0.75
        assert matrix.nnz == 3

    def test_reversed_flips_edges(self, triangle_graph):
        rev = triangle_graph.reversed()
        assert rev.has_edge(1, 0)
        assert rev.edge_probability(1, 0) == 0.5
        assert rev.n_edges == triangle_graph.n_edges

    def test_reversed_twice_is_identity(self, diamond_graph):
        double = diamond_graph.reversed().reversed()
        assert sorted(double.iter_edges()) == sorted(diamond_graph.iter_edges())

    def test_subgraph_relabels(self, diamond_graph):
        sub, mapping = diamond_graph.subgraph([0, 1, 3])
        assert mapping.tolist() == [0, 1, 3]
        assert sub.n_nodes == 3
        # 0->1 (0.5) and 1->3 (0.5) survive; 0->3 (0.1) survives.
        assert sorted(sub.iter_edges()) == [
            (0, 1, 0.5),
            (0, 2, 0.1),
            (1, 2, 0.5),
        ]

    def test_subgraph_empty_selection(self, diamond_graph):
        sub, mapping = diamond_graph.subgraph([])
        assert sub.n_nodes == 0
        assert mapping.size == 0

    def test_memory_bytes_positive(self, diamond_graph):
        assert diamond_graph.memory_bytes() > 0


class TestStatistics:
    def test_average_degree(self, triangle_graph):
        assert triangle_graph.average_degree() == 1.0

    def test_average_degree_empty_raises(self):
        with pytest.raises(EmptyGraphError):
            SocialGraph(0, []).average_degree()

    def test_degree_histogram(self, diamond_graph):
        assert diamond_graph.degree_histogram() == {0: 1, 1: 2, 3: 1}
