"""Unit tests for hop-limited traversals."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NodeNotFoundError
from repro.graph import (
    SocialGraph,
    forward_closure,
    forward_reachable,
    hop_distance,
    hop_distances,
    pairwise_hop_distances,
    reverse_hop_distances,
    hop_distance_matrix,
    reachability_bitsets,
    reverse_reachable,
    theta_forward_closure,
    unpack_bitset,
)


class TestHopDistances:
    def test_chain_distances(self, chain_graph):
        dist = hop_distances(chain_graph, 0)
        assert dist.tolist() == [0, 1, 2, 3, 4]

    def test_chain_distances_capped(self, chain_graph):
        dist = hop_distances(chain_graph, 0, max_hops=2)
        assert dist.tolist() == [0, 1, 2, -1, -1]

    def test_unreachable_marked(self, chain_graph):
        dist = hop_distances(chain_graph, 4)
        assert dist.tolist() == [-1, -1, -1, -1, 0]

    def test_cycle(self, triangle_graph):
        dist = hop_distances(triangle_graph, 0)
        assert dist.tolist() == [0, 1, 2]

    def test_zero_hops(self, chain_graph):
        dist = hop_distances(chain_graph, 2, max_hops=0)
        assert dist.tolist() == [-1, -1, 0, -1, -1]

    def test_negative_hops_rejected(self, chain_graph):
        with pytest.raises(ConfigurationError):
            hop_distances(chain_graph, 0, max_hops=-1)

    def test_diamond_takes_shortest(self, diamond_graph):
        dist = hop_distances(diamond_graph, 0)
        assert dist[3] == 1  # direct shortcut beats two-hop paths


class TestReverseDistances:
    def test_reverse_chain(self, chain_graph):
        dist = reverse_hop_distances(chain_graph, 4)
        assert dist.tolist() == [4, 3, 2, 1, 0]

    def test_reverse_equals_forward_on_reversed_graph(self, diamond_graph):
        rev = diamond_graph.reversed()
        for node in diamond_graph.nodes:
            expected = hop_distances(rev, node)
            actual = reverse_hop_distances(diamond_graph, node)
            assert expected.tolist() == actual.tolist()


class TestHopDistanceScalar:
    def test_found(self, chain_graph):
        assert hop_distance(chain_graph, 0, 3) == 3

    def test_not_found_within_bound(self, chain_graph):
        assert hop_distance(chain_graph, 0, 3, max_hops=2) == -1

    def test_self_distance(self, chain_graph):
        assert hop_distance(chain_graph, 1, 1) == 0


class TestReachableSets:
    def test_forward_reachable(self, chain_graph):
        assert forward_reachable(chain_graph, 1, 2).tolist() == [2, 3]

    def test_forward_reachable_includes_source(self, chain_graph):
        result = forward_reachable(chain_graph, 1, 2, include_source=True)
        assert result.tolist() == [1, 2, 3]

    def test_reverse_reachable(self, chain_graph):
        assert reverse_reachable(chain_graph, 3, 2).tolist() == [1, 2]

    def test_reverse_reachable_includes_target(self, chain_graph):
        result = reverse_reachable(chain_graph, 3, 2, include_target=True)
        assert result.tolist() == [1, 2, 3]

    def test_reverse_reachable_whole_graph(self, triangle_graph):
        assert reverse_reachable(triangle_graph, 0, 5).tolist() == [1, 2]


class TestPairwise:
    def test_pairwise_matches_single(self, diamond_graph):
        table = pairwise_hop_distances(diamond_graph, [0, 1], max_hops=3)
        assert table[0].tolist() == hop_distances(diamond_graph, 0, 3).tolist()
        assert table[1].tolist() == hop_distances(diamond_graph, 1, 3).tolist()


class TestLargerGraph:
    def test_bfs_levels_on_random_graph(self):
        # Cross-check the vectorized BFS against a reference implementation.
        rng = np.random.default_rng(5)
        n = 60
        edges = set()
        while len(edges) < 200:
            u, v = rng.integers(0, n, size=2)
            if u != v:
                edges.add((int(u), int(v)))
        graph = SocialGraph(n, [(u, v, 0.5) for u, v in edges])
        dist = hop_distances(graph, 0)

        # Reference: plain dict BFS.
        from collections import deque

        ref = {0: 0}
        queue = deque([0])
        while queue:
            node = queue.popleft()
            for nxt in graph.out_neighbors(node):
                nxt = int(nxt)
                if nxt not in ref:
                    ref[nxt] = ref[node] + 1
                    queue.append(nxt)
        for node in range(n):
            assert dist[node] == ref.get(node, -1)


def _random_graph(seed: int, n: int = 60, n_edges: int = 220) -> SocialGraph:
    rng = np.random.default_rng(seed)
    edges = set()
    while len(edges) < n_edges:
        u, v = rng.integers(0, n, size=2)
        if u != v:
            edges.add((int(u), int(v)))
    return SocialGraph(n, [(u, v, 0.5) for u, v in edges])


class TestReachabilityBitsets:
    """The packed kernel agrees with per-target reverse BFS."""

    @pytest.mark.parametrize("seed", [3, 11])
    @pytest.mark.parametrize("max_hops", [1, 3, 7])
    def test_matches_reverse_reachable(self, seed, max_hops):
        graph = _random_graph(seed)
        rng = np.random.default_rng(seed + 1)
        # > 64 targets so the matrix spans two uint64 words.
        targets = rng.choice(graph.n_nodes, size=70, replace=True)
        bits = reachability_bitsets(graph, targets, max_hops)
        assert bits.shape == (graph.n_nodes, 2)
        dense = unpack_bitset(bits, targets.size)
        for j, target in enumerate(targets):
            expected = reverse_reachable(graph, int(target), max_hops)
            assert np.flatnonzero(dense[:, j]).tolist() == expected.tolist()

    def test_target_self_bit_clear_even_on_cycle(self, triangle_graph):
        # 0->1->2->0: node 0 reaches itself in 3 hops, but like
        # reverse_reachable the kernel never reports "reaching" distance 0.
        dense = unpack_bitset(
            reachability_bitsets(triangle_graph, [0], 5), 1
        )
        assert not dense[0, 0]
        assert dense[1, 0] and dense[2, 0]

    def test_duplicate_targets_each_get_a_column(self, chain_graph):
        dense = unpack_bitset(
            reachability_bitsets(chain_graph, [3, 3], 2), 2
        )
        assert np.array_equal(dense[:, 0], dense[:, 1])
        assert np.flatnonzero(dense[:, 0]).tolist() == [1, 2]

    def test_zero_hops_reaches_nothing(self, chain_graph):
        dense = unpack_bitset(
            reachability_bitsets(chain_graph, [0, 4], 0), 2
        )
        assert not dense.any()

    def test_empty_targets_rejected(self, chain_graph):
        with pytest.raises(ConfigurationError):
            reachability_bitsets(chain_graph, [], 2)

    def test_negative_hops_rejected(self, chain_graph):
        with pytest.raises(ConfigurationError):
            reachability_bitsets(chain_graph, [0], -1)

    def test_out_of_range_target_rejected(self, chain_graph):
        with pytest.raises(NodeNotFoundError):
            reachability_bitsets(chain_graph, [99], 2)


class TestHopDistanceMatrix:
    @pytest.mark.parametrize("seed", [3, 11])
    @pytest.mark.parametrize("max_hops", [2, 5])
    def test_matches_reverse_hop_distances(self, seed, max_hops):
        graph = _random_graph(seed)
        targets = list(range(0, graph.n_nodes, 7))
        matrix = hop_distance_matrix(graph, targets, max_hops)
        for j, target in enumerate(targets):
            expected = reverse_hop_distances(graph, target, max_hops)
            assert matrix[:, j].tolist() == expected.tolist()

    def test_target_row_is_zero(self, chain_graph):
        matrix = hop_distance_matrix(chain_graph, [2, 4], 3)
        assert matrix[2, 0] == 0
        assert matrix[4, 1] == 0

    def test_unreached_is_minus_one(self, chain_graph):
        matrix = hop_distance_matrix(chain_graph, [0], 3)
        assert matrix[:, 0].tolist() == [0, -1, -1, -1, -1]


class TestUnpackBitset:
    def test_round_trip_beyond_one_word(self):
        rng = np.random.default_rng(9)
        dense = rng.random((5, 100)) < 0.4
        packed = np.packbits(
            np.pad(dense, ((0, 0), (0, 28))), axis=1, bitorder="little"
        ).view(np.uint64)
        assert np.array_equal(unpack_bitset(packed, 100), dense)

    def test_rejects_non_matrix(self):
        with pytest.raises(ConfigurationError):
            unpack_bitset(np.zeros(3, dtype=np.uint64), 3)

    def test_rejects_too_many_bits(self):
        with pytest.raises(ConfigurationError):
            unpack_bitset(np.zeros((2, 1), dtype=np.uint64), 65)


class TestValidateNodes:
    """Public vectorized node validation (used by the bitset kernels)."""

    def test_valid_batch_passes_through(self, chain_graph):
        out = chain_graph.validate_nodes([4, 0, 2, 0])
        assert out.tolist() == [4, 0, 2, 0]
        assert out.dtype == np.int64

    def test_empty_batch_allowed(self, chain_graph):
        assert chain_graph.validate_nodes([]).size == 0

    def test_first_offender_named(self, chain_graph):
        with pytest.raises(NodeNotFoundError) as excinfo:
            chain_graph.validate_nodes([1, 7, 9])
        assert "7" in str(excinfo.value)

    def test_negative_rejected(self, chain_graph):
        with pytest.raises(NodeNotFoundError):
            chain_graph.validate_nodes([0, -1])

    def test_scalar_helper(self, chain_graph):
        assert chain_graph.validate_node(3) == 3
        with pytest.raises(NodeNotFoundError):
            chain_graph.validate_node(5)


class TestForwardClosure:
    """Packed-bitset forward reachability (the delta engine's kernel)."""

    def test_chain_suffix(self, chain_graph):
        assert forward_closure(chain_graph, [2]).tolist() == [2, 3, 4]

    def test_sources_count_as_reached(self, chain_graph):
        assert forward_closure(chain_graph, [4]).tolist() == [4]

    def test_empty_sources(self, chain_graph):
        assert forward_closure(chain_graph, []).size == 0

    def test_union_of_sources(self, chain_graph):
        closure = forward_closure(chain_graph, [0, 3])
        assert closure.tolist() == [0, 1, 2, 3, 4]

    def test_max_hops_caps_spread(self, chain_graph):
        assert forward_closure(chain_graph, [0], max_hops=1).tolist() == [0, 1]

    def test_cycle_converges(self, triangle_graph):
        assert forward_closure(triangle_graph, [1]).tolist() == [0, 1, 2]

    def test_extra_edges_propagate(self, chain_graph):
        # The graph has no edge 4 -> 0; the extra edge closes the cycle,
        # which is how the delta engine folds removed edges back in to
        # cover the old graph's topology with a single run.
        extra = (np.array([4], dtype=np.int64), np.array([0], dtype=np.int64))
        closure = forward_closure(chain_graph, [4], extra_edges=extra)
        assert closure.tolist() == [0, 1, 2, 3, 4]

    def test_extra_edges_without_reached_source_inert(self, chain_graph):
        extra = (np.array([0], dtype=np.int64), np.array([4], dtype=np.int64))
        closure = forward_closure(chain_graph, [3], extra_edges=extra)
        assert closure.tolist() == [3, 4]

    def test_invalid_source_rejected(self, chain_graph):
        with pytest.raises(NodeNotFoundError):
            forward_closure(chain_graph, [9])


class TestThetaForwardClosure:
    """Probability-bounded closure: the entry-level affected set."""

    def test_chain_horizon(self, chain_graph):
        # Products from 0: 1.0, 0.5, 0.25, 0.125, 0.0625.
        assert theta_forward_closure(chain_graph, [0], 0.3).tolist() == [0, 1]
        assert theta_forward_closure(chain_graph, [0], 0.25).tolist() == \
            [0, 1, 2]
        assert theta_forward_closure(chain_graph, [0], 0.6).tolist() == [0]

    def test_whole_graph_at_tiny_theta(self, chain_graph):
        closure = theta_forward_closure(chain_graph, [0], 1e-6)
        assert closure.tolist() == [0, 1, 2, 3, 4]

    def test_cycle_converges(self, triangle_graph):
        closure = theta_forward_closure(triangle_graph, [0], 1e-4)
        assert closure.tolist() == [0, 1, 2]

    def test_subset_of_plain_closure(self, diamond_graph):
        for theta in (0.05, 0.2, 0.5):
            bounded = theta_forward_closure(diamond_graph, [0], theta)
            plain = forward_closure(diamond_graph, [0])
            assert np.all(np.isin(bounded, plain))

    def test_best_path_wins(self, diamond_graph):
        # Node 3 is reachable at 0.1 (direct), 0.25 (via 1), 0.1 (via 2);
        # the best walk 0 -> 1 -> 3 clears theta=0.2.
        closure = theta_forward_closure(diamond_graph, [0], 0.2)
        assert 3 in closure.tolist()

    def test_empty_sources(self, chain_graph):
        assert theta_forward_closure(chain_graph, [], 0.5).size == 0

    @pytest.mark.parametrize("theta", [0.0, -0.1, 1.5])
    def test_bad_theta_rejected(self, chain_graph, theta):
        with pytest.raises(ConfigurationError):
            theta_forward_closure(chain_graph, [0], theta)
