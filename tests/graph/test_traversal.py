"""Unit tests for hop-limited traversals."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.graph import (
    SocialGraph,
    forward_reachable,
    hop_distance,
    hop_distances,
    pairwise_hop_distances,
    reverse_hop_distances,
    reverse_reachable,
)


class TestHopDistances:
    def test_chain_distances(self, chain_graph):
        dist = hop_distances(chain_graph, 0)
        assert dist.tolist() == [0, 1, 2, 3, 4]

    def test_chain_distances_capped(self, chain_graph):
        dist = hop_distances(chain_graph, 0, max_hops=2)
        assert dist.tolist() == [0, 1, 2, -1, -1]

    def test_unreachable_marked(self, chain_graph):
        dist = hop_distances(chain_graph, 4)
        assert dist.tolist() == [-1, -1, -1, -1, 0]

    def test_cycle(self, triangle_graph):
        dist = hop_distances(triangle_graph, 0)
        assert dist.tolist() == [0, 1, 2]

    def test_zero_hops(self, chain_graph):
        dist = hop_distances(chain_graph, 2, max_hops=0)
        assert dist.tolist() == [-1, -1, 0, -1, -1]

    def test_negative_hops_rejected(self, chain_graph):
        with pytest.raises(ConfigurationError):
            hop_distances(chain_graph, 0, max_hops=-1)

    def test_diamond_takes_shortest(self, diamond_graph):
        dist = hop_distances(diamond_graph, 0)
        assert dist[3] == 1  # direct shortcut beats two-hop paths


class TestReverseDistances:
    def test_reverse_chain(self, chain_graph):
        dist = reverse_hop_distances(chain_graph, 4)
        assert dist.tolist() == [4, 3, 2, 1, 0]

    def test_reverse_equals_forward_on_reversed_graph(self, diamond_graph):
        rev = diamond_graph.reversed()
        for node in diamond_graph.nodes:
            expected = hop_distances(rev, node)
            actual = reverse_hop_distances(diamond_graph, node)
            assert expected.tolist() == actual.tolist()


class TestHopDistanceScalar:
    def test_found(self, chain_graph):
        assert hop_distance(chain_graph, 0, 3) == 3

    def test_not_found_within_bound(self, chain_graph):
        assert hop_distance(chain_graph, 0, 3, max_hops=2) == -1

    def test_self_distance(self, chain_graph):
        assert hop_distance(chain_graph, 1, 1) == 0


class TestReachableSets:
    def test_forward_reachable(self, chain_graph):
        assert forward_reachable(chain_graph, 1, 2).tolist() == [2, 3]

    def test_forward_reachable_includes_source(self, chain_graph):
        result = forward_reachable(chain_graph, 1, 2, include_source=True)
        assert result.tolist() == [1, 2, 3]

    def test_reverse_reachable(self, chain_graph):
        assert reverse_reachable(chain_graph, 3, 2).tolist() == [1, 2]

    def test_reverse_reachable_includes_target(self, chain_graph):
        result = reverse_reachable(chain_graph, 3, 2, include_target=True)
        assert result.tolist() == [1, 2, 3]

    def test_reverse_reachable_whole_graph(self, triangle_graph):
        assert reverse_reachable(triangle_graph, 0, 5).tolist() == [1, 2]


class TestPairwise:
    def test_pairwise_matches_single(self, diamond_graph):
        table = pairwise_hop_distances(diamond_graph, [0, 1], max_hops=3)
        assert table[0].tolist() == hop_distances(diamond_graph, 0, 3).tolist()
        assert table[1].tolist() == hop_distances(diamond_graph, 1, 3).tolist()


class TestLargerGraph:
    def test_bfs_levels_on_random_graph(self):
        # Cross-check the vectorized BFS against a reference implementation.
        rng = np.random.default_rng(5)
        n = 60
        edges = set()
        while len(edges) < 200:
            u, v = rng.integers(0, n, size=2)
            if u != v:
                edges.add((int(u), int(v)))
        graph = SocialGraph(n, [(u, v, 0.5) for u, v in edges])
        dist = hop_distances(graph, 0)

        # Reference: plain dict BFS.
        from collections import deque

        ref = {0: 0}
        queue = deque([0])
        while queue:
            node = queue.popleft()
            for nxt in graph.out_neighbors(node):
                nxt = int(nxt)
                if nxt not in ref:
                    ref[nxt] = ref[node] + 1
                    queue.append(nxt)
        for node in range(n):
            assert dist[node] == ref.get(node, -1)
