"""Unit tests for graph structural metrics."""

import pytest

from repro.exceptions import EmptyGraphError
from repro.graph import (
    SocialGraph,
    average_clustering_coefficient,
    degree_summary,
    gini_coefficient,
    power_law_tail_exponent,
    preferential_attachment_graph,
    reciprocity,
)


class TestReciprocity:
    def test_fully_reciprocal(self):
        graph = SocialGraph(2, [(0, 1, 0.5), (1, 0, 0.5)])
        assert reciprocity(graph) == 1.0

    def test_no_reciprocity(self, chain_graph):
        assert reciprocity(chain_graph) == 0.0

    def test_partial(self):
        graph = SocialGraph(3, [(0, 1, 0.5), (1, 0, 0.5), (1, 2, 0.5)])
        assert reciprocity(graph) == pytest.approx(2 / 3)

    def test_empty_rejected(self):
        with pytest.raises(EmptyGraphError):
            reciprocity(SocialGraph(3, []))


class TestPowerLawExponent:
    def test_pa_graph_in_plausible_range(self):
        graph = preferential_attachment_graph(800, 5, seed=1)
        alpha = power_law_tail_exponent(graph)
        assert 1.2 < alpha < 4.5

    def test_requires_tail(self, chain_graph):
        with pytest.raises(EmptyGraphError):
            power_law_tail_exponent(chain_graph, minimum_degree=5)


class TestGini:
    def test_uniform_degrees_near_zero(self, triangle_graph):
        assert gini_coefficient(triangle_graph) == pytest.approx(0.0)

    def test_hub_graph_high(self):
        edges = [(i, 0, 0.5) for i in range(1, 20)]
        graph = SocialGraph(20, edges)
        assert gini_coefficient(graph) > 0.8

    def test_edgeless_zero(self):
        assert gini_coefficient(SocialGraph(4, [])) == 0.0

    def test_empty_rejected(self):
        with pytest.raises(EmptyGraphError):
            gini_coefficient(SocialGraph(0, []))


class TestClustering:
    def test_triangle_fully_clustered(self):
        # Undirected projection of the 3-cycle is a triangle.
        graph = SocialGraph(3, [(0, 1, 0.5), (1, 2, 0.5), (2, 0, 0.5)])
        assert average_clustering_coefficient(graph) == pytest.approx(1.0)

    def test_chain_unclustered(self, chain_graph):
        assert average_clustering_coefficient(chain_graph) == 0.0

    def test_sampled_variant_runs(self):
        graph = preferential_attachment_graph(200, 4, seed=2)
        full = average_clustering_coefficient(graph)
        sampled = average_clustering_coefficient(graph, sample=50, seed=3)
        assert 0.0 <= sampled <= 1.0
        assert abs(full - sampled) < 0.3


class TestDegreeSummary:
    def test_keys_and_consistency(self, diamond_graph):
        summary = degree_summary(diamond_graph)
        assert summary["nodes"] == 4
        assert summary["edges"] == 5
        assert summary["max_in_degree"] == 3
        assert 0.0 <= summary["in_degree_gini"] <= 1.0
