"""Unit tests for connectivity analysis and repair."""

import pytest

from repro.exceptions import EmptyGraphError
from repro.graph import (
    SocialGraph,
    ensure_weakly_connected,
    is_weakly_connected,
    weakly_connected_components,
)


@pytest.fixture
def two_islands():
    """Components {0,1,2} and {3,4}."""
    return SocialGraph(5, [(0, 1, 0.5), (1, 2, 0.5), (3, 4, 0.5)])


class TestComponents:
    def test_single_component(self, triangle_graph):
        components = weakly_connected_components(triangle_graph)
        assert len(components) == 1
        assert components[0].tolist() == [0, 1, 2]

    def test_two_components_largest_first(self, two_islands):
        components = weakly_connected_components(two_islands)
        assert [c.tolist() for c in components] == [[0, 1, 2], [3, 4]]

    def test_direction_ignored(self):
        # 0 -> 1 and 2 -> 1: weakly connected despite no directed path 0->2.
        graph = SocialGraph(3, [(0, 1, 0.5), (2, 1, 0.5)])
        assert is_weakly_connected(graph)

    def test_isolated_nodes_are_components(self):
        graph = SocialGraph(3, [(0, 1, 0.5)])
        components = weakly_connected_components(graph)
        assert len(components) == 2

    def test_empty_graph_rejected(self):
        with pytest.raises(EmptyGraphError):
            is_weakly_connected(SocialGraph(0, []))


class TestRepair:
    def test_connected_input_untouched(self, triangle_graph):
        repaired, added = ensure_weakly_connected(triangle_graph, seed=1)
        assert added == 0
        assert repaired is triangle_graph

    def test_repair_connects(self, two_islands):
        repaired, added = ensure_weakly_connected(two_islands, seed=1)
        assert added >= 1
        assert is_weakly_connected(repaired)

    def test_bidirectional_bridges(self, two_islands):
        repaired, added = ensure_weakly_connected(
            two_islands, seed=1, bidirectional=True
        )
        assert added == 2

    def test_unidirectional_bridges(self, two_islands):
        repaired, added = ensure_weakly_connected(
            two_islands, seed=1, bidirectional=False
        )
        assert added == 1
        assert is_weakly_connected(repaired)

    def test_original_edges_preserved(self, two_islands):
        repaired, _ = ensure_weakly_connected(two_islands, seed=1)
        original = set(two_islands.iter_edges())
        assert original <= set(repaired.iter_edges())

    def test_many_islands(self):
        graph = SocialGraph(9, [(0, 1, 0.5), (2, 3, 0.5), (4, 5, 0.5)])
        repaired, added = ensure_weakly_connected(graph, seed=2)
        assert is_weakly_connected(repaired)

    def test_deterministic(self, two_islands):
        a, _ = ensure_weakly_connected(two_islands, seed=5)
        b, _ = ensure_weakly_connected(two_islands, seed=5)
        assert sorted(a.iter_edges()) == sorted(b.iter_edges())
