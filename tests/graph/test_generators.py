"""Unit tests for synthetic graph generators."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.graph import (
    PROBABILITY_SCHEMES,
    assign_probabilities,
    banded_degree_graph,
    preferential_attachment_graph,
)


class TestPreferentialAttachment:
    def test_basic_shape(self):
        graph = preferential_attachment_graph(100, out_degree=4, seed=1)
        assert graph.n_nodes == 100
        assert graph.n_edges >= 4 * 50  # at least the late arrivals' follows

    def test_deterministic_under_seed(self):
        a = preferential_attachment_graph(80, out_degree=3, seed=42)
        b = preferential_attachment_graph(80, out_degree=3, seed=42)
        assert sorted(a.iter_edges()) == sorted(b.iter_edges())

    def test_different_seeds_differ(self):
        a = preferential_attachment_graph(80, out_degree=3, seed=1)
        b = preferential_attachment_graph(80, out_degree=3, seed=2)
        assert sorted(a.iter_edges()) != sorted(b.iter_edges())

    def test_heavy_tail_in_degree(self):
        graph = preferential_attachment_graph(500, out_degree=5, seed=7)
        in_degrees = graph.in_degrees()
        # Rich-get-richer: the max in-degree should dwarf the median.
        assert in_degrees.max() > 5 * np.median(in_degrees[in_degrees > 0])

    def test_reciprocity_adds_back_edges(self):
        none = preferential_attachment_graph(100, 4, reciprocity=0.0, seed=3)
        lots = preferential_attachment_graph(100, 4, reciprocity=0.9, seed=3)
        assert lots.n_edges > none.n_edges

    def test_rejects_tiny_graph(self):
        with pytest.raises(ConfigurationError):
            preferential_attachment_graph(1, out_degree=2)

    def test_rejects_bad_reciprocity(self):
        with pytest.raises(ConfigurationError):
            preferential_attachment_graph(10, 2, reciprocity=1.5)


class TestBandedDegree:
    def test_degrees_within_band(self):
        graph = banded_degree_graph(200, 5, 9, seed=1)
        out_degrees = graph.out_degrees()
        assert out_degrees.min() >= 1  # oversampling may fall slightly short
        assert out_degrees.max() <= 9

    def test_mostly_hits_band(self):
        graph = banded_degree_graph(200, 5, 9, seed=1)
        out_degrees = graph.out_degrees()
        in_band = np.count_nonzero((out_degrees >= 5) & (out_degrees <= 9))
        assert in_band >= 0.9 * 200

    def test_deterministic_under_seed(self):
        a = banded_degree_graph(100, 3, 6, seed=9)
        b = banded_degree_graph(100, 3, 6, seed=9)
        assert sorted(a.iter_edges()) == sorted(b.iter_edges())

    def test_rejects_band_inversion(self):
        with pytest.raises(ConfigurationError):
            banded_degree_graph(100, 9, 5)

    def test_rejects_band_exceeding_nodes(self):
        with pytest.raises(ConfigurationError):
            banded_degree_graph(10, 2, 10)

    def test_hub_bias_zero_is_uniformish(self):
        graph = banded_degree_graph(300, 4, 6, hub_bias=0.0, seed=2)
        in_degrees = graph.in_degrees()
        assert in_degrees.max() < 40  # no celebrity hubs without bias

    def test_rejects_negative_hub_bias(self):
        with pytest.raises(ConfigurationError):
            banded_degree_graph(100, 3, 5, hub_bias=-1.0)


class TestAssignProbabilities:
    EDGES = [(0, 1), (1, 2), (2, 0), (0, 2)]

    def test_weighted_cascade_is_inverse_in_degree(self):
        triples = assign_probabilities(3, self.EDGES, scheme="weighted_cascade")
        lookup = {(s, t): p for s, t, p in triples}
        assert lookup[(1, 2)] == 0.5  # node 2 has in-degree 2
        assert lookup[(0, 1)] == 1.0  # node 1 has in-degree 1

    def test_trivalency_values(self):
        triples = assign_probabilities(3, self.EDGES, scheme="trivalency", seed=1)
        assert all(p in (0.1, 0.01, 0.001) for _, _, p in triples)

    def test_uniform_bounds(self):
        triples = assign_probabilities(
            3, self.EDGES, scheme="uniform", seed=1, uniform_low=0.2, uniform_high=0.3
        )
        assert all(0.2 <= p <= 0.3 for _, _, p in triples)

    def test_uniform_bad_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            assign_probabilities(
                3, self.EDGES, scheme="uniform", uniform_low=0.5, uniform_high=0.2
            )

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown probability scheme"):
            assign_probabilities(3, self.EDGES, scheme="nope")

    def test_deduplicates_edges(self):
        triples = assign_probabilities(3, self.EDGES + [(0, 1)], scheme="trivalency", seed=0)
        assert len(triples) == len(self.EDGES)

    def test_all_schemes_produce_valid_graphs(self):
        from repro.graph import SocialGraph

        for scheme in PROBABILITY_SCHEMES:
            triples = assign_probabilities(3, self.EDGES, scheme=scheme, seed=5)
            graph = SocialGraph(3, triples)
            assert graph.n_edges == len(self.EDGES)
