"""Unit tests for graph serialization."""

import pytest

from repro.exceptions import GraphError
from repro.graph import load_edge_list, load_npz, save_edge_list, save_npz


class TestEdgeList:
    def test_roundtrip(self, diamond_graph, tmp_path):
        path = tmp_path / "graph.txt"
        save_edge_list(diamond_graph, path)
        loaded = load_edge_list(path)
        assert loaded.n_nodes == diamond_graph.n_nodes
        assert sorted(loaded.iter_edges()) == sorted(diamond_graph.iter_edges())

    def test_header_preserves_isolated_nodes(self, tmp_path):
        from repro.graph import SocialGraph

        graph = SocialGraph(10, [(0, 1, 0.5)])
        path = tmp_path / "graph.txt"
        save_edge_list(graph, path)
        assert load_edge_list(path).n_nodes == 10

    def test_explicit_node_count_overrides(self, triangle_graph, tmp_path):
        path = tmp_path / "graph.txt"
        save_edge_list(triangle_graph, path)
        assert load_edge_list(path, n_nodes=7).n_nodes == 7

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphError, match="expected"):
            load_edge_list(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 one 0.5\n")
        with pytest.raises(GraphError):
            load_edge_list(path)

    def test_blank_lines_and_comments_skipped(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# a comment\n\n0 1 0.5\n")
        graph = load_edge_list(path)
        assert graph.n_edges == 1

    def test_probabilities_roundtrip_exactly(self, tmp_path):
        from repro.graph import SocialGraph

        graph = SocialGraph(2, [(0, 1, 0.12345678901234567)])
        path = tmp_path / "graph.txt"
        save_edge_list(graph, path)
        loaded = load_edge_list(path)
        assert loaded.edge_probability(0, 1) == 0.12345678901234567


class TestNpz:
    def test_roundtrip(self, diamond_graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_npz(diamond_graph, path)
        loaded = load_npz(path)
        assert sorted(loaded.iter_edges()) == sorted(diamond_graph.iter_edges())

    def test_isolated_nodes_preserved(self, tmp_path):
        from repro.graph import SocialGraph

        graph = SocialGraph(6, [(0, 1, 0.5)])
        path = tmp_path / "graph.npz"
        save_npz(graph, path)
        assert load_npz(path).n_nodes == 6

    def test_missing_arrays_rejected(self, tmp_path):
        import numpy as np

        path = tmp_path / "bad.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(GraphError):
            load_npz(path)
