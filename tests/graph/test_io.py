"""Unit tests for graph serialization."""

import pytest

from repro.exceptions import ArtifactCorruptedError, ArtifactError, EdgeError, GraphError
from repro.graph import load_edge_list, load_npz, save_edge_list, save_npz


class TestEdgeList:
    def test_roundtrip(self, diamond_graph, tmp_path):
        path = tmp_path / "graph.txt"
        save_edge_list(diamond_graph, path)
        loaded = load_edge_list(path)
        assert loaded.n_nodes == diamond_graph.n_nodes
        assert sorted(loaded.iter_edges()) == sorted(diamond_graph.iter_edges())

    def test_header_preserves_isolated_nodes(self, tmp_path):
        from repro.graph import SocialGraph

        graph = SocialGraph(10, [(0, 1, 0.5)])
        path = tmp_path / "graph.txt"
        save_edge_list(graph, path)
        assert load_edge_list(path).n_nodes == 10

    def test_explicit_node_count_overrides(self, triangle_graph, tmp_path):
        path = tmp_path / "graph.txt"
        save_edge_list(triangle_graph, path)
        assert load_edge_list(path, n_nodes=7).n_nodes == 7

    def test_malformed_line_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1\n")
        with pytest.raises(GraphError, match="expected"):
            load_edge_list(path)

    def test_non_numeric_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 one 0.5\n")
        with pytest.raises(GraphError):
            load_edge_list(path)

    def test_blank_lines_and_comments_skipped(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# a comment\n\n0 1 0.5\n")
        graph = load_edge_list(path)
        assert graph.n_edges == 1

    def test_probabilities_roundtrip_exactly(self, tmp_path):
        from repro.graph import SocialGraph

        graph = SocialGraph(2, [(0, 1, 0.12345678901234567)])
        path = tmp_path / "graph.txt"
        save_edge_list(graph, path)
        loaded = load_edge_list(path)
        assert loaded.edge_probability(0, 1) == 0.12345678901234567

    def test_missing_file_typed_error(self, tmp_path):
        with pytest.raises(ArtifactError, match="not found"):
            load_edge_list(tmp_path / "nope.txt")


class TestEdgeListValidation:
    def test_endpoint_beyond_header_bound_rejected_with_lineno(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("# nodes=3\n0 1 0.5\n0 9 0.5\n")
        with pytest.raises(EdgeError, match=r"bad\.txt:3.*\(0, 9\).*declared node count 3"):
            load_edge_list(path)

    def test_endpoint_beyond_argument_bound_rejected(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 5 0.5\n")
        with pytest.raises(EdgeError, match="n_nodes argument"):
            load_edge_list(path, n_nodes=3)

    def test_negative_endpoint_rejected_with_lineno(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 0.5\n-1 2 0.5\n")
        with pytest.raises(EdgeError, match=r"bad\.txt:2"):
            load_edge_list(path)

    def test_out_of_range_probability_rejected_with_lineno(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 0.5\n1 2 1.5\n")
        with pytest.raises(EdgeError, match=r"bad\.txt:2.*1\.5"):
            load_edge_list(path)

    def test_malformed_line_error_names_line(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0 1 0.5\n\n0 2\n")
        with pytest.raises(GraphError, match=r"bad\.txt:3"):
            load_edge_list(path)

    def test_inferred_bound_accepts_any_endpoint(self, tmp_path):
        # Without a declared bound the maximum endpoint defines the graph.
        path = tmp_path / "ok.txt"
        path.write_text("0 41 0.5\n")
        assert load_edge_list(path).n_nodes == 42


class TestEdgeListIntegrity:
    def test_header_carries_checksum(self, diamond_graph, tmp_path):
        path = tmp_path / "graph.txt"
        save_edge_list(diamond_graph, path)
        header = path.read_text().splitlines()[0]
        assert "checksum=sha256:" in header and "format=" in header

    def test_tampered_body_rejected(self, diamond_graph, tmp_path):
        path = tmp_path / "graph.txt"
        save_edge_list(diamond_graph, path)
        header, _, body = path.read_text().partition("\n")
        lines = body.splitlines()
        source, target, _ = lines[0].split()
        lines[0] = f"{source} {target} 0.987654321"  # reweight one edge
        path.write_text(header + "\n" + "\n".join(lines) + "\n")
        with pytest.raises(ArtifactCorruptedError, match="checksum mismatch"):
            load_edge_list(path)

    def test_external_file_without_checksum_loads(self, tmp_path):
        # SNAP-style files (no checksum token) stay loadable.
        path = tmp_path / "external.txt"
        path.write_text("# some external comment\n0 1 0.5\n")
        assert load_edge_list(path).n_edges == 1

    def test_write_is_atomic_on_injected_crash(self, diamond_graph, tmp_path):
        from repro import _faults
        from repro.graph import SocialGraph

        path = tmp_path / "graph.txt"
        save_edge_list(diamond_graph, path)
        before = path.read_bytes()
        bigger = SocialGraph(9, [(0, 1, 0.5), (1, 2, 0.5)])
        with _faults.fault("artifact.pre_replace", _faults.FailOnReplace()):
            with pytest.raises(OSError, match="injected"):
                save_edge_list(bigger, path)
        assert path.read_bytes() == before  # old version intact
        assert list(tmp_path.iterdir()) == [path]  # no temp litter


class TestNpz:
    def test_roundtrip(self, diamond_graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_npz(diamond_graph, path)
        loaded = load_npz(path)
        assert sorted(loaded.iter_edges()) == sorted(diamond_graph.iter_edges())

    def test_isolated_nodes_preserved(self, tmp_path):
        from repro.graph import SocialGraph

        graph = SocialGraph(6, [(0, 1, 0.5)])
        path = tmp_path / "graph.npz"
        save_npz(graph, path)
        assert load_npz(path).n_nodes == 6

    def test_missing_arrays_rejected(self, tmp_path):
        import numpy as np

        path = tmp_path / "bad.npz"
        np.savez(path, something=np.zeros(3))
        with pytest.raises(ArtifactCorruptedError, match="missing keys"):
            load_npz(path)

    def test_legacy_npz_without_checksum_loads(self, tmp_path):
        # Bundles written before the integrity layer carry no checksum.
        import numpy as np

        from repro.graph import SocialGraph

        graph = SocialGraph(3, [(0, 1, 0.5), (1, 2, 0.25)])
        path = tmp_path / "legacy.npz"
        np.savez_compressed(
            path,
            n_nodes=np.asarray([graph.n_nodes], dtype=np.int64),
            out_indptr=graph._out_indptr,
            out_targets=graph._out_targets,
            out_probs=graph._out_probs,
        )
        loaded = load_npz(path)
        assert sorted(loaded.iter_edges()) == sorted(graph.iter_edges())

    def test_flipped_byte_rejected(self, diamond_graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_npz(diamond_graph, path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(ArtifactCorruptedError):
            load_npz(path)

    def test_truncated_file_rejected(self, diamond_graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_npz(diamond_graph, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ArtifactCorruptedError):
            load_npz(path)

    def test_missing_file_typed_error(self, tmp_path):
        with pytest.raises(ArtifactError, match="not found"):
            load_npz(tmp_path / "nope.npz")
