"""Unit tests for the tweet corpus."""

import pytest

from repro.exceptions import ConfigurationError
from repro.topics import TweetCorpus


class TestTweetCorpus:
    def test_empty_corpus(self):
        corpus = TweetCorpus(3)
        assert corpus.n_users == 3
        assert corpus.n_tweets == 0
        assert corpus.tweets(0) == ()

    def test_rejects_negative_users(self):
        with pytest.raises(ConfigurationError):
            TweetCorpus(-1)

    def test_add_and_read_back(self):
        corpus = TweetCorpus(2)
        corpus.add_tweet(0, "hello world")
        corpus.add_tweets(0, ["second tweet", "third tweet"])
        assert corpus.tweets(0) == ("hello world", "second tweet", "third tweet")
        assert corpus.n_tweets == 3

    def test_user_bounds_checked(self):
        corpus = TweetCorpus(2)
        with pytest.raises(ConfigurationError):
            corpus.add_tweet(5, "nope")
        with pytest.raises(ConfigurationError):
            corpus.tweets(-1)

    def test_user_document_joins_tweets(self):
        corpus = TweetCorpus(1)
        corpus.add_tweets(0, ["first", "second"])
        assert corpus.user_document(0) == "first\nsecond"

    def test_user_tokens(self):
        corpus = TweetCorpus(1)
        corpus.add_tweet(0, "Samsung phone rocks")
        assert corpus.user_tokens(0) == ["samsung", "phone", "rocks"]

    def test_iter_documents_skips_silent_users(self):
        corpus = TweetCorpus(3)
        corpus.add_tweet(1, "only me")
        docs = list(corpus.iter_documents())
        assert docs == [(1, "only me")]

    def test_len_is_user_count(self):
        assert len(TweetCorpus(7)) == 7
