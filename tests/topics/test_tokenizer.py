"""Unit tests for the tokenizer."""

from repro.topics import STOPWORDS, tokenize


class TestTokenize:
    def test_lowercases(self):
        assert tokenize("Samsung PHONE") == ["samsung", "phone"]

    def test_splits_punctuation(self):
        assert tokenize("love-my_phone!") == ["love", "phone"]

    def test_drops_stopwords(self):
        assert tokenize("the phone is great") == ["phone", "great"]

    def test_keeps_stopwords_when_asked(self):
        assert "the" in tokenize("the phone", drop_stopwords=False)

    def test_min_length(self):
        assert tokenize("a b cd", min_length=2) == ["cd"]

    def test_digits_survive_min_length(self):
        assert tokenize("iphone 5") == ["iphone", "5"]

    def test_empty_string(self):
        assert tokenize("") == []

    def test_only_stopwords(self):
        assert tokenize("the and of") == []

    def test_stopword_list_is_lowercase(self):
        assert all(w == w.lower() for w in STOPWORDS)

    def test_idempotent_on_own_output(self):
        tokens = tokenize("Checking my new HTC phone today!")
        assert tokenize(" ".join(tokens)) == tokens
