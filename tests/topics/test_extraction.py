"""Integration tests for the LDA + tag-refinement extraction pipeline."""

import pytest

from repro.exceptions import ConfigurationError
from repro.topics import TagBank, TopicExtractor, TopicIndex, TweetCorpus


@pytest.fixture
def corpus():
    corpus = TweetCorpus(5)
    corpus.add_tweets(0, [
        "loving my new samsung phone",
        "samsung phone camera is amazing",
        "phone battery life on the samsung",
    ])
    corpus.add_tweets(1, [
        "apple phone rumors everywhere",
        "new apple phone leak today",
        "apple phone pricing announced",
    ])
    corpus.add_tweets(2, [
        "jazz festival tonight downtown",
        "festival music lineup announced",
        "music festival tickets sold out",
    ])
    # User 3 is silent; user 4 tweets noise only.
    corpus.add_tweets(4, ["aaaa bbbb cccc"])
    return corpus


@pytest.fixture
def tag_bank():
    return TagBank.synthetic(200, seed=1)


class TestExtraction:
    def test_extracts_topics_for_active_users(self, corpus, tag_bank):
        extractor = TopicExtractor(n_topics=4, lda_iterations=40, seed=2)
        result = extractor.run(corpus, tag_bank)
        assert 0 in result.assignments
        assert 1 in result.assignments
        assert 2 in result.assignments
        assert 3 not in result.assignments  # silent user

    def test_phone_users_get_phone_topics(self, corpus, tag_bank):
        extractor = TopicExtractor(n_topics=4, lda_iterations=60, seed=2)
        result = extractor.run(corpus, tag_bank)
        for user in (0, 1):
            tokens = {
                token
                for topic in result.assignments[user]
                for token in topic.split()
            }
            assert "phone" in tokens

    def test_seeds_recorded(self, corpus, tag_bank):
        extractor = TopicExtractor(
            n_topics=4, seed_terms_per_user=6, lda_iterations=30, seed=2
        )
        result = extractor.run(corpus, tag_bank)
        assert all(len(seeds) <= 6 for seeds in result.seeds.values())

    def test_tags_per_user_cap(self, corpus, tag_bank):
        extractor = TopicExtractor(
            n_topics=4, tags_per_user=3, lda_iterations=30, seed=2
        )
        result = extractor.run(corpus, tag_bank)
        assert all(len(t) <= 3 for t in result.assignments.values())

    def test_result_feeds_topic_index(self, corpus, tag_bank):
        extractor = TopicExtractor(n_topics=4, lda_iterations=30, seed=2)
        result = extractor.run(corpus, tag_bank)
        index = TopicIndex(corpus.n_users, result.assignments)
        assert index.n_topics == result.topic_space_size()

    def test_empty_corpus_rejected(self, tag_bank):
        extractor = TopicExtractor(seed=1)
        with pytest.raises(ConfigurationError):
            extractor.run(TweetCorpus(3), tag_bank)

    def test_parameter_validation(self):
        with pytest.raises(ConfigurationError):
            TopicExtractor(n_topics=0)
        with pytest.raises(ConfigurationError):
            TopicExtractor(tags_per_user=0)

    def test_deterministic_under_seed(self, corpus, tag_bank):
        a = TopicExtractor(n_topics=4, lda_iterations=20, seed=9).run(corpus, tag_bank)
        b = TopicExtractor(n_topics=4, lda_iterations=20, seed=9).run(corpus, tag_bank)
        assert a.assignments == b.assignments
