"""Unit tests for TF-IDF topic relevance."""

import pytest

from repro.exceptions import ConfigurationError
from repro.topics import TfIdfScorer, TopicIndex


@pytest.fixture
def scorer():
    index = TopicIndex(
        5,
        {
            0: ["apple phone", "apple laptop"],
            1: ["samsung phone"],
            2: ["jazz music"],
        },
    )
    return TfIdfScorer(index)


class TestIdf:
    def test_rare_token_higher_idf(self, scorer):
        # "jazz" occurs in 1 label, "phone" in 2.
        assert scorer.idf("jazz") > scorer.idf("phone")

    def test_unknown_token_zero(self, scorer):
        assert scorer.idf("zzzqqq") == 0.0


class TestScore:
    def test_exact_label_match_strongest(self, scorer):
        apple = scorer.score("apple phone", "apple phone")
        samsung = scorer.score("apple phone", "samsung phone")
        assert apple > samsung > 0.0

    def test_disjoint_zero(self, scorer):
        assert scorer.score("jazz", "apple phone") == 0.0

    def test_score_symmetric_in_duplicates(self, scorer):
        single = scorer.score("phone", "samsung phone")
        doubled = scorer.score("phone phone", "samsung phone")
        # Query normalization makes repeated keywords equivalent.
        assert single == pytest.approx(doubled)

    def test_scores_bounded_by_one(self, scorer):
        for query in ("apple phone", "apple", "jazz music"):
            for topic in range(scorer.topic_index.n_topics):
                assert scorer.score(query, topic) <= 1.0 + 1e-9


class TestRank:
    def test_rank_order(self, scorer):
        ranked = scorer.rank("apple phone", 3)
        labels = [scorer.topic_index.label(t) for t, _ in ranked]
        assert labels[0] == "apple phone"

    def test_zero_scores_excluded(self, scorer):
        ranked = scorer.rank("jazz", 10)
        labels = {scorer.topic_index.label(t) for t, _ in ranked}
        assert labels == {"jazz music"}

    def test_k_validated(self, scorer):
        with pytest.raises(ConfigurationError):
            scorer.rank("phone", 0)
