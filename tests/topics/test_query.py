"""Unit tests for keyword queries."""

import pytest

from repro.exceptions import QueryError
from repro.topics import KeywordQuery


class TestParse:
    def test_basic(self):
        query = KeywordQuery.parse("Samsung Phone")
        assert query.keywords == ("samsung", "phone")
        assert query.raw == "Samsung Phone"

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            KeywordQuery.parse("   ")

    def test_stopwords_only_rejected(self):
        with pytest.raises(QueryError):
            KeywordQuery.parse("the and of")

    def test_unknown_mode_rejected(self):
        with pytest.raises(QueryError):
            KeywordQuery.parse("phone", mode="most")

    def test_str_is_raw(self):
        assert str(KeywordQuery.parse("phone")) == "phone"

    def test_frozen(self):
        query = KeywordQuery.parse("phone")
        with pytest.raises(Exception):
            query.raw = "other"


class TestMatching:
    def test_all_mode(self):
        query = KeywordQuery.parse("apple phone", mode="all")
        assert query.matches(["apple", "phone", "news"])
        assert not query.matches(["apple", "tv"])

    def test_any_mode(self):
        query = KeywordQuery.parse("apple phone", mode="any")
        assert query.matches(["apple", "tv"])
        assert not query.matches(["car", "tv"])

    def test_single_keyword_modes_agree(self):
        for mode in ("all", "any"):
            query = KeywordQuery.parse("phone", mode=mode)
            assert query.matches(["samsung", "phone"])
            assert not query.matches(["samsung", "tv"])
