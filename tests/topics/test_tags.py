"""Unit tests for the synthetic tag bank."""

import pytest

from repro.exceptions import ConfigurationError
from repro.topics import TagBank


class TestConstruction:
    def test_basic(self):
        bank = TagBank(["a phone", "b phone"], [10.0, 5.0])
        assert len(bank) == 2
        assert "a phone" in bank

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            TagBank(["a"], [1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            TagBank([], [])

    def test_rejects_duplicates(self):
        with pytest.raises(ConfigurationError):
            TagBank(["x", "x"], [1.0, 1.0])

    def test_rejects_nonpositive_popularity(self):
        with pytest.raises(ConfigurationError):
            TagBank(["x", "y"], [1.0, 0.0])

    def test_popularity_lookup(self):
        bank = TagBank(["x", "y"], [3.0, 7.0])
        assert bank.popularity(1) == 7.0
        with pytest.raises(ConfigurationError):
            bank.popularity(5)


class TestSynthetic:
    def test_requested_size(self):
        bank = TagBank.synthetic(200, seed=1)
        assert len(bank) == 200

    def test_unique_tags(self):
        bank = TagBank.synthetic(300, seed=2)
        assert len(set(bank.tags)) == 300

    def test_deterministic_under_seed(self):
        a = TagBank.synthetic(150, seed=9)
        b = TagBank.synthetic(150, seed=9)
        assert a.tags == b.tags

    def test_contains_domain_heads(self):
        bank = TagBank.synthetic(100, seed=1)
        assert "phone" in set(bank.tags)

    def test_zipfian_popularity_spread(self):
        bank = TagBank.synthetic(200, seed=3)
        values = sorted(bank.popularity(i) for i in range(200))
        assert values[-1] > 20 * values[0]


class TestMatching:
    def test_tags_containing_sorted_by_popularity(self):
        bank = TagBank(["cheap phone", "best phone", "red car"], [1.0, 9.0, 5.0])
        assert bank.tags_containing("phone") == ["best phone", "cheap phone"]

    def test_tags_containing_unknown_token(self):
        bank = TagBank.synthetic(50, seed=1)
        assert bank.tags_containing("zzzqqq") == []

    def test_refine_prefers_multi_token_matches(self):
        bank = TagBank(
            ["samsung phone", "samsung tv", "apple phone"], [1.0, 1.0, 1.0]
        )
        refined = bank.refine(["samsung", "phone"])
        assert refined[0] == "samsung phone"  # matches both seed tokens

    def test_refine_respects_limit(self):
        bank = TagBank.synthetic(300, seed=4)
        refined = bank.refine(["phone", "music", "travel"], limit=5)
        assert len(refined) == 5

    def test_refine_empty_seeds(self):
        bank = TagBank.synthetic(50, seed=1)
        assert bank.refine([]) == []

    def test_refine_limit_validated(self):
        bank = TagBank.synthetic(50, seed=1)
        with pytest.raises(ConfigurationError):
            bank.refine(["phone"], limit=0)
