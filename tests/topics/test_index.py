"""Unit tests for the topic space / inverted index."""

import pytest

from repro.exceptions import ConfigurationError, UnknownTopicError
from repro.topics import KeywordQuery, TopicIndex


@pytest.fixture
def index():
    return TopicIndex(
        6,
        {
            0: ["Apple Phone", "jazz music"],
            1: ["samsung phone"],
            2: ["apple phone", "samsung phone"],
            4: ["jazz music"],
        },
    )


class TestConstruction:
    def test_topic_count(self, index):
        assert index.n_topics == 3
        assert len(index) == 3

    def test_labels_sorted_and_normalized(self, index):
        assert index.labels == ("apple phone", "jazz music", "samsung phone")

    def test_rejects_out_of_range_node(self):
        with pytest.raises(ConfigurationError):
            TopicIndex(2, {5: ["topic"]})

    def test_rejects_empty_label(self):
        with pytest.raises(ConfigurationError):
            TopicIndex(2, {0: ["  "]})

    def test_empty_assignment(self):
        index = TopicIndex(3, {})
        assert index.n_topics == 0


class TestResolution:
    def test_resolve_by_label_case_insensitive(self, index):
        assert index.resolve("Apple Phone") == index.resolve("apple phone")

    def test_resolve_by_id(self, index):
        assert index.resolve(1) == 1

    def test_unknown_label(self, index):
        with pytest.raises(UnknownTopicError):
            index.resolve("nope")

    def test_unknown_id(self, index):
        with pytest.raises(UnknownTopicError):
            index.resolve(99)

    def test_contains(self, index):
        assert "apple phone" in index
        assert "nope" not in index

    def test_label_roundtrip(self, index):
        for topic_id in range(index.n_topics):
            assert index.resolve(index.label(topic_id)) == topic_id


class TestMembership:
    def test_topic_nodes_sorted(self, index):
        assert index.topic_nodes("apple phone").tolist() == [0, 2]

    def test_topic_size(self, index):
        assert index.topic_size("samsung phone") == 2

    def test_topics_of_node(self, index):
        topics = index.topics_of_node(0)
        labels = {index.label(t) for t in topics}
        assert labels == {"apple phone", "jazz music"}

    def test_topics_of_silent_node(self, index):
        assert index.topics_of_node(3) == ()

    def test_node_bounds_checked(self, index):
        with pytest.raises(ConfigurationError):
            index.topics_of_node(10)


class TestQueryMatching:
    def test_single_keyword(self, index):
        related = index.related_topics("phone")
        labels = {index.label(t) for t in related}
        assert labels == {"apple phone", "samsung phone"}

    def test_all_mode_requires_every_keyword(self, index):
        assert index.related_topics("apple phone") == [
            index.resolve("apple phone")
        ]

    def test_any_mode(self, index):
        query = KeywordQuery.parse("apple jazz", mode="any")
        labels = {index.label(t) for t in index.related_topics(query)}
        assert labels == {"apple phone", "jazz music"}

    def test_no_match(self, index):
        assert index.related_topics("quantum") == []

    def test_memory_accounting(self, index):
        assert index.memory_bytes() > 0
