"""Unit tests for the collapsed-Gibbs LDA."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.topics import Vocabulary, fit_lda


@pytest.fixture
def two_topic_corpus():
    """Two cleanly separable vocabularies (fruit vs metal)."""
    vocabulary = Vocabulary()
    fruit = ["apple", "banana", "mango", "kiwi"]
    metal = ["iron", "steel", "copper", "zinc"]
    rng = np.random.default_rng(0)
    docs = []
    for _ in range(8):
        docs.append(vocabulary.encode(rng.choice(fruit, size=20).tolist()))
    for _ in range(8):
        docs.append(vocabulary.encode(rng.choice(metal, size=20).tolist()))
    return docs, vocabulary, fruit, metal


class TestVocabulary:
    def test_add_and_lookup(self):
        vocabulary = Vocabulary()
        a = vocabulary.add("apple")
        assert vocabulary.add("apple") == a
        assert vocabulary.get("apple") == a
        assert vocabulary.term(a) == "apple"
        assert len(vocabulary) == 1

    def test_get_unknown_is_none(self):
        assert Vocabulary().get("nope") is None

    def test_encode_grow_false_skips_unknown(self):
        vocabulary = Vocabulary()
        vocabulary.add("known")
        assert vocabulary.encode(["known", "unknown"], grow=False) == [0]

    def test_terms_indexable(self):
        vocabulary = Vocabulary()
        vocabulary.encode(["a1", "b1"])
        assert vocabulary.terms == ("a1", "b1")


class TestFitValidation:
    def test_empty_vocabulary_rejected(self):
        with pytest.raises(ConfigurationError):
            fit_lda([[0]], Vocabulary(), 2)

    def test_bad_topic_count(self):
        vocabulary = Vocabulary()
        vocabulary.add("x1")
        with pytest.raises(ConfigurationError):
            fit_lda([[0]], vocabulary, 0)

    def test_out_of_vocabulary_id_rejected(self):
        vocabulary = Vocabulary()
        vocabulary.add("x1")
        with pytest.raises(ConfigurationError):
            fit_lda([[5]], vocabulary, 2, iterations=1)

    def test_bad_hyperparameters(self):
        vocabulary = Vocabulary()
        vocabulary.add("x1")
        with pytest.raises(ConfigurationError):
            fit_lda([[0]], vocabulary, 2, alpha=-1.0)
        with pytest.raises(ConfigurationError):
            fit_lda([[0]], vocabulary, 2, beta=0.0)


class TestFitQuality:
    def test_distributions_normalized(self, two_topic_corpus):
        docs, vocabulary, _, _ = two_topic_corpus
        model = fit_lda(docs, vocabulary, 2, iterations=30, seed=1)
        assert np.allclose(model.doc_topic.sum(axis=1), 1.0)
        assert np.allclose(model.topic_word.sum(axis=1), 1.0)

    def test_separates_clean_topics(self, two_topic_corpus):
        docs, vocabulary, fruit, metal = two_topic_corpus
        model = fit_lda(docs, vocabulary, 2, iterations=60, seed=1)
        top0 = set(model.top_terms(0, 4))
        top1 = set(model.top_terms(1, 4))
        # One topic should be fruity, the other metallic.
        assert {frozenset(top0), frozenset(top1)} == {
            frozenset(fruit),
            frozenset(metal),
        }

    def test_document_topics_match_content(self, two_topic_corpus):
        docs, vocabulary, fruit, _ = two_topic_corpus
        model = fit_lda(docs, vocabulary, 2, iterations=60, seed=1)
        fruit_topic = (
            0 if vocabulary.get("apple") in
            np.argsort(-model.topic_word[0])[:4] else 1
        )
        # The first 8 docs are fruit docs.
        for doc in range(8):
            assert model.document_topics(doc, 1)[0] == fruit_topic

    def test_deterministic_under_seed(self, two_topic_corpus):
        docs, vocabulary, _, _ = two_topic_corpus
        a = fit_lda(docs, vocabulary, 2, iterations=10, seed=5)
        b = fit_lda(docs, vocabulary, 2, iterations=10, seed=5)
        assert np.array_equal(a.doc_topic, b.doc_topic)
        assert np.array_equal(a.topic_word, b.topic_word)

    def test_empty_documents_tolerated(self):
        vocabulary = Vocabulary()
        vocabulary.add("word")
        model = fit_lda([[], [0, 0]], vocabulary, 2, iterations=5, seed=1)
        assert model.n_docs == 2


class TestSeedTerms:
    def test_seed_term_count(self, two_topic_corpus):
        docs, vocabulary, _, _ = two_topic_corpus
        model = fit_lda(docs, vocabulary, 2, iterations=30, seed=1)
        seeds = model.seed_terms(0, count=4)
        assert len(seeds) == 4
        assert len(set(seeds)) == 4

    def test_seed_terms_come_from_dominant_topic(self, two_topic_corpus):
        docs, vocabulary, fruit, metal = two_topic_corpus
        model = fit_lda(docs, vocabulary, 2, iterations=60, seed=1)
        seeds = model.seed_terms(0, count=4, topics_per_doc=1)
        assert set(seeds) == set(fruit) or set(seeds) == set(metal)
        # Doc 0 is a fruit doc.
        assert set(seeds) == set(fruit)
