"""Tests for the per-figure experiment runner (micro-scale config)."""

import pytest

from repro.evaluation import ExperimentConfig, ExperimentSuite
from repro.exceptions import ConfigurationError

MICRO_SIZES = {
    "data_2k": 250,
    "data_350k": 250,
    "data_1.2m": 250,
    "data_3m": 250,
}


@pytest.fixture(scope="module")
def suite():
    config = ExperimentConfig(
        seed=5,
        n_queries=1,
        n_users=1,
        samples_per_node=5,
        deviation_budget=20,
        dataset_sizes=dict(MICRO_SIZES),
    )
    return ExperimentSuite(config)


class TestCaching:
    def test_bundle_cached(self, suite):
        assert suite.bundle("data_2k") is suite.bundle("data_2k")

    def test_unknown_dataset_rejected(self, suite):
        with pytest.raises(ConfigurationError):
            suite.bundle("data_9z")

    def test_workload_cached(self, suite):
        assert suite.workload("data_2k") is suite.workload("data_2k")

    def test_engine_cached_per_key(self, suite):
        a = suite.engine("data_2k", "lrw")
        b = suite.engine("data_2k", "lrw")
        c = suite.engine("data_2k", "lrw", rep_fraction=0.3)
        assert a is b
        assert a is not c

    def test_unknown_method_rejected(self, suite):
        with pytest.raises(ConfigurationError):
            suite._search_callables("data_2k", ("Nope",))


class TestFigureTables:
    def test_fig04_rows(self, suite):
        table = suite.fig04_datasets()
        assert [row[0] for row in table.rows] == [
            "data_2k", "data_350k", "data_1.2m", "data_3m"
        ]

    def test_fig05_shape(self, suite):
        table = suite.fig05_time_small(ks=(2, 3))
        assert table.headers == ["method", "k=2", "k=3"]
        assert len(table.rows) == 5

    def test_fig06_omits_matrix(self, suite):
        table = suite.fig06_time_large(ks=(2,))
        methods = {row[0] for row in table.rows}
        assert "BaseMatrix" not in methods
        assert "LRW-A" in methods

    def test_fig10_precision_in_unit_interval(self, suite):
        table = suite.fig10_effectiveness_small(ks=(2,))
        for row in table.rows:
            assert 0.0 <= float(row[1]) <= 1.0

    def test_fig12_sweep_columns(self, suite):
        table = suite.fig12_repnodes_precision(rep_fractions=(0.1, 0.2), k=2)
        assert table.headers == ["method", "mu=0.1", "mu=0.2"]

    def test_fig13_matrix_marked_infeasible_at_scale(self, suite):
        table = suite.fig13_space(k=2)
        matrix_row = next(r for r in table.rows if r[0] == "BaseMatrix")
        assert "n/a" in matrix_row[2]

    def test_fig15_tables(self, suite):
        rcl_table, lrw_table = suite.fig15_index_construction(
            sample_rates=(0.05,), r_values=(3,), topics=1
        )
        assert len(rcl_table.rows) == 1
        assert len(lrw_table.rows) == 1

    def test_fig16_rows_per_length(self, suite):
        table = suite.fig16_construction_vs_length(lengths=(2, 3), topics=1)
        assert [row[0] for row in table.rows] == ["2", "3"]
