"""Unit tests for the CLI (S32)."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_requires_user_and_query(self, capsys):
        # --user/--query are optional at parse time (a --batch workload
        # supplies them per request) but demanded at run time.
        code = main(["search", "--dataset", "data_2k", "--size", "200",
                     "--query", "phone", "--seed", "3"])
        assert code == 2
        err = capsys.readouterr().err
        assert "--user and --query" in err

    def test_experiment_validates_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--figure", "99"])

    def test_figures_registry_covers_core_figures(self):
        assert {"5", "6", "10", "11", "15", "16"} <= set(FIGURES)


class TestCommands:
    def test_datasets_command(self, capsys):
        code = main(["datasets", "--size", "200", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "data_2k" in out and "data_3m" in out

    def test_search_command(self, capsys):
        code = main([
            "search", "--dataset", "data_2k", "--size", "200",
            "--user", "3", "--query", "phone", "--k", "3", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Top-3" in out

    def test_search_no_match_returns_error(self, capsys):
        code = main([
            "search", "--dataset", "data_2k", "--size", "200",
            "--user", "3", "--query", "zzzqqq", "--seed", "3",
        ])
        assert code == 1

    def test_diagnose_command(self, capsys):
        code = main([
            "diagnose", "--dataset", "data_2k", "--size", "200",
            "--query", "phone", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Topic summary diagnostics" in out

    def test_diagnose_no_match(self, capsys):
        code = main([
            "diagnose", "--dataset", "data_2k", "--size", "200",
            "--query", "zzzqqq", "--seed", "3",
        ])
        assert code == 1

    def test_experiment_fig4(self, capsys):
        code = main([
            "experiment", "--figure", "4", "--size", "200", "--seed", "3",
        ])
        assert code == 0
        assert "Fig. 4" in capsys.readouterr().out

    def test_build_index_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["build-index"])

    def test_build_index_then_search_reuses_it(self, capsys, tmp_path):
        artifact = tmp_path / "prop.npz"
        code = main([
            "build-index", "--dataset", "data_2k", "--size", "200",
            "--seed", "3", "--output", str(artifact),
        ])
        assert code == 0
        assert artifact.exists()
        assert "built 200 entries" in capsys.readouterr().out
        code = main([
            "search", "--dataset", "data_2k", "--size", "200",
            "--user", "3", "--query", "phone", "--k", "3", "--seed", "3",
            "--index", str(artifact),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "using prebuilt propagation index" in out
        assert "Top-3" in out

    def test_search_batch_workload(self, capsys, tmp_path):
        workload = tmp_path / "workload.jsonl"
        workload.write_text(
            '{"user": 3, "query": "phone", "k": 3}\n'
            '{"user": 5, "query": "music"}\n'
            '{"user": 3, "query": "phone", "k": 3}\n'
            '{"user": 4, "query": "zzzqqq"}\n'
        )
        code = main([
            "search", "--dataset", "data_2k", "--size", "200",
            "--batch", str(workload), "--k", "2", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "served 4 requests" in out
        assert "QPS, 1 empty" in out
        assert "no matching topics" in out
        assert "cache propagation-entries:" in out
        assert "cache summary-arrays:" in out

    def test_search_batch_metrics_out(self, capsys, tmp_path):
        import json

        from repro.obs import validate_metrics_json

        workload = tmp_path / "workload.jsonl"
        workload.write_text(
            '{"user": 3, "query": "phone", "k": 3}\n'
            '{"user": 5, "query": "music"}\n'
        )
        metrics_path = tmp_path / "metrics.json"
        code = main([
            "search", "--dataset", "data_2k", "--size", "200",
            "--batch", str(workload), "--k", "2", "--seed", "3",
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        assert "metrics written to" in capsys.readouterr().out
        payload = json.loads(metrics_path.read_text(encoding="utf-8"))
        validate_metrics_json(payload)
        assert payload["counters"]["search.requests"] == 2
        latency = payload["histograms"]["search.latency_seconds"]
        assert latency["count"] == 2
        assert latency["p50"] is not None and latency["p99"] is not None
        assert "cache.propagation-entries.hit_ratio" in payload["gauges"]
        prom = metrics_path.with_suffix(".prom").read_text(encoding="utf-8")
        assert "# TYPE repro_search_latency_seconds histogram" in prom

    def test_build_index_metrics_out(self, capsys, tmp_path):
        import json

        from repro.obs import validate_metrics_json

        metrics_path = tmp_path / "build-metrics.json"
        code = main([
            "build-index", "--dataset", "data_2k", "--size", "200",
            "--seed", "3", "--output", str(tmp_path / "prop.npz"),
            "--metrics-out", str(metrics_path),
        ])
        assert code == 0
        payload = json.loads(metrics_path.read_text(encoding="utf-8"))
        validate_metrics_json(payload)
        assert payload["counters"]["propagation.entries_built"] == 200
        assert (
            "phase.propagation.build_all.seconds" in payload["histograms"]
        )
        assert payload["gauges"]["propagation.entries_cached"] == 200

    def test_stats_command_json(self, capsys):
        import json

        from repro.obs import validate_metrics_json

        code = main([
            "stats", "--dataset", "data_2k", "--size", "200",
            "--queries", "2", "--users", "2", "--seed", "3",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        validate_metrics_json(payload)
        assert payload["counters"]["search.requests"] > 0
        assert "search.latency_seconds" in payload["histograms"]

    def test_stats_command_table(self, capsys):
        code = main([
            "stats", "--dataset", "data_2k", "--size", "200",
            "--queries", "2", "--users", "2", "--seed", "3",
            "--format", "table",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "counters & gauges" in out
        assert "search.latency_seconds" in out

    def test_stats_command_prom(self, capsys):
        code = main([
            "stats", "--dataset", "data_2k", "--size", "200",
            "--queries", "2", "--users", "2", "--seed", "3",
            "--format", "prom",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_search_requests counter" in out

    def test_search_batch_bad_record_exits_2(self, capsys, tmp_path):
        workload = tmp_path / "workload.jsonl"
        workload.write_text('{"query": "phone"}\n')
        code = main([
            "search", "--dataset", "data_2k", "--size", "200",
            "--batch", str(workload), "--seed", "3",
        ])
        assert code == 2
        assert "bad workload record" in capsys.readouterr().err

    def test_search_batch_missing_file_exits_2(self, capsys, tmp_path):
        code = main([
            "search", "--dataset", "data_2k", "--size", "200",
            "--batch", str(tmp_path / "nope.jsonl"), "--seed", "3",
        ])
        assert code == 2
        assert "cannot read workload" in capsys.readouterr().err

    def test_search_batch_empty_workload_exits_2(self, capsys, tmp_path):
        workload = tmp_path / "workload.jsonl"
        workload.write_text("\n\n")
        code = main([
            "search", "--dataset", "data_2k", "--size", "200",
            "--batch", str(workload), "--seed", "3",
        ])
        assert code == 2
        assert "contains no requests" in capsys.readouterr().err

    def test_build_index_removes_checkpoint_on_success(self, capsys, tmp_path):
        artifact = tmp_path / "prop.npz"
        checkpoint = tmp_path / "prop.ckpt.npz"
        code = main([
            "build-index", "--dataset", "data_2k", "--size", "120",
            "--seed", "3", "--output", str(artifact),
            "--checkpoint", str(checkpoint), "--checkpoint-every", "40",
        ])
        assert code == 0
        assert artifact.exists()
        assert not checkpoint.exists()  # redundant once output is published

    def test_build_index_resume_from_checkpoint(self, capsys, tmp_path):
        from repro.core import PropagationIndex, save_propagation_index
        from repro.datasets import data_2k

        bundle = data_2k(n_nodes=120, seed=3, with_corpus=False)
        partial = PropagationIndex(bundle.graph, 0.002, max_branches=200_000)
        for node in range(50):
            partial.entry(node)
        checkpoint = tmp_path / "prop.ckpt.npz"
        save_propagation_index(partial, checkpoint)

        artifact = tmp_path / "prop.npz"
        code = main([
            "build-index", "--dataset", "data_2k", "--size", "120",
            "--seed", "3", "--output", str(artifact),
            "--checkpoint", str(checkpoint), "--resume",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "resumed 50 entries" in out
        assert "built 70 entries" in out


class TestErrorHandling:
    """ReproError -> one-line stderr message + exit 2, never a traceback."""

    def test_unknown_dataset_exits_2(self, capsys):
        code = main([
            "search", "--dataset", "no_such_data", "--user", "0",
            "--query", "phone",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("pit-search: error: ")
        assert "unknown dataset 'no_such_data'" in err
        assert "Traceback" not in err

    def test_unknown_dataset_build_index_exits_2(self, capsys, tmp_path):
        code = main([
            "build-index", "--dataset", "nope",
            "--output", str(tmp_path / "prop.npz"),
        ])
        assert code == 2
        assert "unknown dataset" in capsys.readouterr().err

    def test_missing_index_artifact_exits_2(self, capsys, tmp_path):
        code = main([
            "search", "--dataset", "data_2k", "--size", "200",
            "--user", "3", "--query", "phone", "--seed", "3",
            "--index", str(tmp_path / "nope.npz"),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "pit-search: error:" in err and "not found" in err

    def test_corrupted_index_artifact_exits_2(self, capsys, tmp_path):
        artifact = tmp_path / "prop.npz"
        code = main([
            "build-index", "--dataset", "data_2k", "--size", "120",
            "--seed", "3", "--output", str(artifact),
        ])
        assert code == 0
        capsys.readouterr()
        raw = bytearray(artifact.read_bytes())
        raw[len(raw) // 2] ^= 0x10  # flip one bit mid-file
        artifact.write_bytes(bytes(raw))
        code = main([
            "search", "--dataset", "data_2k", "--size", "120",
            "--user", "3", "--query", "phone", "--seed", "3",
            "--index", str(artifact),
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "pit-search: error:" in err
        assert str(artifact) in err


class TestSignalContract:
    """SIGINT and SIGTERM share one cleanup path and exit 128 + signum."""

    def test_keyboard_interrupt_exits_130(self, capsys, monkeypatch):
        import repro.cli as cli

        def interrupt(args):
            raise KeyboardInterrupt

        monkeypatch.setattr(cli, "_run_datasets", interrupt)
        code = main(["datasets"])
        assert code == 130
        err = capsys.readouterr().err
        assert "interrupted" in err

    def test_sigterm_exits_143_through_same_path(self, capsys, monkeypatch):
        import os
        import signal
        import time

        import repro.cli as cli

        def wait_for_term(args):
            os.kill(os.getpid(), signal.SIGTERM)
            time.sleep(10)  # the handler interrupts this sleep
            return 0  # pragma: no cover - must not be reached

        monkeypatch.setattr(cli, "_run_datasets", wait_for_term)
        code = main(["datasets"])
        assert code == 143
        err = capsys.readouterr().err
        assert "interrupted" in err

    def test_sigterm_handler_restored_after_main(self, monkeypatch):
        import signal

        import repro.cli as cli

        monkeypatch.setattr(cli, "_run_datasets", lambda args: 0)
        before = signal.getsignal(signal.SIGTERM)
        assert main(["datasets"]) == 0
        assert signal.getsignal(signal.SIGTERM) is before


class TestServeParser:
    def test_serve_requires_summaries(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(
            ["serve", "--summaries", "/tmp/s.json"]
        )
        assert args.port == 8080
        assert args.max_queue == 64
        assert args.max_batch == 8
        assert args.default_deadline_ms == 5000
        assert args.drain_seconds == 10.0

    def test_serve_index_and_index_dir_exclusive(self, capsys):
        code = main([
            "serve", "--summaries", "/tmp/s.json",
            "--index", "/tmp/a.npz", "--index-dir", "/tmp/b",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "mutually exclusive" in err
