"""Unit tests for the CLI (S32)."""

import pytest

from repro.cli import FIGURES, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_search_requires_user_and_query(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["search", "--query", "phone"])

    def test_experiment_validates_figure(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "--figure", "99"])

    def test_figures_registry_covers_core_figures(self):
        assert {"5", "6", "10", "11", "15", "16"} <= set(FIGURES)


class TestCommands:
    def test_datasets_command(self, capsys):
        code = main(["datasets", "--size", "200", "--seed", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "data_2k" in out and "data_3m" in out

    def test_search_command(self, capsys):
        code = main([
            "search", "--dataset", "data_2k", "--size", "200",
            "--user", "3", "--query", "phone", "--k", "3", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Top-3" in out

    def test_search_no_match_returns_error(self, capsys):
        code = main([
            "search", "--dataset", "data_2k", "--size", "200",
            "--user", "3", "--query", "zzzqqq", "--seed", "3",
        ])
        assert code == 1

    def test_diagnose_command(self, capsys):
        code = main([
            "diagnose", "--dataset", "data_2k", "--size", "200",
            "--query", "phone", "--seed", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Topic summary diagnostics" in out

    def test_diagnose_no_match(self, capsys):
        code = main([
            "diagnose", "--dataset", "data_2k", "--size", "200",
            "--query", "zzzqqq", "--seed", "3",
        ])
        assert code == 1

    def test_experiment_fig4(self, capsys):
        code = main([
            "experiment", "--figure", "4", "--size", "200", "--seed", "3",
        ])
        assert code == 0
        assert "Fig. 4" in capsys.readouterr().out

    def test_build_index_requires_output(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["build-index"])

    def test_build_index_then_search_reuses_it(self, capsys, tmp_path):
        artifact = tmp_path / "prop.npz"
        code = main([
            "build-index", "--dataset", "data_2k", "--size", "200",
            "--seed", "3", "--output", str(artifact),
        ])
        assert code == 0
        assert artifact.exists()
        assert "built 200 entries" in capsys.readouterr().out
        code = main([
            "search", "--dataset", "data_2k", "--size", "200",
            "--user", "3", "--query", "phone", "--k", "3", "--seed", "3",
            "--index", str(artifact),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "using prebuilt propagation index" in out
        assert "Top-3" in out
