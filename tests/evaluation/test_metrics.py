"""Unit tests for effectiveness metrics."""

import pytest

from repro.core.search import SearchResult
from repro.evaluation import (
    kendall_tau,
    mean_precision,
    precision_at_k,
    top_item_reciprocal_rank,
)
from repro.exceptions import ConfigurationError


def results(*topic_ids):
    return [
        SearchResult(topic_id=t, label=str(t), influence=1.0 / (i + 1))
        for i, t in enumerate(topic_ids)
    ]


class TestPrecisionAtK:
    def test_full_overlap(self):
        assert precision_at_k([1, 2, 3], [3, 2, 1], 3) == 1.0

    def test_partial_overlap(self):
        assert precision_at_k([1, 2, 3, 4], [1, 2, 9, 8], 4) == 0.5

    def test_no_overlap(self):
        assert precision_at_k([1, 2], [3, 4], 2) == 0.0

    def test_accepts_search_results(self):
        assert precision_at_k(results(1, 2), results(2, 1), 2) == 1.0

    def test_truncates_to_k(self):
        assert precision_at_k([1, 2, 3], [1, 9, 8], 1) == 1.0

    def test_short_reference_shrinks_denominator(self):
        # Reference only has 2 items; matching both = precision 1.
        assert precision_at_k([1, 2, 3], [1, 2], 3) == 1.0

    def test_empty_reference_rejected(self):
        with pytest.raises(ConfigurationError):
            precision_at_k([1], [], 1)

    def test_k_validated(self):
        with pytest.raises(ConfigurationError):
            precision_at_k([1], [1], 0)


class TestMeanPrecision:
    def test_averages(self):
        pairs = [([1, 2], [1, 2]), ([1, 2], [3, 4])]
        assert mean_precision(pairs, 2) == 0.5

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            mean_precision([], 2)


class TestKendallTau:
    def test_identical_rankings(self):
        assert kendall_tau([1, 2, 3], [1, 2, 3]) == 1.0

    def test_reversed_rankings(self):
        assert kendall_tau([1, 2, 3], [3, 2, 1]) == -1.0

    def test_too_few_common_items(self):
        assert kendall_tau([1], [1]) == 1.0
        assert kendall_tau([1, 2], [3, 4]) == 1.0

    def test_partial_common(self):
        # Common items {1, 2} in the same relative order.
        assert kendall_tau([1, 5, 2], [1, 2, 9]) == 1.0


class TestReciprocalRank:
    def test_top_hit(self):
        assert top_item_reciprocal_rank([7, 8], [7, 9]) == 1.0

    def test_second_position(self):
        assert top_item_reciprocal_rank([8, 7], [7, 9]) == 0.5

    def test_missing(self):
        assert top_item_reciprocal_rank([8, 9], [7]) == 0.0

    def test_empty_reference_rejected(self):
        with pytest.raises(ConfigurationError):
            top_item_reciprocal_rank([1], [])
