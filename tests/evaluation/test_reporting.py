"""Unit tests for table rendering and formatters."""

import pytest

from repro.evaluation import Table, format_bytes, format_seconds


class TestFormatSeconds:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (0.0000005, "0us"),
            (0.0005, "500us"),
            (0.0213, "21.3ms"),
            (1.5, "1.50s"),
            (150.0, "2.5min"),
        ],
    )
    def test_values(self, seconds, expected):
        assert format_seconds(seconds) == expected


class TestFormatBytes:
    @pytest.mark.parametrize(
        "n,expected",
        [
            (512, "512B"),
            (2048, "2.0KB"),
            (3 * 1024 * 1024, "3.0MB"),
            (5 * 1024**3, "5.0GB"),
        ],
    )
    def test_values(self, n, expected):
        assert format_bytes(n) == expected


class TestTable:
    def test_render_contains_cells(self):
        table = Table("demo", ["a", "b"])
        table.add_row([1, "x"])
        text = table.render()
        assert "demo" in text and "1" in text and "x" in text

    def test_row_width_checked(self):
        table = Table("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_markdown_shape(self):
        table = Table("demo", ["a", "b"])
        table.add_row([1, 2])
        md = table.render_markdown()
        assert "| a | b |" in md
        assert "| 1 | 2 |" in md

    def test_column_accessor(self):
        table = Table("demo", ["a", "b"])
        table.add_row([1, 2])
        table.add_row([3, 4])
        assert table.column("b") == ["2", "4"]

    def test_str_is_render(self):
        table = Table("demo", ["a"])
        assert str(table) == table.render()
