"""Unit tests for timing and memory measurement helpers."""

import time

import numpy as np
import pytest

from repro.evaluation import (
    Stopwatch,
    measure_peak_allocation,
    object_bytes,
    time_workload,
)


class TestStopwatch:
    def test_measures_elapsed(self):
        with Stopwatch() as sw:
            time.sleep(0.01)
        assert sw.seconds >= 0.009


class TestTimeWorkload:
    def test_summary_fields(self):
        calls = [(1,), (2,), (3,)]
        summary = time_workload(lambda x: x * 2, calls)
        assert summary.calls == 3
        assert summary.total >= summary.maximum >= summary.mean >= summary.minimum
        assert summary.mean_ms == pytest.approx(summary.mean * 1000)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            time_workload(lambda: None, [])


class TestPeakAllocation:
    def test_returns_result_and_peak(self):
        result, peak = measure_peak_allocation(lambda: [0] * 100_000)
        assert len(result) == 100_000
        assert peak > 100_000  # at least the list payload

    def test_small_allocations_small_peak(self):
        _, small = measure_peak_allocation(lambda: [0] * 10)
        _, big = measure_peak_allocation(lambda: [0] * 1_000_000)
        assert big > small


class TestObjectBytes:
    def test_numpy_payload_counted(self):
        arr = np.zeros(1000, dtype=np.float64)
        assert object_bytes(arr) >= 8000

    def test_dict_recursion(self):
        shallow = object_bytes({})
        deep = object_bytes({i: np.zeros(100) for i in range(10)})
        assert deep > shallow + 10 * 800

    def test_shared_objects_counted_once(self):
        arr = np.zeros(1000)
        assert object_bytes([arr, arr]) < 2 * object_bytes(arr)
