"""Trace wire format: shared emitter determinism and typed refusals.

Covers the two trace-level satellites of the scenario suite:

* the shared canonical JSONL emitter (``repro.datasets.replay_jsonl``)
  produces byte-identical output for identical seeds, so scenario
  traces, ``bench_serve`` replay files, and ``search --batch`` inputs
  all share one deterministic serialization;
* trace edge cases refuse with typed errors - empty traces, malformed
  records, and unknown users never crash a replay mid-flight.
"""

from __future__ import annotations

import json

import pytest

from repro.datasets import (
    data_2k,
    generate_workload,
    replay_jsonl,
    replay_requests,
    write_replay_jsonl,
)
from repro.exceptions import ConfigurationError, NodeNotFoundError
from repro.scenarios import (
    build_phone_network,
    load_trace,
    timestamped,
    trace_bursts,
    trace_digest,
    validate_trace,
    write_trace,
)


@pytest.fixture(scope="module")
def bundle():
    return data_2k(seed=5, n_nodes=120, with_corpus=False)


def _records(bundle, seed: int):
    workload = generate_workload(bundle, n_queries=4, n_users=5, seed=seed)
    return replay_requests(
        workload, n_requests=30, k=5, skew=0.8, seed=seed + 1
    )


class TestSharedEmitter:
    """Satellite: one canonical JSONL emitter, byte-identical per seed."""

    def test_same_seed_same_bytes(self, bundle, tmp_path):
        first = write_replay_jsonl(
            _records(bundle, 3), tmp_path / "a.jsonl"
        ).read_bytes()
        second = write_replay_jsonl(
            _records(bundle, 3), tmp_path / "b.jsonl"
        ).read_bytes()
        assert first == second

    def test_different_seed_different_bytes(self, bundle):
        assert replay_jsonl(_records(bundle, 3)) != replay_jsonl(
            _records(bundle, 4)
        )

    def test_canonical_form(self):
        text = replay_jsonl(
            [{"user": 1, "query": "phone", "k": 5, "at_ms": 0}]
        )
        # Sorted keys, compact separators, trailing newline: the exact
        # bytes the trace digest is defined over.
        assert text == '{"at_ms":0,"k":5,"query":"phone","user":1}\n'

    def test_emitted_lines_are_batch_compatible(self, bundle):
        for line in replay_jsonl(_records(bundle, 7)).splitlines():
            record = json.loads(line)
            assert isinstance(record["user"], int)
            assert isinstance(record["query"], str)
            assert record["k"] >= 1

    def test_write_trace_uses_shared_emitter(self, bundle, tmp_path):
        records = timestamped(_records(bundle, 9), burst=3)
        path = write_trace(records, tmp_path / "trace.jsonl")
        assert path.read_text(encoding="utf-8") == replay_jsonl(records)
        assert trace_digest(records) == trace_digest(
            load_trace(path, graph=bundle.graph)
        )


class TestTimestamping:
    def test_bursts_share_a_timestamp(self):
        records = [{"user": i, "query": "q", "k": 1} for i in range(7)]
        stamped = timestamped(records, burst=3, step_ms=20, start_ms=5)
        assert [r["at_ms"] for r in stamped] == [5, 5, 5, 25, 25, 25, 45]
        bursts = trace_bursts(validate_trace(stamped))
        assert [len(b) for b in bursts] == [3, 3, 1]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            timestamped([], burst=0)
        with pytest.raises(ConfigurationError):
            timestamped([], step_ms=0)


class TestEdgeCases:
    """Satellite: empty, duplicate-timestamp, out-of-order, unknown-user."""

    def test_empty_trace_refused(self):
        with pytest.raises(ConfigurationError, match="empty"):
            validate_trace([])

    def test_empty_file_refused(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("\n\n", encoding="utf-8")
        with pytest.raises(ConfigurationError, match="empty"):
            load_trace(path)

    def test_duplicate_timestamps_are_a_burst_not_an_error(self):
        records = validate_trace(
            [
                {"user": 1, "query": "a", "k": 1, "at_ms": 10},
                {"user": 2, "query": "b", "k": 1, "at_ms": 10},
            ]
        )
        assert [len(b) for b in trace_bursts(records)] == [2]

    def test_out_of_order_arrivals_stably_sorted(self):
        records = validate_trace(
            [
                {"user": 1, "query": "late", "k": 1, "at_ms": 30},
                {"user": 2, "query": "first", "k": 1, "at_ms": 0},
                {"user": 3, "query": "also-late", "k": 1, "at_ms": 30},
            ]
        )
        assert [r["at_ms"] for r in records] == [0, 30, 30]
        # Stable: relative order within the at_ms=30 burst is preserved.
        assert [r["query"] for r in records[1:]] == ["late", "also-late"]

    def test_unknown_user_refused_with_typed_error(self):
        graph, _ = build_phone_network()
        with pytest.raises(NodeNotFoundError):
            validate_trace(
                [{"user": 99, "query": "phone", "k": 3}], graph=graph
            )

    def test_unknown_user_without_graph_passes_validation(self):
        records = validate_trace([{"user": 99, "query": "phone", "k": 3}])
        assert records[0]["user"] == 99

    @pytest.mark.parametrize(
        "record",
        [
            {"query": "phone", "k": 3},  # no user
            {"user": -1, "query": "phone"},  # negative user
            {"user": True, "query": "phone"},  # bool is not a user id
            {"user": 1},  # no query
            {"user": 1, "query": "   "},  # blank query
            {"user": 1, "query": "phone", "k": 0},  # bad k
            {"user": 1, "query": "phone", "k": True},  # bool k
            {"user": 1, "query": "phone", "at_ms": -5},  # negative time
            "not a dict",
        ],
    )
    def test_malformed_record_refused(self, record):
        with pytest.raises(ConfigurationError, match="record 2"):
            validate_trace(
                [{"user": 1, "query": "ok", "k": 1}, record]
            )

    def test_invalid_json_line_carries_line_number(self, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text(
            '{"user": 1, "query": "ok", "k": 1}\n{not json\n',
            encoding="utf-8",
        )
        with pytest.raises(ConfigurationError, match="line 2"):
            load_trace(path)

    def test_defaults_are_normalized(self):
        records = validate_trace([{"user": 4, "query": "phone"}])
        assert records[0]["k"] == 10
        assert records[0]["at_ms"] == 0
