"""The scenario catalogue: registry, determinism, and per-scenario shape."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios import (
    TOPICS,
    build_phone_network,
    campaign_audience,
    campaign_topic,
    get_scenario,
    list_scenarios,
    trace_bursts,
)

EXPECTED_NAMES = {
    "quickstart",
    "targeted-advertising",
    "phone-recommendation",
    "evolving-network",
    "flash-crowd",
    "topic-churn",
}


class TestRegistry:
    def test_catalogue_contents(self):
        names = {s.name for s in list_scenarios()}
        assert names == EXPECTED_NAMES

    def test_unknown_scenario_refused(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            get_scenario("no-such-scenario")

    def test_unknown_profile_refused(self):
        with pytest.raises(ConfigurationError, match="no profile"):
            get_scenario("quickstart").params("gigantic")

    def test_every_scenario_has_smoke_and_default_profiles(self):
        for scenario in list_scenarios():
            assert "default" in scenario.profiles, scenario.name
            assert "smoke" in scenario.profiles, scenario.name

    def test_exactly_two_adversarial_scenarios(self):
        adversarial = {
            s.name for s in list_scenarios() if s.adversarial
        }
        assert adversarial == {"flash-crowd", "topic-churn"}

    def test_metadata_is_complete(self):
        for scenario in list_scenarios():
            assert scenario.title, scenario.name
            assert scenario.description, scenario.name
            assert 0 < scenario.min_summarized_precision <= 1.0


class TestDeterminism:
    """Same (scenario, seed, profile) → byte-identical trace."""

    @pytest.mark.parametrize("name", sorted(EXPECTED_NAMES))
    def test_generate_is_deterministic_per_seed(self, name):
        scenario = get_scenario(name)
        a = scenario.generate(profile="smoke")
        b = scenario.generate(profile="smoke")
        assert a.trace_digest() == b.trace_digest()
        assert a.records == b.records
        assert a.events == b.events
        assert a.meta == b.meta

    def test_different_seed_different_trace(self):
        scenario = get_scenario("quickstart")
        a = scenario.generate(seed=7, profile="smoke")
        b = scenario.generate(seed=8, profile="smoke")
        assert a.trace_digest() != b.trace_digest()

    def test_records_carry_timestamps_and_validate(self):
        data = get_scenario("quickstart").generate(profile="smoke")
        assert all("at_ms" in r for r in data.records)
        at = [r["at_ms"] for r in data.records]
        assert at == sorted(at)

    def test_written_trace_round_trips(self, tmp_path):
        from repro.scenarios import load_trace, trace_digest

        data = get_scenario("targeted-advertising").generate(
            profile="smoke"
        )
        path = data.write_trace(tmp_path / "trace.jsonl")
        loaded = load_trace(path, graph=data.bundle.graph)
        assert trace_digest(loaded) == data.trace_digest()


class TestPhoneNetwork:
    def test_figure_1_shape(self):
        graph, topic_index = build_phone_network()
        assert graph.n_nodes == 16
        assert topic_index.n_topics == len(TOPICS)
        for label, users in TOPICS.items():
            topic = next(
                t
                for t in range(topic_index.n_topics)
                if topic_index.label(t) == label
            )
            assert sorted(topic_index.topic_nodes(topic)) == sorted(users)

    def test_phone_recommendation_oracle_is_the_real_network(self):
        scenario = get_scenario("phone-recommendation")
        instance = scenario.oracle_instance(scenario.default_seed)
        assert instance.graph.n_nodes == 16
        labels = {
            instance.topic_index.label(t)
            for t in range(instance.topic_index.n_topics)
        }
        assert labels == set(TOPICS)


class TestCampaignHelpers:
    def test_campaign_audience_is_influence_ranked(self):
        scenario = get_scenario("targeted-advertising")
        bundle = scenario.dataset(21, scenario.params("smoke"))
        topic = campaign_topic(bundle.topic_index)
        audience = campaign_audience(bundle, topic, size=10)
        assert len(audience) == 10
        assert len(set(audience)) == 10
        for user in audience:
            bundle.graph.validate_node(user)


class TestAdversarialShapes:
    def test_flash_crowd_has_a_spike_burst(self):
        scenario = get_scenario("flash-crowd")
        data = scenario.generate(profile="smoke")
        sizes = [len(b) for b in trace_bursts(data.records)]
        # The spike bursts dwarf the trickle traffic around them.
        assert max(sizes) >= 12
        assert max(sizes) >= 4 * min(sizes)
        # Small admission queue so the spike actually overruns it.
        assert scenario.daemon_queue < max(sizes) * 2

    def test_flash_crowd_spike_is_hub_dominated(self):
        data = get_scenario("flash-crowd").generate(profile="smoke")
        bursts = trace_bursts(data.records)
        spike = max(bursts, key=len)
        # The spike hammers one (user, query) pair - the coalescer's
        # worst case (duplicates in flight) and admission's (all at once).
        keys = {(r["user"], r["query"], r["k"]) for r in spike}
        assert len(keys) == 1

    def test_topic_churn_schedules_stale_reloads(self):
        scenario = get_scenario("topic-churn")
        assert scenario.wants_precompute
        data = scenario.generate(profile="smoke")
        reloads = [e for e in data.events if e["kind"] == "reload"]
        assert len(reloads) == 3
        assert all(e.get("stale_precompute") for e in reloads)
        afters = [e["after"] for e in reloads]
        assert afters == sorted(afters)
        assert all(0 < a < len(data.records) for a in afters)

    def test_evolving_network_mixes_event_kinds(self):
        data = get_scenario("evolving-network").generate(profile="smoke")
        kinds = [e["kind"] for e in data.events]
        assert "invalidate_users" in kinds
        assert "reload" in kinds


class TestEventValidation:
    def test_bad_event_offset_refused(self):
        scenario = get_scenario("quickstart")

        class Broken(type(scenario)):
            def build_events(self, bundle, records, seed, params):
                return [{"after": len(records) + 1, "kind": "reload"}]

        with pytest.raises(ConfigurationError, match="after"):
            Broken().generate(profile="smoke")
