"""End-to-end scenario replays: engine mode, live daemon, and the CLI.

These are the acceptance-path tests: a scenario generates, replays
through the real serving stack (ServingEngine in-process; PITServer on a
loopback socket for the adversarial pair), grades itself against the
brute-force oracle, and produces a deterministic report.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.exceptions import ConfigurationError
from repro.scenarios import (
    REPORT_SCHEMA,
    deterministic_view,
    run_scenario,
)


@pytest.fixture(scope="module")
def quickstart_report():
    return run_scenario("quickstart", profile="smoke", mode="engine")


class TestEngineReplay:
    def test_report_shape_and_gates(self, quickstart_report):
        report = quickstart_report
        assert report["schema"] == REPORT_SCHEMA
        assert report["mode"] == "engine"
        assert report["ok"] is True
        assert all(report["gates"].values()), report["gates"]
        assert report["quality"]["exact"]["precision"] == 1.0
        assert report["quality"]["exact"]["max_influence_error"] <= 1e-9
        replay = report["replay"]
        assert len(replay["results_digest"]) == 64
        assert replay["answer_cache"]["answer_hits"] > 0
        assert report["daemon"] is None

    def test_hit_trajectory_is_windowed(self, quickstart_report):
        windows = quickstart_report["replay"]["windows"]
        assert len(windows) > 1
        for window in windows:
            assert 0.0 <= window["hit_ratio"] <= 1.0
        # A Zipf-skewed trace warms up: the tail windows hit more than
        # the first (cold) one.
        assert windows[-1]["hit_ratio"] >= windows[0]["hit_ratio"]

    def test_deterministic_view_is_reproducible(self, quickstart_report):
        again = run_scenario("quickstart", profile="smoke", mode="engine")
        assert json.dumps(
            deterministic_view(quickstart_report), sort_keys=True
        ) == json.dumps(deterministic_view(again), sort_keys=True)

    def test_different_seed_changes_the_view(self, quickstart_report):
        other = run_scenario(
            "quickstart", seed=8, profile="smoke", mode="engine"
        )
        assert (
            other["trace"]["digest"]
            != quickstart_report["trace"]["digest"]
        )
        assert (
            other["replay"]["results_digest"]
            != quickstart_report["replay"]["results_digest"]
        )

    def test_unknown_mode_refused(self):
        with pytest.raises(ConfigurationError, match="mode"):
            run_scenario("quickstart", profile="smoke", mode="warp")


class TestEventfulReplays:
    def test_evolving_network_applies_both_event_kinds(self):
        report = run_scenario(
            "evolving-network", profile="smoke", mode="engine"
        )
        assert report["ok"] is True
        events = report["replay"]["events"]
        kinds = {e["kind"] for e in events}
        assert kinds == {"invalidate_users", "reload"}
        invalidation = next(
            e for e in events if e["kind"] == "invalidate_users"
        )
        assert invalidation["invalidated"] > 0
        reload_event = next(e for e in events if e["kind"] == "reload")
        assert reload_event["applied"] is True
        # One engine swap happened mid-replay.
        assert report["replay"]["generations"] == 1

    def test_topic_churn_refuses_stale_precompute(self):
        report = run_scenario(
            "topic-churn", profile="smoke", mode="engine"
        )
        assert report["ok"] is True
        assert report["replay"]["warm_answers"] > 0
        reloads = [
            e
            for e in report["replay"]["events"]
            if e["kind"] == "reload"
        ]
        assert len(reloads) == 3
        assert all(e["stale_precompute_refused"] for e in reloads)
        assert all(e["applied"] for e in reloads)
        # Three engine swaps, one per churn event.
        assert report["replay"]["generations"] == 3


@pytest.mark.slow
class TestDaemonReplay:
    """The adversarial pair against a real PITServer on a loopback port."""

    def test_flash_crowd_sheds_without_5xx(self):
        report = run_scenario(
            "flash-crowd", profile="smoke", mode="daemon"
        )
        assert report["ok"] is True, report["gates"]
        daemon = report["daemon"]
        assert daemon["server_errors"] == 0
        assert daemon["statuses"].get(200, daemon["statuses"].get("200", 0)) > 0
        # Every request was answered or explicitly shed/timed out.
        total = sum(daemon["statuses"].values())
        assert total == report["trace"]["n_requests"]

    def test_topic_churn_daemon_survives_reload_storm(self):
        report = run_scenario(
            "topic-churn", profile="smoke", mode="daemon"
        )
        assert report["ok"] is True, report["gates"]
        daemon = report["daemon"]
        assert daemon["server_errors"] == 0
        reloads = [
            e for e in daemon["events"] if e["kind"] == "reload"
        ]
        assert len(reloads) == 3
        assert all(e["stale_status"] == 400 for e in reloads)
        assert all(e["applied"] for e in reloads)


class TestScenarioCLI:
    def test_list(self, capsys):
        assert main(["scenario", "list"]) == 0
        out = capsys.readouterr().out
        assert "flash-crowd" in out
        assert "topic-churn" in out
        assert "adversarial" in out

    def test_generate_writes_a_replayable_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        code = main([
            "scenario", "generate", "quickstart",
            "--profile", "smoke", "--output", str(trace),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "digest" in out
        lines = trace.read_text(encoding="utf-8").splitlines()
        assert lines
        record = json.loads(lines[0])
        assert {"user", "query", "k", "at_ms"} <= set(record)

    def test_generate_same_seed_same_digest(self, tmp_path, capsys):
        digests = []
        for name in ("a.jsonl", "b.jsonl"):
            main([
                "scenario", "generate", "quickstart",
                "--profile", "smoke", "--seed", "7",
                "--output", str(tmp_path / name),
            ])
            out = capsys.readouterr().out
            digests.append(
                next(l for l in out.splitlines() if "digest" in l)
            )
        assert digests[0] == digests[1]

    def test_run_writes_metrics(self, tmp_path, capsys):
        metrics = tmp_path / "report.json"
        code = main([
            "scenario", "run", "quickstart", "--profile", "smoke",
            "--metrics-out", str(metrics),
        ])
        assert code == 0
        report = json.loads(metrics.read_text(encoding="utf-8"))
        assert report["schema"] == REPORT_SCHEMA
        assert report["ok"] is True

    def test_unknown_scenario_exits_2(self, capsys):
        assert main(["scenario", "run", "nope"]) == 2
        assert "unknown scenario" in capsys.readouterr().err
