"""Oracle instances: brute-force gates every scenario must clear."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.graph import preferential_attachment_graph
from repro.scenarios import (
    OracleInstance,
    evaluate_exact,
    evaluate_summarized,
    get_scenario,
    identity_summaries,
    list_scenarios,
    random_oracle_instance,
)
from repro.scenarios.quality import ORACLE_THETA


class TestOracleInstance:
    def test_refuses_non_brute_forceable_graphs(self):
        small = random_oracle_instance(1, n_nodes=12)
        with pytest.raises(ConfigurationError, match="max 16"):
            OracleInstance(
                graph=preferential_attachment_graph(20, 2, seed=1),
                topic_index=small.topic_index,
                queries=small.queries,
            )

    def test_refuses_empty_queries(self):
        small = random_oracle_instance(1)
        with pytest.raises(ConfigurationError, match="query"):
            OracleInstance(
                graph=small.graph,
                topic_index=small.topic_index,
                queries=(),
            )

    def test_seeded_instances_are_reproducible(self):
        a = random_oracle_instance(9)
        b = random_oracle_instance(9)
        assert a.queries == b.queries
        assert a.graph.n_edges == b.graph.n_edges
        for t in range(a.topic_index.n_topics):
            assert list(a.topic_index.topic_nodes(t)) == list(
                b.topic_index.topic_nodes(t)
            )

    def test_identity_summaries_are_uniform(self):
        instance = random_oracle_instance(3)
        summaries = identity_summaries(instance.topic_index)
        assert len(summaries) == instance.topic_index.n_topics
        for topic_id, summary in summaries.items():
            nodes = instance.topic_index.topic_nodes(topic_id)
            for weight in summary.weights.values():
                assert weight == pytest.approx(1.0 / nodes.size)


class TestExactGate:
    """Identity summaries at θ ~ 0 must reproduce Definition 1 exactly."""

    @pytest.mark.parametrize("seed", [0, 7, 21])
    def test_exact_search_matches_enumeration(self, seed):
        report = evaluate_exact(random_oracle_instance(seed))
        assert report["precision"] == 1.0
        assert report["max_influence_error"] <= 1e-9
        assert report["n_checked"] > 0

    def test_oracle_theta_is_effectively_zero(self):
        assert ORACLE_THETA < 1e-100


class TestSummarizedGate:
    def test_summarized_precision_is_bounded(self):
        report = evaluate_summarized(
            random_oracle_instance(5), summarizer="rcl", rep_fraction=0.5
        )
        assert 0.0 <= report["precision"] <= 1.0
        assert report["n_checked"] > 0

    def test_full_budget_lrw_is_near_exact(self):
        # rep_fraction=1.0 keeps every node: the summary IS the topic,
        # so at oracle θ the ranking should be (nearly) perfect.
        report = evaluate_summarized(
            random_oracle_instance(5), summarizer="lrw", rep_fraction=1.0
        )
        assert report["precision"] >= 0.9


class TestScenarioOracles:
    """Every catalogued scenario clears its own calibrated gates."""

    @pytest.mark.parametrize(
        "name", [s.name for s in list_scenarios()]
    )
    def test_scenario_oracle_clears_floors(self, name):
        scenario = get_scenario(name)
        instance = scenario.oracle_instance(scenario.default_seed)
        exact = evaluate_exact(instance)
        assert exact["precision"] == 1.0
        assert exact["max_influence_error"] <= 1e-9
        summarized = evaluate_summarized(
            instance,
            summarizer=scenario.summarizer,
            rep_fraction=max(scenario.rep_fraction, 0.5),
            seed=scenario.default_seed,
        )
        assert (
            summarized["precision"] >= scenario.min_summarized_precision
        )
