"""Seeded differential harness for the offline summarizers.

The vectorized RCL-A / LRW-A pipelines (bitset reachability, popcount
grouping, batched centroid election, array-native migration) must agree
*bit-exactly* with the frozen scalar reference implementations in
:mod:`repro.core._scalar_summarize` on randomly generated (but
fixed-seed) graphs and topic assignments:

* RCL-A: identical Algorithm 1 groupings, identical elected centroids,
  identical summary weight floats - in both reachability modes (exact
  bounded BFS and the walk-index audience approximation).
* LRW-A: identical representative rankings and migrated weights, under
  both absorbing semantics (``absorb_first`` on/off) and both
  reinforcement interpretations (``divrank``/``walk``).

Bit-exactness is not luck: every floating-point number either side
produces is derived from *integer* reachability counts and hop
distances (exact in float64), and the vectorized reductions replicate
the scalar tie-breaking (first-maximum argmax, unbuffered max-scatter).
Both sides share the per-topic RNG derivation, so randomized stages
consume identical streams. CI runs this module in its own
property-harness step alongside the search harness.
"""

from __future__ import annotations

import pytest

from repro._utils import coerce_rng
from repro.core._scalar_summarize import (
    ScalarLRWSummarizer,
    ScalarRCLSummarizer,
)
from repro.core.lrw import LRWSummarizer
from repro.core.rcl import RCLSummarizer
from repro.graph import preferential_attachment_graph
from repro.topics import TopicIndex
from repro.walks import WalkIndex

SEEDS = (7, 1234)

_ADJECTIVES = ("solar", "lunar", "tidal", "polar")
_NOUNS = ("phone", "camera", "drone", "tablet")


def _random_topic_index(n_nodes: int, rng, *, n_topics: int) -> TopicIndex:
    """Seeded random topic assignment: 1-3 topics per node."""
    labels = [
        f"{_ADJECTIVES[i % len(_ADJECTIVES)]} {_NOUNS[i // len(_ADJECTIVES)]}"
        for i in range(n_topics)
    ]
    assignments = {}
    for node in range(n_nodes):
        count = int(rng.integers(1, 4))
        picks = rng.choice(n_topics, size=min(count, n_topics), replace=False)
        assignments[node] = [labels[int(p)] for p in picks]
    # Every label must actually occur so n_topics is deterministic.
    for i, label in enumerate(labels):
        assignments[i % n_nodes] = list(
            set(assignments[i % n_nodes]) | {label}
        )
    return TopicIndex(n_nodes, assignments)


def _setup(seed):
    graph = preferential_attachment_graph(70, 3, seed=seed, reciprocity=0.3)
    rng = coerce_rng(seed + 1)
    topic_index = _random_topic_index(graph.n_nodes, rng, n_topics=10)
    walk_index = WalkIndex(graph, 4, 12, seed=seed + 2).build()
    return graph, topic_index, walk_index


def _assert_identical_summaries(vectorized, scalar, topic_index, context):
    for topic_id in range(topic_index.n_topics):
        got = vectorized.summarize(topic_id)
        want = scalar.summarize(topic_id)
        assert got.topic_id == want.topic_id
        # Bit-exact: same representatives AND the same weight floats.
        assert dict(got.weights) == dict(want.weights), (
            f"{context}: summary diverged for topic {topic_id}"
        )


@pytest.mark.parametrize("seed", SEEDS)
class TestRCLMatchesScalar:
    """Vectorized RCL-A is bit-exact against the frozen scalar pipeline."""

    def test_groupings_bfs_mode(self, seed):
        graph, topic_index, _ = _setup(seed)
        kwargs = dict(max_hops=3, sample_rate=0.2, rep_fraction=0.25,
                      seed=seed)
        vectorized = RCLSummarizer(graph, topic_index, **kwargs)
        scalar = ScalarRCLSummarizer(graph, topic_index, **kwargs)
        for topic_id in range(topic_index.n_topics):
            assert vectorized.cluster_topic(topic_id) == scalar.cluster_topic(
                topic_id
            ), f"grouping diverged for topic {topic_id}"

    def test_summaries_bfs_mode(self, seed):
        graph, topic_index, _ = _setup(seed)
        kwargs = dict(max_hops=3, sample_rate=0.2, rep_fraction=0.25,
                      seed=seed)
        _assert_identical_summaries(
            RCLSummarizer(graph, topic_index, **kwargs),
            ScalarRCLSummarizer(graph, topic_index, **kwargs),
            topic_index, "rcl/bfs",
        )

    def test_summaries_walk_index_mode(self, seed):
        graph, topic_index, walk_index = _setup(seed)
        kwargs = dict(max_hops=3, sample_rate=0.2, rep_fraction=0.25,
                      walk_index=walk_index, seed=seed)
        _assert_identical_summaries(
            RCLSummarizer(graph, topic_index, **kwargs),
            ScalarRCLSummarizer(graph, topic_index, **kwargs),
            topic_index, "rcl/walk-index",
        )

    def test_same_seed_is_deterministic(self, seed):
        graph, topic_index, _ = _setup(seed)
        kwargs = dict(max_hops=3, sample_rate=0.2, rep_fraction=0.25,
                      seed=seed)
        first = RCLSummarizer(graph, topic_index, **kwargs)
        second = RCLSummarizer(graph, topic_index, **kwargs)
        for topic_id in range(topic_index.n_topics):
            assert dict(first.summarize(topic_id).weights) == dict(
                second.summarize(topic_id).weights
            )

    def test_build_order_does_not_matter(self, seed):
        # Per-topic RNG derivation: summarizing topics in reverse order
        # yields identical output, the invariant parallel builds rely on.
        graph, topic_index, _ = _setup(seed)
        kwargs = dict(max_hops=3, sample_rate=0.2, rep_fraction=0.25,
                      seed=seed)
        forward = RCLSummarizer(graph, topic_index, **kwargs)
        backward = RCLSummarizer(graph, topic_index, **kwargs)
        ordered = {
            t: dict(forward.summarize(t).weights)
            for t in range(topic_index.n_topics)
        }
        reversed_ = {
            t: dict(backward.summarize(t).weights)
            for t in reversed(range(topic_index.n_topics))
        }
        assert ordered == reversed_


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("absorb_first", [True, False])
class TestLRWMatchesScalar:
    """Vectorized LRW-A is bit-exact against the frozen scalar migration."""

    def test_summaries_match(self, seed, absorb_first):
        graph, topic_index, walk_index = _setup(seed)
        kwargs = dict(rep_fraction=0.3, absorb_first=absorb_first)
        _assert_identical_summaries(
            LRWSummarizer(graph, topic_index, walk_index, **kwargs),
            ScalarLRWSummarizer(graph, topic_index, walk_index, **kwargs),
            topic_index, f"lrw/absorb_first={absorb_first}",
        )

    def test_representatives_match(self, seed, absorb_first):
        graph, topic_index, walk_index = _setup(seed)
        kwargs = dict(rep_fraction=0.3, absorb_first=absorb_first)
        vectorized = LRWSummarizer(graph, topic_index, walk_index, **kwargs)
        scalar = ScalarLRWSummarizer(
            graph, topic_index, walk_index, **kwargs
        )
        for topic_id in range(topic_index.n_topics):
            assert [int(v) for v in vectorized.representatives(topic_id)] == [
                int(v) for v in scalar.representatives(topic_id)
            ]


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("reinforcement", ["divrank", "walk"])
class TestLRWReinforcementVariants:
    """Both Algorithm 7 reinforcement readings stay in lockstep."""

    def test_summaries_match(self, seed, reinforcement):
        graph, topic_index, walk_index = _setup(seed)
        kwargs = dict(rep_fraction=0.3, reinforcement=reinforcement)
        _assert_identical_summaries(
            LRWSummarizer(graph, topic_index, walk_index, **kwargs),
            ScalarLRWSummarizer(graph, topic_index, walk_index, **kwargs),
            topic_index, f"lrw/reinforcement={reinforcement}",
        )
