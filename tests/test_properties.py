"""Property-based tests (hypothesis) on core invariants.

Each property encodes a law the paper's machinery must satisfy regardless
of input: probability algebra of the grouping rules, partition behaviour of
no-overlap grouping, conservation laws of influence propagation, and the
index invariants that make the top-k search's pruning sound.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import (
    PropagationIndex,
    TopicSummary,
    propagate_influence,
)
from repro.core.rcl import greedy_no_overlap, label_pairs
from repro.graph import SocialGraph, hop_distances, reverse_hop_distances
from repro.walks import WalkIndex

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

SETTINGS = settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def small_graphs(draw):
    """Random digraphs with 2-14 nodes and valid transition probabilities."""
    n = draw(st.integers(min_value=2, max_value=14))
    max_edges = n * (n - 1)
    n_edges = draw(st.integers(min_value=1, max_value=min(max_edges, 40)))
    pairs = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1), st.integers(0, n - 1)
            ).filter(lambda p: p[0] != p[1]),
            min_size=1,
            max_size=n_edges,
            unique=True,
        )
    )
    probs = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=1.0),
            min_size=len(pairs),
            max_size=len(pairs),
        )
    )
    return SocialGraph(n, [(u, v, p) for (u, v), p in zip(pairs, probs)])


@st.composite
def gp_matrices(draw):
    """Symmetric GP+ / GP- matrices with GP+ + GP- <= 1 everywhere."""
    n = draw(st.integers(min_value=2, max_value=8))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    raw = rng.dirichlet([1.0, 1.0, 1.0], size=(n, n))
    pos = (raw[..., 0] + raw[..., 0].T) / 2
    neg = (raw[..., 1] + raw[..., 1].T) / 2
    # Renormalize so pos + neg <= 1 after symmetrization.
    total = pos + neg
    scale = np.where(total > 1.0, total, 1.0)
    return pos / scale, neg / scale, seed


# ---------------------------------------------------------------------------
# Graph invariants
# ---------------------------------------------------------------------------


class TestGraphProperties:
    @SETTINGS
    @given(small_graphs())
    def test_degree_sums_match_edge_count(self, graph):
        assert graph.out_degrees().sum() == graph.n_edges
        assert graph.in_degrees().sum() == graph.n_edges

    @SETTINGS
    @given(small_graphs())
    def test_edge_roundtrip(self, graph):
        rebuilt = SocialGraph(graph.n_nodes, graph.iter_edges())
        assert sorted(rebuilt.iter_edges()) == sorted(graph.iter_edges())

    @SETTINGS
    @given(small_graphs())
    def test_reverse_distance_duality(self, graph):
        # dist_G(u -> v) == dist_rev(G)(v -> u) for every pair.
        rev = graph.reversed()
        for source in range(graph.n_nodes):
            forward = hop_distances(graph, source)
            backward = reverse_hop_distances(rev, source)
            assert forward.tolist() == backward.tolist()

    @SETTINGS
    @given(small_graphs())
    def test_distance_triangle_step(self, graph):
        # A node at distance d > 0 has an in-neighbour at distance d - 1.
        dist = hop_distances(graph, 0)
        for node in range(graph.n_nodes):
            d = dist[node]
            if d > 0:
                predecessors = [
                    int(p) for p in graph.in_neighbors(node)
                    if dist[int(p)] == d - 1
                ]
                assert predecessors


# ---------------------------------------------------------------------------
# Walk-index invariants
# ---------------------------------------------------------------------------


class TestWalkIndexProperties:
    @SETTINGS
    @given(small_graphs(), st.integers(1, 4), st.integers(1, 5),
           st.integers(0, 1000))
    def test_walk_lengths_and_reachability(self, graph, length, samples, seed):
        index = WalkIndex.built(graph, length, samples, seed=seed)
        for node in range(graph.n_nodes):
            records = index.walks_from(node)
            assert len(records) == samples
            exact = set(
                int(v) for v in np.flatnonzero(
                    hop_distances(graph, node, length) >= 1
                )
            )
            for record in records:
                assert record.steps_taken <= length
                assert record.path[0] == node
                # Dedup: no repeated entries in the recorded path.
                assert len(set(record.path.tolist())) == record.path.size
                # Every visited node is genuinely reachable within L hops.
                assert set(record.path[1:].tolist()) <= exact

    @SETTINGS
    @given(small_graphs(), st.integers(1, 4), st.integers(1, 5),
           st.integers(0, 1000))
    def test_hit_frequencies_bounded(self, graph, length, samples, seed):
        index = WalkIndex.built(graph, length, samples, seed=seed)
        table = index.hitting_frequencies()
        assert np.all(table >= 0.0)
        # A node can be visited at most once per step across one walk, so
        # the per-walk frequency is at most (step+1)/R (start + revisits).
        for step in range(1, length + 1):
            assert np.all(table[step] <= (step + 1) / samples + 1e-12)


# ---------------------------------------------------------------------------
# Grouping-rule invariants
# ---------------------------------------------------------------------------


class TestGroupingProperties:
    @SETTINGS
    @given(gp_matrices())
    def test_labels_symmetric_binary(self, matrices):
        pos, neg, seed = matrices
        labels = label_pairs(pos, neg, seed=seed)
        assert np.array_equal(labels, labels.T)
        assert set(np.unique(labels)) <= {0, 1}
        assert np.all(np.diag(labels) == 1)

    @SETTINGS
    @given(gp_matrices(), st.integers(1, 5))
    def test_no_overlap_is_partition(self, matrices, n_clusters):
        pos, neg, seed = matrices
        labels = label_pairs(pos, neg, seed=seed)
        groups = greedy_no_overlap(labels, n_clusters)
        members = [m for g in groups for m in g]
        assert sorted(members) == list(range(labels.shape[0]))

    @SETTINGS
    @given(gp_matrices(), st.integers(1, 5))
    def test_groups_are_label_cliques(self, matrices, n_clusters):
        pos, neg, seed = matrices
        labels = label_pairs(pos, neg, seed=seed)
        for group in greedy_no_overlap(labels, n_clusters, policy="all"):
            for i in group:
                for j in group:
                    assert labels[i, j] == 1


# ---------------------------------------------------------------------------
# Influence-propagation invariants
# ---------------------------------------------------------------------------


class TestInfluenceProperties:
    @SETTINGS
    @given(small_graphs(), st.integers(1, 5))
    def test_influence_monotone_in_length(self, graph, length):
        weights = {0: 1.0}
        shorter = propagate_influence(graph, weights, length)
        longer = propagate_influence(graph, weights, length + 1)
        assert np.all(longer >= shorter - 1e-12)

    @SETTINGS
    @given(small_graphs(), st.integers(1, 4))
    def test_influence_scales_linearly(self, graph, length):
        base = propagate_influence(graph, {0: 1.0}, length)
        scaled = propagate_influence(graph, {0: 0.5}, length)
        assert np.allclose(scaled, 0.5 * base)


# ---------------------------------------------------------------------------
# Propagation-index invariants
# ---------------------------------------------------------------------------


class TestPropagationIndexProperties:
    @SETTINGS
    @given(small_graphs(), st.floats(min_value=0.02, max_value=0.5))
    def test_gamma_entries_exceed_theta(self, graph, theta):
        index = PropagationIndex(graph, theta)
        for node in range(graph.n_nodes):
            entry = index.entry(node)
            for source, probability in entry.gamma.items():
                assert probability >= theta - 1e-12
                assert source != node

    @SETTINGS
    @given(small_graphs(), st.floats(min_value=0.05, max_value=0.5))
    def test_smaller_theta_never_shrinks_gamma(self, graph, theta):
        coarse = PropagationIndex(graph, theta)
        fine = PropagationIndex(graph, theta / 2)
        for node in range(graph.n_nodes):
            coarse_entry = coarse.entry(node).gamma
            fine_entry = fine.entry(node).gamma
            assert set(coarse_entry) <= set(fine_entry)
            for source, probability in coarse_entry.items():
                # Aggregation only adds paths as theta decreases.
                assert fine_entry[source] >= probability - 1e-12

    @SETTINGS
    @given(small_graphs(), st.floats(min_value=0.02, max_value=0.5))
    def test_marked_nodes_inside_gamma(self, graph, theta):
        index = PropagationIndex(graph, theta)
        for node in range(graph.n_nodes):
            entry = index.entry(node)
            assert entry.marked <= set(entry.gamma)


# ---------------------------------------------------------------------------
# Search invariants
# ---------------------------------------------------------------------------


class TestSearchProperties:
    @SETTINGS
    @given(small_graphs(), st.integers(0, 10_000), st.integers(1, 3))
    def test_pruning_preserves_in_index_ranking(self, graph, seed, k):
        """With expansion disabled, Algorithm 10's pruning must return
        exactly the brute-force ranking by in-index score
        ``sum_{rep in Gamma(v)} Gamma(v)[rep] * weight(rep)``.

        (With expansion enabled, scores legitimately *grow* while
        membership is undecided, so only this expansion-free core has an
        exact external reference.)"""
        from repro.core import PersonalizedSearcher, PropagationIndex, TopicSummary
        from repro.topics import TopicIndex

        rng = np.random.default_rng(seed)
        n = graph.n_nodes
        n_topics = int(rng.integers(2, 6))
        assignments = {}
        for t in range(n_topics):
            members = rng.choice(n, size=min(n, 2), replace=False)
            for m in members:
                assignments.setdefault(int(m), []).append(f"topic t{t}")
        index = TopicIndex(n, assignments)
        summaries = {}
        for topic_id in range(index.n_topics):
            nodes = index.topic_nodes(topic_id)
            weight = 1.0 / nodes.size
            summaries[topic_id] = TopicSummary(
                topic_id, {int(v): weight for v in nodes}
            )
        propagation = PropagationIndex(graph, 0.05)
        searcher = PersonalizedSearcher(
            index, summaries, propagation, max_expand_rounds=0
        )
        user = int(rng.integers(n))
        results, _ = searcher.search(user, "topic", k)

        gamma = propagation.entry(user).gamma
        brute = {
            topic_id: sum(
                gamma.get(rep, 0.0) * weight
                for rep, weight in summaries[topic_id].weights.items()
            )
            for topic_id in range(index.n_topics)
        }
        expected = sorted(
            brute, key=lambda t: (-brute[t], index.label(t))
        )[:k]
        assert [r.topic_id for r in results] == expected
        for result in results:
            assert result.influence == pytest.approx(brute[result.topic_id])


# ---------------------------------------------------------------------------
# Summary invariants
# ---------------------------------------------------------------------------


class TestSummaryProperties:
    @SETTINGS
    @given(
        st.dictionaries(
            st.integers(0, 50),
            st.floats(min_value=0.0, max_value=0.2),
            max_size=5,
        )
    )
    def test_summary_weight_bound_enforced(self, weights):
        summary = TopicSummary(0, weights)
        assert 0.0 <= summary.total_weight <= 1.0 + 1e-9
        assert summary.size == len(weights)
