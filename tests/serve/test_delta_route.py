"""Live-daemon tests for ``POST /admin/delta``.

The answer-tier invalidation contract, exercised end to end over real
sockets: a delta streamed into a serving daemon must leave every
subsequent response - answer-tier hits included - bit-exact against a
from-scratch :class:`ServingEngine` oracle built over the edited graph
(same summaries, per the graceful-staleness contract).
"""

import numpy as np
import pytest

from repro.core import ServingEngine, apply_delta_to_graph
from repro.core.dynamics import GraphDelta
from repro.obs import MetricsRegistry


def existing_edges(graph):
    sources, targets, probs = graph.edge_arrays()
    return [
        (int(s), int(t), float(p))
        for s, t, p in zip(sources, targets, probs)
    ]


class TestDeltaRoute:
    def test_applied_report(self, make_daemon):
        daemon = make_daemon()
        s, t, p = existing_edges(daemon.server.engines.current.graph)[0]
        status, body, _ = daemon.request(
            "POST", "/admin/delta",
            {"reweights": [[s, t, round(p * 0.5, 6)]]},
        )
        assert status == 200
        assert body["status"] == "applied"
        assert body["reweighted"] == 1
        assert body["inserted"] == 0
        assert body["affected"] >= 1
        assert body["reachable"] >= body["affected"]
        assert "answers_invalidated" in body

    def test_serve_deltas_metric(self, make_daemon):
        registry = MetricsRegistry()
        daemon = make_daemon(registry=registry)
        s, t, p = existing_edges(daemon.server.engines.current.graph)[0]
        daemon.request(
            "POST", "/admin/delta",
            {"reweights": [[s, t, round(p * 0.5, 6)]]},
        )
        assert registry.snapshot().counters.get("serve.deltas") == 1

    def test_malformed_body_is_400(self, daemon):
        status, body, _ = daemon.request(
            "POST", "/admin/delta", {"inserts": "nope"}
        )
        assert status == 400
        assert body["error"]["type"] == "ValidationError"

    def test_empty_body_is_400(self, daemon):
        status, body, _ = daemon.request("POST", "/admin/delta", None)
        assert status == 400

    def test_semantic_error_is_400_and_engine_survives(self, daemon):
        # Deleting a non-existent edge is a stale caller view; the typed
        # error crosses the socket and the engine keeps serving.
        graph = daemon.server.engines.current.graph
        present = {(s, t) for s, t, _ in existing_edges(graph)}
        missing = next(
            (s, t)
            for s in range(graph.n_nodes)
            for t in range(graph.n_nodes)
            if s != t and (s, t) not in present
        )
        status, body, _ = daemon.request(
            "POST", "/admin/delta", {"deletes": [list(missing)]}
        )
        assert status == 400
        assert "error" in body
        status, _, _ = daemon.search(0, "phone")
        assert status == 200

    def test_get_method_rejected(self, daemon):
        status, body, _ = daemon.request("GET", "/admin/delta")
        assert status == 405

    @pytest.mark.parametrize("seed", [7, 1234])
    def test_never_stale_after_delta(self, stacks, make_daemon, seed):
        stack = stacks[seed]
        registry = MetricsRegistry()
        daemon = make_daemon(
            use_stack=stack, registry=registry,
            answer_cache_bytes=1 << 20,
        )
        graph = stack.bundle.graph
        rng = np.random.default_rng(seed)
        requests = sorted({
            (int(rng.integers(graph.n_nodes)), term)
            for term in ("phone", "camera", "music")
            for _ in range(3)
        })
        for user, term in requests:
            status, _, _ = daemon.search(user, term, k=5)
            assert status == 200

        edges = existing_edges(graph)
        picks = rng.choice(len(edges), size=2, replace=False)
        ds, dt, _ = edges[picks[0]]
        rs, rt, rp = edges[picks[1]]
        status, report, _ = daemon.request(
            "POST", "/admin/delta",
            {
                "deletes": [[ds, dt]],
                "reweights": [[rs, rt, round(rp * 0.5 + 0.05, 6)]],
            },
        )
        assert status == 200
        assert report["status"] == "applied"

        delta = GraphDelta(
            deletes=((ds, dt),),
            reweights=((rs, rt, round(rp * 0.5 + 0.05, 6)),),
        )
        new_graph, _ = apply_delta_to_graph(graph, delta)
        oracle = ServingEngine(
            new_graph,
            stack.bundle.topic_index,
            stack.engine.summaries,
            theta=stack.engine.propagation_index.theta,
        )
        for user, term in requests:
            status, body, _ = daemon.search(user, term, k=5)
            assert status == 200
            results, stats = oracle.search(user, term, k=5, with_stats=True)
            assert body["results"] == [
                {
                    "topic_id": r.topic_id,
                    "label": r.label,
                    "influence": r.influence,
                }
                for r in results
            ], f"stale or wrong answer for user={user} query={term!r}"
            assert body["stats"] == {
                "topics_considered": stats.topics_considered,
                "topics_pruned": stats.topics_pruned,
                "entries_probed": stats.entries_probed,
                "expansion_rounds": stats.expansion_rounds,
                "representatives_touched": stats.representatives_touched,
            }
