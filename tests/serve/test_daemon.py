"""Integration tests for the serving daemon: differential correctness,
failure modes, admission, coalescing, hot reload, and graceful drain."""

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro import _faults
from repro.datasets import generate_workload


def expected_results(stack, user, query, k):
    results, _ = stack.engine.search(user, query, k=k, with_stats=True)
    return [
        {"topic_id": r.topic_id, "label": r.label, "influence": r.influence}
        for r in results
    ]


class TestDifferential:
    """Daemon responses must be bit-exact vs direct engine calls."""

    @pytest.mark.parametrize("seed", [7, 1234])
    def test_bit_exact_over_workload_and_across_reload(
        self, stacks, make_daemon, seed
    ):
        stack = stacks[seed]
        daemon = make_daemon(use_stack=stack)
        workload = generate_workload(
            stack.bundle, n_queries=4, n_users=3, seed=seed
        )
        pairs = list(workload.pairs())
        for user, query in pairs:
            status, body, _ = daemon.search(user, query.raw, k=5)
            assert status == 200, body
            assert body["generation"] == 1
            # JSON repr round-trips doubles exactly: == here is bit-exact.
            assert body["results"] == expected_results(
                stack, user, query.raw, 5
            )
        status, body, _ = daemon.request("POST", "/admin/reload", {})
        assert status == 200 and body["generation"] == 2
        for user, query in pairs[:4]:
            status, body, _ = daemon.search(user, query.raw, k=5)
            assert status == 200
            assert body["generation"] == 2
            assert body["results"] == expected_results(
                stack, user, query.raw, 5
            )

    def test_coalesced_batch_is_bit_exact(self, stack, daemon):
        # Hold the single worker busy so concurrent same-query requests
        # pile up and dispatch as one coalesced batch.
        users = [3, 11, 29, 47]
        responses = {}
        errors = []

        def fire(user):
            try:
                responses[user] = daemon.search(user, "phone", k=5)
            except Exception as exc:  # pragma: no cover - test plumbing
                errors.append(exc)

        with _faults.fault("serve.search_delay", _faults.Delay(0.3, times=1)):
            first = threading.Thread(target=fire, args=(users[0],))
            first.start()
            time.sleep(0.1)  # worker is now sleeping inside the fault
            rest = [
                threading.Thread(target=fire, args=(u,)) for u in users[1:]
            ]
            for t in rest:
                t.start()
            first.join(30)
            for t in rest:
                t.join(30)
        assert not errors
        for user in users:
            status, body, _ = responses[user]
            assert status == 200, body
            assert body["results"] == expected_results(stack, user, "phone", 5)
        counters = daemon.registry.snapshot().counters
        assert counters.get("serve.coalesced_batches", 0) >= 1


class TestFailureModes:
    def test_malformed_json_is_typed_400(self, daemon):
        status, body, _ = daemon.request(
            "POST", "/search", raw_body="this is not json"
        )
        assert status == 400
        assert body["error"]["type"] == "MalformedRequest"

    def test_missing_fields_are_typed_400(self, daemon):
        status, body, _ = daemon.request("POST", "/search", {"user": 1})
        assert status == 400
        assert body["error"]["type"] == "ValidationError"

    def test_unknown_user_is_typed_400(self, daemon):
        status, body, _ = daemon.search(10**7, "phone")
        assert status == 400
        assert body["error"]["type"] == "NodeNotFoundError"

    def test_oversized_body_is_413(self, daemon):
        huge = json.dumps({"user": 1, "query": "x" * 70_000})
        status, body, _ = daemon.request("POST", "/search", raw_body=huge)
        assert status == 413
        assert body["error"]["type"] == "PayloadTooLarge"

    def test_unknown_route_is_404(self, daemon):
        status, body, _ = daemon.request("GET", "/nope")
        assert status == 404

    def test_wrong_method_is_405(self, daemon):
        status, body, _ = daemon.request("GET", "/search")
        assert status == 405
        status, body, _ = daemon.request("POST", "/healthz", {})
        assert status == 405

    def test_deadline_expiry_mid_search_is_504_then_recovers(
        self, stack, daemon
    ):
        with _faults.fault("serve.search_delay", _faults.Delay(0.6, times=1)):
            status, body, _ = daemon.search(3, "phone", deadline_ms=150)
        assert status == 504
        assert body["error"]["type"] == "DeadlineExceeded"
        counters = daemon.registry.snapshot().counters
        assert counters.get("serve.deadline_exceeded", 0) >= 1
        # The abandoned result must not poison later requests.
        status, body, _ = daemon.search(3, "phone", k=5)
        assert status == 200
        assert body["results"] == expected_results(stack, 3, "phone", 5)

    def test_traceback_never_crosses_the_socket(self, daemon):
        class Boom:
            def __call__(self, **_):
                raise RuntimeError("kaboom internal state")

        with _faults.fault("serve.handle", Boom()):
            status, body, _ = daemon.search(3, "phone")
        assert status == 500
        assert body["error"]["type"] == "InternalError"
        assert "kaboom" not in json.dumps(body)


class TestAdmission:
    def test_sheds_with_429_at_capacity_then_recovers(self, make_daemon):
        from repro.serve import ServeConfig

        daemon = make_daemon(config=ServeConfig(port=0, max_queue=2))
        done = {}

        def slow(user):
            done[user] = daemon.search(user, "phone")

        with _faults.fault("serve.search_delay", _faults.Delay(0.5)):
            threads = [threading.Thread(target=slow, args=(u,)) for u in (3, 11)]
            threads[0].start()
            time.sleep(0.1)
            threads[1].start()
            time.sleep(0.1)
            status, body, headers = daemon.search(29, "phone")
            assert status == 429
            assert body["error"]["type"] == "Overloaded"
            assert headers.get("Retry-After") == "1"
            for t in threads:
                t.join(30)
        for user in (3, 11):
            assert done[user][0] == 200
        # Capacity reopens once the slow requests finish.
        status, _, _ = daemon.search(29, "phone")
        assert status == 200
        counters = daemon.registry.snapshot().counters
        assert counters.get("serve.shed", 0) >= 1


class TestReload:
    def test_corrupt_artifact_rejected_old_engine_serves(self, stack, daemon):
        status, before, _ = daemon.search(3, "phone", k=5)
        assert status == 200 and before["generation"] == 1
        with _faults.fault("artifact.load_bytes", _faults.FlipByte(100)):
            status, body, _ = daemon.request("POST", "/admin/reload", {})
        assert status == 409
        assert body["error"]["type"] == "ArtifactCorruptedError"
        # Old engine still serving, same generation, same answers.
        status, after, _ = daemon.search(3, "phone", k=5)
        assert status == 200
        assert after["generation"] == 1
        assert after["results"] == before["results"]
        counters = daemon.registry.snapshot().counters
        assert counters.get("serve.reload_failures", 0) == 1
        # A clean retry succeeds.
        status, body, _ = daemon.request("POST", "/admin/reload", {})
        assert status == 200 and body["generation"] == 2

    def test_reload_under_traffic_drops_nothing(self, stack, daemon):
        class SlowLoad:
            def __call__(self, *, data, **_):
                time.sleep(0.25)
                return data

        reload_result = {}

        def do_reload():
            reload_result["response"] = daemon.request(
                "POST", "/admin/reload", {}
            )

        statuses = []
        generations = set()
        with _faults.fault("artifact.load_bytes", SlowLoad()):
            reloader = threading.Thread(target=do_reload)
            reloader.start()
            time.sleep(0.05)
            # While the new engine loads: not ready for new traffic per
            # /readyz, but every in-flight/arriving request still answers.
            saw_not_ready = False
            deadline = time.monotonic() + 10
            while reloader.is_alive() and time.monotonic() < deadline:
                r_status, _, _ = daemon.request("GET", "/readyz")
                saw_not_ready = saw_not_ready or r_status == 503
                s_status, s_body, _ = daemon.search(3, "phone", k=3)
                statuses.append(s_status)
                generations.add(s_body.get("generation"))
            reloader.join(30)
        assert reload_result["response"][0] == 200
        assert statuses and all(s == 200 for s in statuses)
        assert saw_not_ready  # /readyz said "draining from LB" during load
        # After the swap, traffic flows on the new generation.
        status, body, _ = daemon.search(3, "phone", k=3)
        assert status == 200 and body["generation"] == 2
        generations.add(body["generation"])
        assert generations <= {1, 2}
        status, _, _ = daemon.request("GET", "/readyz")
        assert status == 200


class TestLifecycle:
    def test_healthz_and_readyz_when_ready(self, daemon):
        status, body, _ = daemon.request("GET", "/healthz")
        assert status == 200 and body["status"] == "ok"
        status, body, _ = daemon.request("GET", "/readyz")
        assert status == 200 and body["ready"] is True

    def test_metrics_endpoint_exposes_serve_series(self, daemon):
        daemon.search(3, "phone")
        status, text, headers = daemon.request("GET", "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        exposition = (
            text if isinstance(text, str) else text.decode("utf-8")
        )
        assert "serve_requests" in exposition
        assert "serve_latency_seconds" in exposition
        assert "engine_memory_bytes" in exposition

    def test_drain_completes_inflight_then_exits_cleanly(self, make_daemon):
        daemon = make_daemon()
        result = {}

        def slow_search():
            result["response"] = daemon.search(3, "phone", k=5)

        with _faults.fault("serve.search_delay", _faults.Delay(0.4, times=1)):
            t = threading.Thread(target=slow_search)
            t.start()
            time.sleep(0.1)  # request is now in flight
            code = daemon.stop(exit_code=0)
            t.join(30)
        assert code == 0
        status, body, _ = result["response"]
        assert status == 200  # the in-flight request finished, not 503
        assert body["results"]


@pytest.mark.slow
class TestRealSignals:
    def test_cli_serve_sigterm_drains_and_exits_zero(self, stack, tmp_path):
        src_dir = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src_dir)
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--dataset", "data_2k", "--size", "140", "--seed", "7",
                "--summaries", str(stack.sums_path),
                "--index", str(stack.index_path),
                "--port", "0", "--drain-seconds", "5",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        try:
            deadline = time.monotonic() + 120
            ready = False
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if not line:
                    break
                if line.startswith("ready:"):
                    ready = True
                    break
            assert ready, "daemon subprocess never reported ready"
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=30)
            assert code == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
