"""Fixtures for daemon tests: prebuilt artifacts + an in-process harness.

The harness runs the real :class:`~repro.serve.server.PITServer` event
loop in a background thread and talks to it over real sockets with
``http.client`` - the same bytes a load balancer or the replay generator
would send - so these tests exercise HTTP framing, keep-alive, admission,
coalescing, and drain exactly as production traffic does.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from types import SimpleNamespace

import pytest

from repro.core import (
    PITEngine,
    ServingEngine,
    save_propagation_index,
    save_summaries,
)
from repro.datasets import data_2k
from repro.obs import MetricsRegistry
from repro.serve import PITServer, ServeConfig


def build_stack(seed: int, n_nodes: int, directory):
    """Build one dataset + engine and persist its serving artifacts."""
    bundle = data_2k(seed=seed, n_nodes=n_nodes, with_corpus=False)
    engine = PITEngine.from_dataset(bundle, summarizer="rcl", seed=seed)
    engine.propagation_index.build_all(workers=1)
    engine.build_summaries()
    index_path = directory / f"prop_{seed}.npz"
    sums_path = directory / f"sums_{seed}.json"
    save_propagation_index(engine.propagation_index, index_path)
    save_summaries(engine.summaries, bundle.graph, sums_path)
    return SimpleNamespace(
        seed=seed,
        bundle=bundle,
        engine=engine,
        index_path=index_path,
        sums_path=sums_path,
    )


@pytest.fixture(scope="package")
def stacks(tmp_path_factory):
    """Artifact stacks for the two differential seeds (built once)."""
    directory = tmp_path_factory.mktemp("serve_artifacts")
    return {
        7: build_stack(7, 140, directory),
        1234: build_stack(1234, 120, directory),
    }


@pytest.fixture(scope="package")
def stack(stacks):
    """The default artifact stack most daemon tests run against."""
    return stacks[7]


def make_loader(stack, registry, *, answer_cache_bytes=None,
                precompute_path=None):
    """The same loader shape the CLI builds: paths + overrides -> engine."""
    base = {"summaries": str(stack.sums_path), "index": str(stack.index_path)}
    if precompute_path is not None:
        base["precompute"] = str(precompute_path)

    def loader(overrides):
        paths = dict(base)
        paths.update(overrides)
        if "index_dir" in overrides:
            paths.pop("index", None)
        return ServingEngine.from_artifacts(
            stack.bundle.graph,
            stack.bundle.topic_index,
            paths["summaries"],
            index_path=paths.get("index"),
            index_dir=paths.get("index_dir"),
            answer_cache_bytes=answer_cache_bytes,
            precompute_path=paths.get("precompute"),
            metrics=registry,
        )

    return loader


class DaemonHarness:
    """A PITServer on a real socket, driven from a background thread."""

    def __init__(self, stack, config=None, registry=None,
                 answer_cache_bytes=None, precompute_path=None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.server = PITServer(
            make_loader(
                stack, self.registry,
                answer_cache_bytes=answer_cache_bytes,
                precompute_path=precompute_path,
            ),
            config or ServeConfig(port=0),
            metrics=self.registry,
        )
        self._ready = threading.Event()
        self.exit_code = None
        self._thread = threading.Thread(target=self._main, daemon=True)

    def _main(self):
        self.exit_code = asyncio.run(
            self.server.run(ready_callback=self._ready.set)
        )

    def start(self, timeout: float = 120.0) -> "DaemonHarness":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("daemon did not become ready in time")
        return self

    def stop(self, exit_code: int = 0, timeout: float = 30.0):
        if self._thread.is_alive():
            self.server.request_shutdown(exit_code)
            self._thread.join(timeout)
            if self._thread.is_alive():
                raise RuntimeError("daemon did not drain in time")
        return self.exit_code

    # ------------------------------------------------------------------
    def request(self, method, path, body=None, *, raw_body=None, timeout=30):
        """One HTTP exchange; returns ``(status, parsed_body, headers)``."""
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.server.port, timeout=timeout
        )
        try:
            payload = raw_body
            if payload is None and body is not None:
                payload = json.dumps(body)
            conn.request(
                method, path, body=payload,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            data = response.read()
            status = response.status
            headers = dict(response.getheaders())
        finally:
            conn.close()
        try:
            parsed = json.loads(data)
        except (ValueError, UnicodeDecodeError):
            parsed = data
        return status, parsed, headers

    def search(self, user, query, k=5, **fields):
        body = {"user": user, "query": query, "k": k, **fields}
        return self.request("POST", "/search", body)


@pytest.fixture
def make_daemon(stack):
    """Factory for daemons over the default stack; all stopped at teardown."""
    daemons = []

    def factory(config=None, registry=None, use_stack=None,
                answer_cache_bytes=None, precompute_path=None):
        daemon = DaemonHarness(
            use_stack if use_stack is not None else stack,
            config=config,
            registry=registry,
            answer_cache_bytes=answer_cache_bytes,
            precompute_path=precompute_path,
        )
        daemons.append(daemon)
        return daemon.start()

    yield factory
    for daemon in daemons:
        daemon.stop()


@pytest.fixture
def daemon(make_daemon):
    """One ready daemon with default config over the default stack."""
    return make_daemon()
