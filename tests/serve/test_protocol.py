"""Unit tests for the daemon's wire protocol and admission control."""

import json

import pytest

from repro.exceptions import (
    ArtifactCorruptedError,
    NodeNotFoundError,
    QueryError,
)
from repro.obs import MetricsRegistry
from repro.serve import AdmissionController, HttpError
from repro.serve.protocol import (
    encode_response,
    error_body,
    error_for_exception,
    parse_delta_request,
    parse_reload_request,
    parse_search_request,
)


def _encode(payload) -> bytes:
    return json.dumps(payload).encode()


class TestParseSearchRequest:
    def test_minimal_valid(self):
        req = parse_search_request(
            _encode({"user": 3, "query": "phone"}), default_k=10
        )
        assert req.user == 3
        assert req.k == 10
        assert req.deadline_s is None
        assert req.query.raw == "phone"

    def test_all_fields(self):
        req = parse_search_request(
            _encode({"user": 0, "query": "alpha beta", "k": 3, "deadline_ms": 250}),
            default_k=10,
        )
        assert req.k == 3
        assert req.deadline_s == pytest.approx(0.25)

    def test_unknown_fields_ignored(self):
        req = parse_search_request(
            _encode({"user": 1, "query": "phone", "future_flag": True}),
            default_k=5,
        )
        assert req.user == 1

    @pytest.mark.parametrize("body", [
        b"not json",
        b"\xff\xfe binary",
        _encode([1, 2, 3]),
        _encode("just a string"),
    ])
    def test_malformed_bodies_are_400(self, body):
        with pytest.raises(HttpError) as exc:
            parse_search_request(body, default_k=10)
        assert exc.value.status == 400
        assert exc.value.error_type == "MalformedRequest"

    @pytest.mark.parametrize("payload", [
        {"query": "phone"},                       # missing user
        {"user": "3", "query": "phone"},          # user not an int
        {"user": True, "query": "phone"},         # bool is not an int here
        {"user": -1, "query": "phone"},           # negative user
        {"user": 1},                          # missing query
        {"user": 1, "query": ""},             # empty query
        {"user": 1, "query": 5},              # non-string query
        {"user": 1, "query": "phone", "k": 0},    # k out of range
        {"user": 1, "query": "phone", "k": 10**9},
        {"user": 1, "query": "phone", "k": "5"},
        {"user": 1, "query": "phone", "deadline_ms": 0},
        {"user": 1, "query": "phone", "deadline_ms": -5},
        {"user": 1, "query": "phone", "deadline_ms": "fast"},
    ])
    def test_invalid_fields_are_400(self, payload):
        with pytest.raises(HttpError) as exc:
            parse_search_request(_encode(payload), default_k=10)
        assert exc.value.status == 400

    def test_unusable_query_is_typed_400(self):
        with pytest.raises(HttpError) as exc:
            parse_search_request(
                _encode({"user": 1, "query": "&&& !!!"}), default_k=10
            )
        assert exc.value.status == 400
        assert exc.value.error_type == "QueryError"


class TestParseReloadRequest:
    def test_empty_body_means_reload_configured_paths(self):
        assert parse_reload_request(b"") == {}
        assert parse_reload_request(_encode({})) == {}

    def test_overrides_pass_through(self):
        overrides = parse_reload_request(
            _encode({"summaries": "/tmp/s.json", "index": "/tmp/p.npz"})
        )
        assert overrides == {"summaries": "/tmp/s.json", "index": "/tmp/p.npz"}

    def test_unknown_key_rejected(self):
        with pytest.raises(HttpError) as exc:
            parse_reload_request(_encode({"indexdir": "/x"}))
        assert exc.value.status == 400

    def test_index_and_index_dir_exclusive(self):
        with pytest.raises(HttpError, match="mutually exclusive"):
            parse_reload_request(
                _encode({"index": "/a", "index_dir": "/b"})
            )

    def test_non_string_path_rejected(self):
        with pytest.raises(HttpError):
            parse_reload_request(_encode({"index": 5}))


class TestErrorMapping:
    def test_http_error_keeps_status(self):
        status, body = error_for_exception(
            HttpError(429, "Overloaded", "busy")
        )
        assert status == 429
        assert body["error"]["type"] == "Overloaded"

    def test_artifact_corruption_is_409(self):
        status, body = error_for_exception(
            ArtifactCorruptedError("checksum mismatch")
        )
        assert status == 409
        assert body["error"]["type"] == "ArtifactCorruptedError"

    def test_client_errors_are_400(self):
        for exc in (QueryError("bad"), NodeNotFoundError(9, 5)):
            status, body = error_for_exception(exc)
            assert status == 400
            assert body["error"]["type"] == type(exc).__name__

    def test_unexpected_exception_is_opaque_500(self):
        status, body = error_for_exception(
            ZeroDivisionError("secret internal detail")
        )
        assert status == 500
        assert body["error"]["type"] == "InternalError"
        assert "secret" not in body["error"]["message"]


class TestEncodeResponse:
    def _split(self, raw: bytes):
        head, _, body = raw.partition(b"\r\n\r\n")
        return head.decode().split("\r\n"), body

    def test_json_framing(self):
        lines, body = self._split(encode_response(200, {"a": 1}))
        assert lines[0] == "HTTP/1.1 200 OK"
        assert f"Content-Length: {len(body)}" in lines
        assert "Connection: keep-alive" in lines
        assert json.loads(body) == {"a": 1}

    def test_text_payload_and_close(self):
        lines, body = self._split(
            encode_response(
                200, "metric 1\n",
                content_type="text/plain; version=0.0.4",
                keep_alive=False,
            )
        )
        assert "Content-Type: text/plain; version=0.0.4" in lines
        assert "Connection: close" in lines
        assert body == b"metric 1\n"

    def test_retry_after_header(self):
        lines, _ = self._split(
            encode_response(
                429, error_body("Overloaded", "x"), retry_after=1
            )
        )
        assert "Retry-After: 1" in lines


class TestAdmissionController:
    def test_admits_up_to_capacity_then_sheds(self):
        registry = MetricsRegistry()
        control = AdmissionController(2, metrics=registry)
        control.admit()
        control.admit()
        with pytest.raises(HttpError) as exc:
            control.admit()
        assert exc.value.status == 429
        assert exc.value.retry_after == 1
        assert registry.snapshot().counters["serve.shed"] == 1

    def test_release_reopens_capacity(self):
        control = AdmissionController(1)
        control.admit()
        control.release()
        control.admit()  # must not raise
        assert control.pending == 1

    def test_queue_depth_gauge_tracks_pending(self):
        registry = MetricsRegistry()
        control = AdmissionController(3, metrics=registry)
        control.admit()
        control.admit()
        assert registry.snapshot().gauges["serve.queue_depth"] == 2
        control.release()
        assert registry.snapshot().gauges["serve.queue_depth"] == 1

    def test_unbalanced_release_is_a_bug(self):
        control = AdmissionController(1)
        with pytest.raises(RuntimeError):
            control.release()

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            AdmissionController(0)


class TestParseDeltaRequest:
    def test_full_valid_body(self):
        kwargs = parse_delta_request(_encode({
            "inserts": [[0, 1, 0.5]],
            "deletes": [[2, 3]],
            "reweights": [[4, 5, 0.25]],
            "decay": 0.9,
            "decay_floor": 0.01,
        }))
        assert kwargs == {
            "inserts": ((0, 1, 0.5),),
            "deletes": ((2, 3),),
            "reweights": ((4, 5, 0.25),),
            "decay": 0.9,
            "decay_floor": 0.01,
        }

    def test_decay_only_body_valid(self):
        kwargs = parse_delta_request(_encode({"decay": 0.95}))
        assert kwargs["decay"] == pytest.approx(0.95)
        assert kwargs["inserts"] == ()

    def test_empty_body_rejected(self):
        with pytest.raises(HttpError) as exc:
            parse_delta_request(b"")
        assert exc.value.status == 400

    def test_no_edits_rejected(self):
        with pytest.raises(HttpError, match="no edits"):
            parse_delta_request(_encode({"inserts": [], "decay": 1.0}))

    def test_unknown_field_rejected(self):
        with pytest.raises(HttpError, match="unknown delta field"):
            parse_delta_request(_encode({"insert": [[0, 1, 0.5]]}))

    def test_non_list_field_rejected(self):
        with pytest.raises(HttpError) as exc:
            parse_delta_request(_encode({"inserts": "0,1,0.5"}))
        assert exc.value.status == 400

    @pytest.mark.parametrize("row", [
        [0, 1],              # wrong arity for an insert
        [0, 1, 0.5, 9],      # too many elements
        [0, "1", 0.5],       # non-numeric entry
        [True, 1, 0.5],      # bools are not endpoints
        [0.5, 1, 0.5],       # float endpoint
        "not a row",
    ])
    def test_malformed_insert_rows_rejected(self, row):
        with pytest.raises(HttpError) as exc:
            parse_delta_request(_encode({"inserts": [row]}))
        assert exc.value.status == 400

    def test_malformed_delete_row_rejected(self):
        with pytest.raises(HttpError) as exc:
            parse_delta_request(_encode({"deletes": [[0, 1, 0.5]]}))
        assert exc.value.status == 400

    @pytest.mark.parametrize("value", ["0.9", True, None, [0.9]])
    def test_non_numeric_decay_rejected(self, value):
        with pytest.raises(HttpError) as exc:
            parse_delta_request(_encode({"decay": value}))
        assert exc.value.status == 400

    def test_semantic_validation_left_to_graph_delta(self):
        # Shape-valid but semantically bad values pass the parser; the
        # GraphDelta constructor / apply path turns them into 400s.
        kwargs = parse_delta_request(_encode({"inserts": [[0, 0, 5.0]]}))
        assert kwargs["inserts"] == ((0, 0, 5.0),)
