"""Answer tier behind real sockets: warm hits, hot swaps, no stale answers.

The invalidation design is structural - every ``/admin/reload`` swap
builds a *new* engine whose tiers start empty and re-warm from the
precompute artifact - so the property under test is end-to-end: across a
generation bump, every byte the daemon returns must equal what a fresh,
cache-less engine computes from the artifacts on disk. A daemon that
kept serving the old engine's answer tier after a swap would fail the
moment the artifacts differ; here we prove the plumbing by swapping to a
*different* (re-built) summaries artifact mid-session and requiring the
responses to track the artifact, not the cache.
"""

from __future__ import annotations

import json

import pytest

from repro.core import (
    PITEngine,
    ServingEngine,
    build_precompute,
    save_precompute,
    save_summaries,
)
from repro.datasets import generate_workload, replay_requests
from repro.serve import ServeConfig

from .conftest import DaemonHarness

WORK_FIELDS = (
    "topics_considered",
    "topics_pruned",
    "entries_probed",
    "expansion_rounds",
    "representatives_touched",
)


def fresh_engine(stack, sums_path=None):
    """An uncached engine straight off the artifacts - the truth oracle."""
    return ServingEngine.from_artifacts(
        stack.bundle.graph,
        stack.bundle.topic_index,
        sums_path if sums_path is not None else stack.sums_path,
        index_path=stack.index_path,
    )


def expected_payload(engine, record):
    results, stats = engine.search(
        record["user"], record["query"], record["k"], with_stats=True
    )
    return (
        [
            {"topic_id": r.topic_id, "label": r.label,
             "influence": r.influence}
            for r in results
        ],
        {f: getattr(stats, f) for f in WORK_FIELDS},
    )


@pytest.fixture(scope="module")
def replay(stacks, tmp_path_factory):
    """A Zipf replay + mined precompute artifact over the seed-7 stack."""
    stack = stacks[7]
    directory = tmp_path_factory.mktemp("answer_cache")
    workload = generate_workload(
        stack.bundle, n_queries=5, n_users=4, seed=7
    )
    records = replay_requests(
        workload, n_requests=120, k=5, skew=1.1, seed=7
    )
    trace_path = directory / "trace.jsonl"
    trace_path.write_text(
        "".join(json.dumps(r) + "\n" for r in records), encoding="utf-8"
    )
    artifact = build_precompute(
        fresh_engine(stack), trace_path, top_queries=4, top_answers=10,
        default_k=5,
    )
    precompute_path = directory / "precompute.json"
    save_precompute(artifact, precompute_path)
    return {
        "stack": stack,
        "records": records,
        "trace_path": trace_path,
        "precompute_path": precompute_path,
        "directory": directory,
    }


@pytest.fixture(scope="module")
def alt_summaries(replay):
    """A *different* summarization of the same graph + matching precompute.

    Re-clustering with another seed moves representatives, so answers
    cached over the original summaries are genuinely wrong against these
    - which is what makes the staleness tests below meaningful.
    """
    stack = replay["stack"]
    directory = replay["directory"]
    engine2 = PITEngine.from_dataset(stack.bundle, summarizer="rcl", seed=99)
    engine2.build_summaries()
    sums2_path = directory / "sums2.json"
    save_summaries(engine2.summaries, stack.bundle.graph, sums2_path)
    oracle2 = fresh_engine(stack, sums2_path)
    artifact2 = build_precompute(
        oracle2, replay["trace_path"], top_queries=4, top_answers=10,
        default_k=5,
    )
    precompute2_path = directory / "precompute2.json"
    save_precompute(artifact2, precompute2_path)
    return {"sums_path": sums2_path, "precompute_path": precompute2_path}


class TestWarmServing:
    def test_warm_daemon_hits_and_stays_bit_exact(self, replay):
        stack = replay["stack"]
        daemon = DaemonHarness(
            stack,
            config=ServeConfig(port=0),
            answer_cache_bytes=8 << 20,
            precompute_path=replay["precompute_path"],
        ).start()
        try:
            oracle = fresh_engine(stack)
            for record in replay["records"][:60]:
                status, body, _ = daemon.search(
                    record["user"], record["query"], k=record["k"]
                )
                assert status == 200
                want_results, want_stats = expected_payload(oracle, record)
                assert body["results"] == want_results
                assert body["stats"] == want_stats
            # Tier gauges are published at snapshot time; scraping
            # /metrics (as an operator would) materializes them.
            status, text, _ = daemon.request("GET", "/metrics")
            assert status == 200
            snapshot = daemon.registry.snapshot()
            assert snapshot.counters.get("cache.tier.answers.hits", 0) > 0
            assert snapshot.gauges.get("cache.tier.answers.items", 0) > 0
            assert "repro_cache_tier_answers_hits" in str(text)
        finally:
            daemon.stop()


class TestNoStaleAcrossSwap:
    def test_generation_bump_never_serves_stale(self, replay, alt_summaries):
        """Swap to *different* summaries mid-session: answers must track.

        The second artifact is a re-summarization with another seed, so
        cached generation-1 answers are genuinely wrong afterwards - any
        tier leak across the swap produces a visible mismatch.
        """
        stack = replay["stack"]
        sums2_path = alt_summaries["sums_path"]
        precompute2_path = alt_summaries["precompute_path"]
        oracle2 = fresh_engine(stack, sums2_path)

        daemon = DaemonHarness(
            stack,
            config=ServeConfig(port=0),
            answer_cache_bytes=8 << 20,
            precompute_path=replay["precompute_path"],
        ).start()
        try:
            oracle1 = fresh_engine(stack)
            probes = replay["records"][:30]
            for record in probes:
                status, body, _ = daemon.search(
                    record["user"], record["query"], k=record["k"]
                )
                assert status == 200
                assert body["generation"] == 1
                want_results, want_stats = expected_payload(oracle1, record)
                assert body["results"] == want_results

            status, body, _ = daemon.request(
                "POST", "/admin/reload",
                {"summaries": str(sums2_path),
                 "precompute": str(precompute2_path)},
            )
            assert status == 200
            assert body["generation"] == 2

            changed = 0
            for record in probes:
                status, body, _ = daemon.search(
                    record["user"], record["query"], k=record["k"]
                )
                assert status == 200
                assert body["generation"] == 2
                want_results, want_stats = expected_payload(oracle2, record)
                assert body["results"] == want_results
                assert body["stats"] == want_stats
                old_results, _ = expected_payload(oracle1, record)
                if old_results != want_results:
                    changed += 1
            # The swap must have been observable - otherwise this test
            # proved nothing about staleness.
            assert changed > 0
            status, _, _ = daemon.request("GET", "/metrics")
            assert status == 200
            snapshot = daemon.registry.snapshot()
            assert snapshot.gauges.get("cache.tier.generation") == 2
        finally:
            daemon.stop()

    def test_mismatched_precompute_reload_refused(self, replay, alt_summaries):
        """Swapping summaries without the precompute fails; old gen serves."""
        stack = replay["stack"]
        sums2_path = alt_summaries["sums_path"]

        daemon = DaemonHarness(
            stack,
            config=ServeConfig(port=0),
            answer_cache_bytes=8 << 20,
            precompute_path=replay["precompute_path"],
        ).start()
        try:
            record = replay["records"][0]
            status, before, _ = daemon.search(
                record["user"], record["query"], k=record["k"]
            )
            assert status == 200 and before["generation"] == 1

            # New summaries + generation-1 precompute: fingerprints differ.
            status, body, _ = daemon.request(
                "POST", "/admin/reload", {"summaries": str(sums2_path)}
            )
            assert status == 400
            assert "precompute" in body["error"]["message"]

            status, after, _ = daemon.search(
                record["user"], record["query"], k=record["k"]
            )
            assert status == 200
            assert after["generation"] == 1
            assert after["results"] == before["results"]
        finally:
            daemon.stop()
