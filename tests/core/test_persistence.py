"""Unit tests for offline-artifact persistence."""

import numpy as np
import pytest

from repro.core import (
    PropagationIndex,
    TopicSummary,
    load_propagation_index,
    load_summaries,
    load_walk_index,
    save_propagation_index,
    save_summaries,
    save_walk_index,
)
from repro.exceptions import ConfigurationError, IndexNotBuiltError
from repro.graph import SocialGraph, preferential_attachment_graph
from repro.walks import WalkIndex


@pytest.fixture
def graph():
    return preferential_attachment_graph(40, 3, seed=1)


class TestSummaries:
    def test_roundtrip(self, graph, tmp_path):
        summaries = {
            0: TopicSummary(0, {1: 0.5, 2: 0.25}),
            3: TopicSummary(3, {7: 1.0}),
        }
        path = tmp_path / "summaries.json"
        save_summaries(summaries, graph, path)
        loaded = load_summaries(path, graph)
        assert set(loaded) == {0, 3}
        assert loaded[0].weights == {1: 0.5, 2: 0.25}
        assert loaded[3].topic_id == 3

    def test_wrong_graph_rejected(self, graph, tmp_path):
        path = tmp_path / "summaries.json"
        save_summaries({0: TopicSummary(0, {1: 0.5})}, graph, path)
        other = SocialGraph(3, [(0, 1, 0.5)])
        with pytest.raises(ConfigurationError, match="built for a graph"):
            load_summaries(path, other)


class TestPropagationIndexPersistence:
    def test_roundtrip_entries(self, graph, tmp_path):
        index = PropagationIndex(graph, 0.02)
        for node in (0, 5, 11):
            index.entry(node)
        path = tmp_path / "prop.npz"
        save_propagation_index(index, path)
        loaded = load_propagation_index(path, graph)
        assert loaded.theta == index.theta
        assert loaded.n_cached == 3
        for node in (0, 5, 11):
            original = index.entry(node)
            restored = loaded.entry(node)
            assert restored.gamma == pytest.approx(original.gamma)
            assert restored.marked == original.marked
            assert restored.branches == original.branches

    def test_uncached_entries_rebuild_lazily(self, graph, tmp_path):
        index = PropagationIndex(graph, 0.02)
        index.entry(0)
        path = tmp_path / "prop.npz"
        save_propagation_index(index, path)
        loaded = load_propagation_index(path, graph)
        fresh = loaded.entry(7)  # not persisted; rebuilt on demand
        assert fresh.gamma == pytest.approx(
            PropagationIndex(graph, 0.02).entry(7).gamma
        )

    def test_wrong_graph_rejected(self, graph, tmp_path):
        index = PropagationIndex(graph, 0.02)
        index.entry(0)
        path = tmp_path / "prop.npz"
        save_propagation_index(index, path)
        other = SocialGraph(3, [(0, 1, 0.5)])
        with pytest.raises(ConfigurationError):
            load_propagation_index(path, other)

    def test_fully_built_index_round_trips_exactly(self, graph, tmp_path):
        index = PropagationIndex(graph, 0.02, max_branches=5000).build_all()
        path = tmp_path / "prop_full.npz"
        save_propagation_index(index, path)
        loaded = load_propagation_index(path, graph)
        assert loaded.n_cached == graph.n_nodes
        assert loaded.theta == index.theta
        assert loaded.max_branches == 5000
        assert loaded.strict == index.strict
        assert loaded.memory_bytes() == index.memory_bytes()
        for node in graph.nodes:
            original = index.entry(node)
            restored = loaded.entry(node)
            # Exact equality: floats survive the NPZ round trip bit-for-bit.
            assert dict(restored.gamma) == dict(original.gamma)
            assert restored.marked == original.marked
            assert restored.branches == original.branches

    def test_empty_index_round_trips(self, graph, tmp_path):
        index = PropagationIndex(graph, 0.02)
        path = tmp_path / "prop_empty.npz"
        save_propagation_index(index, path)
        loaded = load_propagation_index(path, graph)
        assert loaded.n_cached == 0


class TestWalkIndexPersistence:
    def test_roundtrip_walks_and_queries(self, graph, tmp_path):
        index = WalkIndex.built(graph, 4, 3, seed=2)
        path = tmp_path / "walks.npz"
        save_walk_index(index, path)
        loaded = load_walk_index(path, graph)
        assert loaded.walk_length == 4
        assert loaded.samples_per_node == 3
        for node in graph.nodes:
            original = index.walks_from(node)
            restored = loaded.walks_from(node)
            assert len(restored) == len(original)
            for a, b in zip(original, restored):
                assert a.path.tolist() == b.path.tolist()
                assert a.visit_counts.tolist() == b.visit_counts.tolist()
            assert (
                loaded.reverse_reachable(node).tolist()
                == index.reverse_reachable(node).tolist()
            )
        assert np.allclose(
            loaded.hitting_frequencies(), index.hitting_frequencies()
        )

    def test_unbuilt_index_rejected(self, graph, tmp_path):
        index = WalkIndex(graph, 3, 2)
        with pytest.raises(IndexNotBuiltError):
            save_walk_index(index, tmp_path / "walks.npz")

    def test_wrong_graph_rejected(self, graph, tmp_path):
        index = WalkIndex.built(graph, 3, 2, seed=1)
        path = tmp_path / "walks.npz"
        save_walk_index(index, path)
        other = SocialGraph(3, [(0, 1, 0.5)])
        with pytest.raises(ConfigurationError):
            load_walk_index(path, other)
