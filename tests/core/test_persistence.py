"""Unit tests for offline-artifact persistence."""

import numpy as np
import pytest

from repro.core import (
    PropagationIndex,
    TopicSummary,
    load_propagation_index,
    load_summaries,
    load_walk_index,
    save_propagation_index,
    save_summaries,
    save_walk_index,
)
from repro.exceptions import (
    ArtifactCorruptedError,
    ArtifactError,
    ConfigurationError,
    IndexNotBuiltError,
)
from repro.graph import SocialGraph, preferential_attachment_graph
from repro.walks import WalkIndex


@pytest.fixture
def graph():
    return preferential_attachment_graph(40, 3, seed=1)


class TestSummaries:
    def test_roundtrip(self, graph, tmp_path):
        summaries = {
            0: TopicSummary(0, {1: 0.5, 2: 0.25}),
            3: TopicSummary(3, {7: 1.0}),
        }
        path = tmp_path / "summaries.json"
        save_summaries(summaries, graph, path)
        loaded = load_summaries(path, graph)
        assert set(loaded) == {0, 3}
        assert loaded[0].weights == {1: 0.5, 2: 0.25}
        assert loaded[3].topic_id == 3

    def test_wrong_graph_rejected(self, graph, tmp_path):
        path = tmp_path / "summaries.json"
        save_summaries({0: TopicSummary(0, {1: 0.5})}, graph, path)
        other = SocialGraph(3, [(0, 1, 0.5)])
        with pytest.raises(ConfigurationError, match="built for a graph"):
            load_summaries(path, other)


class TestPropagationIndexPersistence:
    def test_roundtrip_entries(self, graph, tmp_path):
        index = PropagationIndex(graph, 0.02)
        for node in (0, 5, 11):
            index.entry(node)
        path = tmp_path / "prop.npz"
        save_propagation_index(index, path)
        loaded = load_propagation_index(path, graph)
        assert loaded.theta == index.theta
        assert loaded.n_cached == 3
        for node in (0, 5, 11):
            original = index.entry(node)
            restored = loaded.entry(node)
            assert restored.gamma == pytest.approx(original.gamma)
            assert restored.marked == original.marked
            assert restored.branches == original.branches

    def test_uncached_entries_rebuild_lazily(self, graph, tmp_path):
        index = PropagationIndex(graph, 0.02)
        index.entry(0)
        path = tmp_path / "prop.npz"
        save_propagation_index(index, path)
        loaded = load_propagation_index(path, graph)
        fresh = loaded.entry(7)  # not persisted; rebuilt on demand
        assert fresh.gamma == pytest.approx(
            PropagationIndex(graph, 0.02).entry(7).gamma
        )

    def test_wrong_graph_rejected(self, graph, tmp_path):
        index = PropagationIndex(graph, 0.02)
        index.entry(0)
        path = tmp_path / "prop.npz"
        save_propagation_index(index, path)
        other = SocialGraph(3, [(0, 1, 0.5)])
        with pytest.raises(ConfigurationError):
            load_propagation_index(path, other)

    def test_fully_built_index_round_trips_exactly(self, graph, tmp_path):
        index = PropagationIndex(graph, 0.02, max_branches=5000).build_all()
        path = tmp_path / "prop_full.npz"
        save_propagation_index(index, path)
        loaded = load_propagation_index(path, graph)
        assert loaded.n_cached == graph.n_nodes
        assert loaded.theta == index.theta
        assert loaded.max_branches == 5000
        assert loaded.strict == index.strict
        assert loaded.memory_bytes() == index.memory_bytes()
        for node in graph.nodes:
            original = index.entry(node)
            restored = loaded.entry(node)
            # Exact equality: floats survive the NPZ round trip bit-for-bit.
            assert dict(restored.gamma) == dict(original.gamma)
            assert restored.marked == original.marked
            assert restored.branches == original.branches

    def test_empty_index_round_trips(self, graph, tmp_path):
        index = PropagationIndex(graph, 0.02)
        path = tmp_path / "prop_empty.npz"
        save_propagation_index(index, path)
        loaded = load_propagation_index(path, graph)
        assert loaded.n_cached == 0


class TestWalkIndexPersistence:
    def test_roundtrip_walks_and_queries(self, graph, tmp_path):
        index = WalkIndex.built(graph, 4, 3, seed=2)
        path = tmp_path / "walks.npz"
        save_walk_index(index, path)
        loaded = load_walk_index(path, graph)
        assert loaded.walk_length == 4
        assert loaded.samples_per_node == 3
        for node in graph.nodes:
            original = index.walks_from(node)
            restored = loaded.walks_from(node)
            assert len(restored) == len(original)
            for a, b in zip(original, restored):
                assert a.path.tolist() == b.path.tolist()
                assert a.visit_counts.tolist() == b.visit_counts.tolist()
            assert (
                loaded.reverse_reachable(node).tolist()
                == index.reverse_reachable(node).tolist()
            )
        assert np.allclose(
            loaded.hitting_frequencies(), index.hitting_frequencies()
        )

    def test_unbuilt_index_rejected(self, graph, tmp_path):
        index = WalkIndex(graph, 3, 2)
        with pytest.raises(IndexNotBuiltError):
            save_walk_index(index, tmp_path / "walks.npz")

    def test_wrong_graph_rejected(self, graph, tmp_path):
        index = WalkIndex.built(graph, 3, 2, seed=1)
        path = tmp_path / "walks.npz"
        save_walk_index(index, path)
        other = SocialGraph(3, [(0, 1, 0.5)])
        with pytest.raises(ConfigurationError):
            load_walk_index(path, other)


class TestCorruptedArtifacts:
    """Damaged artifacts must surface as typed errors, never raw numpy
    / json / zipfile exceptions from deep inside a loader."""

    def test_truncated_propagation_npz_rejected(self, graph, tmp_path):
        index = PropagationIndex(graph, 0.02)
        index.entry(0)
        path = tmp_path / "prop.npz"
        save_propagation_index(index, path)
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(ArtifactCorruptedError, match="unreadable NPZ"):
            load_propagation_index(path, graph)

    def test_truncated_walk_npz_rejected(self, graph, tmp_path):
        index = WalkIndex.built(graph, 3, 2, seed=1)
        path = tmp_path / "walks.npz"
        save_walk_index(index, path)
        raw = path.read_bytes()
        path.write_bytes(raw[:-40])
        with pytest.raises(ArtifactCorruptedError):
            load_walk_index(path, graph)

    def test_propagation_npz_missing_arrays_rejected(self, graph, tmp_path):
        path = tmp_path / "prop.npz"
        np.savez(path, theta=np.asarray([0.02]))
        with pytest.raises(ArtifactCorruptedError, match="missing keys"):
            load_propagation_index(path, graph)

    def test_walk_npz_missing_arrays_rejected(self, graph, tmp_path):
        path = tmp_path / "walks.npz"
        np.savez(path, walk_length=np.asarray([3]))
        with pytest.raises(ArtifactCorruptedError, match="missing keys"):
            load_walk_index(path, graph)

    def test_summaries_json_missing_keys_rejected(self, graph, tmp_path):
        path = tmp_path / "summaries.json"
        path.write_text('{"n_nodes": 40}')
        with pytest.raises(ArtifactCorruptedError, match="missing keys"):
            load_summaries(path, graph)

    def test_summaries_invalid_json_rejected(self, graph, tmp_path):
        path = tmp_path / "summaries.json"
        path.write_text('{"summaries": [tru')
        with pytest.raises(ArtifactCorruptedError, match="unreadable JSON"):
            load_summaries(path, graph)

    def test_summaries_tampered_payload_rejected(self, graph, tmp_path):
        import json

        path = tmp_path / "summaries.json"
        save_summaries({0: TopicSummary(0, {1: 0.5})}, graph, path)
        payload = json.loads(path.read_text())
        payload["summaries"]["0"]["1"] = 0.99  # bump one summary weight
        path.write_text(json.dumps(payload))  # checksum now stale
        with pytest.raises(ArtifactCorruptedError, match="checksum mismatch"):
            load_summaries(path, graph)

    def test_flipped_byte_in_propagation_npz_rejected(self, graph, tmp_path):
        index = PropagationIndex(graph, 0.02)
        index.entry(0)
        path = tmp_path / "prop.npz"
        save_propagation_index(index, path)
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(ArtifactCorruptedError):
            load_propagation_index(path, graph)

    def test_missing_artifacts_typed_errors(self, graph, tmp_path):
        with pytest.raises(ArtifactError, match="not found"):
            load_propagation_index(tmp_path / "nope.npz", graph)
        with pytest.raises(ArtifactError, match="not found"):
            load_walk_index(tmp_path / "nope.npz", graph)
        with pytest.raises(ArtifactError, match="not found"):
            load_summaries(tmp_path / "nope.json", graph)

    def test_newer_format_version_rejected(self, graph, tmp_path):
        import json

        path = tmp_path / "summaries.json"
        save_summaries({0: TopicSummary(0, {1: 0.5})}, graph, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 999
        path.write_text(json.dumps(payload))
        with pytest.raises(ArtifactCorruptedError, match="newer than"):
            load_summaries(path, graph)
