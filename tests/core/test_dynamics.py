"""Unit tests for dynamic maintenance (paper §4.4)."""

import pytest

from repro.core import (
    PITEngine,
    TopicUpdate,
    apply_topic_update,
    invalidate_propagation,
    refresh_walk_index,
    updated_topic_index,
)
from repro.exceptions import ConfigurationError
from repro.graph import preferential_attachment_graph
from repro.topics import TopicIndex


@pytest.fixture
def graph():
    return preferential_attachment_graph(60, 3, seed=4)


@pytest.fixture
def topic_index():
    return TopicIndex(
        60,
        {
            0: ["alpha topic"],
            1: ["alpha topic", "beta topic"],
            2: ["beta topic"],
            3: ["gamma topic"],
        },
    )


@pytest.fixture
def engine(graph, topic_index):
    return PITEngine(
        graph, topic_index, summarizer="lrw", samples_per_node=5, seed=4
    )


class TestTopicUpdate:
    def test_builders(self):
        update = TopicUpdate.adding(5, "x topic").merged_with(
            TopicUpdate.removing(6, "y topic")
        )
        assert update.add == {5: ("x topic",)}
        assert update.remove == {6: ("y topic",)}

    def test_merge_concatenates(self):
        a = TopicUpdate.adding(5, "x topic")
        b = TopicUpdate.adding(5, "y topic")
        assert a.merged_with(b).add[5] == ("x topic", "y topic")

    def test_merge_dedups_added_labels(self):
        a = TopicUpdate.adding(5, "x topic", "y topic")
        b = TopicUpdate.adding(5, "x topic", "z topic")
        # First-seen order, each label once.
        assert a.merged_with(b).add[5] == ("x topic", "y topic", "z topic")

    def test_merge_dedups_removed_labels(self):
        a = TopicUpdate.removing(3, "x topic")
        b = TopicUpdate.removing(3, "x topic", "y topic")
        assert a.merged_with(b).remove[3] == ("x topic", "y topic")

    def test_merge_dedups_labels_within_one_side(self):
        a = TopicUpdate.adding(2, "x topic", "x topic", "y topic")
        merged = a.merged_with(TopicUpdate())
        assert merged.add[2] == ("x topic", "y topic")


class TestUpdatedTopicIndex:
    def test_addition_grows_membership(self, topic_index):
        update = TopicUpdate.adding(5, "alpha topic")
        new = updated_topic_index(topic_index, update)
        assert 5 in new.topic_nodes("alpha topic").tolist()

    def test_removal_shrinks_membership(self, topic_index):
        update = TopicUpdate.removing(1, "beta topic")
        new = updated_topic_index(topic_index, update)
        assert 1 not in new.topic_nodes("beta topic").tolist()

    def test_new_topic_created(self, topic_index):
        update = TopicUpdate.adding(5, "delta topic")
        new = updated_topic_index(topic_index, update)
        assert "delta topic" in new

    def test_topic_vanishes_with_last_member(self, topic_index):
        update = TopicUpdate.removing(3, "gamma topic")
        new = updated_topic_index(topic_index, update)
        assert "gamma topic" not in new

    def test_removing_absent_label_rejected(self, topic_index):
        update = TopicUpdate.removing(0, "beta topic")
        with pytest.raises(ConfigurationError, match="does not carry"):
            updated_topic_index(topic_index, update)

    def test_out_of_range_node_rejected(self, topic_index):
        with pytest.raises(ConfigurationError):
            updated_topic_index(topic_index, TopicUpdate.adding(99, "x"))

    def test_duplicate_addition_idempotent(self, topic_index):
        update = TopicUpdate.adding(0, "alpha topic")
        new = updated_topic_index(topic_index, update)
        assert new.topic_nodes("alpha topic").tolist() == \
            topic_index.topic_nodes("alpha topic").tolist()


class TestApplyToEngine:
    def test_unchanged_summaries_kept(self, engine):
        engine.summary(engine.topic_index.resolve("alpha topic"))
        engine.summary(engine.topic_index.resolve("gamma topic"))
        stats = apply_topic_update(
            engine, TopicUpdate.adding(5, "beta topic")
        )
        # alpha and gamma memberships unchanged -> summaries survive.
        assert stats["kept"] == 2
        assert stats["invalidated"] == 0

    def test_changed_summary_invalidated(self, engine):
        engine.summary(engine.topic_index.resolve("beta topic"))
        stats = apply_topic_update(
            engine, TopicUpdate.adding(5, "beta topic")
        )
        assert stats["invalidated"] == 1

    def test_search_works_after_update(self, engine):
        before = engine.search(0, "topic", k=2)
        apply_topic_update(engine, TopicUpdate.adding(5, "delta topic"))
        after = engine.search(0, "topic", k=2)
        assert isinstance(after, list)
        assert engine.topic_index.n_topics == 4

    def test_rekeyed_summary_matches_new_ids(self, engine):
        alpha_old = engine.topic_index.resolve("alpha topic")
        engine.summary(alpha_old)
        apply_topic_update(engine, TopicUpdate.adding(7, "aaaa topic"))
        alpha_new = engine.topic_index.resolve("alpha topic")
        assert alpha_new != alpha_old  # "aaaa" sorts first, ids shift
        cached = engine._summaries[alpha_new]
        assert cached.topic_id == alpha_new


class TestInvalidatePropagation:
    def test_affected_entries_dropped(self, engine):
        index = engine.propagation_index
        entry = index.entry(0)
        some_member = next(iter(entry.gamma)) if entry.gamma else 0
        dropped = invalidate_propagation(index, [some_member])
        assert dropped >= 1
        assert 0 not in index._entries

    def test_unrelated_entries_survive(self):
        from repro.core import PropagationIndex
        from repro.graph import SocialGraph

        # Two disjoint chains: changes in one cannot affect the other.
        graph = SocialGraph(
            6, [(0, 1, 0.5), (1, 2, 0.5), (3, 4, 0.5), (4, 5, 0.5)]
        )
        index = PropagationIndex(graph, 0.1)
        index.entry(2)  # Gamma = {0, 1}
        index.entry(5)  # Gamma = {3, 4}
        dropped = invalidate_propagation(index, [3])
        assert dropped == 1
        assert 2 in index._entries
        assert 5 not in index._entries

    def test_empty_update_noop(self, engine):
        index = engine.propagation_index
        index.entry(0)
        assert invalidate_propagation(index, []) == 0

    def test_shard_backend_rejected(self, engine, tmp_path):
        from repro.core import load_sharded_index, save_sharded_index

        engine.propagation_index.build_all(workers=1)
        save_sharded_index(
            engine.propagation_index, tmp_path / "shards", shard_nodes=16
        )
        index = load_sharded_index(tmp_path / "shards", engine.graph)
        with pytest.raises(
            ConfigurationError, match="refresh_sharded_index"
        ):
            invalidate_propagation(index, [0])

    def test_shard_backend_empty_update_still_noop(self, engine, tmp_path):
        from repro.core import load_sharded_index, save_sharded_index

        engine.propagation_index.build_all(workers=1)
        save_sharded_index(
            engine.propagation_index, tmp_path / "shards", shard_nodes=16
        )
        index = load_sharded_index(tmp_path / "shards", engine.graph)
        assert invalidate_propagation(index, []) == 0


class TestReplaceTopicIndex:
    def test_node_count_mismatch_rejected(self, engine):
        with pytest.raises(ConfigurationError, match="nodes"):
            engine.replace_topic_index(TopicIndex(61, {0: ["x topic"]}))

    def test_miskeyed_summary_rejected(self, engine):
        alpha = engine.topic_index.resolve("alpha topic")
        summary = engine.summary(alpha)
        new_index = TopicIndex(60, {0: ["alpha topic"], 5: ["zz topic"]})
        with pytest.raises(ConfigurationError, match="re-key"):
            engine.replace_topic_index(new_index, {alpha + 1: summary})

    def test_kept_summaries_survive_swap(self, engine):
        alpha = engine.topic_index.resolve("alpha topic")
        summary = engine.summary(alpha)
        new_index = TopicIndex(
            60, {0: ["alpha topic"], 1: ["alpha topic"], 5: ["zz topic"]}
        )
        new_alpha = new_index.resolve("alpha topic")
        engine.replace_topic_index(
            new_index, {new_alpha: summary.with_topic_id(new_alpha)}
        )
        assert engine.topic_index is new_index
        assert engine.summaries[new_alpha].topic_id == new_alpha

    def test_unlisted_summaries_dropped(self, engine):
        engine.summary(engine.topic_index.resolve("alpha topic"))
        engine.replace_topic_index(TopicIndex(60, {0: ["solo topic"]}))
        assert engine.n_summaries == 0


class TestRefreshWalkIndex:
    def test_everything_derived_resets(self, engine):
        _ = engine.walk_index
        engine.summary(0)
        refresh_walk_index(engine)
        assert engine._walk_index is None
        assert engine.n_summaries == 0
        # And it rebuilds on demand.
        assert engine.walk_index.is_built
