"""Unit tests for TopicSummary and the Definition 1 error metric."""

import numpy as np
import pytest

from repro.core import SummaryArrays, TopicSummary, summarization_error
from repro.exceptions import ConfigurationError


class TestTopicSummary:
    def test_basic_properties(self):
        summary = TopicSummary(0, {3: 0.5, 1: 0.25})
        assert summary.representatives == (1, 3)
        assert summary.size == 2
        assert summary.total_weight == pytest.approx(0.75)

    def test_weight_lookup(self):
        summary = TopicSummary(0, {3: 0.5})
        assert summary.weight(3) == 0.5
        assert summary.weight(99) == 0.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            TopicSummary(0, {1: -0.1})

    def test_overweight_rejected(self):
        with pytest.raises(ConfigurationError):
            TopicSummary(0, {1: 0.7, 2: 0.7})

    def test_weight_sum_exactly_one_allowed(self):
        summary = TopicSummary(0, {1: 0.5, 2: 0.5})
        assert summary.total_weight == 1.0

    def test_empty_summary_allowed(self):
        summary = TopicSummary(0, {})
        assert summary.size == 0
        assert summary.total_weight == 0.0

    def test_restricted_to(self):
        summary = TopicSummary(0, {1: 0.4, 2: 0.3, 3: 0.3})
        restricted = summary.restricted_to([1, 3])
        assert restricted.representatives == (1, 3)
        assert restricted.topic_id == 0

    def test_weights_normalized_to_sorted_order(self):
        # Insertion order of the input mapping must not leak through:
        # every consumer (scalar iteration and the array kernels alike)
        # sees — and accumulates floats in — sorted representative order.
        summary = TopicSummary(0, {7: 0.2, 1: 0.3, 4: 0.1})
        assert list(summary.weights) == [1, 4, 7]
        other = TopicSummary(0, {4: 0.1, 7: 0.2, 1: 0.3})
        assert list(other.weights.items()) == list(summary.weights.items())


class TestSummaryArrays:
    def test_arrays_match_weights(self):
        summary = TopicSummary(0, {5: 0.25, 2: 0.5})
        arrays = summary.arrays()
        assert arrays.representatives.tolist() == [2, 5]
        assert arrays.weights.tolist() == [0.5, 0.25]
        assert arrays.representatives.dtype == np.int64
        assert arrays.weights.dtype == np.float64
        assert arrays.size == 2

    def test_arrays_cached_on_instance(self):
        summary = TopicSummary(0, {1: 0.5})
        assert summary.arrays() is summary.arrays()

    def test_arrays_frozen(self):
        arrays = TopicSummary(0, {1: 0.5}).arrays()
        with pytest.raises(ValueError):
            arrays.weights[0] = 0.9

    def test_empty_summary_arrays(self):
        arrays = TopicSummary(0, {}).arrays()
        assert arrays.size == 0
        assert arrays.memory_bytes() == 0

    def test_standalone_construction_coerces_dtypes(self):
        arrays = SummaryArrays([3, 1], [0.5, 0.25])
        assert arrays.representatives.dtype == np.int64
        assert arrays.weights.dtype == np.float64


class TestSummaryMemory:
    def test_memory_without_array_form(self):
        summary = TopicSummary(0, {1: 0.5, 2: 0.25})
        assert summary.memory_bytes() == 16 * 2

    def test_memory_includes_cached_array_form(self):
        summary = TopicSummary(0, {1: 0.5, 2: 0.25})
        base = summary.memory_bytes()
        arrays = summary.arrays()
        assert summary.memory_bytes() == base + arrays.memory_bytes()


class TestSummarizationError:
    def test_perfect_summary_zero_error(self, chain_graph):
        # The topic node itself, with full weight, reproduces I exactly.
        summary = TopicSummary(0, {0: 1.0})
        error = summarization_error(chain_graph, [0], summary, length=3)
        assert error == pytest.approx(0.0)

    def test_empty_summary_error_is_total_influence(self, chain_graph):
        from repro.core import topic_influence_vector

        summary = TopicSummary(0, {})
        error = summarization_error(chain_graph, [0], summary, length=3)
        assert error == pytest.approx(
            topic_influence_vector(chain_graph, [0], 3).sum()
        )

    def test_better_placed_representative_has_lower_error(self, chain_graph):
        # Topic nodes {0, 1}; representing them by node 0 (upstream of both
        # paths) is better than by node 3 (downstream, reaches almost nothing).
        topic = [0, 1]
        good = TopicSummary(0, {0: 0.5, 1: 0.5})
        bad = TopicSummary(0, {3: 1.0})
        good_error = summarization_error(chain_graph, topic, good, length=3)
        bad_error = summarization_error(chain_graph, topic, bad, length=3)
        assert good_error < bad_error

    def test_error_nonnegative(self, diamond_graph):
        summary = TopicSummary(0, {2: 0.5})
        assert summarization_error(diamond_graph, [0, 1], summary, length=2) >= 0
