"""Unit tests for TopicSummary and the Definition 1 error metric."""

import pytest

from repro.core import TopicSummary, summarization_error
from repro.exceptions import ConfigurationError


class TestTopicSummary:
    def test_basic_properties(self):
        summary = TopicSummary(0, {3: 0.5, 1: 0.25})
        assert summary.representatives == (1, 3)
        assert summary.size == 2
        assert summary.total_weight == pytest.approx(0.75)

    def test_weight_lookup(self):
        summary = TopicSummary(0, {3: 0.5})
        assert summary.weight(3) == 0.5
        assert summary.weight(99) == 0.0

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigurationError):
            TopicSummary(0, {1: -0.1})

    def test_overweight_rejected(self):
        with pytest.raises(ConfigurationError):
            TopicSummary(0, {1: 0.7, 2: 0.7})

    def test_weight_sum_exactly_one_allowed(self):
        summary = TopicSummary(0, {1: 0.5, 2: 0.5})
        assert summary.total_weight == 1.0

    def test_empty_summary_allowed(self):
        summary = TopicSummary(0, {})
        assert summary.size == 0
        assert summary.total_weight == 0.0

    def test_restricted_to(self):
        summary = TopicSummary(0, {1: 0.4, 2: 0.3, 3: 0.3})
        restricted = summary.restricted_to([1, 3])
        assert restricted.representatives == (1, 3)
        assert restricted.topic_id == 0


class TestSummarizationError:
    def test_perfect_summary_zero_error(self, chain_graph):
        # The topic node itself, with full weight, reproduces I exactly.
        summary = TopicSummary(0, {0: 1.0})
        error = summarization_error(chain_graph, [0], summary, length=3)
        assert error == pytest.approx(0.0)

    def test_empty_summary_error_is_total_influence(self, chain_graph):
        from repro.core import topic_influence_vector

        summary = TopicSummary(0, {})
        error = summarization_error(chain_graph, [0], summary, length=3)
        assert error == pytest.approx(
            topic_influence_vector(chain_graph, [0], 3).sum()
        )

    def test_better_placed_representative_has_lower_error(self, chain_graph):
        # Topic nodes {0, 1}; representing them by node 0 (upstream of both
        # paths) is better than by node 3 (downstream, reaches almost nothing).
        topic = [0, 1]
        good = TopicSummary(0, {0: 0.5, 1: 0.5})
        bad = TopicSummary(0, {3: 1.0})
        good_error = summarization_error(chain_graph, topic, good, length=3)
        bad_error = summarization_error(chain_graph, topic, bad, length=3)
        assert good_error < bad_error

    def test_error_nonnegative(self, diamond_graph):
        summary = TopicSummary(0, {2: 0.5})
        assert summarization_error(diamond_graph, [0, 1], summary, length=2) >= 0
