"""Unit tests for streaming graph deltas (the vectorized dynamics path).

Covers the full incremental pipeline: :class:`GraphDelta` batch
validation, the CSR splice in :func:`apply_delta_to_graph` (checked
bit-for-bit against a from-scratch :class:`SocialGraph` over the edited
edge list), the two-tier :func:`affected_nodes` closure, engine-level
:func:`apply_graph_delta` parity with a fresh rebuild, and the
:meth:`ServingEngine.apply_delta` answer-tier invalidation contract -
after a delta, every answer the engine serves (cached or recomputed)
must be bit-exact against a from-scratch oracle, for both the in-memory
and sharded index backends.
"""

import numpy as np
import pytest

from repro.core import (
    GraphDelta,
    PITEngine,
    PropagationIndex,
    ServingEngine,
    affected_nodes,
    apply_delta_to_graph,
    apply_graph_delta,
    load_sharded_index,
    save_sharded_index,
)
from repro.datasets import data_2k
from repro.exceptions import ConfigurationError, EdgeError, NodeNotFoundError
from repro.graph import (
    SocialGraph,
    preferential_attachment_graph,
    theta_forward_closure,
)
from repro.obs import MetricsRegistry
from repro.topics import TopicIndex


def edge_dict(graph):
    sources, targets, probs = graph.edge_arrays()
    return {
        (int(s), int(t)): float(p)
        for s, t, p in zip(sources, targets, probs)
    }


def graphs_identical(a, b):
    """Both CSR faces bit-equal (the splice must match from_arrays)."""
    return (
        a.n_nodes == b.n_nodes
        and np.array_equal(a._out_indptr, b._out_indptr)
        and np.array_equal(a._out_targets, b._out_targets)
        and np.array_equal(a._out_probs, b._out_probs)
        and np.array_equal(a._in_indptr, b._in_indptr)
        and np.array_equal(a._in_sources, b._in_sources)
        and np.array_equal(a._in_probs, b._in_probs)
    )


def entries_identical(a, b):
    return (
        np.array_equal(a.sources, b.sources)
        and np.array_equal(a.probabilities, b.probabilities)
        and np.array_equal(a.marked_array, b.marked_array)
    )


@pytest.fixture
def pa_graph():
    return preferential_attachment_graph(40, 3, seed=2)


class TestGraphDelta:
    def test_convenience_constructors(self):
        assert GraphDelta.inserting((0, 1, 0.5)).inserts == ((0, 1, 0.5),)
        assert GraphDelta.deleting((2, 3)).deletes == ((2, 3),)
        assert GraphDelta.reweighting((4, 5, 0.1)).reweights == ((4, 5, 0.1),)
        aging = GraphDelta.aging(0.9, floor=0.01)
        assert aging.decay == 0.9
        assert aging.decay_floor == 0.01

    def test_is_empty(self):
        assert GraphDelta().is_empty
        assert not GraphDelta.inserting((0, 1, 0.5)).is_empty
        assert not GraphDelta.aging(0.99).is_empty

    def test_n_edits_excludes_decay(self):
        delta = GraphDelta(
            inserts=((0, 1, 0.5),),
            deletes=((2, 3), (4, 5)),
            reweights=((6, 7, 0.2),),
            decay=0.9,
        )
        assert delta.n_edits == 4

    def test_merged_with_concatenates(self):
        merged = GraphDelta.inserting((0, 1, 0.5)).merged_with(
            GraphDelta.deleting((2, 3)).merged_with(
                GraphDelta.aging(0.5, floor=0.1)
            )
        )
        assert merged.inserts == ((0, 1, 0.5),)
        assert merged.deletes == ((2, 3),)
        assert merged.decay == 0.5
        assert merged.decay_floor == 0.1

    def test_merging_two_aging_deltas_rejected(self):
        with pytest.raises(ConfigurationError, match="two aging"):
            GraphDelta.aging(0.9).merged_with(GraphDelta.aging(0.8))

    @pytest.mark.parametrize("decay", [0.0, -0.5, 1.5])
    def test_bad_decay_rejected(self, decay):
        with pytest.raises(ConfigurationError, match="decay"):
            GraphDelta(decay=decay)

    @pytest.mark.parametrize("floor", [-0.1, 1.0, 2.0])
    def test_bad_decay_floor_rejected(self, floor):
        with pytest.raises(ConfigurationError, match="decay_floor"):
            GraphDelta(decay_floor=floor)


class TestApplyDeltaToGraph:
    def test_matches_from_scratch_graph(self, pa_graph):
        edges = edge_dict(pa_graph)
        existing = sorted(edges)
        (ds, dt), (rs, rt) = existing[3], existing[10]
        iv, it = next(
            (s, t)
            for s in range(pa_graph.n_nodes)
            for t in range(pa_graph.n_nodes)
            if s != t and (s, t) not in edges
        )
        delta = GraphDelta(
            inserts=((iv, it, 0.375),),
            deletes=(((ds, dt)),),
            reweights=((rs, rt, 0.625),),
        )
        new_graph, application = apply_delta_to_graph(pa_graph, delta)

        expected = dict(edges)
        del expected[(ds, dt)]
        expected[(rs, rt)] = 0.625
        expected[(iv, it)] = 0.375
        scratch = SocialGraph(
            pa_graph.n_nodes,
            [(s, t, p) for (s, t), p in expected.items()],
        )
        assert graphs_identical(new_graph, scratch)
        assert application.n_inserted == 1
        assert application.n_deleted == 1
        assert application.n_reweighted == 1
        assert not application.full

    def test_original_graph_untouched(self, pa_graph):
        before = edge_dict(pa_graph)
        (s, t) = next(iter(before))
        apply_delta_to_graph(pa_graph, GraphDelta.deleting((s, t)))
        assert edge_dict(pa_graph) == before

    def test_seeds_are_sorted_unique_targets(self, pa_graph):
        edges = sorted(edge_dict(pa_graph))
        (ds, dt), (rs, rt) = edges[0], edges[5]
        _, application = apply_delta_to_graph(
            pa_graph,
            GraphDelta(deletes=((ds, dt),), reweights=((rs, rt, 0.5),)),
        )
        assert application.seeds.tolist() == sorted({dt, rt})

    def test_removed_holds_deleted_edges(self, pa_graph):
        edges = sorted(edge_dict(pa_graph))
        (ds, dt) = edges[7]
        _, application = apply_delta_to_graph(
            pa_graph, GraphDelta.deleting((ds, dt))
        )
        removed_src, removed_tgt = application.removed
        assert removed_src.tolist() == [ds]
        assert removed_tgt.tolist() == [dt]

    def test_decay_ages_edges_below_floor(self, chain_graph):
        # 0.5 * 0.5 = 0.25 < 0.3: every chain edge ages out.
        delta = GraphDelta.aging(0.5, floor=0.3)
        new_graph, application = apply_delta_to_graph(chain_graph, delta)
        assert application.full
        assert application.n_aged == 4
        assert new_graph.n_edges == 0

    def test_decay_multiplies_surviving_probs(self, chain_graph):
        new_graph, application = apply_delta_to_graph(
            chain_graph, GraphDelta.aging(0.5)
        )
        assert application.n_aged == 0
        assert all(
            p == pytest.approx(0.25) for p in edge_dict(new_graph).values()
        )

    def test_decay_matches_scratch_graph(self, pa_graph):
        delta = GraphDelta.aging(0.25, floor=0.05)
        new_graph, _ = apply_delta_to_graph(pa_graph, delta)
        survivors = [
            (s, t, p * 0.25)
            for (s, t), p in edge_dict(pa_graph).items()
            if p * 0.25 >= 0.05
        ]
        scratch = SocialGraph(pa_graph.n_nodes, survivors)
        assert graphs_identical(new_graph, scratch)

    def test_delete_missing_edge_rejected(self, chain_graph):
        with pytest.raises(ConfigurationError, match="no such edge"):
            apply_delta_to_graph(chain_graph, GraphDelta.deleting((0, 4)))

    def test_reweight_missing_edge_rejected(self, chain_graph):
        with pytest.raises(ConfigurationError, match="no such edge"):
            apply_delta_to_graph(
                chain_graph, GraphDelta.reweighting((4, 0, 0.5))
            )

    def test_insert_existing_edge_rejected(self, chain_graph):
        with pytest.raises(ConfigurationError, match="already exists"):
            apply_delta_to_graph(
                chain_graph, GraphDelta.inserting((0, 1, 0.5))
            )

    def test_duplicate_edge_in_batch_rejected(self, chain_graph):
        delta = GraphDelta(
            deletes=((0, 1),), reweights=((0, 1, 0.9),)
        )
        with pytest.raises(ConfigurationError, match="more than once"):
            apply_delta_to_graph(chain_graph, delta)

    @pytest.mark.parametrize("prob", [0.0, -0.5, 1.5])
    def test_bad_insert_probability_rejected(self, chain_graph, prob):
        with pytest.raises(EdgeError, match="probabilities"):
            apply_delta_to_graph(
                chain_graph, GraphDelta.inserting((4, 0, prob))
            )

    def test_bad_reweight_probability_rejected(self, chain_graph):
        with pytest.raises(EdgeError, match="probabilities"):
            apply_delta_to_graph(
                chain_graph, GraphDelta.reweighting((0, 1, 2.0))
            )

    def test_self_loop_insert_rejected(self, chain_graph):
        with pytest.raises(EdgeError, match="self-loop"):
            apply_delta_to_graph(
                chain_graph, GraphDelta.inserting((2, 2, 0.5))
            )

    def test_out_of_range_node_rejected(self, chain_graph):
        with pytest.raises(NodeNotFoundError):
            apply_delta_to_graph(
                chain_graph, GraphDelta.inserting((0, 99, 0.5))
            )


class TestAffectedNodes:
    def test_decay_affects_every_node(self, chain_graph):
        new_graph, application = apply_delta_to_graph(
            chain_graph, GraphDelta.aging(0.5)
        )
        affected = affected_nodes(chain_graph, new_graph, application)
        assert affected.tolist() == list(range(5))

    def test_empty_delta_affects_nothing(self, chain_graph):
        new_graph, application = apply_delta_to_graph(
            chain_graph, GraphDelta()
        )
        assert affected_nodes(chain_graph, new_graph, application).size == 0

    def test_downstream_of_deleted_edge(self, chain_graph):
        # Deleting 2 -> 3 can only change entries downstream of node 3.
        new_graph, application = apply_delta_to_graph(
            chain_graph, GraphDelta.deleting((2, 3))
        )
        affected = affected_nodes(chain_graph, new_graph, application)
        assert affected.tolist() == [3, 4]

    def test_insert_closes_over_new_graph(self, chain_graph):
        # Inserting 4 -> 0 makes the chain a cycle: everything downstream
        # of node 0 in the *new* graph is affected.
        new_graph, application = apply_delta_to_graph(
            chain_graph, GraphDelta.inserting((4, 0, 0.5))
        )
        affected = affected_nodes(chain_graph, new_graph, application)
        assert affected.tolist() == [0, 1, 2, 3, 4]

    def test_delete_closes_over_old_graph(self, chain_graph):
        # Deleting 0 -> 1: node 1 no longer reaches anything through the
        # removed edge in the new graph, but its old-graph downstream
        # entries (2, 3, 4) all saw paths through the edge and must be
        # affected; the union topology covers them.
        new_graph, application = apply_delta_to_graph(
            chain_graph, GraphDelta.deleting((0, 1))
        )
        affected = affected_nodes(chain_graph, new_graph, application)
        assert affected.tolist() == [1, 2, 3, 4]

    def test_theta_bounds_the_closure(self, chain_graph):
        # Reweighting 0 -> 1 seeds at node 1 with product 1; the walk to
        # node 3 has product 0.25 < 0.3 and falls outside the horizon.
        new_graph, application = apply_delta_to_graph(
            chain_graph, GraphDelta.reweighting((0, 1, 0.9))
        )
        plain = affected_nodes(chain_graph, new_graph, application)
        bounded = affected_nodes(
            chain_graph, new_graph, application, theta=0.3
        )
        assert plain.tolist() == [1, 2, 3, 4]
        assert bounded.tolist() == [1, 2]
        assert np.all(np.isin(bounded, plain))

    def test_theta_closure_subset_on_random_graph(self, pa_graph):
        edges = sorted(edge_dict(pa_graph))
        delta = GraphDelta.reweighting((*edges[4], 0.5))
        new_graph, application = apply_delta_to_graph(pa_graph, delta)
        plain = affected_nodes(pa_graph, new_graph, application)
        bounded = affected_nodes(
            pa_graph, new_graph, application, theta=0.2
        )
        assert np.all(np.isin(bounded, plain))


class TestApplyGraphDelta:
    @pytest.fixture
    def engine(self):
        graph = preferential_attachment_graph(60, 3, seed=4)
        topic_index = TopicIndex(
            60,
            {
                0: ["alpha topic"],
                1: ["alpha topic", "beta topic"],
                2: ["beta topic"],
                3: ["gamma topic"],
            },
        )
        return PITEngine(
            graph, topic_index, summarizer="lrw",
            samples_per_node=5, seed=4, theta=0.01,
        )

    def test_index_parity_with_fresh_rebuild(self, engine):
        old_index = engine.propagation_index
        old_index.build_all(workers=1)
        edges = sorted(edge_dict(engine.graph))
        delta = GraphDelta(
            deletes=(edges[2],),
            reweights=((*edges[9], 0.75),),
        )
        report = apply_graph_delta(engine, delta)
        fresh = PropagationIndex(
            engine.graph,
            old_index.theta,
            max_branches=old_index.max_branches,
            strict=old_index.strict,
        )
        for node in range(engine.graph.n_nodes):
            assert entries_identical(
                engine.propagation_index.entry(node), fresh.entry(node)
            )
        assert report["deleted"] == 1
        assert report["reweighted"] == 1
        assert report["affected"] >= 1
        assert report["reachable"] >= report["affected"]

    def test_walk_index_dropped_and_search_works(self, engine):
        _ = engine.walk_index
        edges = sorted(edge_dict(engine.graph))
        apply_graph_delta(engine, GraphDelta.deleting(edges[0]))
        assert engine._walk_index is None
        results = engine.search(0, "topic", k=2)
        assert isinstance(results, list)

    def test_summaries_outside_reachable_region_kept(self):
        # Two disjoint chains; a delta on the right chain cannot touch
        # the left topic's members or representatives.
        graph = SocialGraph(
            6, [(0, 1, 0.5), (1, 2, 0.5), (3, 4, 0.5), (4, 5, 0.5)]
        )
        topic_index = TopicIndex(
            6, {0: ["left topic"], 1: ["left topic"],
                4: ["right topic"], 5: ["right topic"]}
        )
        engine = PITEngine(
            graph, topic_index, summarizer="lrw",
            samples_per_node=5, seed=1, theta=0.01,
        )
        left = engine.topic_index.resolve("left topic")
        right = engine.topic_index.resolve("right topic")
        left_summary = engine.summary(left)
        engine.summary(right)
        report = apply_graph_delta(
            engine, GraphDelta.reweighting((3, 4, 0.9))
        )
        assert report["summaries_kept"] == 1
        assert report["summaries_repaired"] == 1
        assert engine.summaries[left] is left_summary
        assert right not in engine.summaries


class TestServingDeltaContract:
    """After a streamed delta, the serving engine must never serve a
    stale answer: every response - surviving cached answers included -
    must be bit-exact against a from-scratch engine over the new graph
    (same summaries, per the graceful-staleness contract).
    """

    TERMS = ("phone", "camera", "music", "laptop", "tv")

    def _build(self, seed, n_nodes):
        bundle = data_2k(seed=seed, n_nodes=n_nodes, with_corpus=False)
        # theta=0.02 keeps the theta-affected set local, so the sharded
        # arm genuinely exercises the carried-shard fast path.
        engine = PITEngine.from_dataset(
            bundle, summarizer="rcl", seed=seed, theta=0.02
        )
        engine.propagation_index.build_all(workers=1)
        engine.build_summaries()
        return bundle, engine

    def _delta_for(self, graph, seed):
        edges = sorted(edge_dict(graph))
        rng = np.random.default_rng(seed)
        picks = rng.choice(len(edges), size=2, replace=False)
        (ds, dt), (rs, rt) = edges[picks[0]], edges[picks[1]]
        existing = set(edges)
        iv, it = next(
            (s, t)
            for s in range(graph.n_nodes)
            for t in range(graph.n_nodes)
            if s != t and (s, t) not in existing and (s, t) != (ds, dt)
        )
        return GraphDelta(
            inserts=((iv, it, 0.35),),
            deletes=((ds, dt),),
            reweights=((rs, rt, 0.45),),
        )

    def _check_contract(self, serving, registry, bundle, engine, delta):
        rng = np.random.default_rng(bundle.graph.n_nodes)
        requests = sorted(
            {
                (int(rng.integers(bundle.graph.n_nodes)), term)
                for term in self.TERMS
                for _ in range(3)
            }
        )
        warmed = {
            req: serving.search(req[0], req[1], k=5, with_stats=True)
            for req in requests
        }
        report = serving.apply_delta(delta)
        assert report["answers_invalidated"] <= len(requests)

        oracle = ServingEngine(
            serving.graph,
            bundle.topic_index,
            engine.summaries,
            theta=engine.propagation_index.theta,
        )
        hits_before = (
            registry.snapshot().counters.get("cache.tier.answers.hits", 0)
        )
        moved = 0
        for req in requests:
            got = serving.search(req[0], req[1], k=5, with_stats=True)
            want = oracle.search(req[0], req[1], k=5, with_stats=True)
            assert got == want, f"stale or wrong answer for {req}"
            if got != warmed[req]:
                moved += 1
        hits_after = (
            registry.snapshot().counters.get("cache.tier.answers.hits", 0)
        )
        # Surgical invalidation: exactly the surviving answers hit the
        # answer tier on replay; every answer that moved was evicted.
        survivors = len(requests) - report["answers_invalidated"]
        assert hits_after - hits_before == survivors
        assert moved <= report["answers_invalidated"]
        return report

    @pytest.mark.parametrize("seed,n_nodes", [(7, 140), (1234, 120)])
    def test_memory_backend_never_stale(self, seed, n_nodes):
        bundle, engine = self._build(seed, n_nodes)
        registry = MetricsRegistry()
        serving = ServingEngine(
            bundle.graph,
            bundle.topic_index,
            engine.summaries,
            engine.propagation_index,
            theta=engine.propagation_index.theta,
            answer_cache_bytes=1 << 20,
            metrics=registry,
        )
        delta = self._delta_for(bundle.graph, seed)
        self._check_contract(serving, registry, bundle, engine, delta)

    def test_sharded_backend_never_stale(self, tmp_path):
        bundle, engine = self._build(7, 140)
        save_sharded_index(
            engine.propagation_index, tmp_path / "shards", shard_nodes=16
        )
        index = load_sharded_index(
            tmp_path / "shards", bundle.graph, cache_bytes=1 << 20
        )
        registry = MetricsRegistry()
        serving = ServingEngine(
            bundle.graph,
            bundle.topic_index,
            engine.summaries,
            index,
            theta=index.theta,
            answer_cache_bytes=1 << 20,
            metrics=registry,
        )
        # A single peripheral reweight: its theta-closure stays local,
        # so the refresh genuinely carries clean shards over.
        theta = index.theta
        graph = bundle.graph
        edges = sorted(edge_dict(graph))
        target = min(
            {t for _, t in edges},
            key=lambda t: theta_forward_closure(graph, [t], theta).size,
        )
        rs, rt = next((s, t) for s, t in edges if t == target)
        delta = GraphDelta.reweighting((rs, rt, 0.45))
        report = self._check_contract(
            serving, registry, bundle, engine, delta
        )
        # The refresh rewrote only the dirty shards.
        assert report["shards_rewritten"] >= 1
        assert report["shards_carried"] >= 1
