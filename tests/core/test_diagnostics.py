"""Unit tests for summary diagnostics."""

import math

import pytest

from repro.core import TopicSummary, diagnose_summary, diagnostics_table
from repro.graph import SocialGraph
from repro.topics import TopicIndex


@pytest.fixture
def stack(chain_graph):
    topic_index = TopicIndex(5, {1: ["mid topic"], 2: ["mid topic"],
                                 4: ["end topic"]})
    return chain_graph, topic_index


class TestDiagnoseSummary:
    def test_topic_node_representative(self, stack):
        graph, topic_index = stack
        topic = topic_index.resolve("mid topic")
        summary = TopicSummary(topic, {1: 0.5, 2: 0.5})
        diag = diagnose_summary(graph, topic_index, summary)
        assert diag.topic_size == 2
        assert diag.n_representatives == 2
        assert diag.total_weight == pytest.approx(1.0)
        assert diag.representative_overlap == 1.0
        assert diag.mean_distance_to_topic == 0.0
        assert diag.l1_error is None

    def test_upstream_representative_distance(self, stack):
        graph, topic_index = stack
        topic = topic_index.resolve("mid topic")
        # Node 0 reaches topic node 1 in one hop.
        summary = TopicSummary(topic, {0: 1.0})
        diag = diagnose_summary(graph, topic_index, summary)
        assert diag.representative_overlap == 0.0
        assert diag.mean_distance_to_topic == 1.0

    def test_unreachable_representative_capped(self, stack):
        graph, topic_index = stack
        topic = topic_index.resolve("mid topic")
        # Node 4 is downstream of everything: cannot reach topic nodes.
        summary = TopicSummary(topic, {4: 1.0})
        diag = diagnose_summary(graph, topic_index, summary, distance_cap=3)
        assert diag.mean_distance_to_topic == 4.0  # cap + 1

    def test_entropy_extremes(self, stack):
        graph, topic_index = stack
        topic = topic_index.resolve("mid topic")
        concentrated = diagnose_summary(
            graph, topic_index, TopicSummary(topic, {1: 1.0})
        )
        balanced = diagnose_summary(
            graph, topic_index, TopicSummary(topic, {1: 0.5, 2: 0.5})
        )
        assert concentrated.weight_entropy == 0.0
        assert balanced.weight_entropy == pytest.approx(1.0)

    def test_error_computed_on_request(self, stack):
        graph, topic_index = stack
        topic = topic_index.resolve("mid topic")
        summary = TopicSummary(topic, {1: 0.5, 2: 0.5})
        diag = diagnose_summary(
            graph, topic_index, summary, compute_error=True
        )
        assert diag.l1_error == pytest.approx(0.0)

    def test_empty_summary(self, stack):
        graph, topic_index = stack
        topic = topic_index.resolve("end topic")
        diag = diagnose_summary(graph, topic_index, TopicSummary(topic, {}))
        assert diag.n_representatives == 0
        assert math.isnan(diag.mean_distance_to_topic)


class TestDiagnosticsTable:
    def test_table_rows(self, stack):
        graph, topic_index = stack
        summaries = [
            TopicSummary(topic_index.resolve("mid topic"), {1: 1.0}),
            TopicSummary(topic_index.resolve("end topic"), {4: 1.0}),
        ]
        table = diagnostics_table(graph, topic_index, summaries)
        assert len(table.rows) == 2
        assert table.rows[0][0] == "mid topic"
        assert table.rows[0][-1] == "-"  # error not computed
