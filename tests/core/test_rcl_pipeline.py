"""Unit tests for the RCL-A summarizer pipeline (Algorithm 5)."""

import pytest

from repro.core.rcl import RCLSummarizer
from repro.datasets import data_2k
from repro.exceptions import ConfigurationError
from repro.graph import preferential_attachment_graph
from repro.topics import TopicIndex
from repro.walks import WalkIndex


@pytest.fixture(scope="module")
def stack():
    graph = preferential_attachment_graph(150, 4, seed=3)
    topic_index = TopicIndex(
        150,
        {v: ["big topic"] for v in range(0, 60)}
        | {v: ["small topic"] for v in range(60, 66)}
        | {149: ["solo topic"]},
    )
    walk_index = WalkIndex.built(graph, 4, 10, seed=3)
    return graph, topic_index, walk_index


class TestConstruction:
    def test_parameter_validation(self, stack):
        graph, topic_index, walk_index = stack
        with pytest.raises(ConfigurationError):
            RCLSummarizer(graph, topic_index, sample_rate=0.0)
        with pytest.raises(ConfigurationError):
            RCLSummarizer(graph, topic_index, rep_fraction=1.5)
        with pytest.raises(ConfigurationError):
            RCLSummarizer(graph, topic_index, max_hops=0)

    def test_foreign_walk_index_rejected(self, stack):
        graph, topic_index, _ = stack
        other = preferential_attachment_graph(20, 2, seed=1)
        foreign = WalkIndex.built(other, 3, 2, seed=1)
        with pytest.raises(ConfigurationError):
            RCLSummarizer(graph, topic_index, walk_index=foreign)


class TestClustering:
    def test_groups_partition_topic(self, stack):
        graph, topic_index, walk_index = stack
        summarizer = RCLSummarizer(
            graph, topic_index, walk_index=walk_index, seed=5
        )
        groups = summarizer.cluster_topic(topic_index.resolve("big topic"))
        members = sorted(m for g in groups for m in g)
        assert members == list(range(60))

    def test_singleton_topic_single_group(self, stack):
        graph, topic_index, walk_index = stack
        summarizer = RCLSummarizer(
            graph, topic_index, walk_index=walk_index, seed=5
        )
        groups = summarizer.cluster_topic(topic_index.resolve("solo topic"))
        assert groups == [(149,)]

    def test_n_clusters_scales_with_mu(self, stack):
        graph, topic_index, walk_index = stack
        low = RCLSummarizer(
            graph, topic_index, rep_fraction=0.05, walk_index=walk_index
        )
        high = RCLSummarizer(
            graph, topic_index, rep_fraction=0.5, walk_index=walk_index
        )
        topic = topic_index.resolve("big topic")
        assert high.n_clusters_for(topic) > low.n_clusters_for(topic)

    def test_exact_reachability_variant(self, stack):
        graph, topic_index, _ = stack
        summarizer = RCLSummarizer(graph, topic_index, seed=5)  # no index
        groups = summarizer.cluster_topic(topic_index.resolve("small topic"))
        members = sorted(m for g in groups for m in g)
        assert members == list(range(60, 66))


class TestSummaries:
    def test_weights_sum_to_one(self, stack):
        graph, topic_index, walk_index = stack
        summarizer = RCLSummarizer(
            graph, topic_index, walk_index=walk_index, seed=5
        )
        summary = summarizer.summarize(topic_index.resolve("big topic"))
        assert summary.total_weight == pytest.approx(1.0)

    def test_weight_proportional_to_group_size(self, stack):
        graph, topic_index, walk_index = stack
        summarizer = RCLSummarizer(
            graph, topic_index, walk_index=walk_index, seed=5
        )
        summary = summarizer.summarize(topic_index.resolve("solo topic"))
        assert summary.total_weight == pytest.approx(1.0)
        assert summary.size == 1

    def test_label_resolution(self, stack):
        graph, topic_index, walk_index = stack
        summarizer = RCLSummarizer(
            graph, topic_index, walk_index=walk_index, seed=5
        )
        topic_id = topic_index.resolve("small topic")
        assert summarizer.summarize(topic_id).topic_id == topic_id

    def test_deterministic_under_seed(self, stack):
        graph, topic_index, walk_index = stack

        def build():
            return RCLSummarizer(
                graph, topic_index, walk_index=walk_index, seed=11
            ).summarize(topic_index.resolve("big topic"))

        assert dict(build().weights) == dict(build().weights)

    def test_use_tree_variant_small_topic(self, stack):
        graph, topic_index, walk_index = stack
        summarizer = RCLSummarizer(
            graph, topic_index, walk_index=walk_index, use_tree=True, seed=5
        )
        summary = summarizer.summarize(topic_index.resolve("small topic"))
        assert summary.total_weight == pytest.approx(1.0)
