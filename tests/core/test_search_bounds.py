"""Focused tests on Algorithm 10's bookkeeping and bounds."""

import pytest

from repro.core import (
    PersonalizedSearcher,
    PropagationIndex,
    TopicSummary,
)
from repro.graph import GraphBuilder
from repro.topics import TopicIndex


def build_stack(edges, n, assignments, summaries_spec, theta=0.05, **kwargs):
    builder = GraphBuilder(n)
    builder.add_edges(edges)
    graph = builder.build()
    topic_index = TopicIndex(n, assignments)
    summaries = {
        topic_index.resolve(label): TopicSummary(
            topic_index.resolve(label), weights
        )
        for label, weights in summaries_spec.items()
    }
    searcher = PersonalizedSearcher(
        topic_index, summaries, PropagationIndex(graph, theta), **kwargs
    )
    return graph, topic_index, searcher


class TestRemainingWeight:
    def test_partial_summary_mass_not_assumed(self):
        """A summary with total weight < 1 (LRW's unabsorbed mass) must not
        inflate the bound: the un-migrated mass can never arrive."""
        # 1 -> 0 strong; 2 -> 0 cut by theta (marked frontier via 1? no).
        graph, topic_index, searcher = build_stack(
            [(1, 0, 0.5), (2, 1, 0.04)],
            3,
            {1: ["partial topic"], 2: ["full topic"]},
            {
                # partial: only 30% of local weight migrated to node 1.
                "partial topic": {1: 0.3},
                # full: everything on the unreachable node 2.
                "full topic": {2: 1.0},
            },
        )
        results, _ = searcher.search(0, "topic", k=2)
        scores = {r.label: r.influence for r in results}
        assert scores["partial topic"] == pytest.approx(0.3 * 0.5)
        assert scores["full topic"] == 0.0

    def test_cumulative_remaining_weight(self):
        """W_r must shrink by every consumed representative, not just the
        last one (DESIGN.md note 11): with the cumulative form, a topic
        whose reps are all inside Gamma(v) is exhausted and pruning kicks
        in with zero expansions."""
        graph, topic_index, searcher = build_stack(
            [(1, 0, 0.5), (2, 0, 0.4), (3, 0, 0.3)],
            4,
            {1: ["abc topic"], 2: ["abc topic"], 3: ["zzz topic"]},
            {
                "abc topic": {1: 0.5, 2: 0.5},
                "zzz topic": {3: 1.0},
            },
        )
        results, stats = searcher.search(0, "topic", k=1)
        assert results[0].label == "abc topic"
        assert results[0].influence == pytest.approx(0.5 * 0.5 + 0.5 * 0.4)
        assert stats.expansion_rounds == 0


class TestMaxEpBound:
    def test_weak_frontier_prunes_losers(self):
        """A topic whose entire remaining weight times maxEP cannot reach
        the current k-th score is pruned without expansion."""
        # Gamma(0) at theta=0.05: 1 (0.5), 2 (0.4), 3 (0.1); node 4 via
        # 4 -> 3 -> 0 = 0.04 is cut, so 3 is marked with maxEP = 0.1.
        graph, topic_index, searcher = build_stack(
            [(1, 0, 0.5), (2, 0, 0.4), (3, 0, 0.1), (4, 3, 0.4)],
            5,
            {1: ["top topic"], 4: ["weak topic"]},
            {
                "top topic": {1: 1.0},
                "weak topic": {4: 1.0},
            },
        )
        results, stats = searcher.search(0, "topic", k=1)
        assert results[0].label == "top topic"
        # weak topic's bound: 1.0 * maxEP(0.1) = 0.1 < 0.5 -> pruned.
        assert stats.topics_pruned == 1
        assert stats.expansion_rounds == 0

    def test_contender_forces_expansion(self):
        """If the bound cannot rule a topic out, expansion must run."""
        # 4 -> 3 -> 0 = 0.3 * 0.15 = 0.045 < theta: node 4 stays out of
        # Gamma(0) and node 3 is marked with weight 0.3.
        graph, topic_index, searcher = build_stack(
            [(1, 0, 0.2), (3, 0, 0.3), (4, 3, 0.15)],
            5,
            {1: ["near topic"], 4: ["far topic"]},
            {
                "near topic": {1: 1.0},
                "far topic": {4: 1.0},
            },
        )
        results, stats = searcher.search(0, "topic", k=1)
        # far topic's bound 1.0 * 0.3 > near's 0.2 -> must expand; its
        # realized score 0.3 * 0.15 = 0.045 < 0.2, so near wins.
        assert stats.expansion_rounds >= 1
        assert results[0].label == "near topic"

    def test_expansion_can_flip_the_winner(self):
        # Same topology, but the near topic's summary only migrated 20%
        # of its weight: 0.2 * 0.2 = 0.04 < the far topic's expanded
        # 0.3 * 0.15 = 0.045.
        graph, topic_index, searcher = build_stack(
            [(1, 0, 0.2), (3, 0, 0.3), (4, 3, 0.15)],
            5,
            {1: ["near topic"], 4: ["far topic"]},
            {
                "near topic": {1: 0.2},
                "far topic": {4: 1.0},
            },
        )
        results, _ = searcher.search(0, "topic", k=1)
        assert results[0].label == "far topic"
        assert results[0].influence == pytest.approx(0.045)


class TestStatsConsistency:
    def test_counts_are_coherent(self):
        graph, topic_index, searcher = build_stack(
            [(1, 0, 0.5), (2, 0, 0.4), (3, 2, 0.3)],
            4,
            {1: ["one topic"], 2: ["two topic"], 3: ["three topic"]},
            {
                "one topic": {1: 1.0},
                "two topic": {2: 1.0},
                "three topic": {3: 1.0},
            },
        )
        results, stats = searcher.search(0, "topic", k=3)
        assert stats.topics_considered == 3
        assert len(results) == 3
        assert stats.entries_probed >= 1
        assert stats.representatives_touched >= 3
