"""Unit tests for the set-enumeration tree (Algorithm 2)."""

import warnings

import numpy as np
import pytest

from repro.core.rcl import SetEnumerationTree
from repro.exceptions import BudgetExceededError, ConfigurationError


def labels_from_groups(n, groups):
    """Build a symmetric label matrix where listed groups are cliques."""
    labels = np.zeros((n, n), dtype=np.int8)
    np.fill_diagonal(labels, 1)
    for group in groups:
        for i in group:
            for j in group:
                labels[i, j] = 1
    return labels


class TestConstruction:
    def test_rejects_non_square(self):
        with pytest.raises(ConfigurationError):
            SetEnumerationTree(np.zeros((2, 3), dtype=np.int8))

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            SetEnumerationTree(np.eye(2, dtype=np.int8), policy="some")

    def test_singletons_always_present(self):
        labels = labels_from_groups(3, [])
        tree = SetEnumerationTree(labels)
        sets = list(tree.iter_sets())
        assert (0,) in sets and (1,) in sets and (2,) in sets

    def test_full_clique_enumerates_powerset(self):
        labels = labels_from_groups(3, [(0, 1, 2)])
        tree = SetEnumerationTree(labels)
        sets = set(tree.iter_sets())
        # All non-empty subsets of {0,1,2}: 7 of them.
        assert len(sets) == 7
        assert (0, 1, 2) in sets

    def test_no_grouping_only_singletons(self):
        labels = labels_from_groups(4, [])
        tree = SetEnumerationTree(labels)
        assert set(tree.iter_sets()) == {(0,), (1,), (2,), (3,)}
        assert tree.n_nodes == 4


class TestPolicies:
    def test_all_policy_requires_clique(self):
        # 0-1 and 1-2 grouped, but 0-2 split: {0,1,2} is not a clique.
        labels = labels_from_groups(3, [(0, 1), (1, 2)])
        tree = SetEnumerationTree(labels, policy="all")
        assert (0, 1, 2) not in set(tree.iter_sets())
        assert (0, 1) in set(tree.iter_sets())

    def test_any_policy_chains(self):
        labels = labels_from_groups(3, [(0, 1), (1, 2)])
        tree = SetEnumerationTree(labels, policy="any")
        assert (0, 1, 2) in set(tree.iter_sets())


class TestMaximalSets:
    def test_leaves_are_maximal(self):
        labels = labels_from_groups(4, [(0, 1), (2, 3)])
        tree = SetEnumerationTree(labels)
        leaves = set(tree.maximal_sets())
        assert (0, 1) in leaves
        assert (2, 3) in leaves

    def test_leftmost_deepest_is_greedy_clique(self):
        labels = labels_from_groups(4, [(0, 1, 3)])
        tree = SetEnumerationTree(labels)
        assert tree.leftmost_deepest() == (0, 1, 3)

    def test_leftmost_deepest_empty_tree(self):
        with pytest.raises(ConfigurationError):
            SetEnumerationTree(np.zeros((0, 0), dtype=np.int8)).leftmost_deepest()


class TestBudget:
    def test_truncation_warns(self):
        labels = labels_from_groups(12, [tuple(range(12))])
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            tree = SetEnumerationTree(labels, max_nodes=50)
        assert tree.n_nodes <= 50
        assert any("truncated" in str(w.message) for w in caught)

    def test_strict_raises(self):
        labels = labels_from_groups(12, [tuple(range(12))])
        with pytest.raises(BudgetExceededError):
            SetEnumerationTree(labels, max_nodes=50, strict=True)
