"""Scalar-vs-vectorized parity for the online search (Algorithms 10-11).

The array-native :class:`PersonalizedSearcher` must reproduce the
retained pre-vectorization reference (:mod:`repro.core._scalar_search`)
exactly: identical rankings, influences to 1e-12 (in practice bit-exact,
because summaries store their weights in sorted representative order so
both paths accumulate floats identically), and identical work stats -
including the pruning counters, which are sensitive to the bound
sequencing inside Expand.
"""

import pytest

from repro.core import (
    PersonalizedSearcher,
    PITEngine,
    PropagationIndex,
    ScalarReferenceSearcher,
    TopicSummary,
)
from repro.datasets import data_2k, generate_workload
from repro.graph import GraphBuilder
from repro.topics import TopicIndex

STAT_FIELDS = (
    "topics_considered",
    "topics_pruned",
    "entries_probed",
    "expansion_rounds",
    "representatives_touched",
)


def assert_same_outcome(vec_outcome, ref_outcome):
    vec_results, vec_stats = vec_outcome
    ref_results, ref_stats = ref_outcome
    assert [(r.topic_id, r.label) for r in vec_results] == [
        (r.topic_id, r.label) for r in ref_results
    ]
    for got, want in zip(vec_results, ref_results):
        assert abs(got.influence - want.influence) <= 1e-12
    for name in STAT_FIELDS:
        assert getattr(vec_stats, name) == getattr(ref_stats, name), name


@pytest.fixture(scope="module")
def bundle():
    return data_2k(seed=23, n_nodes=300, with_corpus=True)


@pytest.fixture(scope="module")
def workload(bundle):
    return list(
        generate_workload(bundle, n_queries=6, n_users=4, seed=23).pairs()
    )


@pytest.fixture(scope="module", params=["lrw", "rcl"])
def stack(request, bundle):
    """(engine, scalar reference) sharing one index stack per summarizer."""
    engine = PITEngine.from_dataset(
        bundle,
        summarizer=request.param,
        theta=0.004,
        seed=23,
        entry_cache_bytes=16 << 20,
        summary_cache_bytes=4 << 20,
    )
    scalar = ScalarReferenceSearcher(
        engine.topic_index, engine.summary, engine.propagation_index
    )
    return engine, scalar


class TestWorkloadParity:
    @pytest.mark.parametrize("k", [1, 3, 10])
    def test_single_requests_match_reference(self, stack, workload, k):
        engine, scalar = stack
        for user, query in workload:
            assert_same_outcome(
                engine._searcher.search(user, query, k),
                scalar.search(user, query, k),
            )

    def test_batched_requests_match_reference(self, stack, workload):
        engine, scalar = stack
        batched = engine._searcher.search_many(workload, k=5)
        assert len(batched) == len(workload)
        for (user, query), outcome in zip(workload, batched):
            assert_same_outcome(outcome, scalar.search(user, query, 5))

    def test_search_many_matches_search(self, stack, workload):
        """Grouped execution must not change any per-request answer."""
        engine, _ = stack
        searcher = engine._searcher
        batched = searcher.search_many(workload, k=5)
        for (user, query), outcome in zip(workload, batched):
            single = searcher.search(user, query, 5)
            assert [(r.topic_id, r.influence) for r in outcome[0]] == [
                (r.topic_id, r.influence) for r in single[0]
            ]


@pytest.fixture
def edge_stack():
    """Small deterministic stack with a leaf user and a zero-weight topic.

    Graph: 1 -> 0 (0.5), 2 -> 0 (0.3), 3 -> 1 (0.4), 4 -> 2 (0.4).
    Nodes 3 and 4 have no in-edges, so their Γ is empty.
    """
    builder = GraphBuilder(5)
    builder.add_edges([
        (1, 0, 0.5),
        (2, 0, 0.3),
        (3, 1, 0.4),
        (4, 2, 0.4),
    ])
    graph = builder.build()
    topic_index = TopicIndex(
        5,
        {
            1: ["alpha topic"],
            2: ["beta topic"],
            3: ["gamma topic"],
            4: ["zero topic"],
        },
    )
    summaries = {
        topic_index.resolve("alpha topic"): TopicSummary(
            topic_index.resolve("alpha topic"), {1: 1.0}
        ),
        topic_index.resolve("beta topic"): TopicSummary(
            topic_index.resolve("beta topic"), {2: 0.7, 4: 0.3}
        ),
        topic_index.resolve("gamma topic"): TopicSummary(
            topic_index.resolve("gamma topic"), {3: 1.0}
        ),
        # A summary whose representatives carry no weight at all.
        topic_index.resolve("zero topic"): TopicSummary(
            topic_index.resolve("zero topic"), {1: 0.0, 4: 0.0}
        ),
    }
    propagation = PropagationIndex(graph, 0.05)
    vec = PersonalizedSearcher(topic_index, summaries, propagation)
    ref = ScalarReferenceSearcher(topic_index, summaries, propagation)
    return vec, ref


class TestEdgeCaseParity:
    def test_k_exceeds_topic_count(self, edge_stack):
        vec, ref = edge_stack
        assert_same_outcome(vec.search(0, "topic", 50), ref.search(0, "topic", 50))
        results, _ = vec.search(0, "topic", 50)
        assert len(results) == 4

    def test_query_matching_no_topics(self, edge_stack):
        vec, ref = edge_stack
        assert_same_outcome(
            vec.search(0, "unrelated keywords", 3),
            ref.search(0, "unrelated keywords", 3),
        )
        assert vec.search(0, "unrelated keywords", 3)[0] == []

    def test_user_with_empty_gamma(self, edge_stack):
        vec, ref = edge_stack
        for user in (3, 4):
            assert_same_outcome(
                vec.search(user, "topic", 4), ref.search(user, "topic", 4)
            )

    def test_zero_weight_summary(self, edge_stack):
        vec, ref = edge_stack
        assert_same_outcome(vec.search(0, "zero", 2), ref.search(0, "zero", 2))
        results, _ = vec.search(0, "zero", 2)
        assert all(r.influence == 0.0 for r in results)

    def test_every_user_every_k(self, edge_stack):
        vec, ref = edge_stack
        for user in range(5):
            for k in (1, 2, 4, 9):
                assert_same_outcome(
                    vec.search(user, "topic", k), ref.search(user, "topic", k)
                )
