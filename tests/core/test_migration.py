"""Unit tests for LRW-A influence migration (Algorithm 8)."""

import numpy as np
import pytest

from repro.core.lrw import migrate_influence, migration_matrix
from repro.exceptions import ConfigurationError
from repro.walks import WalkIndex


class TestMigrationMatrix:
    def test_chain_first_hit_distances(self, chain_graph):
        # Walks on a chain are deterministic: from 0 the path is 0,1,2,3,4.
        walk_index = WalkIndex.built(chain_graph, 4, 3, seed=1)
        matrix = migration_matrix(walk_index, [0], [2])
        # First hit of 2 from 0 is at distance 2 -> closeness 1/3.
        assert matrix[0, 0] == pytest.approx(1 / 3)

    def test_absorb_first_blocks_later_reps(self, chain_graph):
        walk_index = WalkIndex.built(chain_graph, 4, 3, seed=1)
        # Representatives 1 and 3: with first-hit semantics, the forward
        # walk from 0 is absorbed at 1 and never credits 3...
        first = migration_matrix(walk_index, [0], [1, 3], absorb_first=True)
        assert first[0, 0] == pytest.approx(1 / 2)   # 0 -> 1, distance 1
        # ...but the backward pass from representative 3 cannot reach 0 on
        # a forward chain, so M[0, 3-column] stays 0.
        assert first[0, 1] == 0.0

    def test_literal_pseudocode_credits_all(self, chain_graph):
        walk_index = WalkIndex.built(chain_graph, 4, 3, seed=1)
        literal = migration_matrix(walk_index, [0], [1, 3], absorb_first=False)
        assert literal[0, 0] == pytest.approx(1 / 2)
        assert literal[0, 1] == pytest.approx(1 / 4)  # 0 -> 3 at distance 3

    def test_backward_pass_credits_topic_nodes(self, chain_graph):
        walk_index = WalkIndex.built(chain_graph, 4, 3, seed=1)
        # Topic node 3, representative 1: forward walks from 3 never see 1,
        # but the backward walk from 1 reaches 3 at distance 2.
        matrix = migration_matrix(walk_index, [3], [1])
        assert matrix[0, 0] == pytest.approx(1 / 3)

    def test_self_representation_distance_zero(self, chain_graph):
        walk_index = WalkIndex.built(chain_graph, 3, 2, seed=1)
        matrix = migration_matrix(walk_index, [2], [2])
        assert matrix[0, 0] == pytest.approx(1.0)

    def test_validation(self, chain_graph):
        walk_index = WalkIndex.built(chain_graph, 3, 2, seed=1)
        with pytest.raises(ConfigurationError):
            migration_matrix(walk_index, [], [1])
        with pytest.raises(ConfigurationError):
            migration_matrix(walk_index, [0], [])
        with pytest.raises(ConfigurationError):
            migration_matrix(walk_index, [0, 0], [1])
        with pytest.raises(ConfigurationError):
            migration_matrix(walk_index, [0], [1, 1])


class TestMigrateInfluence:
    def test_weights_sum_at_most_one(self, chain_graph):
        walk_index = WalkIndex.built(chain_graph, 4, 3, seed=1)
        summary = migrate_influence(0, walk_index, [0, 1], [2, 3])
        assert summary.total_weight <= 1.0 + 1e-9

    def test_full_migration_when_all_absorbed(self, chain_graph):
        walk_index = WalkIndex.built(chain_graph, 4, 3, seed=1)
        # Both topic nodes deterministically reach representative 2.
        summary = migrate_influence(0, walk_index, [0, 1], [2])
        assert summary.total_weight == pytest.approx(1.0)

    def test_backward_pass_rescues_dead_end_topic(self, chain_graph):
        # Topic node 4 is a dead end, but the backward walk from the
        # representative reaches it - the reason Algorithm 8 runs both
        # directions.
        walk_index = WalkIndex.built(chain_graph, 4, 3, seed=1)
        summary = migrate_influence(0, walk_index, [0, 4], [1])
        assert summary.total_weight == pytest.approx(1.0)

    def test_unabsorbed_mass_is_lost(self, chain_graph):
        # With L=2 the rep's walks stop at node 3, so dead-end topic node 4
        # is unreachable in both directions and its half of the mass drops.
        walk_index = WalkIndex.built(chain_graph, 2, 3, seed=1)
        summary = migrate_influence(0, walk_index, [0, 4], [1])
        assert summary.total_weight == pytest.approx(0.5)

    def test_closer_representative_gets_more_weight(self, chain_graph):
        walk_index = WalkIndex.built(chain_graph, 4, 3, seed=1)
        summary = migrate_influence(
            0, walk_index, [0], [1, 3], absorb_first=False
        )
        # 1/(1+1) vs 1/(3+1), row-normalized: 2/3 vs 1/3.
        assert summary.weight(1) == pytest.approx(2 / 3)
        assert summary.weight(3) == pytest.approx(1 / 3)

    def test_topic_id_recorded(self, chain_graph):
        walk_index = WalkIndex.built(chain_graph, 3, 2, seed=1)
        summary = migrate_influence(7, walk_index, [0], [1])
        assert summary.topic_id == 7
