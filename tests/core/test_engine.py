"""Unit tests for the PITEngine facade."""

import pytest

from repro.core import PITEngine, Summarizer, TopicSummary
from repro.datasets import data_2k
from repro.exceptions import ConfigurationError
from repro.graph import GraphBuilder
from repro.topics import TopicIndex


@pytest.fixture(scope="module")
def bundle():
    return data_2k(seed=17, n_nodes=300, with_corpus=False)


@pytest.fixture()
def engine(bundle):
    return PITEngine.from_dataset(
        bundle, summarizer="lrw", samples_per_node=5, seed=17
    )


class TestConstruction:
    def test_node_count_mismatch_rejected(self):
        builder = GraphBuilder(4)
        builder.add_edge(0, 1, 0.5)
        graph = builder.build()
        index = TopicIndex(9, {0: ["t"]})
        with pytest.raises(ConfigurationError):
            PITEngine(graph, index)

    def test_unknown_summarizer_rejected(self, bundle):
        engine = PITEngine.from_dataset(bundle, summarizer="nope")
        with pytest.raises(ConfigurationError):
            _ = engine.summarizer

    def test_custom_summarizer_instance(self, bundle):
        class Fixed(Summarizer):
            name = "fixed"

            def summarize(self, topic_id):
                return TopicSummary(topic_id, {0: 1.0})

        engine = PITEngine.from_dataset(bundle, summarizer=Fixed())
        assert engine.summary(0).weights == {0: 1.0}


class TestLazyBuild:
    def test_walk_index_lazy(self, engine):
        assert engine._walk_index is None
        _ = engine.walk_index
        assert engine._walk_index is not None
        assert engine.walk_index is engine._walk_index

    def test_summary_cached(self, engine):
        first = engine.summary(0)
        assert engine.summary(0) is first
        assert engine.n_summaries == 1

    def test_build_warms_selected_topics(self, engine):
        engine.build(topics=[0, 1, 2])
        assert engine.n_summaries == 3

    def test_summary_accepts_labels(self, engine, bundle):
        label = bundle.topic_index.labels[0]
        summary = engine.summary(bundle.topic_index.resolve(label))
        assert summary.topic_id == 0


class TestSearch:
    def test_search_returns_ranked_results(self, engine):
        results = engine.search(3, "phone", k=4)
        assert len(results) <= 4
        influences = [r.influence for r in results]
        assert influences == sorted(influences, reverse=True)

    def test_with_stats(self, engine):
        results, stats = engine.search(3, "phone", k=2, with_stats=True)
        assert stats.topics_considered >= len(results)

    def test_unknown_query_empty(self, engine):
        assert engine.search(3, "zzzqqq xyzzy", k=3) == []

    def test_deterministic_across_instances(self, bundle):
        a = PITEngine.from_dataset(
            bundle, summarizer="lrw", samples_per_node=5, seed=99
        ).search(5, "music", k=3)
        b = PITEngine.from_dataset(
            bundle, summarizer="lrw", samples_per_node=5, seed=99
        ).search(5, "music", k=3)
        assert [(r.topic_id, r.influence) for r in a] == [
            (r.topic_id, r.influence) for r in b
        ]

    def test_rcl_engine_runs(self, bundle):
        engine = PITEngine.from_dataset(
            bundle, summarizer="rcl", samples_per_node=5, seed=17
        )
        results = engine.search(3, "music", k=2)
        assert len(results) <= 2


class TestBatchServing:
    def test_search_batch_matches_single(self, engine):
        requests = [(3, "phone"), (5, "music"), (3, "phone")]
        batched = engine.search_batch(requests, k=3)
        assert len(batched) == 3
        for (user, query), results in zip(requests, batched):
            single = engine.search(user, query, k=3)
            assert [(r.topic_id, r.influence) for r in results] == [
                (r.topic_id, r.influence) for r in single
            ]

    def test_search_batch_with_stats(self, engine):
        outcomes = engine.search_batch([(3, "phone")], k=2, with_stats=True)
        results, stats = outcomes[0]
        assert stats.topics_considered >= len(results)

    def test_cache_stats_empty_without_budgets(self, engine):
        assert engine.cache_stats() == ()

    def test_cache_stats_with_budgets(self, bundle):
        engine = PITEngine.from_dataset(
            bundle,
            summarizer="lrw",
            samples_per_node=5,
            seed=17,
            entry_cache_bytes=1 << 20,
            summary_cache_bytes=1 << 20,
        )
        engine.search(3, "phone", k=2)
        names = [s.name for s in engine.cache_stats()]
        assert names == ["propagation-entries", "summary-arrays"]

    def test_use_propagation_index_rewires_searcher(self, engine, bundle):
        from repro.core import PropagationIndex

        engine.search(3, "phone", k=2)
        fresh = PropagationIndex(bundle.graph, 0.001)
        engine.use_propagation_index(fresh)
        assert engine.propagation_index is fresh
        assert engine._searcher._propagation is fresh
        results = engine.search(3, "phone", k=2)
        assert isinstance(results, list)


class TestMemory:
    def test_memory_grows_with_use(self, engine):
        before = engine.memory_bytes()
        engine.search(3, "phone", k=2)
        assert engine.memory_bytes() > before

    def test_memory_counts_summary_array_forms(self, engine):
        engine.search(3, "phone", k=2)
        accounted = sum(
            s.memory_bytes() for s in engine._summaries.values()
        )
        hand_counted = sum(
            16 * len(s.weights)
            + (
                s.arrays().memory_bytes()
                if s.__dict__.get("_array_form") is not None
                else 0
            )
            for s in engine._summaries.values()
        )
        assert accounted == hand_counted

    def test_bounded_caches_not_double_counted(self, bundle):
        plain = PITEngine.from_dataset(
            bundle, summarizer="lrw", samples_per_node=5, seed=17
        )
        cached = PITEngine.from_dataset(
            bundle,
            summarizer="lrw",
            samples_per_node=5,
            seed=17,
            entry_cache_bytes=64 << 20,
            summary_cache_bytes=64 << 20,
        )
        plain.search(3, "phone", k=2)
        cached.search(3, "phone", k=2)
        # The summary-array LRU holds aliases of arrays already charged to
        # the summaries; the cached engine may only differ by the bounded
        # entry cache, never by re-counting the arrays.
        entry_bytes = cached._searcher.entry_cache_stats().current_bytes
        assert cached.memory_bytes() - entry_bytes <= plain.memory_bytes()
