"""Tests for the memory-mapped, sharded propagation index.

Covers the tentpole contract end-to-end: an in-memory build sharded to
disk and re-opened via mmap is bit-exact (Γ arrays, search results,
SearchStats) with the in-memory backend; the streaming
``build_sharded`` leaves nothing resident and its output is
byte-identical whether uninterrupted or interrupted-and-resumed;
corrupted, truncated, or manifest-less artifacts raise typed
:class:`~repro.exceptions.ArtifactCorruptedError`; and shard paging
under a small byte budget evicts in LRU order while staying bounded.
"""

import hashlib

import numpy as np
import pytest

from repro import _faults
from repro._artifacts import MANIFEST_NAME
from repro.core import (
    PITEngine,
    PropagationIndex,
    load_propagation_index,
    load_sharded_index,
    save_propagation_index,
    save_sharded_index,
)
from repro.core.shards import (
    MmapShardBackend,
    SHARD_KIND,
    shard_filename,
)
from repro.datasets import data_2k
from repro.exceptions import (
    ArtifactCorruptedError,
    ArtifactError,
    BuildFailedError,
    ConfigurationError,
)
from repro.graph import preferential_attachment_graph
from repro.obs import MetricsRegistry

THETA = 0.01
SHARD_NODES = 16


@pytest.fixture(autouse=True)
def _clean_faults():
    yield
    _faults.clear_faults()


@pytest.fixture(scope="module")
def graph():
    return preferential_attachment_graph(70, 3, seed=5)


@pytest.fixture(scope="module")
def built_index(graph):
    return PropagationIndex(graph, THETA).build_all(workers=1)


@pytest.fixture(scope="module")
def shard_dir(built_index, tmp_path_factory):
    directory = tmp_path_factory.mktemp("shards") / "prop"
    save_sharded_index(built_index, directory, shard_nodes=SHARD_NODES)
    return directory


def _dir_digest(directory):
    sha = hashlib.sha256()
    for path in sorted(directory.iterdir()):
        sha.update(path.name.encode())
        sha.update(path.read_bytes())
    return sha.hexdigest()


class TestRoundTrip:
    def test_entries_bit_exact(self, graph, built_index, shard_dir):
        loaded = load_sharded_index(shard_dir, graph)
        assert loaded.theta == built_index.theta
        assert loaded.max_branches == built_index.max_branches
        assert loaded.n_cached == graph.n_nodes
        for node in range(graph.n_nodes):
            want = built_index.entry(node)
            got = loaded.entry(node)
            assert np.array_equal(want.sources, got.sources)
            assert np.array_equal(want.probabilities, got.probabilities)
            assert np.array_equal(want.marked_array, got.marked_array)
            assert want.branches == got.branches
            assert got.is_mapped

    def test_streamed_build_byte_identical_to_saved(
        self, graph, shard_dir, tmp_path
    ):
        streamed = tmp_path / "streamed"
        PropagationIndex(graph, THETA).build_sharded(
            streamed, shard_nodes=SHARD_NODES
        )
        assert _dir_digest(streamed) == _dir_digest(shard_dir)

    def test_npz_migration_path(self, graph, built_index, tmp_path):
        """Legacy NPZ -> load -> save sharded -> identical entries."""
        npz = tmp_path / "prop.npz"
        save_propagation_index(built_index, npz)
        via_npz = load_propagation_index(npz, graph)
        directory = tmp_path / "migrated"
        save_sharded_index(via_npz, directory, shard_nodes=SHARD_NODES)
        loaded = load_sharded_index(directory, graph)
        for node in (0, 17, 42, graph.n_nodes - 1):
            assert dict(loaded.entry(node).gamma) == dict(
                built_index.entry(node).gamma
            )

    def test_partial_index_rejected(self, graph, tmp_path):
        partial = PropagationIndex(graph, THETA)
        partial.entry(0)
        with pytest.raises(ConfigurationError, match="partial index"):
            save_sharded_index(partial, tmp_path / "partial")


class TestSearchParity:
    @pytest.fixture(scope="class", params=[7, 1234])
    def bundle(self, request):
        return data_2k(seed=request.param, n_nodes=250, with_corpus=False)

    @pytest.fixture(scope="class")
    def engines(self, bundle, tmp_path_factory):
        in_memory = PITEngine.from_dataset(
            bundle, summarizer="lrw", theta=THETA, seed=bundle.seed
        )
        in_memory.propagation_index.build_all(workers=1)
        directory = tmp_path_factory.mktemp("parity") / "shards"
        save_sharded_index(
            in_memory.propagation_index, directory, shard_nodes=SHARD_NODES
        )
        mapped = PITEngine.from_dataset(
            bundle, summarizer="lrw", theta=THETA, seed=bundle.seed
        )
        mapped.use_propagation_index(
            load_sharded_index(directory, bundle.graph, cache_bytes=1 << 20)
        )
        return in_memory, mapped

    def _queries(self, bundle):
        tags = sorted(bundle.tag_bank.tags)
        words = sorted({tag.split()[-1] for tag in tags[:40]})
        return words[:4]

    def test_results_and_stats_bit_exact(self, bundle, engines):
        in_memory, mapped = engines
        for user in (3, 57, 120):
            for query in self._queries(bundle):
                want, want_stats = in_memory.search(
                    user, query, k=5, with_stats=True
                )
                got, got_stats = mapped.search(
                    user, query, k=5, with_stats=True
                )
                assert [
                    (r.topic_id, r.influence) for r in want
                ] == [(r.topic_id, r.influence) for r in got]
                assert want_stats == got_stats

    def test_search_many_bit_exact(self, bundle, engines):
        in_memory, mapped = engines
        queries = self._queries(bundle)
        requests = [
            (user, queries[user % len(queries)]) for user in range(0, 200, 7)
        ]
        want = in_memory.search_batch(requests, k=5, with_stats=True)
        got = mapped.search_batch(requests, k=5, with_stats=True)
        assert len(want) == len(got)
        for (want_results, want_stats), (got_results, got_stats) in zip(
            want, got
        ):
            assert [
                (r.topic_id, r.influence) for r in want_results
            ] == [(r.topic_id, r.influence) for r in got_results]
            assert want_stats == got_stats


class TestStreamingBuild:
    def test_entries_freed_as_shards_flush(self, graph, tmp_path):
        index = PropagationIndex(graph, THETA)
        index.build_sharded(tmp_path / "out", shard_nodes=SHARD_NODES)
        assert len(index._entries) == 0
        assert index.last_build_stats.n_built == graph.n_nodes

    def test_interrupt_and_resume_byte_identical(
        self, graph, shard_dir, tmp_path
    ):
        directory = tmp_path / "resumed"
        # Kill the build inside the third shard; shards 0-1 are published.
        with _faults.fault(
            "propagation.build_entry",
            _faults.InterruptOnEntry(2 * SHARD_NODES + 3),
        ):
            with pytest.raises(KeyboardInterrupt):
                PropagationIndex(graph, THETA).build_sharded(
                    directory, shard_nodes=SHARD_NODES
                )
        published = {p.name for p in directory.iterdir()}
        assert shard_filename(0, SHARD_NODES) in published
        assert shard_filename(SHARD_NODES, 2 * SHARD_NODES) in published
        # Incomplete artifact must refuse to serve...
        with pytest.raises(ArtifactCorruptedError, match="incomplete"):
            load_sharded_index(directory, graph)
        # ...and the resumed build must finish byte-identical.
        resumed = PropagationIndex(graph, THETA)
        resumed.build_sharded(directory, shard_nodes=SHARD_NODES)
        assert resumed.last_build_stats.n_resumed == 2 * SHARD_NODES
        assert _dir_digest(directory) == _dir_digest(shard_dir)

    def test_resume_with_different_parameters_rejected(
        self, graph, shard_dir, tmp_path
    ):
        import shutil

        directory = tmp_path / "copy"
        shutil.copytree(shard_dir, directory)
        with pytest.raises(ConfigurationError, match="built with"):
            PropagationIndex(graph, THETA * 2).build_sharded(
                directory, shard_nodes=SHARD_NODES
            )

    def test_strict_failure_keeps_completed_shards(self, graph, tmp_path):
        directory = tmp_path / "failed"

        class Crash:
            def __call__(self, *, node, **_):
                if node == SHARD_NODES + 1:
                    raise OSError("injected crash")

        with _faults.fault("propagation.build_entry", Crash()):
            with pytest.raises(BuildFailedError):
                PropagationIndex(graph, THETA).build_sharded(
                    directory,
                    shard_nodes=SHARD_NODES,
                    max_retries=1,
                    retry_backoff=0.0,
                    strict=True,
                )
        assert shard_filename(0, SHARD_NODES) in {
            p.name for p in directory.iterdir()
        }

    def test_keep_going_records_failed_nodes(self, graph, tmp_path):
        directory = tmp_path / "degraded"

        class Crash:
            def __call__(self, *, node, **_):
                if node == 3:
                    raise OSError("injected crash")

        with _faults.fault("propagation.build_entry", Crash()):
            with pytest.warns(RuntimeWarning, match="stored as empty"):
                PropagationIndex(graph, THETA).build_sharded(
                    directory,
                    shard_nodes=SHARD_NODES,
                    max_retries=1,
                    retry_backoff=0.0,
                    strict=False,
                )
        loaded = load_sharded_index(directory, graph)
        assert loaded.shards.failed_nodes == (3,)
        assert loaded.entry(3).size == 0  # empty slot, not a crash

    def test_metrics_counters(self, graph, tmp_path):
        registry = MetricsRegistry()
        PropagationIndex(graph, THETA, metrics=registry).build_sharded(
            tmp_path / "counted", shard_nodes=SHARD_NODES
        )
        counters = registry.snapshot().counters
        n_shards = -(-graph.n_nodes // SHARD_NODES)
        assert counters["propagation.shards_written"] == n_shards
        assert counters["propagation.entries_built"] == graph.n_nodes


class TestCorruption:
    def test_missing_directory(self, graph, tmp_path):
        with pytest.raises(ArtifactError, match="not found"):
            load_sharded_index(tmp_path / "nope", graph)

    def test_missing_manifest(self, graph, tmp_path):
        directory = tmp_path / "bare"
        directory.mkdir()
        with pytest.raises(ArtifactCorruptedError, match=MANIFEST_NAME):
            load_sharded_index(directory, graph)

    def test_flipped_manifest_byte(self, graph, shard_dir):
        with _faults.fault("artifact.load_bytes", _faults.FlipByte(40)):
            with pytest.raises(ArtifactCorruptedError):
                load_sharded_index(shard_dir, graph)

    def test_flipped_shard_header_byte(self, graph, shard_dir):
        # Open cleanly first (the manifest read must not be corrupted),
        # then flip a header byte on the lazy first shard map.
        loaded = load_sharded_index(shard_dir, graph)
        with _faults.fault("artifact.load_bytes", _faults.FlipByte(3)):
            with pytest.raises(ArtifactCorruptedError, match="magic"):
                loaded.entry(0)

    def test_truncated_shard_on_disk(self, graph, shard_dir, tmp_path):
        import shutil

        directory = tmp_path / "truncated"
        shutil.copytree(shard_dir, directory)
        victim = directory / shard_filename(0, SHARD_NODES)
        victim.write_bytes(victim.read_bytes()[:-16])
        loaded = load_sharded_index(directory, graph)
        with pytest.raises(ArtifactCorruptedError, match="truncated"):
            loaded.entry(0)

    def test_flipped_shard_payload_caught_by_verify(
        self, graph, shard_dir, tmp_path
    ):
        import shutil

        directory = tmp_path / "flipped"
        shutil.copytree(shard_dir, directory)
        victim = directory / shard_filename(0, SHARD_NODES)
        raw = bytearray(victim.read_bytes())
        raw[len(raw) - 8] ^= 0x01  # payload bit, beyond the header
        victim.write_bytes(bytes(raw))
        strict = load_sharded_index(directory, graph, verify=True)
        with pytest.raises(ArtifactCorruptedError, match="checksum"):
            strict.entry(0)

    def test_wrong_graph_rejected(self, shard_dir):
        other = preferential_attachment_graph(30, 3, seed=9)
        with pytest.raises(ConfigurationError, match="built for a graph"):
            load_sharded_index(shard_dir, other)

    def test_coverage_gap_rejected(self, graph, shard_dir, tmp_path):
        import json
        import shutil

        directory = tmp_path / "gap"
        shutil.copytree(shard_dir, directory)
        manifest_path = directory / MANIFEST_NAME
        payload = json.loads(manifest_path.read_text())
        assert payload["kind"] == SHARD_KIND
        del payload["shards"][1]
        del payload["checksum"]  # legacy-tolerant loader: no checksum field
        manifest_path.write_text(json.dumps(payload))
        with pytest.raises(ArtifactCorruptedError, match="coverage gap"):
            load_sharded_index(directory, graph)


class TestPagingAndAccounting:
    def test_lru_eviction_order_under_budget(self, graph, shard_dir):
        records = MmapShardBackend(shard_dir, graph).n_shards
        assert records >= 4
        sizes = [
            (shard_dir / shard_filename(i * SHARD_NODES, (i + 1) * SHARD_NODES))
            .stat()
            .st_size
            for i in range(3)
        ]
        # Fits shards 0+1, but admitting shard 2 must evict the LRU one.
        backend = MmapShardBackend(
            shard_dir, graph, cache_bytes=sum(sizes) - 1
        )
        backend.get(0)                      # shard 0 in
        backend.get(SHARD_NODES)            # shard 1 in
        backend.get(0)                      # bump shard 0
        backend.get(2 * SHARD_NODES)        # shard 2 in -> evicts shard 1
        stats = backend.cache_stats()
        assert stats.evictions >= 1
        assert backend.resident_bytes() <= backend._cache.max_bytes
        # Shard 0 was bumped before the eviction: still a hit.
        hits_before = backend.cache_stats().hits
        backend.get(1)
        assert backend.cache_stats().hits == hits_before + 1
        # Shard 1 was the LRU victim: a miss that re-maps it.
        misses_before = backend.cache_stats().misses
        backend.get(SHARD_NODES + 1)
        assert backend.cache_stats().misses == misses_before + 1

    def test_resident_bytes_stay_bounded(self, graph, shard_dir):
        one_shard = (
            shard_dir / shard_filename(0, SHARD_NODES)
        ).stat().st_size
        budget = int(one_shard * 2.5)
        backend = MmapShardBackend(shard_dir, graph, cache_bytes=budget)
        for node in range(graph.n_nodes):
            backend.get(node)
            assert backend.resident_bytes() <= budget

    def test_mapped_vs_resident_accounting(self, graph, built_index, shard_dir):
        loaded = load_sharded_index(shard_dir, graph, cache_bytes=1 << 20)
        assert loaded.memory_bytes() == 0  # nothing paged in yet
        total_storage = sum(
            built_index.entry(n).memory_bytes() for n in range(graph.n_nodes)
        )
        assert loaded.mapped_bytes() > total_storage  # + headers/offsets
        entry = loaded.entry(0)
        assert entry.memory_bytes() == 0
        assert entry.storage_bytes() == built_index.entry(0).memory_bytes()
        assert loaded.memory_bytes() > 0  # one shard now charged resident
        assert loaded.memory_bytes() <= 1 << 20

    def test_mapped_arrays_read_only(self, graph, shard_dir):
        loaded = load_sharded_index(shard_dir, graph)
        entry = next(
            loaded.entry(n) for n in range(graph.n_nodes)
            if loaded.entry(n).size
        )
        with pytest.raises(ValueError):
            entry.sources[0] = 99
        with pytest.raises(ValueError):
            entry.probabilities[0] = 0.5

    def test_shard_gauges_published(self, graph, shard_dir):
        registry = MetricsRegistry()
        backend = MmapShardBackend(
            shard_dir, graph, cache_bytes=1 << 20, metrics=registry
        )
        backend.get(0)
        backend.publish_gauges(registry)
        snapshot = registry.snapshot()
        assert snapshot.counters["index.shard.loads"] == 1
        assert snapshot.gauges["index.shard.resident"] == 1
        assert snapshot.gauges["index.shard.total"] == backend.n_shards
        assert snapshot.gauges["index.shard.mapped_bytes"] == (
            backend.mapped_bytes()
        )

    def test_engine_snapshot_includes_shard_gauges(self, graph, shard_dir):
        bundle = data_2k(seed=7, n_nodes=graph.n_nodes, with_corpus=False)
        # Rebuild shards for this bundle's graph (fixture graph differs).
        index = PropagationIndex(bundle.graph, THETA).build_all(workers=1)
        directory = shard_dir.parent / "engine"
        save_sharded_index(index, directory, shard_nodes=SHARD_NODES)
        registry = MetricsRegistry()
        engine = PITEngine.from_dataset(
            bundle, summarizer="lrw", theta=THETA, seed=7, metrics=registry
        )
        engine.use_propagation_index(
            load_sharded_index(directory, bundle.graph, cache_bytes=1 << 20)
        )
        engine.search(3, "phone", k=3)
        snapshot = engine.metrics_snapshot()
        assert "index.shard.resident_bytes" in snapshot.gauges
        assert snapshot.gauges["propagation.index_mapped_bytes"] > 0
