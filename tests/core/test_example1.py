"""End-to-end test of the paper's Example 1 (Figures 1-2).

User 3 issues ``q = {phone}``; exact influence computation must rank
``samsung phone`` (t2) above ``apple phone`` (t1) above ``htc phone`` (t3),
and the dominant t1 path ``5 -> 3`` must carry probability 0.6.
"""

import pytest

from repro.baselines import BaseDijkstraRanker, BaseMatrixRanker
from repro.core import PropagationIndex, topic_influence_vector
from repro.topics import TopicIndex

from ..conftest import EXAMPLE1_TOPICS


@pytest.fixture
def example1_index(example1_topic_assignment):
    return TopicIndex(16, example1_topic_assignment)


class TestFigure2PathTable:
    """The exact simple-path decomposition of t1's influence on User 3."""

    def test_t1_path_table_reproduced(self, example1_graph, example1_index):
        from repro.core import enumerate_simple_paths

        nodes = example1_index.topic_nodes("apple phone")
        by_path = {}
        for source in nodes:
            for path, probability in enumerate_simple_paths(
                example1_graph, int(source), 3, 7
            ):
                by_path[path] = probability
        # The paper's Figure 2 rows.
        assert by_path[(5, 3)] == pytest.approx(0.600)
        assert by_path[(2, 1, 3)] == pytest.approx(0.060)
        assert by_path[(13, 12, 10, 6, 3)] == pytest.approx(0.024)
        assert by_path[(9, 8, 13, 12, 10, 6, 3)] == pytest.approx(
            0.001, abs=5e-4
        )

    def test_t1_final_score(self, example1_graph, example1_index):
        from repro.core import simple_path_influence

        nodes = example1_index.topic_nodes("apple phone")
        score = simple_path_influence(example1_graph, nodes, 3, 7)
        # The paper aggregates to 0.137.
        assert score == pytest.approx(0.137, abs=0.005)


class TestInfluenceStructure:
    def test_direct_path_probability(self, example1_graph):
        assert example1_graph.edge_probability(5, 3) == 0.6

    def test_two_hop_path_probability(self, example1_graph):
        # 2 -> 1 -> 3 = 0.2 * 0.3 = 0.06 (the paper's table row).
        assert (
            example1_graph.edge_probability(2, 1)
            * example1_graph.edge_probability(1, 3)
            == pytest.approx(0.06)
        )

    def test_topic_influences_rank_as_in_paper(self, example1_graph, example1_index):
        influences = {}
        for label in EXAMPLE1_TOPICS:
            nodes = example1_index.topic_nodes(label)
            vector = topic_influence_vector(example1_graph, nodes, 6)
            influences[label] = float(vector[3])
        # The paper finds t2 (samsung) most influential for user 3,
        # then t1 (apple), then t3 (htc).
        assert influences["samsung phone"] > influences["apple phone"]
        assert influences["apple phone"] > influences["htc phone"]

    def test_different_user_different_ranking(self, example1_graph, example1_index):
        # For user 7 the paper returns t3 (htc) as top-1.
        influences = {}
        for label in EXAMPLE1_TOPICS:
            nodes = example1_index.topic_nodes(label)
            vector = topic_influence_vector(example1_graph, nodes, 6)
            influences[label] = float(vector[7])
        top = max(influences, key=influences.get)
        assert top == "htc phone"


class TestBaselineAgreement:
    def test_matrix_ranker_returns_samsung_for_user3(
        self, example1_graph, example1_index
    ):
        ranker = BaseMatrixRanker(example1_graph, example1_index)
        results = ranker.search(3, "phone", k=3)
        assert results[0].label == "samsung phone"

    def test_dijkstra_agrees_on_top1(self, example1_graph, example1_index):
        ranker = BaseDijkstraRanker(example1_graph, example1_index)
        results = ranker.search(3, "phone", k=3)
        assert results[0].label == "samsung phone"


class TestPropagationView:
    def test_gamma_of_user3_contains_direct_influencers(self, example1_graph):
        index = PropagationIndex(example1_graph, 0.05)
        gamma = index.entry(3).gamma
        assert gamma[5] == pytest.approx(0.6)
        assert 1 in gamma
