"""Unit tests for the top-k PIT-Search (Algorithms 10-11)."""

import pytest

from repro.core import (
    PersonalizedSearcher,
    PropagationIndex,
    TopicSummary,
)
from repro.exceptions import ConfigurationError
from repro.graph import GraphBuilder
from repro.topics import TopicIndex


@pytest.fixture
def search_stack():
    """A small deterministic stack: chain into node 0 from two branches.

    Graph: 1 -> 0 (0.5), 2 -> 0 (0.3), 3 -> 1 (0.4), 4 -> 2 (0.4).
    Topics: ta = {1}, tb = {2}, tc = {3}, far = {4}.
    """
    builder = GraphBuilder(5)
    builder.add_edges([
        (1, 0, 0.5),
        (2, 0, 0.3),
        (3, 1, 0.4),
        (4, 2, 0.4),
    ])
    graph = builder.build()
    topic_index = TopicIndex(
        5,
        {
            1: ["alpha topic"],
            2: ["beta topic"],
            3: ["gamma topic"],
            4: ["delta topic"],
        },
    )
    summaries = {
        topic_index.resolve("alpha topic"): TopicSummary(
            topic_index.resolve("alpha topic"), {1: 1.0}
        ),
        topic_index.resolve("beta topic"): TopicSummary(
            topic_index.resolve("beta topic"), {2: 1.0}
        ),
        topic_index.resolve("gamma topic"): TopicSummary(
            topic_index.resolve("gamma topic"), {3: 1.0}
        ),
        topic_index.resolve("delta topic"): TopicSummary(
            topic_index.resolve("delta topic"), {4: 1.0}
        ),
    }
    propagation = PropagationIndex(graph, 0.05)
    searcher = PersonalizedSearcher(topic_index, summaries, propagation)
    return graph, topic_index, summaries, searcher


class TestBasicSearch:
    def test_ranks_by_influence(self, search_stack):
        _, topic_index, _, searcher = search_stack
        results, _ = searcher.search(0, "topic", k=4)
        labels = [r.label for r in results]
        # alpha (0.5) > beta (0.3) > gamma (0.2) > delta (0.12)
        assert labels == ["alpha topic", "beta topic", "gamma topic", "delta topic"]

    def test_scores_match_path_products(self, search_stack):
        _, _, _, searcher = search_stack
        results, _ = searcher.search(0, "topic", k=4)
        scores = {r.label: r.influence for r in results}
        assert scores["alpha topic"] == pytest.approx(0.5)
        assert scores["beta topic"] == pytest.approx(0.3)
        assert scores["gamma topic"] == pytest.approx(0.4 * 0.5)
        assert scores["delta topic"] == pytest.approx(0.4 * 0.3)

    def test_k_truncates(self, search_stack):
        _, _, _, searcher = search_stack
        results, _ = searcher.search(0, "topic", k=2)
        assert len(results) == 2
        assert results[0].label == "alpha topic"

    def test_no_matching_topics(self, search_stack):
        _, _, _, searcher = search_stack
        results, stats = searcher.search(0, "unrelated", k=3)
        assert results == []
        assert stats.topics_considered == 0

    def test_k_validated(self, search_stack):
        _, _, _, searcher = search_stack
        with pytest.raises(ConfigurationError):
            searcher.search(0, "topic", k=0)

    def test_stats_accounting(self, search_stack):
        _, _, _, searcher = search_stack
        _, stats = searcher.search(0, "topic", k=2)
        assert stats.topics_considered == 4
        assert stats.entries_probed >= 1
        assert stats.representatives_touched >= 4


class TestPruning:
    def test_exhausted_topics_leave_active_set(self, search_stack):
        _, _, _, searcher = search_stack
        # All summaries resolve within Gamma(0) (theta=0.05 reaches 3 and
        # 4), so no expansion is needed and nothing should be "pruned"
        # (pruned counts only bound-based eliminations).
        _, stats = searcher.search(0, "topic", k=1)
        assert stats.expansion_rounds == 0

    def test_missing_summary_raises(self, search_stack):
        graph, topic_index, summaries, _ = search_stack
        incomplete = dict(summaries)
        incomplete.pop(topic_index.resolve("delta topic"))
        searcher = PersonalizedSearcher(
            topic_index, incomplete, PropagationIndex(graph, 0.05)
        )
        with pytest.raises(ConfigurationError):
            searcher.search(0, "topic", k=2)

    def test_callable_summary_provider(self, search_stack):
        graph, topic_index, summaries, _ = search_stack
        calls = []

        def provider(topic_id):
            calls.append(topic_id)
            return summaries[topic_id]

        searcher = PersonalizedSearcher(
            topic_index, provider, PropagationIndex(graph, 0.05)
        )
        results, _ = searcher.search(0, "topic", k=2)
        assert len(results) == 2
        assert len(calls) == 4


class TestExpansion:
    def test_expansion_reaches_beyond_theta(self):
        # Chain 3 -> 2 -> 1 -> 0: Gamma_0.05(0) holds {1 (0.3), 2 (0.06)}
        # and cuts 3 (0.036 < theta), so 2 is marked; the "far" topic's
        # representative 3 is only reachable by expanding through 2
        # (0.06 * 0.6 = 0.036), which must overtake the weak in-index
        # topics and win the top-2 membership race (Algorithm 10 refines
        # exactly until membership stabilizes).
        builder = GraphBuilder(4)
        builder.add_edges([(3, 2, 0.6), (2, 1, 0.2), (1, 0, 0.3)])
        graph = builder.build()
        topic_index = TopicIndex(
            4, {3: ["far topic"], 1: ["near topic"], 2: ["other topic"]}
        )
        far = topic_index.resolve("far topic")
        near = topic_index.resolve("near topic")
        other = topic_index.resolve("other topic")
        summaries = {
            far: TopicSummary(far, {3: 1.0}),
            near: TopicSummary(near, {1: 0.1}),
            other: TopicSummary(other, {2: 0.5}),
        }
        searcher = PersonalizedSearcher(
            topic_index, summaries, PropagationIndex(graph, 0.05)
        )
        results, stats = searcher.search(0, "topic", k=2)
        scores = {r.label: r.influence for r in results}
        assert stats.expansion_rounds >= 1
        assert scores["far topic"] == pytest.approx(0.06 * 0.6)
        assert results[0].label == "far topic"

    def test_zero_expand_rounds_disables_expansion(self):
        builder = GraphBuilder(4)
        builder.add_edges([(3, 2, 0.3), (2, 1, 0.3), (1, 0, 0.3)])
        graph = builder.build()
        topic_index = TopicIndex(4, {3: ["far topic"]})
        far = topic_index.resolve("far topic")
        summaries = {far: TopicSummary(far, {3: 1.0})}
        searcher = PersonalizedSearcher(
            topic_index, summaries, PropagationIndex(graph, 0.05),
            max_expand_rounds=0,
        )
        results, stats = searcher.search(0, "topic", k=1)
        assert stats.expansion_rounds == 0
        assert results[0].influence == 0.0


class TestDeterminism:
    def test_tie_break_on_label(self):
        builder = GraphBuilder(3)
        builder.add_edges([(1, 0, 0.5), (2, 0, 0.5)])
        graph = builder.build()
        topic_index = TopicIndex(3, {1: ["bbb topic"], 2: ["aaa topic"]})
        summaries = {
            topic_index.resolve("aaa topic"): TopicSummary(
                topic_index.resolve("aaa topic"), {2: 1.0}
            ),
            topic_index.resolve("bbb topic"): TopicSummary(
                topic_index.resolve("bbb topic"), {1: 1.0}
            ),
        }
        searcher = PersonalizedSearcher(
            topic_index, summaries, PropagationIndex(graph, 0.05)
        )
        results, _ = searcher.search(0, "topic", k=2)
        assert [r.label for r in results] == ["aaa topic", "bbb topic"]
