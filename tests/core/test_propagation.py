"""Unit tests for the §5.1 personalized propagation index."""

import warnings

import numpy as np
import pytest

from repro.core import GammaView, PropagationEntry, PropagationIndex
from repro.exceptions import BudgetExceededError, ConfigurationError
from repro.graph import SocialGraph, preferential_attachment_graph


class TestValidation:
    def test_theta_bounds(self, chain_graph):
        with pytest.raises(ConfigurationError):
            PropagationIndex(chain_graph, 0.0)
        with pytest.raises(ConfigurationError):
            PropagationIndex(chain_graph, 1.5)

    def test_budget_bounds(self, chain_graph):
        with pytest.raises(ConfigurationError):
            PropagationIndex(chain_graph, 0.1, max_branches=0)


class TestChain:
    def test_entries_respect_threshold(self, chain_graph):
        # Path probabilities into node 4: 3->4 = 0.5, 2->4 = 0.25,
        # 1->4 = 0.125, 0->4 = 0.0625.
        index = PropagationIndex(chain_graph, 0.1)
        entry = index.entry(4)
        assert entry.gamma == pytest.approx({3: 0.5, 2: 0.25, 1: 0.125})

    def test_lower_theta_reaches_further(self, chain_graph):
        index = PropagationIndex(chain_graph, 0.05)
        entry = index.entry(4)
        assert 0 in entry.gamma
        assert entry.gamma[0] == pytest.approx(0.0625)

    def test_source_node_has_empty_entry(self, chain_graph):
        index = PropagationIndex(chain_graph, 0.1)
        assert index.entry(0).size == 0


class TestAggregation:
    def test_parallel_paths_aggregate(self, diamond_graph):
        index = PropagationIndex(diamond_graph, 0.05)
        entry = index.entry(3)
        # 0 reaches 3 via direct (0.1), via 1 (0.25), via 2 (0.1).
        assert entry.gamma[0] == pytest.approx(0.45)
        assert entry.gamma[1] == pytest.approx(0.5)
        assert entry.gamma[2] == pytest.approx(0.25)

    def test_threshold_prunes_per_path(self, diamond_graph):
        # With theta=0.2 the 0->3 direct (0.1) and 0->2->3 (0.1) paths are
        # cut; only 0->1->3 (0.25) survives for node 0.
        index = PropagationIndex(diamond_graph, 0.2)
        entry = index.entry(3)
        assert entry.gamma[0] == pytest.approx(0.25)

    def test_cycles_do_not_loop(self, triangle_graph):
        index = PropagationIndex(triangle_graph, 0.01)
        entry = index.entry(0)
        # Branches are cycle-free: each of 1, 2 contributes via one path.
        assert entry.gamma[2] == pytest.approx(0.75)
        assert entry.gamma[1] == pytest.approx(0.25 * 0.75)
        assert entry.size == 2


class TestMarking:
    def test_marked_nodes_have_unseen_in_neighbours(self, chain_graph):
        index = PropagationIndex(chain_graph, 0.3)
        entry = index.entry(4)
        # Gamma = {3}; node 3 has in-neighbour 2 outside Gamma -> marked.
        assert entry.gamma == pytest.approx({3: 0.5})
        assert entry.marked == {3}

    def test_fully_covered_entry_has_no_marks(self, triangle_graph):
        index = PropagationIndex(triangle_graph, 0.01)
        entry = index.entry(0)
        # Gamma = {1, 2}; their in-neighbours (0, 1, 2) are all inside.
        assert entry.marked == set()

    def test_max_expandable_probability(self, chain_graph):
        index = PropagationIndex(chain_graph, 0.3)
        entry = index.entry(4)
        assert entry.max_expandable_probability() == pytest.approx(0.5)

    def test_max_expandable_zero_without_marks(self, triangle_graph):
        index = PropagationIndex(triangle_graph, 0.01)
        assert index.entry(0).max_expandable_probability() == 0.0


class TestFigure3:
    """The paper's Figure 3 narrative on the reconstruction fixture."""

    def test_direct_and_two_hop_members(self, fig3_graph):
        index = PropagationIndex(fig3_graph, 0.05)
        entry = index.entry(8)
        assert set(entry.gamma) == {1, 5, 7, 9, 12}

    def test_cut_branch_probability_excluded(self, fig3_graph):
        index = PropagationIndex(fig3_graph, 0.05)
        entry = index.entry(8)
        # 11 -> 9 -> 8 = 0.04 < theta, so 11 is not in Gamma.
        assert 11 not in entry.gamma

    def test_only_boundary_node_marked(self, fig3_graph):
        index = PropagationIndex(fig3_graph, 0.05)
        entry = index.entry(8)
        # Node 9 is the only Gamma member with an in-neighbour (11)
        # outside the index - the Figure 3 "potential node" role.
        assert entry.marked == {9}

    def test_aggregated_probabilities(self, fig3_graph):
        index = PropagationIndex(fig3_graph, 0.05)
        entry = index.entry(8)
        assert entry.gamma[5] == pytest.approx(0.4)
        # 1 -> 5 -> 8 (0.5*0.4) plus 1 -> 9 -> 8 (0.3*0.2).
        assert entry.gamma[1] == pytest.approx(0.5 * 0.4 + 0.3 * 0.2)
        assert entry.gamma[12] == pytest.approx(0.4 * 0.3)  # 12->7->8
        # 9 -> 8 direct (0.2) plus 9 -> 12 -> 7 -> 8 (0.5*0.4*0.3).
        assert entry.gamma[9] == pytest.approx(0.2 + 0.5 * 0.4 * 0.3)


class TestBudget:
    def _dense_graph(self):
        edges = []
        n = 12
        for u in range(n):
            for v in range(n):
                if u != v:
                    edges.append((u, v, 0.9))
        return SocialGraph(n, edges)

    def test_truncates_with_warning(self):
        graph = self._dense_graph()
        index = PropagationIndex(graph, 0.0001, max_branches=50)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            entry = index.entry(0)
        assert any("truncated" in str(w.message) for w in caught)
        assert entry.branches > 0

    def test_strict_mode_raises(self):
        graph = self._dense_graph()
        index = PropagationIndex(graph, 0.0001, max_branches=50, strict=True)
        with pytest.raises(BudgetExceededError):
            index.entry(0)

    def test_truncation_counts_exactly_max_branches(self):
        # An extension is counted before it is consumed: the truncated
        # entry contains exactly max_branches contributions and the
        # budget-tripping extension contributes no silently-dropped mass.
        graph = self._dense_graph()
        index = PropagationIndex(graph, 0.0001, max_branches=50)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            entry = index.entry(0)
        assert entry.branches == 50

    def test_truncated_mass_is_a_lower_bound(self):
        # Every truncated Γ value is a partial sum of the full one.
        graph = self._dense_graph()
        full = PropagationIndex(graph, 0.7).entry(0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            truncated = PropagationIndex(graph, 0.7, max_branches=20).entry(0)
        assert set(truncated.gamma) <= set(full.gamma)
        for source, probability in truncated.gamma.items():
            assert probability <= full.gamma[source] + 1e-12

    def test_strict_and_truncating_agree_below_budget(self):
        graph = self._dense_graph()
        lenient = PropagationIndex(graph, 0.75)
        strict = PropagationIndex(graph, 0.75, strict=True)
        for node in range(graph.n_nodes):
            assert strict.entry(node).gamma == lenient.entry(node).gamma


class TestCompactEntry:
    def test_probability_matches_gamma(self, fig3_graph):
        index = PropagationIndex(fig3_graph, 0.05)
        entry = index.entry(8)
        for source, probability in entry.gamma.items():
            assert entry.probability(source) == probability

    def test_probability_of_absent_source_is_zero(self, fig3_graph):
        entry = PropagationIndex(fig3_graph, 0.05).entry(8)
        assert entry.probability(10_000) == 0.0
        assert entry.probability(11) == 0.0  # cut branch, not in Gamma

    def test_storage_arrays_sorted_and_parallel(self, fig3_graph):
        entry = PropagationIndex(fig3_graph, 0.05).entry(8)
        assert entry.sources.dtype == np.int64
        assert entry.probabilities.dtype == np.float64
        assert entry.sources.size == entry.probabilities.size == entry.size
        assert np.all(np.diff(entry.sources) > 0)
        assert np.all(np.diff(entry.marked_array) >= 0)

    def test_gamma_view_mapping_protocol(self, fig3_graph):
        entry = PropagationIndex(fig3_graph, 0.05).entry(8)
        view = entry.gamma
        assert isinstance(view, GammaView)
        assert len(view) == entry.size
        assert 5 in view and 11 not in view
        assert view.get(11) is None
        assert view.get(11, 0.0) == 0.0
        assert view[5] == pytest.approx(0.4)
        with pytest.raises(KeyError):
            view[11]
        assert dict(view) == {int(s): view[int(s)] for s in entry.sources}
        assert view == dict(view)

    def test_memory_bytes_exact(self, fig3_graph):
        entry = PropagationIndex(fig3_graph, 0.05).entry(8)
        expected = 16 * entry.size + 8 * len(entry.marked)
        assert entry.memory_bytes() == expected

    def test_from_arrays_round_trip(self):
        entry = PropagationEntry(7, {3: 0.5, 1: 0.25}, {3}, 4)
        rebuilt = PropagationEntry.from_arrays(
            entry.node,
            entry.sources,
            entry.probabilities,
            entry.marked_array,
            entry.branches,
        )
        assert rebuilt.gamma == entry.gamma
        assert rebuilt.marked == entry.marked
        assert rebuilt.branches == entry.branches
        assert rebuilt.probability(1) == 0.25


class TestBuildAll:
    @pytest.fixture
    def random_graph(self):
        return preferential_attachment_graph(80, 4, seed=11)

    def test_parallel_matches_serial_exactly(self, random_graph):
        serial = PropagationIndex(random_graph, 0.01).build_all(workers=1)
        parallel = PropagationIndex(random_graph, 0.01).build_all(workers=2)
        assert parallel.n_cached == serial.n_cached == random_graph.n_nodes
        for node in range(random_graph.n_nodes):
            a, b = serial.entry(node), parallel.entry(node)
            # Byte-identical: same DFS order in every process.
            assert dict(a.gamma) == dict(b.gamma)
            assert a.marked == b.marked
            assert a.branches == b.branches

    def test_parallel_skips_cached_entries(self, random_graph):
        index = PropagationIndex(random_graph, 0.01)
        first = index.entry(0)
        index.build_all(workers=2)
        assert index.entry(0) is first
        assert index.last_build_stats.n_built == random_graph.n_nodes - 1

    def test_build_stats_recorded(self, random_graph):
        index = PropagationIndex(random_graph, 0.01).build_all()
        stats = index.last_build_stats
        assert stats is not None
        assert stats.workers == 1
        assert stats.n_entries == stats.n_built == random_graph.n_nodes
        assert stats.total_branches > 0
        assert stats.total_members > 0
        assert stats.wall_seconds >= 0.0
        assert stats.entries_per_second > 0.0
        assert stats.peak_entry_bytes > 0
        assert stats.total_bytes == index.memory_bytes()
        payload = stats.as_dict()
        assert payload["entries_per_second"] == stats.entries_per_second
        assert payload["n_built"] == stats.n_built

    def test_strict_budget_propagates_from_workers(self):
        edges = [(u, v, 0.9) for u in range(10) for v in range(10) if u != v]
        graph = SocialGraph(10, edges)
        index = PropagationIndex(graph, 0.0001, max_branches=10, strict=True)
        with pytest.raises(BudgetExceededError):
            index.build_all(workers=2)


class TestCaching:
    def test_entry_cached(self, chain_graph):
        index = PropagationIndex(chain_graph, 0.1)
        assert index.entry(4) is index.entry(4)
        assert index.n_cached == 1

    def test_build_all(self, chain_graph):
        index = PropagationIndex(chain_graph, 0.1).build_all()
        assert index.n_cached == chain_graph.n_nodes

    def test_memory_accounting(self, chain_graph):
        index = PropagationIndex(chain_graph, 0.1)
        index.entry(4)
        assert index.memory_bytes() > 0
