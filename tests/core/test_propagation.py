"""Unit tests for the §5.1 personalized propagation index."""

import warnings

import pytest

from repro.core import PropagationIndex
from repro.exceptions import BudgetExceededError, ConfigurationError
from repro.graph import SocialGraph


class TestValidation:
    def test_theta_bounds(self, chain_graph):
        with pytest.raises(ConfigurationError):
            PropagationIndex(chain_graph, 0.0)
        with pytest.raises(ConfigurationError):
            PropagationIndex(chain_graph, 1.5)

    def test_budget_bounds(self, chain_graph):
        with pytest.raises(ConfigurationError):
            PropagationIndex(chain_graph, 0.1, max_branches=0)


class TestChain:
    def test_entries_respect_threshold(self, chain_graph):
        # Path probabilities into node 4: 3->4 = 0.5, 2->4 = 0.25,
        # 1->4 = 0.125, 0->4 = 0.0625.
        index = PropagationIndex(chain_graph, 0.1)
        entry = index.entry(4)
        assert entry.gamma == pytest.approx({3: 0.5, 2: 0.25, 1: 0.125})

    def test_lower_theta_reaches_further(self, chain_graph):
        index = PropagationIndex(chain_graph, 0.05)
        entry = index.entry(4)
        assert 0 in entry.gamma
        assert entry.gamma[0] == pytest.approx(0.0625)

    def test_source_node_has_empty_entry(self, chain_graph):
        index = PropagationIndex(chain_graph, 0.1)
        assert index.entry(0).size == 0


class TestAggregation:
    def test_parallel_paths_aggregate(self, diamond_graph):
        index = PropagationIndex(diamond_graph, 0.05)
        entry = index.entry(3)
        # 0 reaches 3 via direct (0.1), via 1 (0.25), via 2 (0.1).
        assert entry.gamma[0] == pytest.approx(0.45)
        assert entry.gamma[1] == pytest.approx(0.5)
        assert entry.gamma[2] == pytest.approx(0.25)

    def test_threshold_prunes_per_path(self, diamond_graph):
        # With theta=0.2 the 0->3 direct (0.1) and 0->2->3 (0.1) paths are
        # cut; only 0->1->3 (0.25) survives for node 0.
        index = PropagationIndex(diamond_graph, 0.2)
        entry = index.entry(3)
        assert entry.gamma[0] == pytest.approx(0.25)

    def test_cycles_do_not_loop(self, triangle_graph):
        index = PropagationIndex(triangle_graph, 0.01)
        entry = index.entry(0)
        # Branches are cycle-free: each of 1, 2 contributes via one path.
        assert entry.gamma[2] == pytest.approx(0.75)
        assert entry.gamma[1] == pytest.approx(0.25 * 0.75)
        assert entry.size == 2


class TestMarking:
    def test_marked_nodes_have_unseen_in_neighbours(self, chain_graph):
        index = PropagationIndex(chain_graph, 0.3)
        entry = index.entry(4)
        # Gamma = {3}; node 3 has in-neighbour 2 outside Gamma -> marked.
        assert entry.gamma == pytest.approx({3: 0.5})
        assert entry.marked == {3}

    def test_fully_covered_entry_has_no_marks(self, triangle_graph):
        index = PropagationIndex(triangle_graph, 0.01)
        entry = index.entry(0)
        # Gamma = {1, 2}; their in-neighbours (0, 1, 2) are all inside.
        assert entry.marked == set()

    def test_max_expandable_probability(self, chain_graph):
        index = PropagationIndex(chain_graph, 0.3)
        entry = index.entry(4)
        assert entry.max_expandable_probability() == pytest.approx(0.5)

    def test_max_expandable_zero_without_marks(self, triangle_graph):
        index = PropagationIndex(triangle_graph, 0.01)
        assert index.entry(0).max_expandable_probability() == 0.0


class TestFigure3:
    """The paper's Figure 3 narrative on the reconstruction fixture."""

    def test_direct_and_two_hop_members(self, fig3_graph):
        index = PropagationIndex(fig3_graph, 0.05)
        entry = index.entry(8)
        assert set(entry.gamma) == {1, 5, 7, 9, 12}

    def test_cut_branch_probability_excluded(self, fig3_graph):
        index = PropagationIndex(fig3_graph, 0.05)
        entry = index.entry(8)
        # 11 -> 9 -> 8 = 0.04 < theta, so 11 is not in Gamma.
        assert 11 not in entry.gamma

    def test_only_boundary_node_marked(self, fig3_graph):
        index = PropagationIndex(fig3_graph, 0.05)
        entry = index.entry(8)
        # Node 9 is the only Gamma member with an in-neighbour (11)
        # outside the index - the Figure 3 "potential node" role.
        assert entry.marked == {9}

    def test_aggregated_probabilities(self, fig3_graph):
        index = PropagationIndex(fig3_graph, 0.05)
        entry = index.entry(8)
        assert entry.gamma[5] == pytest.approx(0.4)
        # 1 -> 5 -> 8 (0.5*0.4) plus 1 -> 9 -> 8 (0.3*0.2).
        assert entry.gamma[1] == pytest.approx(0.5 * 0.4 + 0.3 * 0.2)
        assert entry.gamma[12] == pytest.approx(0.4 * 0.3)  # 12->7->8
        # 9 -> 8 direct (0.2) plus 9 -> 12 -> 7 -> 8 (0.5*0.4*0.3).
        assert entry.gamma[9] == pytest.approx(0.2 + 0.5 * 0.4 * 0.3)


class TestBudget:
    def _dense_graph(self):
        edges = []
        n = 12
        for u in range(n):
            for v in range(n):
                if u != v:
                    edges.append((u, v, 0.9))
        return SocialGraph(n, edges)

    def test_truncates_with_warning(self):
        graph = self._dense_graph()
        index = PropagationIndex(graph, 0.0001, max_branches=50)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            entry = index.entry(0)
        assert any("truncated" in str(w.message) for w in caught)
        assert entry.branches > 0

    def test_strict_mode_raises(self):
        graph = self._dense_graph()
        index = PropagationIndex(graph, 0.0001, max_branches=50, strict=True)
        with pytest.raises(BudgetExceededError):
            index.entry(0)


class TestCaching:
    def test_entry_cached(self, chain_graph):
        index = PropagationIndex(chain_graph, 0.1)
        assert index.entry(4) is index.entry(4)
        assert index.n_cached == 1

    def test_build_all(self, chain_graph):
        index = PropagationIndex(chain_graph, 0.1).build_all()
        assert index.n_cached == chain_graph.n_nodes

    def test_memory_accounting(self, chain_graph):
        index = PropagationIndex(chain_graph, 0.1)
        index.entry(4)
        assert index.memory_bytes() > 0
