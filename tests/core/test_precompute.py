"""Precompute artifacts and the answer tier: mined, warm, and bit-exact.

Everything the head-query precompute pipeline promises is checked at the
library level here: trace mining (normalization pooling, bad-record
refusal), deterministic artifacts, checksummed persistence, validation
against the serving data, plan/answer adoption, and the three-tier
lookup's hit/miss/write-through/invalidate/demote behavior. The
socket-level counterpart lives in ``tests/serve/test_answer_cache.py``.
"""

import json

import pytest

from repro.core import (
    PITEngine,
    ServingEngine,
    build_precompute,
    load_precompute,
    save_precompute,
)
from repro.core.precompute import (
    answer_entry,
    mine_trace,
    plan_from_record,
    summaries_fingerprint,
    validate_precompute,
)
from repro.datasets import data_2k, generate_workload, replay_requests
from repro.exceptions import (
    ArtifactCorruptedError,
    ConfigurationError,
)
from repro.obs import MetricsRegistry

WORK_FIELDS = (
    "topics_considered",
    "topics_pruned",
    "entries_probed",
    "expansion_rounds",
    "representatives_touched",
)


@pytest.fixture(scope="module")
def built():
    """A fully built engine over a small bundle (shared, read-only)."""
    bundle = data_2k(seed=7, n_nodes=130, with_corpus=False)
    engine = PITEngine.from_dataset(bundle, summarizer="rcl", seed=7)
    engine.propagation_index.build_all(workers=1)
    engine.build_summaries()
    return bundle, engine


@pytest.fixture(scope="module")
def trace_records(built):
    bundle, _ = built
    workload = generate_workload(bundle, n_queries=5, n_users=4, seed=7)
    return replay_requests(workload, n_requests=150, k=5, skew=1.1, seed=7)


def serving_engine(built, **kwargs):
    bundle, engine = built
    return ServingEngine(
        bundle.graph, bundle.topic_index, engine.summaries,
        engine.propagation_index, **kwargs,
    )


@pytest.fixture(scope="module")
def artifact(built, trace_records):
    return build_precompute(
        serving_engine(built), trace_records,
        top_queries=4, top_answers=10, default_k=5,
    )


def work_tuple(stats):
    return tuple(getattr(stats, f) for f in WORK_FIELDS)


class TestMineTrace:
    def test_counts_and_stats(self, trace_records):
        queries, triples, stats = mine_trace(trace_records, default_k=5)
        assert stats.n_records == len(trace_records)
        assert stats.n_distinct_queries == len(queries)
        assert stats.n_distinct_triples == len(triples)
        assert sum(t.count for t in queries.values()) == stats.n_records
        assert sum(t.count for t in triples.values()) == stats.n_records

    def test_spelling_variants_pool_into_one_key(self):
        # Case, keyword order, and duplicates all normalize away - the
        # whole point of the normalized plan-cache key.
        records = [
            {"user": 1, "query": "Phone Camera", "k": 5},
            {"user": 1, "query": "camera phone", "k": 5},
            {"user": 1, "query": "CAMERA camera phone", "k": 5},
            {"user": 2, "query": "camera phone", "k": 5},
        ]
        queries, triples, stats = mine_trace(records)
        assert len(queries) == 1
        (key, tally), = queries.items()
        assert key == (("camera", "phone"), "all", 5)
        assert tally.count == 4
        assert len(triples) == 2  # two users, one normalized query

    def test_k_defaults_and_separates_keys(self):
        records = [
            {"user": 1, "query": "phone"},
            {"user": 1, "query": "phone", "k": 3},
        ]
        queries, _, _ = mine_trace(records, default_k=10)
        assert {key[2] for key in queries} == {10, 3}

    def test_reads_jsonl_from_disk(self, tmp_path, trace_records):
        path = tmp_path / "trace.jsonl"
        path.write_text(
            "".join(json.dumps(r) + "\n" for r in trace_records[:20]),
            encoding="utf-8",
        )
        _, _, stats = mine_trace(path, default_k=5)
        assert stats.n_records == 20

    @pytest.mark.parametrize("record", [
        {"user": 1},                               # no query
        {"user": 1, "query": ""},                  # empty query
        {"query": "phone"},                        # no user
        {"user": -1, "query": "phone"},            # negative user
        {"user": True, "query": "phone"},          # bool is not a user id
        {"user": 1, "query": "phone", "k": 0},     # k out of domain
        {"user": 1, "query": "phone", "k": True},  # bool is not a k
        "not-an-object",
    ])
    def test_bad_records_refused(self, record):
        with pytest.raises(ConfigurationError):
            mine_trace([record])

    def test_missing_trace_file_refused(self, tmp_path):
        with pytest.raises(ConfigurationError, match="cannot read"):
            mine_trace(tmp_path / "missing.jsonl")

    def test_corrupt_jsonl_line_refused(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"user": 1, "query": "phone"}\n{oops\n')
        with pytest.raises(ConfigurationError, match="unreadable"):
            mine_trace(path)


class TestArtifactBuildAndPersist:
    def test_build_is_deterministic(self, built, trace_records, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        for path in (a, b):
            art = build_precompute(
                serving_engine(built), trace_records,
                top_queries=4, top_answers=10, default_k=5,
            )
            save_precompute(art, path)
        assert a.read_bytes() == b.read_bytes()

    def test_round_trip(self, artifact, tmp_path):
        path = tmp_path / "precompute.json"
        save_precompute(artifact, path)
        loaded = load_precompute(path)
        assert loaded.signature == artifact.signature
        assert loaded.theta == artifact.theta
        assert loaded.summaries_fingerprint == artifact.summaries_fingerprint
        assert loaded.plans == artifact.plans
        assert loaded.answers == artifact.answers
        assert loaded.trace == artifact.trace

    def test_bit_flip_refused(self, artifact, tmp_path):
        path = tmp_path / "precompute.json"
        save_precompute(artifact, path)
        text = path.read_text()
        needle = '"k": 5'
        assert needle in text
        path.write_text(text.replace(needle, '"k": 6', 1))
        with pytest.raises(ArtifactCorruptedError):
            load_precompute(path)

    def test_truncation_refused(self, artifact, tmp_path):
        path = tmp_path / "precompute.json"
        save_precompute(artifact, path)
        path.write_bytes(path.read_bytes()[:-40])
        with pytest.raises(ArtifactCorruptedError):
            load_precompute(path)

    def test_memory_hint_positive(self, artifact):
        assert artifact.memory_hint_bytes() > 0

    def test_top_zero_disables_each_half(self, built, trace_records):
        no_plans = build_precompute(
            serving_engine(built), trace_records,
            top_queries=0, top_answers=3, default_k=5,
        )
        assert no_plans.plans == [] and len(no_plans.answers) == 3
        no_answers = build_precompute(
            serving_engine(built), trace_records,
            top_queries=3, top_answers=0, default_k=5,
        )
        assert len(no_answers.plans) == 3 and no_answers.answers == []


class TestValidate:
    def test_matching_engine_accepted(self, built, artifact):
        bundle, engine = built
        validate_precompute(
            artifact, bundle.graph,
            engine.propagation_index.theta, engine.summaries,
        )

    def test_wrong_graph_refused(self, built, artifact):
        _, engine = built
        other = data_2k(seed=7, n_nodes=90, with_corpus=False)
        with pytest.raises(ConfigurationError, match="graph"):
            validate_precompute(
                artifact, other.graph,
                engine.propagation_index.theta, engine.summaries,
            )

    def test_wrong_theta_refused(self, built, artifact):
        bundle, engine = built
        with pytest.raises(ConfigurationError, match="theta"):
            validate_precompute(
                artifact, bundle.graph, 0.5, engine.summaries,
            )

    def test_different_summaries_refused(self, built, artifact):
        bundle, engine = built
        other = PITEngine.from_dataset(bundle, summarizer="rcl", seed=99)
        other.build_summaries()
        assert summaries_fingerprint(other.summaries) != (
            artifact.summaries_fingerprint
        )
        with pytest.raises(ConfigurationError, match="summaries"):
            validate_precompute(
                artifact, bundle.graph,
                engine.propagation_index.theta, other.summaries,
            )


class TestPlanAndAnswerRecords:
    def test_rebuilt_plan_searches_identically(self, built, artifact):
        # A plan round-tripped through JSON must drive searches to the
        # same bytes as a freshly compiled one (JSON floats round-trip
        # doubles exactly via repr).
        assert artifact.plans
        cold = serving_engine(built)
        warm = serving_engine(built)
        for record in artifact.plans:
            assert warm._searcher.adopt_plan(plan_from_record(record))
            query = " ".join(record["keywords"])
            for user in (3, 11, 40):
                got = warm.search(user, query, k=record["k"], with_stats=True)
                want = cold.search(user, query, k=record["k"], with_stats=True)
                assert got[0] == want[0]
                assert work_tuple(got[1]) == work_tuple(want[1])

    def test_answer_entry_reconstructs_search_output(self, built, artifact):
        assert artifact.answers
        cold = serving_engine(built)
        for record in artifact.answers:
            key, (results, work) = answer_entry(record)
            user, (keywords, _mode), k = key
            want_results, want_stats = cold.search(
                user, " ".join(keywords), k, with_stats=True
            )
            assert list(results) == want_results
            assert work == work_tuple(want_stats)


class TestAnswerTier:
    def test_miss_then_hit_is_bit_exact(self, built):
        engine = serving_engine(built, answer_cache_bytes=1 << 20)
        first = engine.search(3, "phone", k=5, with_stats=True)
        second = engine.search(3, "phone", k=5, with_stats=True)
        assert second[0] == first[0]
        assert work_tuple(second[1]) == work_tuple(first[1])
        stats = engine.answer_cache_stats()
        assert stats.misses == 1 and stats.hits == 1

    def test_hit_reports_no_cache_delta_work(self, built):
        engine = serving_engine(built, answer_cache_bytes=1 << 20)
        engine.search(3, "phone", k=5)
        _, stats = engine.search(3, "phone", k=5, with_stats=True)
        # A cached answer did no entry/summary work this call.
        assert stats.entry_cache_hits == 0
        assert stats.entry_cache_misses == 0
        assert stats.summary_cache_hits == 0
        assert stats.summary_cache_misses == 0

    def test_key_normalization_shares_answers(self, built):
        engine = serving_engine(built, answer_cache_bytes=1 << 20)
        engine.search(3, "Phone  CAMERA", k=5)
        engine.search(3, "camera phone", k=5)
        stats = engine.answer_cache_stats()
        assert stats.n_items == 1
        assert stats.hits == 1

    def test_batch_partitions_hits_and_misses(self, built):
        engine = serving_engine(built, answer_cache_bytes=1 << 20)
        warm = [(3, "phone"), (11, "camera")]
        for user, query in warm:
            engine.search(user, query, k=5)
        requests = [(40, "phone"), (3, "phone"), (11, "camera"), (3, "music")]
        cold = serving_engine(built)
        got = engine.search_batch(requests, k=5)
        want = cold.search_batch(requests, k=5)
        assert got == want
        stats = engine.answer_cache_stats()
        assert stats.hits == 2  # the two warm pairs
        # The two cold requests were written through.
        assert engine.search(40, "phone", k=5) == want[0]
        assert engine.answer_cache_stats().hits == 3

    def test_invalidate_all_and_by_user(self, built):
        engine = serving_engine(built, answer_cache_bytes=1 << 20)
        for user, query in ((3, "phone"), (11, "phone"), (3, "camera")):
            engine.search(user, query, k=5)
        assert engine.invalidate_answers(users=[3]) == 2
        assert engine.answer_cache_stats().n_items == 1
        assert engine.invalidate_answers() == 1
        assert engine.answer_cache_stats().n_items == 0
        # Disabled tier: the seam is a harmless no-op.
        assert serving_engine(built).invalidate_answers() == 0

    def test_warm_from_precompute_counts_and_skips_resident(
        self, built, artifact
    ):
        engine = serving_engine(built, answer_cache_bytes=1 << 20)
        counts = engine.warm_from_precompute(artifact)
        assert counts["plans"] == len(artifact.plans)
        assert counts["answers"] == len(artifact.answers)
        # Everything warm is already resident: a second warm adopts nothing.
        again = engine.warm_from_precompute(artifact)
        assert again == {"plans": 0, "answers": 0}

    def test_warm_without_answer_tier_still_adopts_plans(
        self, built, artifact
    ):
        engine = serving_engine(built)
        counts = engine.warm_from_precompute(artifact)
        assert counts["plans"] == len(artifact.plans)
        assert counts["answers"] == 0

    def test_warm_refuses_mismatched_artifact(self, built, artifact):
        import dataclasses

        engine = serving_engine(built, answer_cache_bytes=1 << 20)
        wrong = dataclasses.replace(artifact, summaries_fingerprint="0" * 64)
        with pytest.raises(ConfigurationError, match="summaries"):
            engine.warm_from_precompute(wrong)
        assert engine.answer_cache_stats().n_items == 0

    def test_eviction_demotes_into_plan_tier(self, built):
        # An answer tier far smaller than the working set: later answers
        # must evict earlier ones, and each eviction must bump the
        # evicted query's compiled plan in the plan tier. (A single k=5
        # answer is ~660 bytes, so 1000 holds at most one while nine
        # 160+-byte answers always overflow it.)
        engine = serving_engine(built, answer_cache_bytes=1000)
        registry = MetricsRegistry()
        engine.set_metrics(registry)
        queries = ["phone", "camera", "music"]
        for user in (3, 11, 40):
            for query in queries:
                engine.search(user, query, k=5)
        answer_stats = engine.answer_cache_stats()
        assert answer_stats.evictions > 0
        engine.publish_tier_gauges(registry)
        snapshot = registry.snapshot()
        assert snapshot.gauges["cache.tier.answers.demotions"] > 0
        assert (
            snapshot.gauges["cache.tier.answers.demotions"]
            == answer_stats.evictions
        )
        # Demotion preserved the plans: every query still has its
        # compiled plan resident despite the answer churn.
        assert engine.tier_stats()["plans"].n_items == len(queries)

    def test_tier_stats_names_configured_tiers_only(self, built):
        engine = serving_engine(built, answer_cache_bytes=1 << 20)
        tiers = engine.tier_stats()
        assert "answers" in tiers and "plans" in tiers
        assert "entries" not in tiers  # not configured in this engine
        engine.search(3, "phone", k=5)
        assert engine.tier_stats()["answers"].n_items == 1

    def test_generation_stamp_published(self, built):
        engine = serving_engine(built, answer_cache_bytes=1 << 20)
        engine.set_reload_generation(4)
        registry = MetricsRegistry()
        engine.publish_tier_gauges(registry)
        assert registry.snapshot().gauges["cache.tier.generation"] == 4
