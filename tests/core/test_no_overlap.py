"""Unit tests for non-overlapping group extraction (Algorithm 3)."""

import numpy as np
import pytest

from repro.core.rcl import greedy_no_overlap, group_size_cap, no_overlap_from_tree
from repro.exceptions import ConfigurationError

from .test_set_enumeration import labels_from_groups


class TestGroupSizeCap:
    def test_formula(self):
        assert group_size_cap(10, 3) == 4
        assert group_size_cap(9, 3) == 3
        assert group_size_cap(1, 5) == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            group_size_cap(0, 3)
        with pytest.raises(ConfigurationError):
            group_size_cap(3, 0)


class TestGreedy:
    def test_partition_property(self):
        rng = np.random.default_rng(1)
        n = 20
        raw = rng.integers(0, 2, size=(n, n)).astype(np.int8)
        labels = np.maximum(raw, raw.T)
        np.fill_diagonal(labels, 1)
        groups = greedy_no_overlap(labels, 5)
        members = [p for g in groups for p in g]
        assert sorted(members) == list(range(n))  # exact partition

    def test_respects_size_cap(self):
        labels = labels_from_groups(10, [tuple(range(10))])
        groups = greedy_no_overlap(labels, 5)  # cap = 2
        assert all(len(g) <= 2 for g in groups)

    def test_clique_grouped_together(self):
        labels = labels_from_groups(6, [(0, 2, 4)])
        groups = greedy_no_overlap(labels, 2)
        assert (0, 2, 4) in groups

    def test_isolated_nodes_become_singletons(self):
        labels = labels_from_groups(3, [])
        groups = greedy_no_overlap(labels, 3)
        assert groups == [(0,), (1,), (2,)]

    def test_policy_any_chains(self):
        labels = labels_from_groups(3, [(0, 1), (1, 2)])
        all_groups = greedy_no_overlap(labels, 1, policy="all")
        any_groups = greedy_no_overlap(labels, 1, policy="any")
        assert (0, 1) in all_groups and (2,) in all_groups
        assert (0, 1, 2) in any_groups

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            greedy_no_overlap(np.zeros((2, 3), dtype=np.int8), 2)
        with pytest.raises(ConfigurationError):
            greedy_no_overlap(np.eye(2, dtype=np.int8), 2, policy="bogus")


class TestTreeEquivalence:
    """The greedy closed form must match the literal tree walk."""

    @pytest.mark.parametrize("seed", range(8))
    @pytest.mark.parametrize("policy", ["all", "any"])
    def test_matches_tree_on_random_instances(self, seed, policy):
        rng = np.random.default_rng(seed)
        n = 10
        raw = (rng.random((n, n)) < 0.4).astype(np.int8)
        labels = np.maximum(raw, raw.T)
        np.fill_diagonal(labels, 1)
        n_clusters = int(rng.integers(1, 5))
        greedy = greedy_no_overlap(labels, n_clusters, policy=policy)
        tree = no_overlap_from_tree(labels, n_clusters, policy=policy)
        assert greedy == tree

    def test_matches_tree_with_cap_binding(self):
        labels = labels_from_groups(8, [tuple(range(8))])
        greedy = greedy_no_overlap(labels, 4)  # cap = 2
        tree = no_overlap_from_tree(labels, 4)
        assert greedy == tree
        assert all(len(g) == 2 for g in greedy)
