"""Unit tests for the LRW-A summarizer pipeline (Algorithm 9)."""

import pytest

from repro.core.lrw import LRWSummarizer
from repro.exceptions import ConfigurationError
from repro.graph import preferential_attachment_graph
from repro.topics import TopicIndex
from repro.walks import WalkIndex


@pytest.fixture(scope="module")
def stack():
    graph = preferential_attachment_graph(120, 4, seed=6)
    topic_index = TopicIndex(
        120,
        {v: ["wide topic"] for v in range(0, 40)}
        | {v: ["narrow topic"] for v in (50, 51)},
    )
    walk_index = WalkIndex.built(graph, 4, 15, seed=6)
    return graph, topic_index, walk_index


class TestConstruction:
    def test_foreign_walk_index_rejected(self, stack):
        graph, topic_index, _ = stack
        other = preferential_attachment_graph(30, 2, seed=1)
        foreign = WalkIndex.built(other, 3, 2, seed=1)
        with pytest.raises(ConfigurationError):
            LRWSummarizer(graph, topic_index, foreign)

    def test_unbuilt_index_is_built(self, stack):
        graph, topic_index, _ = stack
        lazy = WalkIndex(graph, 3, 2, seed=9)
        summarizer = LRWSummarizer(graph, topic_index, lazy)
        assert summarizer.walk_index.is_built

    def test_parameter_validation(self, stack):
        graph, topic_index, walk_index = stack
        with pytest.raises(ConfigurationError):
            LRWSummarizer(graph, topic_index, walk_index, damping=1.5)
        with pytest.raises(ConfigurationError):
            LRWSummarizer(graph, topic_index, walk_index, rep_fraction=0.0)


class TestRepresentatives:
    def test_count_tracks_fraction(self, stack):
        graph, topic_index, walk_index = stack
        summarizer = LRWSummarizer(
            graph, topic_index, walk_index, rep_fraction=0.25
        )
        reps = summarizer.representatives("wide topic")
        assert reps.size == 10

    def test_topic_pool_default(self, stack):
        graph, topic_index, walk_index = stack
        summarizer = LRWSummarizer(
            graph, topic_index, walk_index, rep_fraction=0.25
        )
        topic_nodes = set(
            int(v) for v in topic_index.topic_nodes("wide topic")
        )
        assert all(int(r) in topic_nodes
                   for r in summarizer.representatives("wide topic"))

    def test_minimum_one_representative(self, stack):
        graph, topic_index, walk_index = stack
        summarizer = LRWSummarizer(
            graph, topic_index, walk_index, rep_fraction=0.01
        )
        assert summarizer.representatives("narrow topic").size == 1


class TestSummaries:
    def test_weights_bounded(self, stack):
        graph, topic_index, walk_index = stack
        summarizer = LRWSummarizer(
            graph, topic_index, walk_index, rep_fraction=0.2
        )
        summary = summarizer.summarize("wide topic")
        assert 0.0 < summary.total_weight <= 1.0 + 1e-9
        assert summary.size >= 1

    def test_representatives_carry_weight(self, stack):
        graph, topic_index, walk_index = stack
        summarizer = LRWSummarizer(
            graph, topic_index, walk_index, rep_fraction=0.2
        )
        summary = summarizer.summarize("wide topic")
        reps = set(int(r) for r in summarizer.representatives("wide topic"))
        assert set(summary.weights) <= reps

    def test_deterministic_for_fixed_index(self, stack):
        graph, topic_index, walk_index = stack
        build = lambda: LRWSummarizer(
            graph, topic_index, walk_index, rep_fraction=0.2
        ).summarize("wide topic")
        assert dict(build().weights) == dict(build().weights)

    def test_literal_variants_run(self, stack):
        graph, topic_index, walk_index = stack
        literal = LRWSummarizer(
            graph, topic_index, walk_index,
            rep_fraction=0.2, initial="uniform", reinforcement="walk",
            candidates="all",
        )
        summary = literal.summarize("wide topic")
        assert summary.total_weight <= 1.0 + 1e-9
