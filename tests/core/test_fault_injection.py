"""Fault-injection tests for the offline pipeline.

Proves the robustness contract end-to-end: a build killed mid-way and
resumed from its checkpoint produces an ``.npz`` byte-identical to an
uninterrupted build; crashed workers are retried on fresh processes;
persistent failures degrade gracefully or raise
:class:`~repro.exceptions.BuildFailedError` per the ``strict`` flag; and
corrupted artifacts (single flipped byte, truncation) are rejected at
load time with :class:`~repro.exceptions.ArtifactCorruptedError`.
"""

import warnings

import pytest

from repro import _faults
from repro.core import (
    PropagationIndex,
    load_propagation_index,
    save_propagation_index,
)
from repro.exceptions import (
    ArtifactCorruptedError,
    BuildFailedError,
    ConfigurationError,
)
from repro.graph import preferential_attachment_graph

THETA = 0.01


@pytest.fixture(autouse=True)
def _clean_faults():
    """Never leak an injected fault into another test."""
    yield
    _faults.clear_faults()


@pytest.fixture(scope="module")
def graph():
    return preferential_attachment_graph(70, 3, seed=5)


@pytest.fixture(scope="module")
def reference_bytes(graph, tmp_path_factory):
    """The ``.npz`` of an uninterrupted serial build."""
    path = tmp_path_factory.mktemp("reference") / "prop.npz"
    index = PropagationIndex(graph, THETA).build_all(workers=1)
    save_propagation_index(index, path)
    return path.read_bytes()


class TestInjectionRegistry:
    def test_unknown_point_rejected(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            _faults.set_fault("nope.nope", lambda **_: None)

    def test_fault_context_restores_previous_hook(self):
        calls = []
        _faults.set_fault("propagation.build_entry", lambda **c: calls.append("outer"))
        with _faults.fault("propagation.build_entry", lambda **c: calls.append("inner")):
            _faults.inject("propagation.build_entry", node=0, attempt=0)
        _faults.inject("propagation.build_entry", node=0, attempt=0)
        assert calls == ["inner", "outer"]

    def test_transform_keeps_bytes_without_hook(self):
        assert _faults.transform("artifact.load_bytes", b"abc", path=None) == b"abc"


class TestResumeAfterCrash:
    def test_interrupted_build_resumes_byte_identical(
        self, graph, reference_bytes, tmp_path
    ):
        """The acceptance-criteria scenario, serial flavour."""
        checkpoint = tmp_path / "prop.ckpt.npz"
        # Kill the build at node 40; the finally-flush persists nodes 0-39.
        with _faults.fault(
            "propagation.build_entry", _faults.InterruptOnEntry(40)
        ):
            with pytest.raises(KeyboardInterrupt):
                PropagationIndex(graph, THETA).build_all(
                    workers=1, checkpoint=checkpoint, checkpoint_every=10
                )
        assert checkpoint.exists()
        partial = load_propagation_index(checkpoint, graph)
        assert 0 < partial.n_cached < graph.n_nodes

        resumed = PropagationIndex(graph, THETA).build_all(
            workers=1, checkpoint=checkpoint, checkpoint_every=10
        )
        assert resumed.last_build_stats.n_resumed == partial.n_cached
        assert resumed.last_build_stats.n_built == (
            graph.n_nodes - partial.n_cached
        )
        output = tmp_path / "prop.npz"
        save_propagation_index(resumed, output)
        assert output.read_bytes() == reference_bytes

    def test_parallel_failures_then_resume_byte_identical(
        self, graph, reference_bytes, tmp_path
    ):
        """Chunks that keep failing are skipped, checkpointed, resumed."""
        checkpoint = tmp_path / "prop.ckpt.npz"
        with _faults.fault(
            "propagation.worker_chunk", _faults.FailOnChunk(1, attempts=(0, 1))
        ):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                degraded = PropagationIndex(graph, THETA).build_all(
                    workers=2,
                    checkpoint=checkpoint,
                    checkpoint_every=5,
                    max_retries=1,
                    retry_backoff=0.0,
                    strict=False,
                )
        failed = degraded.last_build_stats.failed_nodes
        assert failed  # chunk 1 never built
        resumed = PropagationIndex(graph, THETA).build_all(
            workers=1, checkpoint=checkpoint, checkpoint_every=5
        )
        assert resumed.last_build_stats.failed_nodes == ()
        output = tmp_path / "prop.npz"
        save_propagation_index(resumed, output)
        assert output.read_bytes() == reference_bytes

    def test_final_checkpoint_matches_output(self, graph, tmp_path):
        checkpoint = tmp_path / "prop.ckpt.npz"
        index = PropagationIndex(graph, THETA).build_all(
            workers=1, checkpoint=checkpoint, checkpoint_every=1000
        )
        output = tmp_path / "prop.npz"
        save_propagation_index(index, output)
        # checkpoint_every never triggered mid-build; the exit flush wrote
        # the complete artifact.
        assert checkpoint.read_bytes() == output.read_bytes()

    def test_mismatched_checkpoint_rejected(self, graph, tmp_path):
        checkpoint = tmp_path / "prop.ckpt.npz"
        index = PropagationIndex(graph, THETA)
        index.entry(0)
        save_propagation_index(index, checkpoint)
        other = PropagationIndex(graph, THETA * 2)
        with pytest.raises(ConfigurationError, match="checkpoint was built"):
            other.build_all(workers=1, checkpoint=checkpoint)

    def test_resume_false_ignores_checkpoint(self, graph, tmp_path):
        checkpoint = tmp_path / "prop.ckpt.npz"
        seeded = PropagationIndex(graph, THETA)
        seeded.entry(0)
        save_propagation_index(seeded, checkpoint)
        index = PropagationIndex(graph, THETA).build_all(
            workers=1, checkpoint=checkpoint, resume=False
        )
        assert index.last_build_stats.n_resumed == 0
        assert index.last_build_stats.n_built == graph.n_nodes


class TestMetricsSurviveCrashes:
    """Cumulative observability counters across crash + resume builds."""

    def test_crash_and_resume_report_cumulative_counters(
        self, graph, tmp_path
    ):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        checkpoint = tmp_path / "prop.ckpt.npz"
        with _faults.fault(
            "propagation.build_entry", _faults.InterruptOnEntry(40)
        ):
            with pytest.raises(KeyboardInterrupt):
                PropagationIndex(graph, THETA, metrics=registry).build_all(
                    workers=1, checkpoint=checkpoint, checkpoint_every=10
                )
        # The kill never reached stats construction, but every entry
        # finished before it is already on the registry.
        built_before_crash = registry.counter_value("propagation.entries_built")
        assert built_before_crash > 0
        flushes_before_crash = registry.counter_value(
            "propagation.checkpoint_flushes"
        )
        assert flushes_before_crash >= 2  # periodic flushes + exit flush

        partial = load_propagation_index(checkpoint, graph)
        resumed = PropagationIndex(graph, THETA, metrics=registry).build_all(
            workers=1, checkpoint=checkpoint, checkpoint_every=10
        )
        snapshot = registry.snapshot()
        # Cumulative across both builds: every node built exactly once.
        assert snapshot.counter("propagation.entries_built") == graph.n_nodes
        assert snapshot.counter("propagation.entries_resumed") == (
            partial.n_cached
        )
        assert snapshot.counter("propagation.checkpoint_flushes") > (
            flushes_before_crash
        )
        # The per-call stats remain scoped to the resumed build alone.
        assert resumed.last_build_stats.n_built == (
            graph.n_nodes - partial.n_cached
        )
        # Both build attempts closed their build_all span.
        phase = snapshot.histogram("phase.propagation.build_all.seconds")
        assert phase.count == 2
        # Only the second build had a checkpoint to load.
        resume_phase = snapshot.histogram("phase.propagation.resume.seconds")
        assert resume_phase.count == 1

    def test_retries_are_counted(self, graph):
        from repro.obs.registry import MetricsRegistry

        registry = MetricsRegistry()
        with _faults.fault(
            "propagation.build_entry", _faults.FailOnEntry(7, attempts=(0, 1))
        ):
            index = PropagationIndex(graph, THETA, metrics=registry).build_all(
                workers=1, max_retries=2, retry_backoff=0.0
            )
        assert index.last_build_stats.failed_nodes == ()
        assert registry.counter_value("propagation.entry_retries") == 2
        assert registry.counter_value("propagation.entries_built") == (
            graph.n_nodes
        )
        assert registry.counter_value("propagation.entries_failed") == 0


class TestWorkerCrashRetry:
    def test_hard_killed_worker_is_retried_on_fresh_pool(self, graph):
        """os._exit in a worker breaks the pool; a fresh pool finishes."""
        with _faults.fault(
            "propagation.worker_chunk", _faults.ExitOnChunk(2, attempts=(0,))
        ):
            index = PropagationIndex(graph, THETA).build_all(
                workers=2, max_retries=2, retry_backoff=0.0
            )
        stats = index.last_build_stats
        assert stats.failed_nodes == ()
        assert index.n_cached == graph.n_nodes

    def test_crash_retried_build_matches_clean_build(self, graph, tmp_path, reference_bytes):
        with _faults.fault(
            "propagation.worker_chunk", _faults.ExitOnChunk(0, attempts=(0,))
        ):
            index = PropagationIndex(graph, THETA).build_all(
                workers=2, max_retries=2, retry_backoff=0.0
            )
        output = tmp_path / "prop.npz"
        save_propagation_index(index, output)
        assert output.read_bytes() == reference_bytes

    def test_serial_transient_failure_is_retried(self, graph):
        with _faults.fault(
            "propagation.build_entry", _faults.FailOnEntry(7, attempts=(0,))
        ):
            index = PropagationIndex(graph, THETA).build_all(
                workers=1, max_retries=1, retry_backoff=0.0
            )
        assert index.last_build_stats.failed_nodes == ()
        assert index.n_cached == graph.n_nodes

    def test_persistent_failure_degrades_gracefully(self, graph):
        hook = _faults.FailOnEntry(7, attempts=(0, 1, 2, 3))
        with _faults.fault("propagation.build_entry", hook):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                index = PropagationIndex(graph, THETA).build_all(
                    workers=1, max_retries=2, retry_backoff=0.0, strict=False
                )
        stats = index.last_build_stats
        assert stats.failed_nodes == (7,)
        assert stats.n_failed == 1
        assert stats.n_built == graph.n_nodes - 1
        assert any("failed to build" in str(w.message) for w in caught)

    def test_persistent_failure_raises_in_strict_mode(self, graph, tmp_path):
        checkpoint = tmp_path / "prop.ckpt.npz"
        hook = _faults.FailOnEntry(7, attempts=(0, 1, 2, 3))
        with _faults.fault("propagation.build_entry", hook):
            with pytest.raises(BuildFailedError) as excinfo:
                PropagationIndex(graph, THETA).build_all(
                    workers=1,
                    max_retries=2,
                    retry_backoff=0.0,
                    strict=True,
                    checkpoint=checkpoint,
                )
        error = excinfo.value
        assert error.failed_nodes == [7]
        assert error.n_built == graph.n_nodes - 1
        # The partial result survives: attached to the error AND flushed.
        assert error.partial_index is not None
        assert error.partial_index.n_cached == graph.n_nodes - 1
        assert load_propagation_index(checkpoint, graph).n_cached == (
            graph.n_nodes - 1
        )

    def test_deterministic_library_errors_are_not_retried(self):
        from repro.exceptions import BudgetExceededError
        from repro.graph import SocialGraph

        edges = [(u, v, 0.9) for u in range(10) for v in range(10) if u != v]
        dense = SocialGraph(10, edges)
        index = PropagationIndex(dense, 0.0001, max_branches=10, strict=True)
        with pytest.raises(BudgetExceededError):
            index.build_all(workers=1, max_retries=5, retry_backoff=0.0)


class TestKillDuringWrite:
    def test_destination_survives_injected_crash(self, graph, tmp_path):
        path = tmp_path / "prop.npz"
        index = PropagationIndex(graph, THETA)
        index.entry(0)
        save_propagation_index(index, path)
        before = path.read_bytes()
        index.entry(1)
        with _faults.fault("artifact.pre_replace", _faults.FailOnReplace()):
            with pytest.raises(OSError, match="injected"):
                save_propagation_index(index, path)
        assert path.read_bytes() == before  # old artifact intact
        assert list(tmp_path.iterdir()) == [path]  # temp file cleaned up
        # The surviving artifact still loads and verifies.
        assert load_propagation_index(path, graph).n_cached == 1
        # A later, uninterrupted save publishes the new version.
        save_propagation_index(index, path)
        assert load_propagation_index(path, graph).n_cached == 2


class TestBitFlipOnLoad:
    @pytest.fixture
    def artifact(self, graph, tmp_path):
        path = tmp_path / "prop.npz"
        index = PropagationIndex(graph, THETA).build_all(workers=1)
        save_propagation_index(index, path)
        return path

    @pytest.mark.parametrize("relative_offset", [0.1, 0.5, 0.9])
    def test_single_flipped_byte_rejected(self, graph, artifact, relative_offset):
        """Acceptance criterion: one flipped byte -> typed rejection."""
        size = len(artifact.read_bytes())
        hook = _faults.FlipByte(int(size * relative_offset))
        with _faults.fault("artifact.load_bytes", hook):
            with pytest.raises(ArtifactCorruptedError) as excinfo:
                load_propagation_index(artifact, graph)
        assert str(artifact) in str(excinfo.value)

    def test_flipped_byte_on_disk_rejected(self, graph, artifact):
        raw = bytearray(artifact.read_bytes())
        raw[len(raw) // 3] ^= 0x01  # single bit, mid-file
        artifact.write_bytes(bytes(raw))
        with pytest.raises(ArtifactCorruptedError):
            load_propagation_index(artifact, graph)

    def test_truncated_artifact_rejected(self, graph, artifact):
        hook = _faults.TruncateBytes(len(artifact.read_bytes()) // 2)
        with _faults.fault("artifact.load_bytes", hook):
            with pytest.raises(ArtifactCorruptedError, match="unreadable NPZ"):
                load_propagation_index(artifact, graph)

    def test_clean_artifact_still_loads(self, graph, artifact):
        assert load_propagation_index(artifact, graph).n_cached == graph.n_nodes
