"""Unit tests for Algorithm 4 centroid selection."""

import pytest

from repro.core.rcl import closeness_centrality, select_central, vote_candidates
from repro.exceptions import ConfigurationError, NodeNotFoundError
from repro.graph import GraphBuilder, SocialGraph


@pytest.fixture
def star_graph():
    """Node 0 reaches 1..4 directly; node 5 reaches them through 0."""
    builder = GraphBuilder(6)
    for leaf in (1, 2, 3, 4):
        builder.add_edge(0, leaf, 0.5)
    builder.add_edge(5, 0, 0.5)
    return builder.build()


class TestClosenessCentrality:
    def test_center_of_star(self, star_graph):
        group = [1, 2, 3, 4]
        # Node 0 reaches all four leaves in one hop.
        assert closeness_centrality(star_graph, 0, group, max_hops=4) == pytest.approx(1.0)

    def test_distance_two_node(self, star_graph):
        group = [1, 2, 3, 4]
        assert closeness_centrality(star_graph, 5, group, max_hops=4) == pytest.approx(0.5)

    def test_unreachable_penalized(self, star_graph):
        # Leaf 1 reaches nothing; centrality uses the unreachable penalty.
        group = [2, 3]
        score = closeness_centrality(star_graph, 1, group, max_hops=3)
        assert score == pytest.approx(2 / (4 + 4))

    def test_singleton_self_group_infinite(self, star_graph):
        assert closeness_centrality(star_graph, 1, [1], max_hops=2) == float("inf")

    def test_empty_group_rejected(self, star_graph):
        with pytest.raises(ConfigurationError):
            closeness_centrality(star_graph, 0, [], max_hops=2)

    def test_custom_unreachable_distance(self, star_graph):
        score = closeness_centrality(
            star_graph, 1, [2], max_hops=2, unreachable_distance=10
        )
        assert score == pytest.approx(1 / 10)

    def test_out_of_range_member_raises_typed_error(self, star_graph):
        # Bad ids surface as NodeNotFoundError via the graph's public
        # validate_nodes, never as a raw IndexError from array indexing.
        with pytest.raises(NodeNotFoundError):
            closeness_centrality(star_graph, 0, [1, 99], max_hops=2)
        with pytest.raises(NodeNotFoundError):
            closeness_centrality(star_graph, 99, [1, 2], max_hops=2)
        with pytest.raises(NodeNotFoundError):
            vote_candidates(star_graph, [1, -3], max_hops=2)
        with pytest.raises(NodeNotFoundError):
            select_central(star_graph, [0, 6], max_hops=2)


class TestVoteCandidates:
    def test_votes_count_reachability(self, star_graph):
        candidates, votes = vote_candidates(star_graph, [1, 2], max_hops=2)
        # Node 0 reaches both leaves (2 votes); node 5 reaches both via 0.
        assert votes[0] == 2
        assert votes[5] == 2
        # Members vote for themselves once each.
        assert votes[1] == 1 and votes[2] == 1
        assert set(candidates) == {0, 5}

    def test_members_can_be_candidates(self, star_graph):
        candidates, votes = vote_candidates(star_graph, [1], max_hops=2)
        assert votes[1] == 1

    def test_exclude_members(self, star_graph):
        _, votes = vote_candidates(
            star_graph, [1, 2], max_hops=2, include_members=False
        )
        assert 1 not in votes or votes[1] == 0

    def test_empty_group_rejected(self, star_graph):
        with pytest.raises(ConfigurationError):
            vote_candidates(star_graph, [], max_hops=2)

    def test_sampled_index_variant(self, star_graph):
        from repro.walks import WalkIndex

        walk_index = WalkIndex.built(star_graph, 2, 30, seed=1)
        candidates, votes = vote_candidates(
            star_graph, [1, 2], max_hops=2, walk_index=walk_index
        )
        assert votes.get(0) == 2  # 0's walks hit each leaf w.h.p. with R=30


class TestSelectCentral:
    def test_star_center_selected(self, star_graph):
        best = select_central(star_graph, [1, 2, 3, 4], max_hops=2)
        assert best == 0

    def test_candidate_cap_applies(self, star_graph):
        best = select_central(star_graph, [1, 2, 3, 4], max_hops=2, max_candidates=1)
        # With a single candidate allowed, degree tie-break picks node 0.
        assert best == 0

    def test_fallback_without_votes(self):
        # Isolated pair: nothing reaches the group, fallback = max out-degree.
        graph = SocialGraph(3, [(0, 1, 0.5), (0, 2, 0.5)])
        best = select_central(graph, [1, 2], max_hops=1)
        # Voting: node 0 reaches both -> candidate; this exercises the
        # normal path instead. Build a graph with truly unreachable group:
        lonely = SocialGraph(2, [])
        from repro.walks import WalkIndex

        walk_index = WalkIndex.built(lonely, 2, 2, seed=1)
        assert select_central(lonely, [0, 1], max_hops=2, walk_index=walk_index) in (0, 1)

    def test_chain_centroid(self, chain_graph):
        # Group {2, 3}: node 2 reaches 3 in 1 hop and itself in 0.
        best = select_central(chain_graph, [2, 3], max_hops=3)
        assert best in (1, 2)  # both reach the group quickly

    def test_invalid_max_candidates(self, star_graph):
        with pytest.raises(ConfigurationError):
            select_central(star_graph, [1], max_hops=2, max_candidates=0)
