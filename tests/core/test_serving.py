"""Unit tests for the online serving layer: ByteLRUCache and the
bounded caches / batched execution inside PersonalizedSearcher."""

import pytest

from repro.core import (
    ByteLRUCache,
    PersonalizedSearcher,
    PropagationIndex,
    TopicSummary,
)
from repro.exceptions import ConfigurationError
from repro.graph import GraphBuilder
from repro.topics import TopicIndex


class TestByteLRUCache:
    def test_basic_round_trip(self):
        cache = ByteLRUCache(100)
        assert cache.get("a") is None
        cache.put("a", 1, 10)
        assert cache.get("a") == 1
        assert "a" in cache
        assert len(cache) == 1
        assert cache.memory_bytes() == 10

    def test_byte_budget_evicts_lru(self):
        cache = ByteLRUCache(30)
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.put("c", 3, 10)
        cache.get("a")  # bump "a"; "b" is now least recent
        cache.put("d", 4, 10)
        assert "b" not in cache
        assert "a" in cache and "c" in cache and "d" in cache
        assert cache.evictions == 1
        assert cache.memory_bytes() == 30

    def test_oversize_item_not_cached(self):
        cache = ByteLRUCache(20)
        cache.put("a", 1, 10)
        cache.put("big", 2, 21)
        assert "big" not in cache
        assert "a" in cache  # nothing evicted to make room

    def test_reinsert_replaces_charge(self):
        cache = ByteLRUCache(100)
        cache.put("a", 1, 40)
        cache.put("a", 2, 10)
        assert cache.get("a") == 2
        assert cache.memory_bytes() == 10

    def test_counters_and_stats(self):
        cache = ByteLRUCache(100, name="test-cache")
        cache.get("missing")
        cache.put("a", 1, 5)
        cache.get("a")
        stats = cache.stats()
        assert stats.name == "test-cache"
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.n_items == 1
        assert stats.current_bytes == 5
        assert stats.max_bytes == 100
        assert stats.lookups == 2
        assert stats.hit_rate == pytest.approx(0.5)

    def test_clear_keeps_counters(self):
        cache = ByteLRUCache(100)
        cache.put("a", 1, 5)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.memory_bytes() == 0
        assert cache.hits == 1  # cumulative across clears

    def test_get_or_build(self):
        cache = ByteLRUCache(100)
        calls = []

        def build():
            calls.append(1)
            return "value"

        assert cache.get_or_build("k", build, lambda v: 5) == "value"
        assert cache.get_or_build("k", build, lambda v: 5) == "value"
        assert len(calls) == 1

    def test_budget_validated(self):
        with pytest.raises(ConfigurationError):
            ByteLRUCache(0)


class TestGetOrPut:
    """The coalescing-safe miss-then-insert helper (serving daemon)."""

    def test_hit_and_miss_round_trip(self):
        cache = ByteLRUCache(100)
        calls = []

        def build():
            calls.append(1)
            return "value"

        assert cache.get_or_put("k", build, lambda v: 5) == "value"
        assert cache.get_or_put("k", build, lambda v: 5) == "value"
        assert len(calls) == 1
        stats = cache.stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_reentrant_build_inserting_same_key_wins(self):
        # A builder that (via a recursive provider) inserts the key it
        # was asked to build: the raced-in value must win, with no
        # double charge against the byte budget.
        cache = ByteLRUCache(100)

        def build():
            cache.put("k", "raced", 30)
            return "mine"

        assert cache.get_or_put("k", build, lambda v: 30) == "raced"
        assert cache.memory_bytes() == 30
        assert cache.get("k") == "raced"

    def test_reentrant_build_populating_other_keys(self):
        # A coalesced batch's builder fills sibling entries while this
        # key is mid-build; the final insert must account correctly.
        cache = ByteLRUCache(100)

        def build():
            for i in range(3):
                cache.put(f"sibling{i}", i, 20)
            return "mine"

        assert cache.get_or_put("k", build, lambda v: 20) == "mine"
        assert cache.memory_bytes() == 80
        assert len(cache) == 4

    def test_raced_value_refreshes_recency(self):
        cache = ByteLRUCache(50)
        cache.put("a", 1, 20)

        def build():
            cache.put("k", "raced", 20)
            cache.get("a")  # "a" now more recent than the raced "k"...
            return "mine"

        # ...but get_or_put bumps "k" back to most-recent on return.
        assert cache.get_or_put("k", build, lambda v: 20) == "raced"
        cache.put("c", 3, 20)  # needs one eviction: "a" must go, not "k"
        assert "k" in cache and "a" not in cache

    def test_interleaved_hit_miss_deltas_stay_consistent(self):
        # Simulates two coalesced callers for one key: the first misses
        # and builds, the second (interleaved inside the first's build)
        # also calls get_or_put. Total counters must stay coherent:
        # every lookup is exactly one hit or one miss.
        cache = ByteLRUCache(100)
        order = []

        def inner_build():
            order.append("inner-build")
            return "inner"

        def outer_build():
            order.append("outer-build")
            value = cache.get_or_put("k", inner_build, lambda v: 10)
            order.append(f"inner-got:{value}")
            return "outer"

        assert cache.get_or_put("k", outer_build, lambda v: 10) == "inner"
        assert order == ["outer-build", "inner-build", "inner-got:inner"]
        stats = cache.stats()
        assert stats.hits + stats.misses == 2
        assert stats.misses == 2  # both lookups ran before any insert
        assert cache.memory_bytes() == 10  # one charge for one key


class TestByteLRUCacheEdgeCases:
    """Accounting invariants under re-puts, oversize items, and clears."""

    def test_repeated_reput_never_double_counts(self):
        cache = ByteLRUCache(100)
        for nbytes in (40, 10, 25, 40):
            cache.put("a", nbytes, nbytes)
        assert cache.memory_bytes() == 40
        assert len(cache) == 1
        # A growing re-put must evict against the *replaced* charge, not
        # the stale one: 40 (a) + 50 (b) fits in 100 only because a's old
        # charge was released first.
        cache.put("b", 2, 50)
        assert cache.memory_bytes() == 90
        assert cache.evictions == 0

    def test_reput_larger_than_budget_drops_the_key(self):
        cache = ByteLRUCache(20)
        cache.put("a", 1, 10)
        cache.put("a", 2, 21)  # oversize replacement is rejected...
        assert "a" not in cache  # ...and the stale value must not linger
        assert cache.memory_bytes() == 0
        # The cache is not wedged: normal inserts still work.
        cache.put("b", 3, 10)
        assert cache.get("b") == 3
        assert cache.memory_bytes() == 10

    def test_oversize_item_evicts_nothing_and_never_wedges(self):
        cache = ByteLRUCache(30)
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        for _ in range(3):
            cache.put("huge", object(), 31)
        assert "huge" not in cache
        assert "a" in cache and "b" in cache
        assert cache.evictions == 0
        assert cache.memory_bytes() == 20

    def test_eviction_order_follows_get_refresh(self):
        cache = ByteLRUCache(30)
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.put("c", 3, 10)
        cache.get("a")
        cache.get("b")  # recency is now c < a < b
        cache.put("d", 4, 20)  # needs 20 bytes: evicts c, then a
        assert "c" not in cache and "a" not in cache
        assert "b" in cache and "d" in cache
        assert cache.evictions == 2
        assert cache.memory_bytes() == 30

    def test_get_or_build_refreshes_recency_too(self):
        cache = ByteLRUCache(20)
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.get_or_build("a", lambda: 99, lambda v: 10)  # hit: bump "a"
        cache.put("c", 3, 10)
        assert "b" not in cache
        assert cache.get("a") == 1  # the cached value, not the builder's

    def test_stats_deltas_stay_consistent_across_clear(self):
        cache = ByteLRUCache(100, name="delta-check")
        cache.put("a", 1, 5)
        cache.get("a")
        cache.get("gone")
        before = cache.stats()
        cache.clear()
        cleared = cache.stats()
        # Point-in-time fields reset; cumulative counters survive.
        assert cleared.n_items == 0 and cleared.current_bytes == 0
        assert cleared.hits == before.hits
        assert cleared.misses == before.misses
        assert cleared.evictions == before.evictions
        # New activity produces exactly the expected counter deltas.
        cache.get("a")  # miss: the payload is gone
        cache.put("a", 2, 7)
        cache.get("a")  # hit
        after = cache.stats()
        assert after.hits - cleared.hits == 1
        assert after.misses - cleared.misses == 1
        assert after.n_items == 1 and after.current_bytes == 7
        assert after.lookups == after.hits + after.misses
        assert after.hit_rate == pytest.approx(after.hits / after.lookups)


class TestOnEvict:
    """The eviction callback: fires only for byte-budget LRU evictions."""

    def test_fires_in_lru_order_with_key_and_value(self):
        evicted = []
        cache = ByteLRUCache(30, on_evict=lambda k, v: evicted.append((k, v)))
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.put("c", 3, 10)
        cache.get("a")  # recency: b < c < a
        cache.put("d", 4, 20)  # needs 20 bytes: evicts b, then c
        assert evicted == [("b", 2), ("c", 3)]
        assert "a" in cache and "d" in cache
        assert cache.evictions == 2

    def test_clear_does_not_fire(self):
        evicted = []
        cache = ByteLRUCache(30, on_evict=lambda k, v: evicted.append(k))
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.clear()
        assert evicted == []
        assert len(cache) == 0

    def test_reput_does_not_fire(self):
        # Replacing a key's value is not an eviction - the key is still
        # resident; demoting it (the answer tier's use) would be wrong.
        evicted = []
        cache = ByteLRUCache(100, on_evict=lambda k, v: evicted.append(k))
        cache.put("a", 1, 40)
        cache.put("a", 2, 10)
        assert evicted == []
        assert cache.get("a") == 2

    def test_oversize_rejection_does_not_fire(self):
        # An item too big to ever fit was never admitted, so nothing was
        # evicted for it - and resident entries must not be disturbed.
        evicted = []
        cache = ByteLRUCache(20, on_evict=lambda k, v: evicted.append(k))
        cache.put("a", 1, 10)
        cache.put("big", 2, 21)
        assert evicted == []
        assert "a" in cache

    def test_pop_does_not_fire(self):
        # pop() is the explicit-removal path (invalidation, demotion
        # bookkeeping); only *budget pressure* means demotion.
        evicted = []
        cache = ByteLRUCache(30, on_evict=lambda k, v: evicted.append(k))
        cache.put("a", 1, 10)
        assert cache.pop("a") == 1
        assert evicted == []
        assert cache.memory_bytes() == 0

    def test_callback_runs_after_removal_and_may_reput(self):
        # The answer tier's demotion hook re-puts state into another
        # cache; re-putting into the *same* cache mid-eviction must not
        # corrupt accounting either.
        resurrections = []

        def resurrect(key, value):
            assert key not in cache  # removal happened first
            resurrections.append(key)
            if len(resurrections) == 1:
                cache.put(f"{key}-demoted", value, 5)

        cache = ByteLRUCache(30, on_evict=resurrect)
        cache.put("a", 1, 10)
        cache.put("b", 2, 10)
        cache.put("c", 3, 10)
        cache.put("d", 4, 15)  # evicts a (re-put a-demoted@5), then b
        assert resurrections == ["a", "b"]
        assert "a-demoted" in cache
        assert "d" in cache
        assert cache.memory_bytes() <= 30

    def test_clear_then_reput_round_trip(self):
        evicted = []
        cache = ByteLRUCache(30, on_evict=lambda k, v: evicted.append(k))
        cache.put("a", 1, 10)
        cache.clear()
        cache.put("a", 2, 10)
        cache.put("b", 3, 10)
        cache.put("c", 4, 10)
        cache.put("d", 5, 10)  # budget pressure again: "a" goes
        assert evicted == ["a"]
        assert cache.get("a") is None


@pytest.fixture
def stack():
    """The small deterministic chain used by the search unit tests."""
    builder = GraphBuilder(5)
    builder.add_edges([
        (1, 0, 0.5),
        (2, 0, 0.3),
        (3, 1, 0.4),
        (4, 2, 0.4),
    ])
    graph = builder.build()
    topic_index = TopicIndex(
        5,
        {
            1: ["alpha topic"],
            2: ["beta topic"],
            3: ["gamma topic"],
            4: ["delta topic"],
        },
    )
    summaries = {
        t: TopicSummary(t, {node: 1.0})
        for node, t in (
            (1, topic_index.resolve("alpha topic")),
            (2, topic_index.resolve("beta topic")),
            (3, topic_index.resolve("gamma topic")),
            (4, topic_index.resolve("delta topic")),
        )
    }
    propagation = PropagationIndex(graph, 0.05)
    return topic_index, summaries, propagation


class TestBoundedSearcherCaches:
    def test_cache_stats_disabled_by_default(self, stack):
        searcher = PersonalizedSearcher(*stack)
        assert searcher.entry_cache_stats() is None
        assert searcher.summary_cache_stats() is None
        assert searcher.cache_stats() == ()

    def test_entry_cache_hits_accumulate(self, stack):
        searcher = PersonalizedSearcher(
            *stack, entry_cache_bytes=1 << 20, summary_cache_bytes=1 << 20
        )
        _, first = searcher.search(0, "topic", k=4)
        _, second = searcher.search(0, "topic", k=4)
        assert first.entry_cache_misses > 0
        assert second.entry_cache_hits > 0
        assert second.entry_cache_misses == 0
        entry_stats, summary_stats = searcher.cache_stats()
        assert entry_stats.name == "propagation-entries"
        assert summary_stats.name == "summary-arrays"
        assert entry_stats.hits == second.entry_cache_hits

    def test_summary_cache_filled_by_plan_compile(self, stack):
        searcher = PersonalizedSearcher(*stack, summary_cache_bytes=1 << 20)
        _, stats = searcher.search(0, "topic", k=4)
        assert stats.summary_cache_misses == 4  # one per q-related topic
        assert searcher.summary_cache_stats().n_items == 4
        # A second distinct searcher call reuses the compiled plan, so no
        # further summary lookups happen at all.
        _, again = searcher.search(1, "topic", k=4)
        assert again.summary_cache_hits == 0
        assert again.summary_cache_misses == 0

    def test_cache_memory_accounted(self, stack):
        searcher = PersonalizedSearcher(
            *stack, entry_cache_bytes=1 << 20, summary_cache_bytes=1 << 20
        )
        searcher.search(0, "topic", k=4)
        assert searcher.cache_memory_bytes() > 0

    def test_set_propagation_index_drops_gamma_caches(self, stack):
        topic_index, summaries, propagation = stack
        searcher = PersonalizedSearcher(
            topic_index, summaries, propagation, entry_cache_bytes=1 << 20
        )
        results_before, _ = searcher.search(0, "topic", k=4)
        assert searcher.entry_cache_stats().n_items > 0
        # An empty graph kills every influence path; stale Γ probes or
        # cached entries would keep the old scores alive.
        empty = GraphBuilder(5).build()
        searcher.set_propagation_index(PropagationIndex(empty, 0.05))
        assert searcher.entry_cache_stats().n_items == 0
        results_after, _ = searcher.search(0, "topic", k=4)
        assert all(r.influence == 0.0 for r in results_after)
        assert any(r.influence > 0.0 for r in results_before)

    def test_set_topic_index_drops_plans(self, stack):
        topic_index, summaries, propagation = stack
        searcher = PersonalizedSearcher(topic_index, summaries, propagation)
        labels_before = [r.label for r in searcher.search(0, "topic", k=4)[0]]
        assert "alpha topic" in labels_before
        renamed = TopicIndex(5, {1: ["renamed subject"]})
        searcher.set_topic_index(renamed)
        assert searcher.search(0, "topic", k=4)[0] == []
        results, _ = searcher.search(0, "subject", k=4)
        assert [r.label for r in results] == ["renamed subject"]


class TestSearchMany:
    def test_results_align_with_input_order(self, stack):
        searcher = PersonalizedSearcher(*stack)
        requests = [(0, "topic"), (1, "alpha"), (0, "topic"), (2, "beta")]
        outcomes = searcher.search_many(requests, k=4)
        assert len(outcomes) == 4
        for (user, query), outcome in zip(requests, outcomes):
            single_results, _ = searcher.search(user, query, 4)
            assert [(r.topic_id, r.influence) for r in outcome[0]] == [
                (r.topic_id, r.influence) for r in single_results
            ]

    def test_duplicate_queries_share_summary_lookups(self, stack):
        searcher = PersonalizedSearcher(*stack, summary_cache_bytes=1 << 20)
        outcomes = searcher.search_many(
            [(0, "topic"), (1, "topic"), (2, "topic")], k=4
        )
        # The plan compiles once for the group: 4 summary misses, charged
        # to the group's first request; the rest do no summary work.
        assert outcomes[0][1].summary_cache_misses == 4
        assert outcomes[1][1].summary_cache_misses == 0
        assert outcomes[2][1].summary_cache_misses == 0

    def test_k_validated(self, stack):
        searcher = PersonalizedSearcher(*stack)
        with pytest.raises(ConfigurationError):
            searcher.search_many([(0, "topic")], k=0)

    def test_empty_request_list(self, stack):
        searcher = PersonalizedSearcher(*stack)
        assert searcher.search_many([], k=3) == []
