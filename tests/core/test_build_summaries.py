"""Fault-tolerant summary builds: ``PITEngine.build_summaries``.

The summarization counterpart of the propagation build's robustness
contract: parallel builds are byte-identical to serial ones, interrupted
builds resume from their checkpoint without recomputation or divergence,
crashed workers retry on fresh pools, and persistent failures either
raise :class:`~repro.exceptions.BuildFailedError` (with the partial
summaries attached) or degrade to a warning per ``strict``.
"""

import hashlib
import warnings

import pytest

from repro import _faults
from repro.core import PITEngine, load_summaries, save_summaries
from repro.exceptions import BuildFailedError, ConfigurationError
from repro.graph import preferential_attachment_graph
from repro.topics import TopicIndex

SEED = 11


@pytest.fixture(autouse=True)
def _clean_faults():
    """Never leak an injected fault into another test."""
    yield
    _faults.clear_faults()


@pytest.fixture(scope="module")
def graph():
    return preferential_attachment_graph(80, 3, seed=SEED)


@pytest.fixture(scope="module")
def topic_index(graph):
    labels = [f"topic {i}" for i in range(12)]
    assignments = {
        node: [labels[node % 12], labels[(node * 7) % 12]]
        for node in range(graph.n_nodes)
    }
    return TopicIndex(graph.n_nodes, assignments)


def _engine(graph, topic_index, summarizer="rcl"):
    return PITEngine(
        graph, topic_index, summarizer=summarizer,
        walk_length=4, samples_per_node=10,
        rep_fraction=0.3, sample_rate=0.2, seed=SEED,
    )


def _digest(path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


@pytest.fixture(scope="module")
def reference_digest(graph, topic_index, tmp_path_factory):
    """Artifact digest of an uninterrupted serial RCL build."""
    path = tmp_path_factory.mktemp("reference") / "summaries.json"
    engine = _engine(graph, topic_index).build_summaries(workers=1)
    save_summaries(engine.summaries, graph, path)
    return _digest(path)


class TestSerialBuild:
    def test_builds_every_topic(self, graph, topic_index):
        engine = _engine(graph, topic_index).build_summaries()
        assert engine.n_summaries == topic_index.n_topics
        stats = engine.last_summary_build_stats
        assert stats.n_built == topic_index.n_topics
        assert stats.workers == 1
        assert stats.failed_topics == ()

    def test_topic_subset_and_labels(self, graph, topic_index):
        engine = _engine(graph, topic_index)
        engine.build_summaries([0, "topic 3"])
        assert engine.n_summaries == 2
        assert engine.last_summary_build_stats.n_built == 2

    def test_already_built_topics_are_skipped(self, graph, topic_index):
        engine = _engine(graph, topic_index)
        engine.build_summaries([0, 1])
        engine.build_summaries()
        assert engine.last_summary_build_stats.n_built == (
            topic_index.n_topics - 2
        )

    def test_invalid_arguments_rejected(self, graph, topic_index):
        engine = _engine(graph, topic_index)
        with pytest.raises(ConfigurationError):
            engine.build_summaries(checkpoint_every=-1)
        with pytest.raises(ConfigurationError):
            engine.build_summaries(max_retries=-1)


class TestParallelByteIdentity:
    def test_parallel_matches_serial_artifact(
        self, graph, topic_index, reference_digest, tmp_path
    ):
        path = tmp_path / "summaries.json"
        engine = _engine(graph, topic_index).build_summaries(workers=2)
        save_summaries(engine.summaries, graph, path)
        assert _digest(path) == reference_digest

    def test_lrw_parallel_matches_serial(self, graph, topic_index, tmp_path):
        serial = tmp_path / "serial.json"
        parallel = tmp_path / "parallel.json"
        for workers, path in ((1, serial), (2, parallel)):
            engine = _engine(graph, topic_index, "lrw")
            engine.build_summaries(workers=workers)
            save_summaries(engine.summaries, graph, path)
        assert _digest(serial) == _digest(parallel)


class TestCheckpointResume:
    def test_interrupted_build_resumes_byte_identical(
        self, graph, topic_index, reference_digest, tmp_path
    ):
        checkpoint = tmp_path / "summaries.ckpt.json"
        with _faults.fault(
            "summarize.build_topic", _faults.InterruptOnTopic(7)
        ):
            with pytest.raises(KeyboardInterrupt):
                _engine(graph, topic_index).build_summaries(
                    checkpoint=checkpoint, checkpoint_every=1
                )
        # The finally-flush persisted topics 0-6 for the next run.
        assert len(load_summaries(checkpoint, graph)) == 7

        resumed = _engine(graph, topic_index)
        resumed.build_summaries(checkpoint=checkpoint, checkpoint_every=1)
        assert resumed.last_summary_build_stats.n_resumed == 7
        assert resumed.last_summary_build_stats.n_built == (
            topic_index.n_topics - 7
        )
        final = tmp_path / "summaries.json"
        save_summaries(resumed.summaries, graph, final)
        assert _digest(final) == reference_digest

    def test_resume_false_ignores_checkpoint(
        self, graph, topic_index, tmp_path
    ):
        checkpoint = tmp_path / "summaries.ckpt.json"
        _engine(graph, topic_index).build_summaries(
            [0, 1, 2], checkpoint=checkpoint
        )
        engine = _engine(graph, topic_index)
        engine.build_summaries(checkpoint=checkpoint, resume=False)
        assert engine.last_summary_build_stats.n_resumed == 0
        assert engine.last_summary_build_stats.n_built == topic_index.n_topics


class TestRetries:
    def test_transient_topic_failure_is_retried(self, graph, topic_index):
        with _faults.fault(
            "summarize.build_topic", _faults.FailOnTopic(4, attempts=(0,))
        ):
            engine = _engine(graph, topic_index).build_summaries()
        assert engine.n_summaries == topic_index.n_topics
        assert engine.last_summary_build_stats.failed_topics == ()

    def test_crashed_worker_retries_on_fresh_pool(
        self, graph, topic_index, reference_digest, tmp_path
    ):
        with _faults.fault(
            "summarize.worker_chunk", _faults.ExitOnChunk(1, attempts=(0,))
        ):
            engine = _engine(graph, topic_index).build_summaries(
                workers=2, retry_backoff=0.01
            )
        path = tmp_path / "summaries.json"
        save_summaries(engine.summaries, graph, path)
        assert _digest(path) == reference_digest

    def test_persistent_failure_strict_raises(self, graph, topic_index):
        with _faults.fault(
            "summarize.build_topic",
            _faults.FailOnTopic(4, attempts=(0, 1, 2)),
        ):
            with pytest.raises(BuildFailedError) as excinfo:
                _engine(graph, topic_index).build_summaries(
                    max_retries=2, retry_backoff=0.0
                )
        error = excinfo.value
        assert error.failed_nodes == [4]
        # Everything that did build travels with the error.
        assert len(error.partial_summaries) == topic_index.n_topics - 1

    def test_persistent_failure_keep_going_warns(self, graph, topic_index):
        with _faults.fault(
            "summarize.build_topic",
            _faults.FailOnTopic(4, attempts=(0, 1, 2)),
        ):
            with warnings.catch_warnings(record=True) as caught:
                warnings.simplefilter("always")
                engine = _engine(graph, topic_index).build_summaries(
                    max_retries=2, retry_backoff=0.0, strict=False
                )
        assert any(w.category is RuntimeWarning for w in caught)
        stats = engine.last_summary_build_stats
        assert stats.failed_topics == (4,)
        assert stats.n_failed == 1
        assert engine.n_summaries == topic_index.n_topics - 1


class TestStats:
    def test_stats_shape(self, graph, topic_index):
        engine = _engine(graph, topic_index).build_summaries(workers=1)
        stats = engine.last_summary_build_stats
        assert stats.n_summaries == topic_index.n_topics
        assert stats.wall_seconds > 0
        assert stats.topics_per_second > 0
        payload = stats.as_dict()
        assert payload["n_built"] == topic_index.n_topics
