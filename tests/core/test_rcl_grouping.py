"""Unit tests for RCL-A grouping probabilities and clustering rules."""

import numpy as np
import pytest

from repro.core.rcl import (
    GroupingProbabilities,
    compute_grouping_probabilities,
    grouping_probability,
    label_pairs,
)
from repro.exceptions import ConfigurationError
from repro.graph import SocialGraph


@pytest.fixture
def funnel_graph():
    """Nodes 0-3 all reach 4 and 5; node 6 reaches only 7."""
    edges = [
        (0, 4, 0.5), (1, 4, 0.5), (2, 4, 0.5), (3, 4, 0.5),
        (0, 5, 0.5), (1, 5, 0.5), (2, 5, 0.5), (3, 5, 0.5),
        (6, 7, 0.5),
    ]
    return SocialGraph(8, edges)


class TestGroupingProbabilities:
    def test_triple_must_sum_to_one(self):
        with pytest.raises(ConfigurationError):
            GroupingProbabilities(0.5, 0.5, 0.5)

    def test_valid_triple(self):
        gp = GroupingProbabilities(0.3, 0.3, 0.4)
        assert gp.unknown == 0.4

    def test_rule3_probability(self):
        gp = GroupingProbabilities(0.2, 0.1, 0.7)
        assert grouping_probability(gp) == pytest.approx(0.2 / 0.9)

    def test_rule3_probability_degenerate(self):
        gp = GroupingProbabilities(0.0, 1.0, 0.0)
        assert grouping_probability(gp) == 0.0

    def test_property1_grouping_dominates_splitting(self):
        # Property 1: GP+ >= GP- implies GP+/(GP+ + GP*) >= GP-/(GP- + GP*).
        rng = np.random.default_rng(0)
        for _ in range(200):
            raw = rng.dirichlet([1.0, 1.0, 1.0])
            pos, neg, unknown = sorted(raw, reverse=True)[0], raw[1], raw[2]
            pos, neg = max(raw[0], raw[1]), min(raw[0], raw[1])
            unknown = 1.0 - pos - neg
            group_p = pos / (pos + unknown) if pos + unknown else 0.0
            split_p = neg / (neg + unknown) if neg + unknown else 0.0
            assert group_p >= split_p - 1e-12


class TestComputeGroupingProbabilities:
    def test_shared_audience_pair(self, funnel_graph):
        # Sample = {0,1,2,3}: all reach both 4 and 5 -> GP+ = 1.
        _, gp_pos, gp_neg = compute_grouping_probabilities(
            funnel_graph, [4, 5], [0, 1, 2, 3], max_hops=2
        )
        assert gp_pos[0, 1] == pytest.approx(1.0)
        assert gp_neg[0, 1] == pytest.approx(0.0)

    def test_disjoint_audience_pair(self, funnel_graph):
        # Topic nodes 4 and 7: the sample reaches one or the other, never both.
        _, gp_pos, gp_neg = compute_grouping_probabilities(
            funnel_graph, [4, 7], [0, 1, 2, 6], max_hops=2
        )
        assert gp_pos[0, 1] == pytest.approx(0.0)
        assert gp_neg[0, 1] == pytest.approx(1.0)

    def test_unknown_fraction(self, funnel_graph):
        # Sample {0, 6}: 0 reaches both 4,5; 6 reaches neither.
        _, gp_pos, gp_neg = compute_grouping_probabilities(
            funnel_graph, [4, 5], [0, 6], max_hops=2
        )
        assert gp_pos[0, 1] == pytest.approx(0.5)
        assert gp_neg[0, 1] == pytest.approx(0.0)
        # GP* = 0.5 implicitly.

    def test_probabilities_sum_to_one(self, funnel_graph):
        _, gp_pos, gp_neg = compute_grouping_probabilities(
            funnel_graph, [4, 5, 7], [0, 1, 2, 3, 6], max_hops=2
        )
        gp_unknown = 1.0 - gp_pos - gp_neg
        assert np.all(gp_unknown >= -1e-9)
        assert np.all(gp_unknown <= 1.0 + 1e-9)

    def test_empty_inputs_rejected(self, funnel_graph):
        with pytest.raises(ConfigurationError):
            compute_grouping_probabilities(funnel_graph, [], [0], max_hops=2)
        with pytest.raises(ConfigurationError):
            compute_grouping_probabilities(funnel_graph, [4], [], max_hops=2)

    def test_sampled_index_variant(self, funnel_graph):
        from repro.walks import WalkIndex

        walk_index = WalkIndex.built(funnel_graph, 2, 20, seed=1)
        _, gp_pos, _ = compute_grouping_probabilities(
            funnel_graph, [4, 5], [0, 1, 2, 3], max_hops=2,
            walk_index=walk_index,
        )
        # With 20 walks per degree-2 node, both targets are hit w.h.p.
        assert gp_pos[0, 1] > 0.5


class TestLabelPairs:
    def test_rule1_groups(self):
        gp_pos = np.array([[1.0, 0.6], [0.6, 1.0]])
        gp_neg = np.array([[0.0, 0.2], [0.2, 0.0]])
        labels = label_pairs(gp_pos, gp_neg, seed=1)
        assert labels[0, 1] == 1

    def test_rule2_splits(self):
        gp_pos = np.array([[1.0, 0.1], [0.1, 1.0]])
        gp_neg = np.array([[0.0, 0.7], [0.7, 0.0]])
        labels = label_pairs(gp_pos, gp_neg, seed=1)
        assert labels[0, 1] == 0

    def test_rule1_rule2_tie_resolves_to_split(self):
        gp_pos = np.array([[1.0, 0.4], [0.4, 1.0]])
        gp_neg = np.array([[0.0, 0.4], [0.4, 0.0]])
        labels = label_pairs(gp_pos, gp_neg, seed=1)
        assert labels[0, 1] == 0

    def test_rule3_randomized(self):
        gp_pos = np.array([[1.0, 0.2], [0.2, 1.0]])
        gp_neg = np.array([[0.0, 0.1], [0.1, 0.0]])
        # Rule 3 region: GP+ (0.2) < GP* (0.7). Group prob = 0.2/0.9.
        outcomes = {
            int(label_pairs(gp_pos, gp_neg, seed=s)[0, 1]) for s in range(50)
        }
        assert outcomes == {0, 1}  # both outcomes occur across seeds

    def test_symmetric_output(self):
        rng = np.random.default_rng(3)
        n = 8
        pos = rng.uniform(0, 0.5, size=(n, n))
        pos = (pos + pos.T) / 2
        neg = np.minimum(1.0 - pos, rng.uniform(0, 0.5, size=(n, n)))
        neg = (neg + neg.T) / 2
        labels = label_pairs(pos, neg, seed=9)
        assert np.array_equal(labels, labels.T)

    def test_diagonal_is_grouped(self):
        gp_pos = np.eye(3)
        gp_neg = np.zeros((3, 3))
        labels = label_pairs(gp_pos, gp_neg, seed=1)
        assert np.all(np.diag(labels) == 1)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            label_pairs(np.zeros((2, 2)), np.zeros((3, 3)))
