"""Unit tests for LRW-A representative selection (Algorithm 7)."""

import numpy as np
import pytest

from repro.core.lrw import diversified_pagerank, select_representatives
from repro.exceptions import ConfigurationError
from repro.graph import GraphBuilder
from repro.walks import WalkIndex


@pytest.fixture
def community_graph():
    """Two weakly linked communities; topic lives in the first one."""
    builder = GraphBuilder(12)
    # Community A: 0..5 densely connected.
    for u in range(6):
        for v in range(6):
            if u != v and (u + v) % 2 == 1:
                builder.add_edge(u, v, 0.3)
    # Community B: 6..11 densely connected.
    for u in range(6, 12):
        for v in range(6, 12):
            if u != v and (u + v) % 2 == 1:
                builder.add_edge(u, v, 0.3)
    # Weak bridge.
    builder.add_edge(5, 6, 0.05)
    return builder.build()


class TestDiversifiedPagerank:
    def test_restart_mass_on_topic(self, community_graph):
        walk_index = WalkIndex.built(community_graph, 4, 10, seed=1)
        scores = diversified_pagerank(
            community_graph, [0, 1, 2], walk_index
        )
        assert scores.shape == (12,)
        # Topic community outranks the far community.
        assert scores[:6].sum() > scores[6:].sum()

    def test_empty_topic_rejected(self, community_graph):
        walk_index = WalkIndex.built(community_graph, 3, 5, seed=1)
        with pytest.raises(ConfigurationError):
            diversified_pagerank(community_graph, [], walk_index)

    def test_iterations_bounded_by_walk_length(self, community_graph):
        walk_index = WalkIndex.built(community_graph, 3, 5, seed=1)
        with pytest.raises(ConfigurationError):
            diversified_pagerank(
                community_graph, [0], walk_index, iterations=7
            )

    def test_unknown_initialization_rejected(self, community_graph):
        walk_index = WalkIndex.built(community_graph, 3, 5, seed=1)
        with pytest.raises(ConfigurationError):
            diversified_pagerank(
                community_graph, [0], walk_index, initial="zeros"
            )

    def test_uniform_init_differs_from_restart(self, community_graph):
        walk_index = WalkIndex.built(community_graph, 4, 10, seed=1)
        restart = diversified_pagerank(
            community_graph, [0], walk_index, initial="restart"
        )
        uniform = diversified_pagerank(
            community_graph, [0], walk_index, initial="uniform"
        )
        assert not np.allclose(restart, uniform)

    def test_damping_zero_returns_restart(self, community_graph):
        walk_index = WalkIndex.built(community_graph, 3, 5, seed=1)
        scores = diversified_pagerank(
            community_graph, [0, 1], walk_index, damping=0.0
        )
        expected = np.zeros(12)
        expected[[0, 1]] = 0.5
        assert np.allclose(scores, expected)

    def test_deterministic_for_fixed_index(self, community_graph):
        walk_index = WalkIndex.built(community_graph, 4, 10, seed=1)
        a = diversified_pagerank(community_graph, [0, 1], walk_index)
        b = diversified_pagerank(community_graph, [0, 1], walk_index)
        assert np.array_equal(a, b)


class TestSelectRepresentatives:
    def test_count_follows_fraction(self, community_graph):
        walk_index = WalkIndex.built(community_graph, 4, 10, seed=1)
        reps = select_representatives(
            community_graph, [0, 1, 2, 3, 4, 5], walk_index,
            rep_fraction=0.5,
        )
        assert reps.size == 3

    def test_minimum_enforced(self, community_graph):
        walk_index = WalkIndex.built(community_graph, 4, 10, seed=1)
        reps = select_representatives(
            community_graph, [0, 1], walk_index, rep_fraction=0.05
        )
        assert reps.size == 1

    def test_representatives_near_topic(self, community_graph):
        walk_index = WalkIndex.built(community_graph, 4, 20, seed=1)
        reps = select_representatives(
            community_graph, [0, 1, 2, 3], walk_index, rep_fraction=0.5
        )
        # All selected reps should be in the topic's community.
        assert all(int(r) < 6 for r in reps)

    def test_fraction_validated(self, community_graph):
        walk_index = WalkIndex.built(community_graph, 3, 5, seed=1)
        with pytest.raises(ConfigurationError):
            select_representatives(
                community_graph, [0], walk_index, rep_fraction=0.0
            )
