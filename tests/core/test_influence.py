"""Unit tests for walk-based influence propagation."""

import numpy as np
import pytest

from repro.core import propagate_influence, source_vector, topic_influence_vector
from repro.exceptions import ConfigurationError
from repro.graph import SocialGraph


class TestSourceVector:
    def test_from_mapping(self, chain_graph):
        vector = source_vector(chain_graph, {0: 0.5, 2: 0.25})
        assert vector.tolist() == [0.5, 0.0, 0.25, 0.0, 0.0]

    def test_from_array_copied(self, chain_graph):
        original = np.zeros(5)
        vector = source_vector(chain_graph, original)
        vector[0] = 1.0
        assert original[0] == 0.0

    def test_bad_shape_rejected(self, chain_graph):
        with pytest.raises(ConfigurationError):
            source_vector(chain_graph, np.zeros(3))

    def test_negative_weight_rejected(self, chain_graph):
        with pytest.raises(ConfigurationError):
            source_vector(chain_graph, {0: -1.0})

    def test_duplicate_nodes_accumulate(self, chain_graph):
        vector = source_vector(chain_graph, {0: 0.5})
        assert vector[0] == 0.5


class TestPropagation:
    def test_chain_single_step(self, chain_graph):
        # weight 1 at node 0, length 1: only node 1 receives 0.5.
        result = propagate_influence(chain_graph, {0: 1.0}, 1)
        assert result.tolist() == [0.0, 0.5, 0.0, 0.0, 0.0]

    def test_chain_multi_step_products(self, chain_graph):
        result = propagate_influence(chain_graph, {0: 1.0}, 3)
        assert result[1] == pytest.approx(0.5)
        assert result[2] == pytest.approx(0.25)
        assert result[3] == pytest.approx(0.125)
        assert result[4] == 0.0  # needs 4 hops

    def test_diamond_aggregates_paths(self, diamond_graph):
        result = propagate_influence(diamond_graph, {0: 1.0}, 2)
        # 0->3 direct (0.1) + 0->1->3 (0.25) + 0->2->3 (0.1)
        assert result[3] == pytest.approx(0.1 + 0.5 * 0.5 + 0.4 * 0.25)

    def test_include_source_mass(self, chain_graph):
        result = propagate_influence(
            chain_graph, {0: 1.0}, 1, include_source_mass=True
        )
        assert result[0] == 1.0

    def test_length_validated(self, chain_graph):
        with pytest.raises(ConfigurationError):
            propagate_influence(chain_graph, {0: 1.0}, 0)

    def test_linearity_in_sources(self, diamond_graph):
        a = propagate_influence(diamond_graph, {0: 1.0}, 3)
        b = propagate_influence(diamond_graph, {1: 1.0}, 3)
        combined = propagate_influence(diamond_graph, {0: 1.0, 1: 1.0}, 3)
        assert np.allclose(combined, a + b)

    def test_walk_counting_includes_cycles(self, triangle_graph):
        # Walks (not simple paths): after 3 steps mass returns to node 0.
        result = propagate_influence(triangle_graph, {0: 1.0}, 3)
        assert result[0] == pytest.approx(0.5 * 0.25 * 0.75)


class TestSimplePaths:
    def test_enumerates_all_diamond_paths(self, diamond_graph):
        from repro.core import enumerate_simple_paths

        paths = dict(enumerate_simple_paths(diamond_graph, 0, 3, 4))
        assert paths == pytest.approx({
            (0, 3): 0.1,
            (0, 1, 3): 0.25,
            (0, 2, 3): 0.1,
        })

    def test_respects_length_bound(self, diamond_graph):
        from repro.core import enumerate_simple_paths

        paths = dict(enumerate_simple_paths(diamond_graph, 0, 3, 1))
        assert set(paths) == {(0, 3)}

    def test_no_cycles(self, triangle_graph):
        from repro.core import enumerate_simple_paths

        paths = dict(enumerate_simple_paths(triangle_graph, 0, 0, 5))
        assert paths == {}  # a path back to the source would be a cycle

    def test_budget_enforced(self):
        from repro.core import enumerate_simple_paths
        from repro.exceptions import BudgetExceededError
        from repro.graph import SocialGraph

        # Dense 8-clique: far more than 5 simple paths 0 -> 7.
        edges = [
            (u, v, 0.5) for u in range(8) for v in range(8) if u != v
        ]
        graph = SocialGraph(8, edges)
        with pytest.raises(BudgetExceededError):
            list(enumerate_simple_paths(graph, 0, 7, 7, max_paths=5))

    def test_simple_path_influence_averages(self, diamond_graph):
        from repro.core import simple_path_influence

        # Sources {0, 1}: node 0 contributes 0.45, node 1 contributes 0.5.
        value = simple_path_influence(diamond_graph, [0, 1], 3, 3)
        assert value == pytest.approx((0.45 + 0.5) / 2)

    def test_source_equal_target_skipped(self, diamond_graph):
        from repro.core import simple_path_influence

        assert simple_path_influence(diamond_graph, [3], 3, 3) == 0.0

    def test_walks_upper_bound_simple_paths(self, triangle_graph):
        # Walk counting includes cyclic walks, so it dominates the
        # simple-path sum on any graph with cycles.
        from repro.core import simple_path_influence

        walks = propagate_influence(triangle_graph, {0: 1.0}, 6)[0]
        paths = simple_path_influence(triangle_graph, [0], 0, 6)
        assert walks >= paths


class TestTopicInfluence:
    def test_uniform_local_weights(self, chain_graph):
        result = topic_influence_vector(chain_graph, [0, 1], 1)
        # Each topic node has weight 1/2: node 1 gets 0.5*0.5, node 2 gets 0.5*0.5
        assert result[1] == pytest.approx(0.25)
        assert result[2] == pytest.approx(0.25)

    def test_empty_topic_rejected(self, chain_graph):
        with pytest.raises(ConfigurationError):
            topic_influence_vector(chain_graph, [], 2)
