"""ServingEngine: the online-only facade must match PITEngine bit for bit."""

import pytest

from repro.core import (
    PITEngine,
    ServingEngine,
    save_propagation_index,
    save_summaries,
)
from repro.datasets import data_2k
from repro.exceptions import ConfigurationError
from repro.obs import MetricsRegistry


@pytest.fixture(scope="module")
def built():
    """A fully built PITEngine over a small bundle (shared, read-only)."""
    bundle = data_2k(seed=7, n_nodes=130, with_corpus=False)
    engine = PITEngine.from_dataset(bundle, summarizer="rcl", seed=7)
    engine.propagation_index.build_all(workers=1)
    engine.build_summaries()
    return bundle, engine


QUERIES = [(3, "phone"), (11, "camera"), (40, "phone"), (3, "music")]


class TestParity:
    def test_search_matches_pitengine(self, built):
        bundle, engine = built
        serving = ServingEngine(
            bundle.graph, bundle.topic_index, engine.summaries,
            engine.propagation_index,
        )
        for user, query in QUERIES:
            expect = engine.search(user, query, k=5, with_stats=True)
            got = serving.search(user, query, k=5, with_stats=True)
            assert got[0] == expect[0]
            assert [r.influence for r in got[0]] == [
                r.influence for r in expect[0]
            ]

    def test_search_batch_matches_pitengine(self, built):
        bundle, engine = built
        serving = ServingEngine(
            bundle.graph, bundle.topic_index, engine.summaries,
            engine.propagation_index,
        )
        expect = engine.search_batch(QUERIES, k=4)
        got = serving.search_batch(QUERIES, k=4)
        assert got == expect

    def test_lazy_propagation_matches_prebuilt(self, built):
        # No prebuilt index: the facade materializes entries at theta
        # on demand, and the numbers must still agree exactly.
        bundle, engine = built
        serving = ServingEngine(
            bundle.graph, bundle.topic_index, engine.summaries,
            theta=engine.propagation_index.theta,
        )
        user, query = QUERIES[0]
        assert serving.search(user, query, k=5) == engine.search(
            user, query, k=5
        )


class TestFromArtifacts:
    def test_round_trip_through_disk(self, built, tmp_path):
        bundle, engine = built
        index_path = tmp_path / "prop.npz"
        sums_path = tmp_path / "sums.json"
        save_propagation_index(engine.propagation_index, index_path)
        save_summaries(engine.summaries, bundle.graph, sums_path)
        serving = ServingEngine.from_artifacts(
            bundle.graph, bundle.topic_index, sums_path,
            index_path=index_path,
        )
        assert serving.n_summaries == engine.n_summaries
        assert serving.theta == engine.propagation_index.theta
        user, query = QUERIES[1]
        assert serving.search(user, query, k=5) == engine.search(
            user, query, k=5
        )

    def test_index_path_and_dir_are_exclusive(self, built, tmp_path):
        bundle, engine = built
        sums_path = tmp_path / "sums.json"
        save_summaries(engine.summaries, bundle.graph, sums_path)
        with pytest.raises(ConfigurationError, match="mutually exclusive"):
            ServingEngine.from_artifacts(
                bundle.graph, bundle.topic_index, sums_path,
                index_path=tmp_path / "a.npz", index_dir=tmp_path,
            )

    def test_wrong_graph_rejected(self, built, tmp_path):
        bundle, engine = built
        sums_path = tmp_path / "sums.json"
        save_summaries(engine.summaries, bundle.graph, sums_path)
        other = data_2k(seed=8, n_nodes=130, with_corpus=False)
        with pytest.raises(Exception):  # signature mismatch from loader
            ServingEngine.from_artifacts(
                other.graph, other.topic_index, sums_path,
            )


class TestValidation:
    def test_node_count_mismatch_rejected(self, built):
        bundle, engine = built
        other = data_2k(seed=7, n_nodes=90, with_corpus=False)
        with pytest.raises(ConfigurationError, match="nodes"):
            ServingEngine(
                other.graph, bundle.topic_index, engine.summaries,
            )

    def test_foreign_propagation_index_rejected(self, built):
        bundle, engine = built
        other = data_2k(seed=7, n_nodes=90, with_corpus=False)
        other_engine = PITEngine.from_dataset(other, summarizer="rcl", seed=7)
        with pytest.raises(ConfigurationError, match="propagation index"):
            ServingEngine(
                bundle.graph, bundle.topic_index, engine.summaries,
                other_engine.propagation_index,
            )


class TestMetrics:
    def test_snapshot_publishes_engine_gauges(self, built):
        bundle, engine = built
        registry = MetricsRegistry()
        serving = ServingEngine(
            bundle.graph, bundle.topic_index, engine.summaries,
            engine.propagation_index, metrics=registry,
        )
        serving.search(3, "phone", k=3)
        snapshot = serving.metrics_snapshot()
        assert snapshot.gauges["summaries.cached"] == serving.n_summaries
        assert snapshot.gauges["engine.memory_bytes"] > 0
        assert "propagation.entries_cached" in snapshot.gauges

    def test_memory_bytes_positive(self, built):
        bundle, engine = built
        serving = ServingEngine(
            bundle.graph, bundle.topic_index, engine.summaries,
            engine.propagation_index,
        )
        assert serving.memory_bytes() > 0


class TestInvalidateAnswers:
    """The PR 8 invalidation seam: per-user vs. full, bytes, warm load."""

    K = 4

    def _serving(self, built, **kwargs):
        bundle, engine = built
        return ServingEngine(
            bundle.graph, bundle.topic_index, engine.summaries,
            engine.propagation_index,
            answer_cache_bytes=1 << 20, **kwargs,
        )

    def _fill(self, serving):
        """Cache one answer per QUERIES entry; returns the user set."""
        for user, query in QUERIES:
            serving.search(user, query, k=self.K)
        return {user for user, _ in QUERIES}

    def test_disabled_answer_tier_is_a_noop(self, built):
        bundle, engine = built
        serving = ServingEngine(
            bundle.graph, bundle.topic_index, engine.summaries,
            engine.propagation_index,
        )
        assert serving.invalidate_answers() == 0
        assert serving.invalidate_answers(users=[3]) == 0

    def test_full_invalidation_clears_everything(self, built):
        serving = self._serving(built)
        self._fill(serving)
        resident = serving.answer_cache_stats().n_items
        assert resident == len(QUERIES)
        assert serving.invalidate_answers() == resident
        stats = serving.answer_cache_stats()
        assert stats.n_items == 0
        assert serving.invalidate_answers() == 0  # already empty

    def test_per_user_invalidation_is_surgical(self, built):
        serving = self._serving(built)
        self._fill(serving)
        # User 3 cached two answers (phone, music); user 11 and 40 one.
        removed = serving.invalidate_answers(users=[3])
        assert removed == 2
        assert serving.answer_cache_stats().n_items == len(QUERIES) - 2

        # The survivors still hit; user 3's queries miss and recompute.
        before = serving.answer_cache_stats()
        serving.search(11, "camera", k=self.K)
        serving.search(40, "phone", k=self.K)
        mid = serving.answer_cache_stats()
        assert mid.hits == before.hits + 2
        assert mid.misses == before.misses
        serving.search(3, "phone", k=self.K)
        after = serving.answer_cache_stats()
        assert after.misses == mid.misses + 1

    def test_unknown_user_invalidates_nothing(self, built):
        serving = self._serving(built)
        self._fill(serving)
        assert serving.invalidate_answers(users=[10_000]) == 0
        assert serving.answer_cache_stats().n_items == len(QUERIES)

    def test_byte_accounting_tracks_invalidation(self, built):
        serving = self._serving(built)
        self._fill(serving)
        full = serving.answer_cache_stats()
        assert full.current_bytes > 0

        serving.invalidate_answers(users=[3])
        partial = serving.answer_cache_stats()
        assert 0 < partial.current_bytes < full.current_bytes

        serving.invalidate_answers()
        empty = serving.answer_cache_stats()
        assert empty.current_bytes == 0
        assert empty.n_items == 0

        # Recomputing after a full clear restores the exact footprint:
        # invalidation never leaks byte accounting.
        self._fill(serving)
        again = serving.answer_cache_stats()
        assert again.current_bytes == full.current_bytes
        assert again.n_items == full.n_items

    def test_invalidation_evicts_warm_precompute_answers(self, built):
        from repro.core.precompute import build_precompute

        trace = [
            {"user": user, "query": query, "k": self.K}
            for user, query in QUERIES
        ] * 3
        donor = self._serving(built)
        artifact = build_precompute(
            donor, trace, top_queries=4, top_answers=8
        )
        assert artifact.answers

        serving = self._serving(built)
        warm = serving.warm_from_precompute(artifact)
        assert warm["answers"] == len(artifact.answers)
        warmed = serving.answer_cache_stats()
        assert warmed.n_items == warm["answers"]

        # A warm answer serves without touching the searcher...
        serving.search(3, "phone", k=self.K)
        assert serving.answer_cache_stats().hits == warmed.hits + 1

        # ...until its user is invalidated: the warm entries go too.
        removed = serving.invalidate_answers(users=[3])
        assert removed == 2
        stats = serving.answer_cache_stats()
        assert stats.n_items == warmed.n_items - 2
        before_misses = stats.misses
        serving.search(3, "phone", k=self.K)
        assert serving.answer_cache_stats().misses == before_misses + 1

        # Re-warming after invalidation re-seeds only the still-missing
        # key ((3, "phone") was just recomputed and is resident again).
        again = serving.warm_from_precompute(artifact)
        assert again["answers"] == 1
        assert (
            serving.answer_cache_stats().n_items == warmed.n_items
        )
