"""Integration tests for the relevance / hybrid ranking extensions."""

import pytest

from repro.baselines import HybridRanker, RelevanceOnlyRanker
from repro.core import PITEngine
from repro.datasets import data_2k


@pytest.fixture(scope="module")
def bundle():
    return data_2k(seed=55, n_nodes=400, with_corpus=False)


@pytest.fixture(scope="module")
def engine(bundle):
    return PITEngine.from_dataset(
        bundle, summarizer="lrw", samples_per_node=8, seed=55
    )


class TestPersonalizationGap:
    def test_relevance_identical_across_users_influence_not(self, bundle, engine):
        relevance = RelevanceOnlyRanker(bundle.graph, bundle.topic_index)
        users = [3, 57, 201]
        relevance_rankings = {
            u: [r.topic_id for r in relevance.search(u, "phone", 5)]
            for u in users
        }
        assert len({tuple(v) for v in relevance_rankings.values()}) == 1
        influence_rankings = {
            u: [r.topic_id for r in engine.search(u, "phone", 5)]
            for u in users
        }
        # Personalization: at least two users see different rankings.
        assert len({tuple(v) for v in influence_rankings.values()}) >= 2

    def test_hybrid_interpolates(self, bundle, engine):
        relevance = RelevanceOnlyRanker(bundle.graph, bundle.topic_index)
        pure_relevance = [
            r.topic_id for r in relevance.search(3, "phone", 5)
        ]
        pure_influence = [
            r.topic_id for r in engine.search(3, "phone", 5)
        ]
        low = HybridRanker(bundle.topic_index, engine.search,
                           influence_weight=0.0)
        high = HybridRanker(bundle.topic_index, engine.search,
                            influence_weight=1.0)
        assert [r.topic_id for r in low.search(3, "phone", 5)] == pure_relevance
        # Weight 1 ranks purely by (normalized) influence; topics with
        # equal influence may tie-break differently than the engine's own
        # heap, so compare the score-bearing prefix.
        high_ids = [r.topic_id for r in high.search(3, "phone", 5)]
        nonzero = [
            r.topic_id for r in engine.search(3, "phone", 5)
            if r.influence > 0
        ]
        assert high_ids[: len(nonzero)] == nonzero[: len(high_ids)] or set(
            high_ids
        ) & set(pure_influence)

    def test_hybrid_scores_bounded(self, bundle, engine):
        hybrid = HybridRanker(bundle.topic_index, engine.search,
                              influence_weight=0.5)
        for result in hybrid.search(3, "phone", 10):
            assert 0.0 <= result.influence <= 1.0 + 1e-9
