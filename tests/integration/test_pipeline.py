"""Integration tests: the full offline + online pipeline on one dataset.

These run both summarizers and all three baselines over a shared bundle and
check the cross-cutting guarantees the unit tests cannot: agreement between
the approximate and exhaustive stacks, pruning soundness (pruned search ==
exhaustive heap evaluation), and determinism end to end.
"""

import numpy as np
import pytest

from repro.baselines import (
    BaseDijkstraRanker,
    BaseMatrixRanker,
    BasePropagationRanker,
)
from repro.core import PITEngine, PersonalizedSearcher
from repro.datasets import data_2k, generate_workload
from repro.evaluation import precision_at_k


@pytest.fixture(scope="module")
def bundle():
    return data_2k(seed=31, n_nodes=500, with_corpus=False)


@pytest.fixture(scope="module")
def workload(bundle):
    return generate_workload(bundle, n_queries=2, n_users=2, seed=32)


@pytest.fixture(scope="module")
def lrw_engine(bundle):
    return PITEngine.from_dataset(
        bundle, summarizer="lrw", samples_per_node=10, seed=33
    )


class TestEndToEnd:
    def test_every_method_answers_every_pair(self, bundle, workload, lrw_engine):
        graph, topic_index = bundle.graph, bundle.topic_index
        methods = {
            "matrix": BaseMatrixRanker(graph, topic_index).search,
            "dijkstra": BaseDijkstraRanker(
                graph, topic_index, deviation_budget=50
            ).search,
            "propagation": BasePropagationRanker(
                graph, topic_index,
                propagation_index=lrw_engine.propagation_index,
            ).search,
            "lrw": lrw_engine.search,
        }
        for user, query in workload.pairs():
            expected = len(topic_index.related_topics(query))
            for name, search in methods.items():
                results = search(user, query, 5)
                assert len(results) == min(5, expected), name
                scores = [r.influence for r in results]
                assert scores == sorted(scores, reverse=True), name

    def test_approximations_beat_random(self, bundle, workload, lrw_engine):
        graph, topic_index = bundle.graph, bundle.topic_index
        truth = BaseMatrixRanker(graph, topic_index, cache_vectors=True)
        k = 5
        values = [
            precision_at_k(
                lrw_engine.search(user, query, k),
                truth.search(user, query, k),
                k,
            )
            for user, query in workload.pairs()
        ]
        n_topics = np.mean([
            len(topic_index.related_topics(q)) for q in workload.queries
        ])
        random_baseline = k / n_topics
        assert float(np.mean(values)) > random_baseline

    def test_propagation_tracks_ground_truth(self, bundle, workload, lrw_engine):
        graph, topic_index = bundle.graph, bundle.topic_index
        truth = BaseMatrixRanker(graph, topic_index, cache_vectors=True)
        ranker = BasePropagationRanker(
            graph, topic_index,
            propagation_index=lrw_engine.propagation_index,
        )
        k = 5
        values = [
            precision_at_k(
                ranker.search(user, query, k),
                truth.search(user, query, k),
                k,
            )
            for user, query in workload.pairs()
        ]
        assert float(np.mean(values)) >= 0.4

    def test_pruned_search_matches_exhaustive_membership(
        self, bundle, workload, lrw_engine
    ):
        """Algorithm 10's pruning must not change top-k membership.

        The exhaustive reference evaluates every topic's full summary
        against the same propagation entries (user entry + expansion
        discounting disabled by giving every topic its complete in-index
        evidence): we rebuild the score each topic would reach if never
        pruned, then compare the top-k id sets.
        """
        topic_index = bundle.topic_index
        k = 3
        for user, query in workload.pairs():
            results, stats = lrw_engine.search(user, query, k, with_stats=True)
            # Exhaustive: k = all topics disables membership-based pruning.
            all_topics = len(topic_index.related_topics(query))
            full, _ = lrw_engine._searcher.search(user, query, all_topics)
            full_top = {r.topic_id for r in full[:k]}
            pruned_top = {r.topic_id for r in results}
            overlap = len(full_top & pruned_top)
            # Scores only grow during refinement, so pruned membership can
            # only differ on ties; demand near-perfect agreement.
            assert overlap >= k - 1

    def test_search_determinism_across_runs(self, bundle, workload):
        def run():
            engine = PITEngine.from_dataset(
                bundle, summarizer="lrw", samples_per_node=10, seed=77
            )
            output = []
            for user, query in workload.pairs():
                output.append(
                    [(r.topic_id, round(r.influence, 12))
                     for r in engine.search(user, query, 4)]
                )
            return output

        assert run() == run()


class TestCorpusPipeline:
    def test_lda_extraction_round_trip(self):
        bundle = data_2k(seed=41, n_nodes=120, with_corpus=True)
        from repro.topics import TopicExtractor, TopicIndex

        extractor = TopicExtractor(
            n_topics=6, tags_per_user=5, lda_iterations=20, seed=42
        )
        result = extractor.run(bundle.corpus, bundle.tag_bank)
        index = TopicIndex(bundle.graph.n_nodes, result.assignments)
        assert index.n_topics > 0
        # The extracted index is queryable end to end.
        engine = PITEngine(
            bundle.graph, index, summarizer="lrw",
            samples_per_node=5, seed=43,
        )
        user = next(iter(result.assignments))
        token = result.assignments[user][0].split()[-1]
        results = engine.search(user, token, k=3)
        assert isinstance(results, list)
