"""Integration test: engine maintenance under a simulated activity stream."""

import pytest

from repro.core import PITEngine, apply_topic_update, invalidate_propagation
from repro.datasets import ActivityStream, data_2k


@pytest.fixture(scope="module")
def bundle():
    return data_2k(seed=71, n_nodes=300, with_corpus=False)


class TestStreamMaintenance:
    def test_engine_survives_three_epochs(self, bundle):
        engine = PITEngine.from_dataset(
            bundle, summarizer="lrw", samples_per_node=5, seed=71
        )
        baseline = engine.search(5, "phone", k=3)
        assert baseline

        stream = ActivityStream(
            bundle.graph,
            bundle.topic_index,
            adoption_rate=0.3,
            churn_rate=0.05,
            max_changes_per_epoch=50,
            seed=72,
        )
        for update in stream.epochs(3):
            stats = apply_topic_update(engine, update)
            assert stats["topics"] == engine.topic_index.n_topics
            results = engine.search(5, "phone", k=3)
            scores = [r.influence for r in results]
            assert scores == sorted(scores, reverse=True)

        # The engine's final state matches the stream's materialized view.
        materialized = stream.current_index()
        assert engine.topic_index.labels == materialized.labels

    def test_summary_cache_mostly_survives_small_updates(self, bundle):
        engine = PITEngine.from_dataset(
            bundle, summarizer="lrw", samples_per_node=5, seed=73
        )
        # Warm all phone summaries.
        for topic in bundle.topic_index.related_topics("phone"):
            engine.summary(topic)
        warmed = engine.n_summaries
        stream = ActivityStream(
            bundle.graph,
            bundle.topic_index,
            adoption_rate=0.01,
            churn_rate=0.001,
            max_changes_per_epoch=3,
            seed=74,
        )
        stats = apply_topic_update(engine, stream.next_epoch())
        # A <=3-change epoch can touch at most 3 topics' member sets.
        assert stats["kept"] >= warmed - 3

    def test_propagation_invalidation_bounded(self, bundle):
        engine = PITEngine.from_dataset(
            bundle, summarizer="lrw", samples_per_node=5, seed=75
        )
        for user in (1, 2, 3, 4, 5):
            engine.propagation_index.entry(user)
        cached = engine.propagation_index.n_cached
        dropped = invalidate_propagation(engine.propagation_index, [1])
        assert 0 <= dropped <= cached
