"""Unit tests for the Algorithm 6 walk index."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, IndexNotBuiltError
from repro.graph import SocialGraph
from repro.walks import WalkIndex, hoeffding_sample_size


class TestHoeffding:
    def test_known_value(self):
        # ln(2/0.05) / (2 * 0.1^2) = ln(40)/0.02 ~ 184.44 -> 185
        assert hoeffding_sample_size(0.1, 0.05) == 185

    def test_tighter_epsilon_needs_more_samples(self):
        assert hoeffding_sample_size(0.05, 0.05) > hoeffding_sample_size(0.1, 0.05)

    @pytest.mark.parametrize("epsilon,delta", [(0, 0.1), (1, 0.1), (0.1, 0), (0.1, 1)])
    def test_rejects_degenerate_parameters(self, epsilon, delta):
        with pytest.raises(ConfigurationError):
            hoeffding_sample_size(epsilon, delta)


class TestBuildLifecycle:
    def test_unbuilt_queries_raise(self, chain_graph):
        index = WalkIndex(chain_graph, 3, 2, seed=1)
        assert not index.is_built
        with pytest.raises(IndexNotBuiltError):
            index.walks_from(0)
        with pytest.raises(IndexNotBuiltError):
            index.hitting_frequency(1, 0)
        with pytest.raises(IndexNotBuiltError):
            index.reverse_reachable(0)

    def test_built_classmethod(self, chain_graph):
        index = WalkIndex.built(chain_graph, 3, 2, seed=1)
        assert index.is_built

    def test_build_idempotent(self, chain_graph):
        index = WalkIndex.built(chain_graph, 3, 2, seed=1)
        first = index.walks_from(0)
        index.build()
        assert index.walks_from(0) is first

    def test_parameters_validated(self, chain_graph):
        with pytest.raises(ConfigurationError):
            WalkIndex(chain_graph, 0, 2)
        with pytest.raises(ConfigurationError):
            WalkIndex(chain_graph, 3, 0)


class TestWalkStorage:
    def test_r_walks_per_node(self, chain_graph):
        index = WalkIndex.built(chain_graph, 3, 4, seed=1)
        for node in chain_graph.nodes:
            assert len(index.walks_from(node)) == 4

    def test_walks_start_at_node(self, chain_graph):
        index = WalkIndex.built(chain_graph, 3, 4, seed=1)
        for node in chain_graph.nodes:
            for record in index.walks_from(node):
                assert record.path[0] == node

    def test_walk_lengths_bounded(self, triangle_graph):
        index = WalkIndex.built(triangle_graph, 4, 3, seed=2)
        for node in triangle_graph.nodes:
            for record in index.walks_from(node):
                assert record.steps_taken <= 4


class TestHittingFrequency:
    def test_rows_zero_beyond_reach(self, chain_graph):
        index = WalkIndex.built(chain_graph, 3, 5, seed=3)
        table = index.hitting_frequencies()
        assert table.shape == (4, 5)
        assert np.all(table[0] == 0.0)

    def test_values_are_multiples_of_inverse_r(self, chain_graph):
        samples = 5
        index = WalkIndex.built(chain_graph, 3, samples, seed=3)
        table = index.hitting_frequencies()
        scaled = table * samples
        assert np.allclose(scaled, np.round(scaled))

    def test_chain_deterministic_hits(self, chain_graph):
        # On a chain, the walk from node i deterministically reaches i+j at
        # step j, so H[j][i+j] is exactly 1/R.
        samples = 4
        index = WalkIndex.built(chain_graph, 3, samples, seed=3)
        assert index.hitting_frequency(1, 1) == pytest.approx(1 / samples)
        assert index.hitting_frequency(2, 2) == pytest.approx(1 / samples)
        assert index.hitting_frequency(3, 3) == pytest.approx(1 / samples)

    def test_step_bounds_checked(self, chain_graph):
        index = WalkIndex.built(chain_graph, 3, 2, seed=3)
        with pytest.raises(ConfigurationError):
            index.hitting_frequency(0, 1)
        with pytest.raises(ConfigurationError):
            index.hitting_frequency(4, 1)

    def test_revisit_increases_frequency(self, triangle_graph):
        # A 3-cycle walk of length 4 revisits its start: visited[start]
        # reaches 2/R, which H must record at the revisit step.
        samples = 2
        index = WalkIndex.built(triangle_graph, 4, samples, seed=1)
        table = index.hitting_frequencies()
        assert table.max() == pytest.approx(2 / samples)


class TestReverseReachable:
    def test_chain_reverse_reachability(self, chain_graph):
        index = WalkIndex.built(chain_graph, 4, 3, seed=1)
        # Walks are deterministic on a chain: every earlier node reaches 4.
        assert index.reverse_reachable(4).tolist() == [0, 1, 2, 3]

    def test_excludes_unreachable(self, chain_graph):
        index = WalkIndex.built(chain_graph, 4, 3, seed=1)
        assert index.reverse_reachable(0).size == 0

    def test_respects_walk_length(self, chain_graph):
        index = WalkIndex.built(chain_graph, 2, 3, seed=1)
        # L=2: only nodes within 2 hops can appear.
        assert index.reverse_reachable(4).tolist() == [2, 3]

    def test_set_view_matches_array(self, chain_graph):
        index = WalkIndex.built(chain_graph, 4, 3, seed=1)
        assert index.reverse_reachable_set(4) == set(
            index.reverse_reachable(4).tolist()
        )

    def test_subset_of_exact_reachability(self):
        # Sampled I_L must always be a subset of the exact L-hop set.
        rng = np.random.default_rng(4)
        edges = set()
        while len(edges) < 80:
            u, v = rng.integers(0, 25, size=2)
            if u != v:
                edges.add((int(u), int(v)))
        graph = SocialGraph(25, [(u, v, 0.4) for u, v in edges])
        length = 3
        index = WalkIndex.built(graph, length, 4, seed=9)
        from repro.graph import reverse_reachable

        for node in graph.nodes:
            sampled = set(index.reverse_reachable(node).tolist())
            exact = set(reverse_reachable(graph, node, length).tolist())
            assert sampled <= exact


class TestMemory:
    def test_memory_accounts_something(self, chain_graph):
        index = WalkIndex.built(chain_graph, 3, 2, seed=1)
        assert index.memory_bytes() > 0
