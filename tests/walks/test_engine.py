"""Unit tests for the random-walk engine."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, NodeNotFoundError
from repro.graph import SocialGraph
from repro.walks import WalkEngine


class TestStep:
    def test_step_follows_edges(self, chain_graph):
        engine = WalkEngine(chain_graph, seed=1)
        assert engine.step(0) == 1

    def test_step_dead_end_returns_none(self, chain_graph):
        engine = WalkEngine(chain_graph, seed=1)
        assert engine.step(4) is None

    def test_step_unweighted_uniform(self):
        graph = SocialGraph(3, [(0, 1, 0.99), (0, 2, 0.01)])
        engine = WalkEngine(graph, weighted=False, seed=7)
        draws = [engine.step(0) for _ in range(400)]
        counts = {v: draws.count(v) for v in (1, 2)}
        # Uniform choice should be near 50/50 despite skewed probabilities.
        assert abs(counts[1] - counts[2]) < 100

    def test_step_weighted_respects_probabilities(self):
        graph = SocialGraph(3, [(0, 1, 0.9), (0, 2, 0.1)])
        engine = WalkEngine(graph, weighted=True, seed=7)
        draws = [engine.step(0) for _ in range(500)]
        share = draws.count(1) / len(draws)
        assert 0.8 < share < 0.98


class TestWalk:
    def test_walk_starts_at_start(self, chain_graph):
        engine = WalkEngine(chain_graph, seed=3)
        record = engine.walk(1, 2)
        assert record.path[0] == 1

    def test_walk_length_bounded(self, chain_graph):
        engine = WalkEngine(chain_graph, seed=3)
        record = engine.walk(0, 3)
        assert record.steps_taken <= 3
        assert record.path.size <= 4

    def test_walk_stops_at_dead_end(self, chain_graph):
        engine = WalkEngine(chain_graph, seed=3)
        record = engine.walk(2, 10)
        assert record.path.tolist() == [2, 3, 4]
        assert record.steps_taken == 2

    def test_walk_records_first_visit_order(self, triangle_graph):
        engine = WalkEngine(triangle_graph, seed=1)
        record = engine.walk(0, 6)
        # Deterministic single-out-edge cycle: path dedups to the 3 nodes.
        assert record.path.tolist() == [0, 1, 2]
        assert record.steps_taken == 6

    def test_revisits_counted_not_reappended(self, triangle_graph):
        engine = WalkEngine(triangle_graph, seed=1)
        record = engine.walk(0, 6)
        # 6 steps around a 3-cycle: node 0 visited 1+2 times, others 2 each.
        assert record.visit_counts.tolist() == [3, 2, 2]

    def test_zero_length_walk(self, chain_graph):
        engine = WalkEngine(chain_graph, seed=3)
        record = engine.walk(2, 0)
        assert record.path.tolist() == [2]
        assert record.steps_taken == 0

    def test_negative_length_rejected(self, chain_graph):
        engine = WalkEngine(chain_graph, seed=3)
        with pytest.raises(ConfigurationError):
            engine.walk(0, -1)

    def test_unknown_start_rejected(self, chain_graph):
        engine = WalkEngine(chain_graph, seed=3)
        with pytest.raises(NodeNotFoundError):
            engine.walk(99, 2)

    def test_deterministic_under_seed(self, diamond_graph):
        a = WalkEngine(diamond_graph, seed=5).walk(0, 3)
        b = WalkEngine(diamond_graph, seed=5).walk(0, 3)
        assert a.path.tolist() == b.path.tolist()


class TestWalks:
    def test_walks_count(self, chain_graph):
        engine = WalkEngine(chain_graph, seed=3)
        records = engine.walks(0, 5, 2)
        assert len(records) == 5

    def test_walks_requires_positive_count(self, chain_graph):
        engine = WalkEngine(chain_graph, seed=3)
        with pytest.raises(ConfigurationError):
            engine.walks(0, 0, 2)

    def test_all_steps_follow_real_edges(self):
        rng = np.random.default_rng(0)
        edges = set()
        while len(edges) < 60:
            u, v = rng.integers(0, 20, size=2)
            if u != v:
                edges.add((int(u), int(v)))
        graph = SocialGraph(20, [(u, v, 0.5) for u, v in edges])
        engine = WalkEngine(graph, seed=8)
        for start in range(20):
            record = engine.walk(start, 5)
            # First-visit order does not imply path adjacency, but every
            # recorded node must be reachable from the start.
            from repro.graph import hop_distances

            dist = hop_distances(graph, start)
            for node in record.path:
                assert dist[int(node)] >= 0
