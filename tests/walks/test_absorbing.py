"""Unit tests for absorbing-walk helpers."""

import numpy as np
import pytest

from repro.walks import (
    WalkRecord,
    absorption_distances,
    closeness_from_distance,
    first_absorption,
)


def record(*nodes):
    path = np.asarray(nodes, dtype=np.int64)
    return WalkRecord(path, np.ones_like(path), len(nodes) - 1)


class TestFirstAbsorption:
    def test_first_hit_wins(self):
        walk = record(0, 5, 7, 9)
        assert first_absorption(walk, {7, 9}) == (7, 2)

    def test_start_is_not_absorbed(self):
        # Absorption is about reaching a representative, not being one.
        walk = record(0, 5)
        assert first_absorption(walk, {0, 5}) == (5, 1)

    def test_no_absorber_returns_none(self):
        assert first_absorption(record(0, 1, 2), {9}) is None

    def test_distance_is_path_position(self):
        walk = record(3, 8, 2, 6)
        assert first_absorption(walk, {6}) == (6, 3)


class TestAbsorptionDistances:
    def test_minimum_over_walks(self):
        walks = [record(0, 1, 7), record(0, 7, 1)]
        assert absorption_distances(walks, {7}) == {7: 1}

    def test_multiple_absorbers(self):
        walks = [record(0, 4, 9), record(0, 9, 4)]
        # First-hit semantics: each walk is absorbed by its first absorber.
        assert absorption_distances(walks, {4, 9}) == {4: 1, 9: 1}

    def test_empty_when_never_absorbed(self):
        assert absorption_distances([record(0, 1)], {5}) == {}


class TestClosenessKernel:
    @pytest.mark.parametrize("distance,expected", [(0, 1.0), (1, 0.5), (3, 0.25)])
    def test_kernel_values(self, distance, expected):
        assert closeness_from_distance(distance) == expected

    def test_rejects_negative_distance(self):
        with pytest.raises(ValueError):
            closeness_from_distance(-1)
