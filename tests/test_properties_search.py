"""Seeded property/differential harness for the online search (S26).

Two layers of ground truth over randomly generated (but fixed-seed)
graphs and topic assignments:

* **Differential**: the vectorized
  :class:`~repro.core.search.PersonalizedSearcher` must agree with the
  frozen scalar reference
  (:class:`~repro.core._scalar_search.ScalarReferenceSearcher`)
  *bit-exactly* - identical rankings, identical influence floats, and
  identical work stats, including the pruning counters.
* **Oracle**: on tiny graphs (<= 12 nodes) with the propagation
  threshold driven to ``θ = 1e-300``, every cycle-free path qualifies
  for ``Γ(v)`` and the marked frontier is empty, so the search's
  influence must equal Definition 1's literal simple-path enumeration
  (:func:`~repro.core.influence.simple_path_influence`) to 1e-12 -
  including the top-k order.

Both layers run for two fixed seeds; CI runs this module as its own
property-harness step.
"""

from __future__ import annotations

import pytest

from repro.core._scalar_search import ScalarReferenceSearcher
from repro.core.influence import simple_path_influence
from repro.core.propagation import PropagationIndex
from repro.core.search import PersonalizedSearcher
from repro.core.summarization import TopicSummary
from repro.graph import preferential_attachment_graph
from repro.topics import TopicIndex

from repro._utils import coerce_rng

SEEDS = (7, 1234)

STAT_FIELDS = (
    "topics_considered",
    "topics_pruned",
    "entries_probed",
    "expansion_rounds",
    "representatives_touched",
)

_ADJECTIVES = ("solar", "lunar", "tidal", "polar")
_NOUNS = ("phone", "camera", "drone", "tablet")


def _random_topic_index(n_nodes: int, rng, *, n_topics: int) -> TopicIndex:
    """Seeded random topic assignment: 1-3 topics per node."""
    labels = [
        f"{_ADJECTIVES[i % len(_ADJECTIVES)]} {_NOUNS[i // len(_ADJECTIVES)]}"
        for i in range(n_topics)
    ]
    assignments = {}
    for node in range(n_nodes):
        count = int(rng.integers(1, 4))
        picks = rng.choice(n_topics, size=min(count, n_topics), replace=False)
        assignments[node] = [labels[int(p)] for p in picks]
    # Every label must actually occur so n_topics is deterministic.
    for i, label in enumerate(labels):
        assignments[i % n_nodes] = list(
            set(assignments[i % n_nodes]) | {label}
        )
    return TopicIndex(n_nodes, assignments)


def _identity_summaries(topic_index: TopicIndex):
    """Summaries whose representatives are the topic nodes themselves.

    With uniform weights ``1/|V_t|`` the search's summary-based influence
    coincides with Definition 1's exact ``I(t, v)``, which is what lets
    the oracle below use the literal path enumeration.
    """
    summaries = {}
    for topic_id in range(topic_index.n_topics):
        nodes = topic_index.topic_nodes(topic_id)
        weight = 1.0 / nodes.size
        summaries[topic_id] = TopicSummary(
            topic_id, {int(v): weight for v in nodes}
        )
    return summaries


def _random_summaries(topic_index: TopicIndex, rng):
    """Random representative subsets with random normalized weights."""
    summaries = {}
    for topic_id in range(topic_index.n_topics):
        nodes = topic_index.topic_nodes(topic_id)
        count = max(1, nodes.size // 2)
        reps = rng.choice(nodes, size=count, replace=False)
        raw = rng.random(count) + 0.1
        total = float(raw.sum())
        summaries[topic_id] = TopicSummary(
            topic_id,
            {int(v): float(w) / total for v, w in zip(reps, raw)},
        )
    return summaries


@pytest.mark.parametrize("seed", SEEDS)
class TestVectorizedMatchesScalar:
    """Vectorized and scalar searchers are bit-exact on random inputs."""

    def _setup(self, seed):
        graph = preferential_attachment_graph(
            60, 3, seed=seed, reciprocity=0.3
        )
        rng = coerce_rng(seed + 1)
        topic_index = _random_topic_index(graph.n_nodes, rng, n_topics=8)
        summaries = _random_summaries(topic_index, rng)
        # theta high enough that entries stay partial: the marked
        # frontier is non-empty and Expand rounds actually run.
        propagation = PropagationIndex(graph, 0.01)
        vectorized = PersonalizedSearcher(topic_index, summaries, propagation)
        scalar = ScalarReferenceSearcher(topic_index, summaries, propagation)
        users = [int(u) for u in rng.integers(0, graph.n_nodes, size=6)]
        queries = list(_NOUNS) + ["solar phone"]
        return vectorized, scalar, users, queries

    def test_bit_exact_results_and_stats(self, seed):
        vectorized, scalar, users, queries = self._setup(seed)
        compared = 0
        for user in users:
            for query in queries:
                for k in (1, 3, 10):
                    got, got_stats = vectorized.search(user, query, k)
                    want, want_stats = scalar.search(user, query, k)
                    assert [
                        (r.topic_id, r.label, r.influence) for r in got
                    ] == [
                        (r.topic_id, r.label, r.influence) for r in want
                    ], f"user={user} query={query!r} k={k}"
                    for name in STAT_FIELDS:
                        assert getattr(got_stats, name) == getattr(
                            want_stats, name
                        ), f"{name} diverged for user={user} query={query!r}"
                    compared += 1
        assert compared == len(users) * len(queries) * 3

    def test_expansion_is_actually_exercised(self, seed):
        vectorized, scalar, users, queries = self._setup(seed)
        rounds = 0
        for user in users:
            _, stats = vectorized.search(user, queries[0], 2)
            rounds += stats.expansion_rounds
        assert rounds > 0, "harness never reached the Expand path"

    def test_batched_path_matches_too(self, seed):
        vectorized, scalar, users, queries = self._setup(seed)
        requests = [(user, query) for user in users[:3] for query in queries]
        batched = vectorized.search_many(requests, 5)
        for (user, query), (results, stats) in zip(requests, batched):
            want, want_stats = scalar.search(user, query, 5)
            assert [
                (r.topic_id, r.label, r.influence) for r in results
            ] == [
                (r.topic_id, r.label, r.influence) for r in want
            ]
            for name in STAT_FIELDS:
                assert getattr(stats, name) == getattr(want_stats, name)


@pytest.mark.parametrize("seed", SEEDS)
class TestBruteForceOracle:
    """On tiny graphs with θ ~ 0, search equals the path-enumeration oracle."""

    THETA = 1e-300

    def _setup(self, seed):
        graph = preferential_attachment_graph(
            10, 2, seed=seed, reciprocity=0.4
        )
        assert graph.n_nodes <= 12
        rng = coerce_rng(seed + 2)
        topic_index = _random_topic_index(graph.n_nodes, rng, n_topics=4)
        summaries = _identity_summaries(topic_index)
        propagation = PropagationIndex(graph, self.THETA)
        searcher = PersonalizedSearcher(topic_index, summaries, propagation)
        return graph, topic_index, searcher

    def _oracle_influence(self, graph, topic_index, topic_id, user):
        return simple_path_influence(
            graph,
            [int(v) for v in topic_index.topic_nodes(topic_id)],
            user,
            max_length=graph.n_nodes,
        )

    def test_every_marked_frontier_is_empty(self, seed):
        graph, _, searcher = self._setup(seed)
        propagation = searcher._propagation
        for node in range(graph.n_nodes):
            assert propagation.entry(node).marked == frozenset()

    def test_influences_match_the_enumeration(self, seed):
        graph, topic_index, searcher = self._setup(seed)
        for user in range(graph.n_nodes):
            results, _ = searcher.search(user, _NOUNS[0], 10)
            for result in results:
                expected = self._oracle_influence(
                    graph, topic_index, result.topic_id, user
                )
                assert result.influence == pytest.approx(
                    expected, abs=1e-12
                ), f"user={user} topic={result.label}"

    def test_top_k_order_matches_the_oracle_ranking(self, seed):
        graph, topic_index, searcher = self._setup(seed)
        for user in range(graph.n_nodes):
            for query in _NOUNS:
                related = topic_index.related_topics(query)
                if not related:
                    continue
                oracle = {
                    t: self._oracle_influence(graph, topic_index, t, user)
                    for t in related
                }
                expected = sorted(
                    oracle,
                    key=lambda t: (-oracle[t], topic_index.label(t)),
                )[:3]
                results, stats = searcher.search(user, query, 3)
                assert [r.topic_id for r in results] == expected
                # θ ~ 0 leaves nothing to expand: the whole influence is
                # aggregated from the user's own entry in round zero.
                assert stats.expansion_rounds == 0
                assert stats.entries_probed == 1
