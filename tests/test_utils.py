"""Unit tests for internal helpers and the exception hierarchy."""

import numpy as np
import pytest

from repro._utils import (
    as_int_array,
    coerce_rng,
    normalize_rows,
    require_in_range,
    require_non_negative,
    require_positive,
    require_probability,
    stable_top_indices,
)
from repro.exceptions import (
    BudgetExceededError,
    ConfigurationError,
    NodeNotFoundError,
    ReproError,
    UnknownTopicError,
)


class TestCoerceRng:
    def test_none_gives_generator(self):
        assert isinstance(coerce_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        assert coerce_rng(5).random() == coerce_rng(5).random()

    def test_generator_passthrough(self):
        rng = np.random.default_rng(1)
        assert coerce_rng(rng) is rng


class TestValidators:
    def test_require_positive(self):
        require_positive("x", 1)
        with pytest.raises(ConfigurationError):
            require_positive("x", 0)

    def test_require_non_negative(self):
        require_non_negative("x", 0)
        with pytest.raises(ConfigurationError):
            require_non_negative("x", -1)

    def test_require_probability_inclusive(self):
        require_probability("p", 0.0)
        require_probability("p", 1.0)
        with pytest.raises(ConfigurationError):
            require_probability("p", 1.1)

    def test_require_probability_exclusive_zero(self):
        with pytest.raises(ConfigurationError):
            require_probability("p", 0.0, inclusive_zero=False)
        require_probability("p", 0.01, inclusive_zero=False)

    def test_require_in_range(self):
        require_in_range("k", 3, 1, 5)
        require_in_range("k", 3, 1)  # unbounded above
        with pytest.raises(ConfigurationError):
            require_in_range("k", 0, 1, 5)
        with pytest.raises(ConfigurationError):
            require_in_range("k", 9, 1, 5)


class TestArrays:
    def test_as_int_array(self):
        arr = as_int_array(iter([3, 1, 2]))
        assert arr.dtype == np.int64
        assert arr.tolist() == [3, 1, 2]

    def test_stable_top_indices_order(self):
        result = stable_top_indices([1.0, 3.0, 3.0, 2.0], 3)
        # Ties (indices 1, 2) break toward the smaller index.
        assert result.tolist() == [1, 2, 3]

    def test_stable_top_indices_truncation(self):
        assert stable_top_indices([1.0, 2.0], 5).size == 2
        assert stable_top_indices([1.0], 0).size == 0

    def test_normalize_rows(self):
        matrix = np.array([[1.0, 3.0], [0.0, 0.0]])
        normalized = normalize_rows(matrix)
        assert normalized[0].tolist() == [0.25, 0.75]
        assert normalized[1].tolist() == [0.0, 0.0]  # zero rows stay zero


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (
            ConfigurationError("x"),
            BudgetExceededError("x", 1),
            NodeNotFoundError(1, 2),
            UnknownTopicError("t"),
        ):
            assert isinstance(exc, ReproError)

    def test_node_not_found_is_key_error(self):
        assert isinstance(NodeNotFoundError(1, 2), KeyError)

    def test_configuration_error_is_value_error(self):
        assert isinstance(ConfigurationError("x"), ValueError)

    def test_budget_error_carries_fields(self):
        error = BudgetExceededError("tree", 42)
        assert error.budget == 42
        assert "tree" in str(error)
