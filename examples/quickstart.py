#!/usr/bin/env python
"""Quickstart: build a PIT-Search engine and run personalized queries.

A thin wrapper over the ``quickstart`` scenario
(:mod:`repro.scenarios`), which owns the dataset and workload
generation. Steps:

1. generate the scenario's dataset (graph + topic space);
2. build the offline indexes lazily through :class:`repro.core.PITEngine`;
3. run the same keyword query for two different users and see that the
   *personalized* rankings differ - the paper's core claim.

Run with: ``python examples/quickstart.py``
"""

from __future__ import annotations

from repro.core import PITEngine
from repro.scenarios import get_scenario


def main() -> None:
    # The scenario's "demo" profile is this example's historical scale:
    # a 600-node slice of the data_2k bundle, instant to build.
    scenario = get_scenario("quickstart")
    data = scenario.generate(seed=7, profile="demo")
    bundle = data.bundle
    print(bundle.describe())

    engine = PITEngine.from_dataset(bundle, summarizer="lrw", seed=7)

    query = "phone"
    users = [3, 42]
    for user in users:
        results, stats = engine.search(user, query, k=5, with_stats=True)
        print(f"\nTop-5 '{query}' topics for user {user} "
              f"(probed {stats.entries_probed} index entries, "
              f"{stats.topics_pruned} topics pruned):")
        for rank, result in enumerate(results, start=1):
            print(f"  {rank}. {result.label:24s} influence={result.influence:.5f}")

    # Same query, different users, different rankings - that is PIT-Search.
    first = [r.label for r in engine.search(users[0], query, k=5)]
    second = [r.label for r in engine.search(users[1], query, k=5)]
    print(f"\nRankings identical for both users? {first == second}")

    print(f"\nThis demo is the {data.name!r} scenario; replay its full "
          f"{len(data.records)}-request trace with:\n"
          f"  pit-search scenario run quickstart --profile demo")


if __name__ == "__main__":
    main()
