#!/usr/bin/env python
"""Targeted advertising: pick the users most receptive to a campaign topic.

A thin wrapper over the ``targeted-advertising`` scenario
(:mod:`repro.scenarios`), which owns the dataset, the campaign-topic
choice, and the receptive-audience ranking. The paper's introduction
motivates PIT-Search with "target advertising, or personal product
promotion"; this demo inverts the usual query - instead of asking
"which topics influence this user", an advertiser asks "which users are
most influenced by *my* topic" - answered with exactly the same
machinery:

1. build a topic summary (the campaign's representative influencers);
2. rank every candidate user by the topic's exact influence on them;
3. compare the receptive audience against a random audience.

Run with: ``python examples/targeted_advertising.py``
"""

from __future__ import annotations

import numpy as np

from repro.core import PITEngine, topic_influence_vector
from repro.scenarios import campaign_audience, campaign_topic, get_scenario


def main() -> None:
    # The scenario's "demo" profile is this example's historical scale.
    scenario = get_scenario("targeted-advertising")
    bundle = scenario.dataset(21, scenario.params("demo"))
    engine = PITEngine.from_dataset(bundle, summarizer="lrw", seed=21)
    topic_index = bundle.topic_index

    # The campaign topic: the hottest phone-related tag.
    campaign = campaign_topic(topic_index)
    label = topic_index.label(campaign)
    print(f"Campaign topic: {label!r} "
          f"({topic_index.topic_size(campaign)} organic endorsers)")

    # The topic summary is the campaign's influencer shortlist.
    summary = engine.summary(campaign)
    print(f"Representative influencers ({summary.size}):")
    for node in summary.representatives[:8]:
        print(f"  user {node:4d}  weight={summary.weight(node):.3f}  "
              f"followers={bundle.graph.in_degree(node)}")

    # Exact influence of the topic on every user = expected receptiveness.
    influence = topic_influence_vector(
        bundle.graph, topic_index.topic_nodes(campaign), 6
    )
    endorsers = set(int(v) for v in topic_index.topic_nodes(campaign))
    candidates = [v for v in bundle.graph.nodes if v not in endorsers]

    audience = campaign_audience(bundle, campaign, size=20)
    rng = np.random.default_rng(5)
    random_audience = rng.choice(candidates, size=20, replace=False)
    print(f"\nTop-20 receptive audience: mean influence "
          f"{float(np.mean([influence[v] for v in audience])):.5f}")
    print(f"Random 20-user audience:   mean influence "
          f"{float(np.mean([influence[v] for v in random_audience])):.5f}")

    # Sanity: the targeted audience should also see the campaign topic rank
    # highly in their own PIT-Search results.
    hits = 0
    for user in audience[:10]:
        results = engine.search(user, "phone", k=5)
        hits += any(r.topic_id == campaign for r in results)
    print(f"\nCampaign topic in the personal top-5 of {hits}/10 "
          f"targeted users")

    print("\nReplay the audience's query stream as serving traffic with:\n"
          "  pit-search scenario run targeted-advertising --profile demo")


if __name__ == "__main__":
    main()
