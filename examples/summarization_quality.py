#!/usr/bin/env python
"""Summarization quality: Definition 1's objective, measured.

A thin wrapper over the ``quickstart`` scenario's corpus-carrying
profile (:mod:`repro.scenarios` owns the dataset generation). Compares
the two summarizers (RCL-A and LRW-A) on the paper's actual
optimization target - the L1 gap between the true topic influence field
``I(t, .)`` and the summary-induced field ``I*(t, .)`` - and shows how the
gap shrinks as the representative budget ``μ`` grows.

Also demonstrates the full LDA-based topic extraction pipeline on the
bundled tweet corpus (paper §6.1), which the other examples skip.

Run with: ``python examples/summarization_quality.py``
"""

from __future__ import annotations

from repro.core import summarization_error
from repro.core.lrw import LRWSummarizer
from repro.core.rcl import RCLSummarizer
from repro.scenarios import get_scenario
from repro.topics import TopicExtractor
from repro.walks import WalkIndex


def main() -> None:
    scenario = get_scenario("quickstart")
    bundle = scenario.dataset(13, scenario.params("demo-corpus"))
    graph, topic_index = bundle.graph, bundle.topic_index

    # --- Part 1: the LDA extraction pipeline on real (synthetic) tweets.
    print("Topic extraction from tweets (LDA + tag refinement):")
    extractor = TopicExtractor(
        n_topics=8, tags_per_user=6, lda_iterations=30, seed=13
    )
    # A 60-user slice keeps the Gibbs sampler fast for the demo.
    from repro.topics import TweetCorpus

    small = TweetCorpus(60)
    for user in range(60):
        small.add_tweets(user, bundle.corpus.tweets(user))
    result = extractor.run(small, bundle.tag_bank)
    sample_user = next(iter(result.assignments))
    print(f"  extracted topics for {result.n_users} users; e.g. user "
          f"{sample_user}: {result.assignments[sample_user][:4]}")

    # --- Part 2: Definition 1 quality of the two summarizers.
    walk_index = WalkIndex.built(graph, walk_length=5, samples_per_node=40,
                                 seed=13)
    topic = max(
        topic_index.related_topics("music"), key=topic_index.topic_size
    )
    label = topic_index.label(topic)
    nodes = topic_index.topic_nodes(topic)
    print(f"\nTopic {label!r} with |V_t| = {nodes.size}")
    print(f"{'mu':>5s}  {'RCL-A reps':>10s}  {'RCL-A L1':>9s}  "
          f"{'LRW-A reps':>10s}  {'LRW-A L1':>9s}")
    for mu in (0.05, 0.1, 0.2, 0.4):
        rcl = RCLSummarizer(
            graph, topic_index, max_hops=5, sample_rate=0.05,
            rep_fraction=mu, walk_index=walk_index, seed=13,
        )
        lrw = LRWSummarizer(graph, topic_index, walk_index, rep_fraction=mu)
        rcl_summary = rcl.summarize(topic)
        lrw_summary = lrw.summarize(topic)
        rcl_err = summarization_error(graph, nodes, rcl_summary, length=6)
        lrw_err = summarization_error(graph, nodes, lrw_summary, length=6)
        print(f"{mu:5.2f}  {rcl_summary.size:10d}  {rcl_err:9.4f}  "
              f"{lrw_summary.size:10d}  {lrw_err:9.4f}")
    print("\nLower L1 = the summary's influence field tracks the topic's "
          "more closely (Definition 1).")


if __name__ == "__main__":
    main()
