#!/usr/bin/env python
"""The paper's Example 1: which phone should User 3 buy?

Reconstructs the 15-user social network of Figure 1 with the influence
weights of Figure 2, three phone topics (apple/samsung/htc), and shows:

* the exact influence of each topic on User 3 (samsung wins, as in the
  paper);
* that User 7 gets a different top-1 (htc) for the same query;
* how the PIT engine's approximate answer compares to the exact one.

Run with: ``python examples/phone_recommendation.py``
"""

from __future__ import annotations

from repro.baselines import BaseMatrixRanker
from repro.core import PITEngine, topic_influence_vector
from repro.graph import GraphBuilder
from repro.topics import TopicIndex

#: Figure 1's edges with weights calibrated to reproduce Figure 2's path
#: table (e.g. path 5 -> 3 carries 0.6 and 2 -> 1 -> 3 carries 0.06).
EDGES = [
    (2, 1, 0.1), (1, 3, 0.6), (5, 3, 0.6), (5, 7, 0.1), (7, 13, 0.4),
    (13, 12, 0.8), (12, 10, 0.5), (10, 6, 0.4), (6, 3, 0.15), (9, 8, 0.3),
    (8, 13, 0.14), (15, 9, 0.9), (1, 2, 0.3), (3, 4, 0.4), (4, 14, 0.5),
    (11, 12, 0.3), (14, 11, 0.4), (6, 10, 0.3), (13, 7, 0.2),
]

#: Users who posted positively about each phone (user 13 mentions all
#: three, as in the paper).
TOPICS = {
    "apple phone": [2, 5, 13, 9, 15],
    "samsung phone": [1, 13, 12, 14],
    "htc phone": [6, 13, 10],
}


def build_network():
    builder = GraphBuilder(16)
    builder.add_edges(EDGES)
    graph = builder.build()
    assignment = {}
    for label, users in TOPICS.items():
        for user in users:
            assignment.setdefault(user, []).append(label)
    return graph, TopicIndex(16, assignment)


def main() -> None:
    graph, topic_index = build_network()

    print("Exact topic influence (walks up to length 6):")
    for user in (3, 7, 14):
        scores = {}
        for label in TOPICS:
            vector = topic_influence_vector(
                graph, topic_index.topic_nodes(label), 6
            )
            scores[label] = float(vector[user])
        ranked = sorted(scores.items(), key=lambda item: -item[1])
        row = ", ".join(f"{label}={score:.4f}" for label, score in ranked)
        print(f"  user {user:2d}: {row}")
        print(f"           -> recommend: {ranked[0][0]}")

    print("\nBaseMatrix ranker (the paper's ground truth) for user 3:")
    ranker = BaseMatrixRanker(graph, topic_index)
    for result in ranker.search(3, "phone", k=3):
        print(f"  {result.label:16s} {result.influence:.4f}")

    print("\nPIT engine (LRW-A summaries + propagation index) for user 3:")
    # On a 15-node toy the representative budget is the whole topic set
    # (mu=1), i.e. summarization is exact and only the theta-truncation of
    # the propagation index remains approximate.
    engine = PITEngine(
        graph, topic_index, summarizer="lrw", theta=0.005,
        rep_fraction=1.0, samples_per_node=50, seed=1,
    )
    for result in engine.search(3, "phone", k=3):
        print(f"  {result.label:16s} {result.influence:.4f}")


if __name__ == "__main__":
    main()
