#!/usr/bin/env python
"""The paper's Example 1: which phone should User 3 buy?

A thin wrapper over the ``phone-recommendation`` scenario
(:mod:`repro.scenarios`), which owns the Figure 1 network - the 15-user
graph with Figure 2's influence weights and the three phone topics
(apple/samsung/htc). This demo shows:

* the exact influence of each topic on User 3 (samsung wins, as in the
  paper);
* that User 7 gets a different top-1 (htc) for the same query;
* how the PIT engine's approximate answer compares to the exact one.

Run with: ``python examples/phone_recommendation.py``
"""

from __future__ import annotations

from repro.baselines import BaseMatrixRanker
from repro.core import PITEngine, topic_influence_vector
from repro.scenarios import TOPICS, build_phone_network


def main() -> None:
    graph, topic_index = build_phone_network()

    print("Exact topic influence (walks up to length 6):")
    for user in (3, 7, 14):
        scores = {}
        for label in TOPICS:
            vector = topic_influence_vector(
                graph, topic_index.topic_nodes(label), 6
            )
            scores[label] = float(vector[user])
        ranked = sorted(scores.items(), key=lambda item: -item[1])
        row = ", ".join(f"{label}={score:.4f}" for label, score in ranked)
        print(f"  user {user:2d}: {row}")
        print(f"           -> recommend: {ranked[0][0]}")

    print("\nBaseMatrix ranker (the paper's ground truth) for user 3:")
    ranker = BaseMatrixRanker(graph, topic_index)
    for result in ranker.search(3, "phone", k=3):
        print(f"  {result.label:16s} {result.influence:.4f}")

    print("\nPIT engine (LRW-A summaries + propagation index) for user 3:")
    # On a 15-node toy the representative budget is the whole topic set
    # (mu=1), i.e. summarization is exact and only the theta-truncation of
    # the propagation index remains approximate.
    engine = PITEngine(
        graph, topic_index, summarizer="lrw", theta=0.005,
        rep_fraction=1.0, samples_per_node=50, seed=1,
    )
    for result in engine.search(3, "phone", k=3):
        print(f"  {result.label:16s} {result.influence:.4f}")

    print("\nReplay Figure 1 as serving traffic (oracle-gated) with:\n"
          "  pit-search scenario run phone-recommendation")


if __name__ == "__main__":
    main()
