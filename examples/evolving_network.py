#!/usr/bin/env python
"""Evolving network: incremental index maintenance (paper §4.4).

A thin wrapper over the ``evolving-network`` scenario
(:mod:`repro.scenarios`), which owns the dataset and the hot-topic
update construction. "The offline pre-processing is updated after a
period of time when the social network and topics have changed." This
demo simulates a day of activity - users pick up and drop topics - and
shows that:

1. only the summaries of *changed* topics are invalidated (unchanged
   topics keep their cached summaries);
2. search results shift to reflect the new conversation landscape;
3. the propagation index can be selectively invalidated around changed
   nodes instead of rebuilt.

Run with: ``python examples/evolving_network.py``
"""

from __future__ import annotations

from repro.core import PITEngine, apply_topic_update, invalidate_propagation
from repro.scenarios import get_scenario, hot_topic_update


def main() -> None:
    # The scenario's "demo" profile is this example's historical scale.
    scenario = get_scenario("evolving-network")
    bundle = scenario.dataset(99, scenario.params("demo"))
    engine = PITEngine.from_dataset(bundle, summarizer="lrw", seed=99)

    user, query, k = 10, "music", 5
    print("Before the update:")
    before = engine.search(user, query, k)
    for result in before:
        print(f"  {result.label:24s} {result.influence:.5f}")

    # Warm a few summaries so there is a cache to preserve.
    for topic in bundle.topic_index.related_topics(query)[:6]:
        engine.summary(topic)
    warmed = engine.n_summaries
    print(f"\nSummaries cached before update: {warmed}")

    # A burst of activity: user 10's strongest influencers start talking
    # about a brand-new topic (the scenario's churn event, applied live).
    hot_label = "sold out festival music"
    update = hot_topic_update(engine, user, hot_label=hot_label)
    influencers = sorted(update.add)
    stats = apply_topic_update(engine, update)
    print(f"Update applied: kept {stats['kept']} cached summaries, "
          f"invalidated {stats['invalidated']}, "
          f"{stats['topics']} topics total")

    print("\nAfter the update:")
    after = engine.search(user, query, k)
    for result in after:
        marker = "  <- new" if result.label == hot_label else ""
        print(f"  {result.label:24s} {result.influence:.5f}{marker}")

    appeared = any(r.label == hot_label for r in after)
    print(f"\nNew topic entered user {user}'s top-{k}? {appeared}")

    # Structural change: pretend edges around two users were rewired.
    dropped = invalidate_propagation(engine.propagation_index, influencers[:2])
    print(f"Propagation entries invalidated by the edge change: {dropped}")
    # Next search rebuilds only what it needs.
    engine.search(user, query, k)
    print("Search after selective invalidation still works.")

    print("\nReplay churn against the serving stack (invalidation + "
          "reload mid-trace) with:\n"
          "  pit-search scenario run evolving-network --profile demo")


if __name__ == "__main__":
    main()
