"""Shim for legacy editable installs (offline environments without `wheel`).

All real metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` where PEP 660 editable builds are
unavailable.
"""

from setuptools import setup

setup()
