"""Atomic, checksummed artifact IO (internal).

Shared by :mod:`repro.core.persistence` and :mod:`repro.graph.io` so every
offline artifact gets the same durability contract:

* **Atomic publication** - bytes are written to a same-directory temp
  file, fsynced, and ``os.replace``d into place. A reader never observes
  a half-written artifact: the destination holds either the previous
  complete version or the new one.
* **Content checksum** - payloads embed a SHA-256 digest of their logical
  content; loaders recompute and compare, so a flipped bit surfaces as
  :class:`~repro.exceptions.ArtifactCorruptedError` (with expected/actual
  digests) instead of a crash deep inside numpy or a silently wrong
  query answer.
* **Format version** - payloads carry a format-version field; loaders
  reject versions newer than they understand. Legacy artifacts written
  before this layer existed (no checksum/version fields) still load.

NPZ payloads stay plain ``.npz`` files readable by ``np.load``, carrying
two integrity layers:

* a **content digest** in two extra arrays (``__checksum__``,
  ``__format_version__``), covering each array's name, dtype, shape, and
  raw bytes in sorted-key order - independent of zip framing, so it
  survives recompression;
* a **file seal**: a SHA-256 of the complete byte stream stored as the
  zip archive comment (``sha256:<hex>``). Zip framing contains bytes no
  reader ever checks (local-header timestamps, ignored flag fields); the
  seal closes that hole so *any* single flipped byte in the file is
  rejected, not just flips that land in compressed data.

``np.savez_compressed`` writes epoch zip timestamps, which keeps
identical payloads byte-identical on disk - the property the
resume-after-crash tests assert.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import struct
import tempfile
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Union

import numpy as np

from . import _faults
from .exceptions import ArtifactCorruptedError, ArtifactError

__all__ = [
    "FORMAT_VERSION",
    "MANIFEST_NAME",
    "atomic_write_bytes",
    "read_artifact_bytes",
    "array_digest",
    "json_digest",
    "bytes_digest",
    "save_npz_payload",
    "load_npz_payload",
    "save_json_payload",
    "load_json_payload",
    "require_keys",
    "ShardWriter",
    "load_shard_manifest",
    "verify_shard_file",
]

PathLike = Union[str, Path]

FORMAT_VERSION = 1

#: File name of the manifest inside a sharded artifact directory.
MANIFEST_NAME = "manifest.json"

#: NPZ member names reserved for integrity metadata.
CHECKSUM_KEY = "__checksum__"
VERSION_KEY = "__format_version__"


# ---------------------------------------------------------------------------
# Byte-level primitives
# ---------------------------------------------------------------------------


def atomic_write_bytes(path: PathLike, data: bytes) -> None:
    """Write *data* to *path* atomically (same-dir temp + ``os.replace``)."""
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent or Path("."), prefix=path.name + ".", suffix=".tmp"
    )
    tmp_path = Path(tmp_name)
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        _faults.inject("artifact.pre_replace", path=path, tmp_path=tmp_path)
        os.replace(tmp_path, path)
    except BaseException:
        tmp_path.unlink(missing_ok=True)
        raise


def read_artifact_bytes(path: PathLike, what: str = "artifact") -> bytes:
    """Read *path* fully, raising :class:`ArtifactError` when missing."""
    path = Path(path)
    try:
        data = path.read_bytes()
    except FileNotFoundError:
        raise ArtifactError(f"{what} not found: {path}") from None
    except OSError as exc:
        raise ArtifactError(f"{what} unreadable: {path}: {exc}") from exc
    return _faults.transform("artifact.load_bytes", data, path=path)


# ---------------------------------------------------------------------------
# Digests
# ---------------------------------------------------------------------------


def array_digest(arrays: Mapping[str, np.ndarray]) -> str:
    """SHA-256 over name, dtype, shape, and raw bytes in sorted-key order."""
    sha = hashlib.sha256()
    for key in sorted(arrays):
        array = np.ascontiguousarray(arrays[key])
        sha.update(key.encode("utf-8"))
        sha.update(array.dtype.str.encode("ascii"))
        sha.update(repr(array.shape).encode("ascii"))
        sha.update(array.tobytes())
    return sha.hexdigest()


def json_digest(payload: Mapping[str, Any]) -> str:
    """SHA-256 over the canonical (sorted, compact) JSON encoding."""
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def bytes_digest(data: bytes) -> str:
    """SHA-256 hex digest of a raw byte string."""
    return hashlib.sha256(data).hexdigest()


# ---------------------------------------------------------------------------
# NPZ payloads
# ---------------------------------------------------------------------------

_SEAL_PREFIX = b"sha256:"
_SEAL_LEN = len(_SEAL_PREFIX) + 64  # "sha256:" + hex digest


def _seal_zip_bytes(raw: bytes) -> bytes:
    """Append a whole-file SHA-256 as the zip archive comment.

    The digest covers every byte that precedes the comment, *including*
    the end-of-central-directory comment-length field (already patched to
    the final value), so no byte of the published file is outside the
    digest's reach. The result is still a valid zip / ``np.load``-able
    NPZ - readers that do not know about the seal see a normal comment.
    """
    if raw[-2:] != b"\x00\x00":  # pragma: no cover - savez never comments
        return raw
    sealed_head = raw[:-2] + struct.pack("<H", _SEAL_LEN)
    digest = hashlib.sha256(sealed_head).hexdigest().encode("ascii")
    return sealed_head + _SEAL_PREFIX + digest


def _verify_zip_seal(raw: bytes, path: Path) -> None:
    """Verify a sealed NPZ byte stream; unsealed (legacy) files pass."""
    tail = raw[-_SEAL_LEN:]
    prefix_at = tail.rfind(_SEAL_PREFIX)
    if prefix_at < 0:
        return  # legacy artifact, written before sealing existed
    if prefix_at != 0:
        # The prefix is inside the tail but not where a complete seal
        # would put it: the file lost bytes off its end.
        raise ArtifactCorruptedError(path, reason="truncated integrity seal")
    expected = raw[-64:].decode("ascii", "replace")
    actual = hashlib.sha256(raw[:-_SEAL_LEN]).hexdigest()
    if actual != expected:
        raise ArtifactCorruptedError(path, expected=expected, actual=actual)


def save_npz_payload(path: PathLike, arrays: Dict[str, np.ndarray]) -> None:
    """Atomically write *arrays* as a checksummed, sealed compressed NPZ."""
    digest = array_digest(arrays)
    payload = dict(arrays)
    payload[VERSION_KEY] = np.asarray([FORMAT_VERSION], dtype=np.int64)
    payload[CHECKSUM_KEY] = np.frombuffer(
        digest.encode("ascii"), dtype=np.uint8
    )
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **payload)
    atomic_write_bytes(path, _seal_zip_bytes(buffer.getvalue()))


def load_npz_payload(path: PathLike, what: str = "artifact") -> Dict[str, np.ndarray]:
    """Read a (possibly legacy) NPZ artifact, verifying seal + checksum."""
    path = Path(path)
    raw = read_artifact_bytes(path, what)
    _verify_zip_seal(raw, path)
    try:
        with np.load(io.BytesIO(raw)) as data:
            payload = {key: data[key] for key in data.files}
    except ArtifactError:
        raise
    except Exception as exc:
        # zipfile.BadZipFile, zlib.error, ValueError, EOFError, OSError -
        # anything a truncated or bit-flipped archive can throw.
        raise ArtifactCorruptedError(
            path, reason=f"unreadable NPZ payload ({type(exc).__name__}: {exc})"
        ) from exc
    _verify_version(payload.pop(VERSION_KEY, None), path, lambda v: int(v[0]))
    checksum = payload.pop(CHECKSUM_KEY, None)
    if checksum is not None:
        expected = checksum.tobytes().decode("ascii", "replace")
        actual = array_digest(payload)
        if actual != expected:
            raise ArtifactCorruptedError(path, expected=expected, actual=actual)
    return payload


# ---------------------------------------------------------------------------
# JSON payloads
# ---------------------------------------------------------------------------


def save_json_payload(path: PathLike, payload: Dict[str, Any]) -> None:
    """Atomically write *payload* as checksummed, versioned JSON."""
    body = dict(payload)
    body["format_version"] = FORMAT_VERSION
    body["checksum"] = json_digest(payload)
    atomic_write_bytes(
        path, json.dumps(body, sort_keys=True).encode("utf-8")
    )


def load_json_payload(path: PathLike, what: str = "artifact") -> Dict[str, Any]:
    """Read a (possibly legacy) JSON artifact, verifying version + checksum."""
    path = Path(path)
    raw = read_artifact_bytes(path, what)
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise ArtifactCorruptedError(
            path, reason=f"unreadable JSON payload ({exc})"
        ) from exc
    if not isinstance(payload, dict):
        raise ArtifactCorruptedError(
            path, reason=f"expected a JSON object, got {type(payload).__name__}"
        )
    _verify_version(payload.pop("format_version", None), path, int)
    checksum = payload.pop("checksum", None)
    if checksum is not None:
        actual = json_digest(payload)
        if actual != checksum:
            raise ArtifactCorruptedError(path, expected=checksum, actual=actual)
    return payload


# ---------------------------------------------------------------------------
# Sharded artifact directories
# ---------------------------------------------------------------------------
#
# A *sharded artifact* is a directory of independently written binary
# shard files plus one checksummed JSON manifest. Every shard is
# published atomically and fingerprinted (SHA-256 over its exact bytes),
# and the manifest - itself an ordinary checksummed JSON payload - records
# the shard inventory, the producer's parameters (``meta``), and whether
# the artifact is complete. This generalizes the PR 2 checkpoint
# machinery: a crashed producer leaves a loadable partial manifest, and a
# resumed run verifies every already-published shard instead of
# rebuilding it.


class ShardWriter:
    """Incremental writer for a sharded artifact directory.

    Parameters
    ----------
    directory:
        Destination directory (created on first write).
    kind:
        Artifact-kind tag stored in the manifest; loaders reject
        manifests of the wrong kind.
    meta:
        Producer parameters (JSON-serializable). A resumed run must pass
        the identical ``meta`` or :meth:`resume` raises - shards built
        under different parameters must never be mixed.

    The manifest is rewritten (atomically) after every shard, so the
    directory is always in a loadable state: either ``complete`` with the
    full inventory, or incomplete with exactly the shards written so far.
    """

    def __init__(self, directory: PathLike, kind: str, meta: Mapping[str, Any]):
        self._dir = Path(directory)
        self._kind = str(kind)
        self._meta = dict(meta)
        self._shards: list = []
        self._complete = False

    @property
    def directory(self) -> Path:
        """The artifact directory."""
        return self._dir

    @property
    def shards(self) -> list:
        """Records of the shards written (or resumed) so far."""
        return list(self._shards)

    def resume(self, what: str = "sharded artifact") -> list:
        """Absorb a previous run's shards, verifying each one.

        Returns the verified shard records (empty when no manifest
        exists). The existing manifest's ``kind`` and ``meta`` must match
        this writer's; each listed shard file is re-read and its SHA-256
        compared against the manifest, so a truncated or corrupted shard
        surfaces as :class:`ArtifactCorruptedError` *before* the resumed
        build trusts it.
        """
        from .exceptions import ConfigurationError

        if not (self._dir / MANIFEST_NAME).exists():
            return []
        manifest = load_shard_manifest(self._dir, kind=self._kind, what=what)
        if manifest["meta"] != self._meta:
            raise ConfigurationError(
                f"{self._dir}: existing {what} was built with "
                f"{manifest['meta']}, but this build uses {self._meta}"
            )
        for record in manifest["shards"]:
            verify_shard_file(self._dir, record, what)
        self._shards = list(manifest["shards"])
        self._complete = bool(manifest["complete"])
        return list(self._shards)

    def write_shard(self, name: str, data: bytes, **extra: Any) -> dict:
        """Atomically publish one shard and update the manifest.

        Returns the shard's manifest record (name, byte count, SHA-256,
        plus any *extra* fields).
        """
        self._dir.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(self._dir / name, data)
        record = {
            "name": str(name),
            "nbytes": len(data),
            "sha256": bytes_digest(data),
            **extra,
        }
        self._shards.append(record)
        self._flush_manifest(complete=False)
        return record

    def adopt_shard(
        self, record: Mapping[str, Any], *, verify: bool = True
    ) -> dict:
        """Carry an existing on-disk shard into this writer's manifest.

        The seam behind in-place incremental refresh: a delta rewrite
        that changes the manifest ``meta`` (e.g. a new edge count) cannot
        :meth:`resume`, but most shard files are untouched by the delta -
        adopting their records keeps the bytes on disk while the dirty
        shards are rewritten through :meth:`write_shard`. With *verify*
        (default) the file is re-read and checked against the record's
        byte count and SHA-256 first, so a clean-looking manifest can
        never adopt a corrupted file.
        """
        if verify:
            verify_shard_file(self._dir, record, "adopted shard")
        adopted = dict(record)
        self._shards.append(adopted)
        self._flush_manifest(complete=False)
        return adopted

    def finalize(self, **extra: Any) -> dict:
        """Publish the completed manifest (with any *extra* fields)."""
        return self._flush_manifest(complete=True, **extra)

    def _flush_manifest(self, complete: bool, **extra: Any) -> dict:
        self._dir.mkdir(parents=True, exist_ok=True)
        payload = {
            "kind": self._kind,
            "meta": dict(self._meta),
            "shards": list(self._shards),
            "complete": bool(complete),
            **extra,
        }
        save_json_payload(self._dir / MANIFEST_NAME, payload)
        self._complete = bool(complete)
        return payload


def load_shard_manifest(
    directory: PathLike,
    *,
    kind: Optional[str] = None,
    what: str = "sharded artifact",
) -> Dict[str, Any]:
    """Read and validate a sharded artifact's manifest.

    A missing directory raises :class:`ArtifactError`; a directory
    without a manifest, or a manifest of the wrong kind or shape, raises
    :class:`ArtifactCorruptedError`. The manifest's own JSON checksum is
    verified by :func:`load_json_payload`.
    """
    directory = Path(directory)
    path = directory / MANIFEST_NAME
    if not directory.exists():
        raise ArtifactError(f"{what} not found: {directory}")
    if not path.exists():
        raise ArtifactCorruptedError(
            directory, reason=f"missing {MANIFEST_NAME}"
        )
    payload = load_json_payload(path, f"{what} manifest")
    require_keys(payload, ("kind", "meta", "shards", "complete"), path)
    if kind is not None and payload["kind"] != kind:
        raise ArtifactCorruptedError(
            path,
            reason=f"manifest kind {payload['kind']!r} != expected {kind!r}",
        )
    if not isinstance(payload["shards"], list):
        raise ArtifactCorruptedError(
            path,
            reason=f"malformed shard list ({type(payload['shards']).__name__})",
        )
    for record in payload["shards"]:
        if not isinstance(record, dict) or not {
            "name", "nbytes", "sha256"
        } <= set(record):
            raise ArtifactCorruptedError(
                path, reason=f"malformed shard record {record!r}"
            )
    return payload


def verify_shard_file(
    directory: PathLike, record: Mapping[str, Any], what: str = "shard"
) -> Path:
    """Verify one shard file against its manifest record.

    Checks existence, exact byte count, and the SHA-256 content digest
    (reading through :func:`read_artifact_bytes`, so the
    ``artifact.load_bytes`` fault hook applies). Returns the shard path.
    """
    path = Path(directory) / record["name"]
    data = read_artifact_bytes(path, what)
    if len(data) != int(record["nbytes"]):
        raise ArtifactCorruptedError(
            path,
            reason=(
                f"truncated shard: {len(data)} bytes on disk, manifest "
                f"records {int(record['nbytes'])}"
            ),
        )
    actual = bytes_digest(data)
    if actual != record["sha256"]:
        raise ArtifactCorruptedError(
            path, expected=str(record["sha256"]), actual=actual
        )
    return path


# ---------------------------------------------------------------------------
# Shared helpers
# ---------------------------------------------------------------------------


def _verify_version(version, path: Path, as_int) -> None:
    if version is None:
        return  # legacy artifact written before the integrity layer
    try:
        number = as_int(version)
    except (TypeError, ValueError, IndexError) as exc:
        raise ArtifactCorruptedError(
            path, reason=f"unreadable format version ({version!r})"
        ) from exc
    if number > FORMAT_VERSION:
        raise ArtifactCorruptedError(
            path,
            reason=(
                f"format version {number} is newer than the supported "
                f"version {FORMAT_VERSION}"
            ),
        )


def require_keys(
    payload: Mapping[str, Any], keys: Sequence[str], path: PathLike
) -> None:
    """Raise :class:`ArtifactCorruptedError` naming any missing keys."""
    missing = [key for key in keys if key not in payload]
    if missing:
        raise ArtifactCorruptedError(
            Path(path), reason=f"missing keys {missing}"
        )
