"""Per-user tweet corpus model (part of S9).

The paper treats "the posted messages [of a user] as a document" before
running LDA (§6.1). :class:`TweetCorpus` stores raw tweets per user and
exposes exactly that per-user document view.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

from ..exceptions import ConfigurationError
from .tokenizer import tokenize

__all__ = ["TweetCorpus"]


class TweetCorpus:
    """Tweets grouped by posting user.

    Parameters
    ----------
    n_users:
        Number of users; user ids are ``0 .. n_users-1`` and must align with
        the node ids of the companion :class:`~repro.graph.SocialGraph`.
    """

    def __init__(self, n_users: int):
        if n_users < 0:
            raise ConfigurationError(f"n_users must be >= 0, got {n_users}")
        self._tweets: List[List[str]] = [[] for _ in range(n_users)]

    @property
    def n_users(self) -> int:
        """Number of users the corpus covers."""
        return len(self._tweets)

    @property
    def n_tweets(self) -> int:
        """Total number of tweets across all users."""
        return sum(len(t) for t in self._tweets)

    def _check_user(self, user: int) -> int:
        user = int(user)
        if not 0 <= user < len(self._tweets):
            raise ConfigurationError(
                f"user {user} outside corpus with {len(self._tweets)} users"
            )
        return user

    def add_tweet(self, user: int, text: str) -> None:
        """Append one tweet for *user*."""
        self._tweets[self._check_user(user)].append(str(text))

    def add_tweets(self, user: int, texts: Iterable[str]) -> None:
        """Append several tweets for *user*."""
        user = self._check_user(user)
        self._tweets[user].extend(str(t) for t in texts)

    def tweets(self, user: int) -> Sequence[str]:
        """The tweets of *user*, in insertion order."""
        return tuple(self._tweets[self._check_user(user)])

    def user_document(self, user: int) -> str:
        """All tweets of *user* joined into one document (paper §6.1)."""
        return "\n".join(self._tweets[self._check_user(user)])

    def user_tokens(self, user: int) -> List[str]:
        """Tokenized per-user document."""
        return tokenize(self.user_document(user))

    def iter_documents(self) -> Iterator[Tuple[int, str]]:
        """Yield ``(user, document)`` for every user with at least one tweet."""
        for user, tweets in enumerate(self._tweets):
            if tweets:
                yield user, "\n".join(tweets)

    def __len__(self) -> int:
        return self.n_users
