"""Keyword queries over the topic space (part of S12).

A PIT-Search query is a bag of keywords issued by a user (paper Definition
2, e.g. ``q = {Phone}``). A topic is *q-related* when its label contains the
query keywords; with ``mode="all"`` (default) every keyword must appear,
with ``mode="any"`` one suffices. Example 1 of the paper - query ``{phone}``
matching "apple phone", "samsung phone" and "htc phone" - behaves
identically under both modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

from ..exceptions import QueryError
from .tokenizer import tokenize

__all__ = ["KeywordQuery"]

_MODES = ("all", "any")


@dataclass(frozen=True)
class KeywordQuery:
    """An immutable, tokenized keyword query.

    Attributes
    ----------
    raw:
        The original query string.
    keywords:
        Normalized tokens extracted from *raw*.
    mode:
        ``"all"`` - every keyword must occur in a topic label;
        ``"any"`` - at least one keyword must occur.
    """

    raw: str
    keywords: Tuple[str, ...]
    mode: str = "all"

    @classmethod
    def parse(cls, text: str, *, mode: str = "all") -> "KeywordQuery":
        """Tokenize *text* into a query.

        Raises
        ------
        QueryError
            When no usable keywords remain after tokenization, or *mode* is
            unknown.
        """
        if mode not in _MODES:
            raise QueryError(f"unknown query mode {mode!r}; choose from {_MODES}")
        keywords = tuple(tokenize(text))
        if not keywords:
            raise QueryError(f"query {text!r} contains no usable keywords")
        return cls(raw=text, keywords=keywords, mode=mode)

    def matches(self, label_tokens: Sequence[str]) -> bool:
        """Whether a topic with the given label tokens is q-related."""
        tokens = set(label_tokens)
        if self.mode == "all":
            return all(k in tokens for k in self.keywords)
        return any(k in tokens for k in self.keywords)

    def __str__(self) -> str:
        return self.raw
