"""Per-user topic extraction pipeline (substrate S11, paper §6.1).

The paper's "collaborative method to generate a set of topics for each
Twitter user":

1. treat a user's posted messages as one document;
2. run LDA to obtain a bag of ~16 seed terms per user;
3. refine the seeds against the tag vocabulary (HetRec 2011 in the paper,
   a synthetic :class:`~repro.topics.tags.TagBank` here);
4. the surviving tags become the user's topics.

:class:`TopicExtractor` wires those steps together and emits the
``node -> topic labels`` assignment that :class:`~repro.topics.index.TopicIndex`
consumes.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from .._utils import SeedLike, coerce_rng, require_in_range
from ..exceptions import ConfigurationError
from .documents import TweetCorpus
from .lda import LdaModel, Vocabulary, fit_lda
from .tags import TagBank

__all__ = ["TopicExtractor", "ExtractionResult"]


class ExtractionResult:
    """Output of :meth:`TopicExtractor.run`.

    Attributes
    ----------
    assignments:
        ``user -> list of topic labels`` (input for ``TopicIndex``).
    seeds:
        ``user -> list of LDA seed terms`` (pre-refinement, for inspection).
    model:
        The fitted :class:`~repro.topics.lda.LdaModel`.
    """

    def __init__(
        self,
        assignments: Dict[int, List[str]],
        seeds: Dict[int, List[str]],
        model: LdaModel,
    ):
        self.assignments = assignments
        self.seeds = seeds
        self.model = model

    @property
    def n_users(self) -> int:
        """Users with at least one extracted topic."""
        return len(self.assignments)

    def topic_space_size(self) -> int:
        """Number of distinct topic labels across all users."""
        return len({t for topics in self.assignments.values() for t in topics})


class TopicExtractor:
    """LDA + tag-refinement topic extraction.

    Parameters
    ----------
    n_topics:
        Latent LDA topics fitted over the whole corpus.
    seed_terms_per_user:
        Size of the per-user seed bag (paper: "normally 16 terms").
    tags_per_user:
        Maximum refined tags kept per user (paper reports ~200 topics per
        user at full Twitter scale; synthetic corpora warrant fewer).
    lda_iterations:
        Gibbs sweeps for the LDA fit.
    seed:
        Seed or generator shared by all stochastic steps.
    """

    def __init__(
        self,
        n_topics: int = 12,
        *,
        seed_terms_per_user: int = 16,
        tags_per_user: int = 20,
        lda_iterations: int = 60,
        seed: SeedLike = None,
    ):
        require_in_range("n_topics", n_topics, 1)
        require_in_range("seed_terms_per_user", seed_terms_per_user, 1)
        require_in_range("tags_per_user", tags_per_user, 1)
        require_in_range("lda_iterations", lda_iterations, 1)
        self._n_topics = n_topics
        self._seed_terms = seed_terms_per_user
        self._tags_per_user = tags_per_user
        self._iterations = lda_iterations
        self._rng = coerce_rng(seed)

    def run(self, corpus: TweetCorpus, tag_bank: TagBank) -> ExtractionResult:
        """Extract topics for every user with at least one tweet."""
        users: List[int] = []
        encoded: List[List[int]] = []
        vocabulary = Vocabulary()
        from .tokenizer import tokenize

        for user, document in corpus.iter_documents():
            tokens = tokenize(document)
            if not tokens:
                continue
            users.append(user)
            encoded.append(vocabulary.encode(tokens))
        if not users:
            raise ConfigurationError("corpus has no tokenizable tweets")

        model = fit_lda(
            encoded,
            vocabulary,
            self._n_topics,
            iterations=self._iterations,
            seed=self._rng,
        )

        assignments: Dict[int, List[str]] = {}
        seeds: Dict[int, List[str]] = {}
        for doc_index, user in enumerate(users):
            seed_terms = model.seed_terms(doc_index, self._seed_terms)
            seeds[user] = seed_terms
            refined = tag_bank.refine(seed_terms, limit=self._tags_per_user)
            if refined:
                assignments[user] = refined
        return ExtractionResult(assignments, seeds, model)
