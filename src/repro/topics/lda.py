"""Latent Dirichlet Allocation by collapsed Gibbs sampling (substrate S10).

The paper applies "a simple LDA topic model" to each user's concatenated
tweets to obtain ~16 seed terms per user (§6.1). No external topic-model
dependency is available offline, so this module implements the standard
collapsed Gibbs sampler (Griffiths & Steyvers 2004) from scratch:

* ``z_i ~ P(z_i = k | z_-i, w) ∝ (n_dk + α) * (n_kw + β) / (n_k + Vβ)``

It is intentionally compact - corpora here are synthetic and small - but it
is a real sampler with proper hyperparameters, burn-in and deterministic
seeding, not a stub.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .._utils import SeedLike, coerce_rng, require_in_range, require_positive
from ..exceptions import ConfigurationError

__all__ = ["Vocabulary", "LdaModel", "fit_lda"]


class Vocabulary:
    """Bidirectional token <-> integer-id mapping."""

    def __init__(self):
        self._term_to_id: Dict[str, int] = {}
        self._terms: List[str] = []

    def __len__(self) -> int:
        return len(self._terms)

    def add(self, term: str) -> int:
        """Id of *term*, creating it if unseen."""
        term_id = self._term_to_id.get(term)
        if term_id is None:
            term_id = len(self._terms)
            self._term_to_id[term] = term_id
            self._terms.append(term)
        return term_id

    def get(self, term: str) -> Optional[int]:
        """Id of *term*, or ``None`` when unknown."""
        return self._term_to_id.get(term)

    def term(self, term_id: int) -> str:
        """Term string for *term_id*."""
        return self._terms[term_id]

    def encode(self, tokens: Iterable[str], *, grow: bool = True) -> List[int]:
        """Token ids for *tokens*; unknown tokens are added or skipped."""
        ids = []
        for token in tokens:
            if grow:
                ids.append(self.add(token))
            else:
                known = self.get(token)
                if known is not None:
                    ids.append(known)
        return ids

    @property
    def terms(self) -> Sequence[str]:
        """All terms, indexable by id."""
        return tuple(self._terms)


class LdaModel:
    """A fitted LDA model (produced by :func:`fit_lda`).

    Attributes
    ----------
    vocabulary:
        The :class:`Vocabulary` the corpus was encoded with.
    doc_topic:
        ``(n_docs, n_topics)`` array of smoothed topic proportions per doc.
    topic_word:
        ``(n_topics, vocab)`` array of smoothed word probabilities per topic.
    """

    def __init__(self, vocabulary: Vocabulary, doc_topic: np.ndarray, topic_word: np.ndarray):
        self.vocabulary = vocabulary
        self.doc_topic = doc_topic
        self.topic_word = topic_word

    @property
    def n_topics(self) -> int:
        """Number of latent topics."""
        return int(self.topic_word.shape[0])

    @property
    def n_docs(self) -> int:
        """Number of documents the model was fitted on."""
        return int(self.doc_topic.shape[0])

    def top_terms(self, topic: int, count: int = 16) -> List[str]:
        """The *count* most probable terms of *topic* (paper's seed terms)."""
        require_in_range("topic", topic, 0, self.n_topics - 1)
        row = self.topic_word[topic]
        count = min(count, row.size)
        order = np.argsort(-row, kind="stable")[:count]
        return [self.vocabulary.term(int(i)) for i in order]

    def document_topics(self, doc: int, count: int = 3) -> List[int]:
        """Ids of the *count* highest-proportion topics of document *doc*."""
        require_in_range("doc", doc, 0, self.n_docs - 1)
        row = self.doc_topic[doc]
        count = min(count, row.size)
        return [int(i) for i in np.argsort(-row, kind="stable")[:count]]

    def seed_terms(self, doc: int, count: int = 16, *, topics_per_doc: int = 2) -> List[str]:
        """Seed terms for one document: top terms of its dominant topics.

        This reproduces the paper's "bag of terms (normally 16 terms) to be
        topic seeds of this user": the document's strongest *topics_per_doc*
        topics contribute their most probable words round-robin until *count*
        distinct terms are collected.
        """
        require_in_range("count", count, 1)
        chosen: List[str] = []
        seen = set()
        topic_ids = self.document_topics(doc, topics_per_doc)
        pools = [self.top_terms(t, count) for t in topic_ids]
        for rank in range(count):
            for pool in pools:
                if rank < len(pool) and pool[rank] not in seen:
                    seen.add(pool[rank])
                    chosen.append(pool[rank])
                    if len(chosen) == count:
                        return chosen
        return chosen


def fit_lda(
    documents: Sequence[Sequence[int]],
    vocabulary: Vocabulary,
    n_topics: int,
    *,
    iterations: int = 100,
    alpha: Optional[float] = None,
    beta: float = 0.01,
    seed: SeedLike = None,
) -> LdaModel:
    """Fit LDA with collapsed Gibbs sampling.

    Parameters
    ----------
    documents:
        Encoded corpus - one sequence of vocabulary ids per document.
    vocabulary:
        The vocabulary used for encoding (its size fixes the word axis).
    n_topics:
        Number of latent topics ``K``.
    iterations:
        Gibbs sweeps over the whole corpus; the final counts (after all
        sweeps) define the returned distributions.
    alpha:
        Symmetric document-topic prior; defaults to ``50 / K`` (the
        Griffiths-Steyvers heuristic).
    beta:
        Symmetric topic-word prior.
    seed:
        Seed or generator for the sampler.
    """
    require_in_range("n_topics", n_topics, 1)
    require_in_range("iterations", iterations, 1)
    if len(vocabulary) == 0:
        raise ConfigurationError("vocabulary is empty; nothing to fit")
    if alpha is None:
        alpha = 50.0 / n_topics
    require_positive("alpha", alpha)
    require_positive("beta", beta)
    rng = coerce_rng(seed)

    n_docs = len(documents)
    vocab = len(vocabulary)
    doc_topic = np.zeros((n_docs, n_topics), dtype=np.int64)
    topic_word = np.zeros((n_topics, vocab), dtype=np.int64)
    topic_total = np.zeros(n_topics, dtype=np.int64)

    # Initial random assignment.
    assignments: List[np.ndarray] = []
    for d, doc in enumerate(documents):
        doc = np.asarray(doc, dtype=np.int64)
        if doc.size and (doc.min() < 0 or doc.max() >= vocab):
            raise ConfigurationError(f"document {d} has ids outside the vocabulary")
        z = rng.integers(0, n_topics, size=doc.size)
        assignments.append(z)
        for w, k in zip(doc, z):
            doc_topic[d, k] += 1
            topic_word[k, w] += 1
            topic_total[k] += 1

    v_beta = vocab * beta
    for _ in range(iterations):
        for d, doc in enumerate(documents):
            doc = np.asarray(doc, dtype=np.int64)
            z = assignments[d]
            for i in range(doc.size):
                w, k_old = int(doc[i]), int(z[i])
                doc_topic[d, k_old] -= 1
                topic_word[k_old, w] -= 1
                topic_total[k_old] -= 1
                weights = (
                    (doc_topic[d] + alpha)
                    * (topic_word[:, w] + beta)
                    / (topic_total + v_beta)
                )
                total = weights.sum()
                draw = rng.random() * total
                k_new = int(np.searchsorted(np.cumsum(weights), draw, side="right"))
                k_new = min(k_new, n_topics - 1)
                z[i] = k_new
                doc_topic[d, k_new] += 1
                topic_word[k_new, w] += 1
                topic_total[k_new] += 1

    doc_dist = (doc_topic + alpha).astype(np.float64)
    doc_dist /= doc_dist.sum(axis=1, keepdims=True)
    word_dist = (topic_word + beta).astype(np.float64)
    word_dist /= word_dist.sum(axis=1, keepdims=True)
    return LdaModel(vocabulary, doc_dist, word_dist)
