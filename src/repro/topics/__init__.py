"""Topic substrate: tweets, tokenization, LDA, tags, topic index, queries.

See DESIGN.md systems S9-S12.
"""

from .documents import TweetCorpus
from .extraction import ExtractionResult, TopicExtractor
from .index import TopicIndex
from .lda import LdaModel, Vocabulary, fit_lda
from .query import KeywordQuery
from .relevance import TfIdfScorer
from .tags import DEFAULT_DOMAINS, TagBank
from .tokenizer import STOPWORDS, tokenize

__all__ = [
    "TweetCorpus",
    "TopicExtractor",
    "ExtractionResult",
    "TopicIndex",
    "LdaModel",
    "Vocabulary",
    "fit_lda",
    "KeywordQuery",
    "TfIdfScorer",
    "TagBank",
    "DEFAULT_DOMAINS",
    "tokenize",
    "STOPWORDS",
]
