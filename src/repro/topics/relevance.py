"""TF-IDF term relevance over topic labels (extension of S12).

The paper's introduction contrasts PIT-Search with "the most widely-
accepted method ... select the relevant topics based on the term relevance
between topics and the query in a manner similar to a typical keyword
search [26, 27]". This module implements that comparator properly - a
TF-IDF vector space over topic labels with cosine scoring - so the
relevance-only baseline (:mod:`repro.baselines.relevance`) and the hybrid
relevance x influence ranking can be evaluated against the personalized
methods.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple, Union

from ..exceptions import ConfigurationError
from .index import TopicIndex
from .query import KeywordQuery
from .tokenizer import tokenize

__all__ = ["TfIdfScorer"]


class TfIdfScorer:
    """Cosine TF-IDF relevance of keyword queries to topic labels.

    Documents are topic labels; term frequency is the within-label count,
    inverse document frequency is the smoothed
    ``ln((1 + N) / (1 + df)) + 1`` variant, and label vectors are
    L2-normalized once at construction.
    """

    def __init__(self, topic_index: TopicIndex):
        self._topic_index = topic_index
        n_topics = topic_index.n_topics
        document_frequency: Dict[str, int] = {}
        term_counts: List[Dict[str, int]] = []
        for label in topic_index.labels:
            counts: Dict[str, int] = {}
            for token in tokenize(label):
                counts[token] = counts.get(token, 0) + 1
            term_counts.append(counts)
            for token in counts:
                document_frequency[token] = document_frequency.get(token, 0) + 1

        self._idf: Dict[str, float] = {
            token: math.log((1 + n_topics) / (1 + df)) + 1.0
            for token, df in document_frequency.items()
        }
        self._vectors: List[Dict[str, float]] = []
        for counts in term_counts:
            vector = {
                token: count * self._idf[token]
                for token, count in counts.items()
            }
            norm = math.sqrt(sum(w * w for w in vector.values()))
            if norm > 0:
                vector = {t: w / norm for t, w in vector.items()}
            self._vectors.append(vector)

    @property
    def topic_index(self) -> TopicIndex:
        """The scored topic space."""
        return self._topic_index

    def idf(self, token: str) -> float:
        """IDF of a token (0 when the token never occurs in any label)."""
        return self._idf.get(token.lower(), 0.0)

    def query_vector(self, query: Union[str, KeywordQuery]) -> Dict[str, float]:
        """The L2-normalized TF-IDF vector of *query*."""
        if isinstance(query, str):
            query = KeywordQuery.parse(query)
        counts: Dict[str, int] = {}
        for token in query.keywords:
            counts[token] = counts.get(token, 0) + 1
        vector = {
            token: count * self._idf.get(token, 0.0)
            for token, count in counts.items()
        }
        norm = math.sqrt(sum(w * w for w in vector.values()))
        if norm > 0:
            vector = {t: w / norm for t, w in vector.items()}
        return vector

    def score(self, query: Union[str, KeywordQuery], topic) -> float:
        """Cosine similarity between *query* and one topic label."""
        topic_id = self._topic_index.resolve(topic)
        query_vector = self.query_vector(query)
        label_vector = self._vectors[topic_id]
        return sum(
            weight * label_vector.get(token, 0.0)
            for token, weight in query_vector.items()
        )

    def rank(
        self, query: Union[str, KeywordQuery], k: int
    ) -> List[Tuple[int, float]]:
        """Top-k ``(topic_id, score)`` pairs over the whole topic space.

        Zero-score topics are excluded; ties break on label for the same
        determinism contract as the influence rankers.
        """
        if k < 1:
            raise ConfigurationError(f"k must be >= 1, got {k}")
        scored = [
            (topic_id, self.score(query, topic_id))
            for topic_id in range(self._topic_index.n_topics)
        ]
        scored = [(t, s) for t, s in scored if s > 0.0]
        scored.sort(key=lambda item: (-item[1], self._topic_index.label(item[0])))
        return scored[:k]
