"""Tag bank - synthetic stand-in for the HetRec 2011 tag set (substrate S11).

The paper refines per-user LDA seed terms against 53,388 tags released at
HetRec 2011. That dataset is not available offline, so :class:`TagBank`
generates a structurally similar vocabulary: multi-word tags composed from
domain stems, with a Zipfian popularity distribution (a few tags bookmarked
very often, a long tail bookmarked rarely) like real folksonomy data.

The refinement operation (:meth:`TagBank.refine`) is the one the paper
describes: keep the tags that overlap the user's seed terms, preferring
popular tags, yielding "a reasonable set of topic seeds for each user".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from .._utils import SeedLike, coerce_rng, require_in_range
from ..exceptions import ConfigurationError
from .tokenizer import tokenize

__all__ = ["TagBank", "DEFAULT_DOMAINS"]

#: Domain stems used to compose synthetic tags. Each domain contributes a
#: head noun shared by its tags (mirroring e.g. "apple phone" / "samsung
#: phone" from the paper's Example 1) plus qualifier stems.
DEFAULT_DOMAINS: Dict[str, Tuple[str, ...]] = {
    "phone": ("apple", "samsung", "htc", "nokia", "pixel", "budget", "flagship"),
    "camera": ("canon", "nikon", "sony", "leica", "compact", "mirrorless"),
    "laptop": ("macbook", "thinkpad", "gaming", "ultrabook", "linux"),
    "music": ("indie", "jazz", "festival", "vinyl", "streaming", "kpop"),
    "movie": ("scifi", "horror", "oscars", "indie", "classic", "anime"),
    "travel": ("europe", "backpacking", "beach", "budget", "luxury", "visa"),
    "food": ("vegan", "ramen", "barbecue", "coffee", "dessert", "streetfood"),
    "sport": ("football", "tennis", "cycling", "marathon", "climbing"),
    "politics": ("election", "debate", "policy", "campaign", "senate"),
    "science": ("space", "climate", "genetics", "quantum", "robotics"),
    "fashion": ("sneaker", "vintage", "denim", "couture", "streetwear"),
    "finance": ("stocks", "crypto", "savings", "housing", "startup"),
}


class TagBank:
    """A popularity-weighted tag vocabulary.

    Parameters
    ----------
    tags:
        Tag strings.
    popularity:
        Bookmark counts (or any positive weights), aligned with *tags*.
    """

    def __init__(self, tags: Sequence[str], popularity: Sequence[float]):
        if len(tags) != len(popularity):
            raise ConfigurationError("tags and popularity must have equal length")
        if len(tags) == 0:
            raise ConfigurationError("a TagBank needs at least one tag")
        if len(set(tags)) != len(tags):
            raise ConfigurationError("tags must be unique")
        self._tags = list(tags)
        self._popularity = np.asarray(popularity, dtype=np.float64)
        if np.any(self._popularity <= 0):
            raise ConfigurationError("popularity weights must be positive")
        # token -> tag indices containing that token
        self._token_index: Dict[str, List[int]] = {}
        for i, tag in enumerate(self._tags):
            for token in tokenize(tag):
                self._token_index.setdefault(token, []).append(i)

    # ------------------------------------------------------------------
    @classmethod
    def synthetic(
        cls,
        n_tags: int = 500,
        *,
        domains: Optional[Dict[str, Tuple[str, ...]]] = None,
        zipf_exponent: float = 1.1,
        seed: SeedLike = None,
    ) -> "TagBank":
        """Generate a synthetic tag bank.

        Tags are ``"<qualifier> <domain>"`` pairs (e.g. ``"samsung phone"``)
        plus bare domain tags, sampled until *n_tags* distinct tags exist;
        popularity follows a Zipf law with the given exponent.
        """
        require_in_range("n_tags", n_tags, 1)
        rng = coerce_rng(seed)
        domains = domains or DEFAULT_DOMAINS

        candidates: List[str] = []
        for domain, qualifiers in domains.items():
            candidates.append(domain)
            for qualifier in qualifiers:
                candidates.append(f"{qualifier} {domain}")
        # Compose additional cross-domain tags if more are requested.
        domain_names = sorted(domains)
        while len(candidates) < n_tags:
            a = domain_names[int(rng.integers(len(domain_names)))]
            b_pool = domains[domain_names[int(rng.integers(len(domain_names)))]]
            b = b_pool[int(rng.integers(len(b_pool)))]
            tag = f"{b} {a}"
            if tag not in candidates:
                candidates.append(tag)
        chosen = candidates[:n_tags]
        ranks = rng.permutation(n_tags) + 1
        popularity = 1.0 / np.power(ranks.astype(np.float64), zipf_exponent)
        popularity *= 10_000.0  # scale to bookmark-count-like magnitudes
        return cls(chosen, popularity)

    # ------------------------------------------------------------------
    @property
    def tags(self) -> Sequence[str]:
        """All tags, indexable by id."""
        return tuple(self._tags)

    def __len__(self) -> int:
        return len(self._tags)

    def __contains__(self, tag: str) -> bool:
        return tag in set(self._tags)

    def popularity(self, tag_id: int) -> float:
        """Popularity weight of tag *tag_id*."""
        require_in_range("tag_id", tag_id, 0, len(self._tags) - 1)
        return float(self._popularity[tag_id])

    def tags_containing(self, token: str) -> List[str]:
        """Tags containing *token*, most popular first."""
        indices = self._token_index.get(token.lower(), [])
        ranked = sorted(indices, key=lambda i: (-self._popularity[i], self._tags[i]))
        return [self._tags[i] for i in ranked]

    def refine(self, seed_terms: Iterable[str], limit: Optional[int] = None) -> List[str]:
        """Refine LDA *seed_terms* into tags (paper §6.1).

        A tag qualifies when it shares at least one token with the seed
        terms; qualifying tags are ranked by (matched-token count,
        popularity) and truncated to *limit*.
        """
        terms = {t.lower() for t in seed_terms}
        scores: Dict[int, int] = {}
        for term in terms:
            for idx in self._token_index.get(term, []):
                scores[idx] = scores.get(idx, 0) + 1
        ranked = sorted(
            scores,
            key=lambda i: (-scores[i], -self._popularity[i], self._tags[i]),
        )
        if limit is not None:
            require_in_range("limit", limit, 1)
            ranked = ranked[:limit]
        return [self._tags[i] for i in ranked]
