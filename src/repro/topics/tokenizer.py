"""Tokenization for tweets, topic labels and keyword queries (part of S9).

A deliberately simple, deterministic tokenizer: lowercase, split on
non-alphanumerics, drop short tokens and a small English stopword list.
All topic matching in the library goes through this one module so that
queries, topic labels and tweet text agree on token boundaries.
"""

from __future__ import annotations

import re
from typing import FrozenSet, Iterable, List

__all__ = ["tokenize", "STOPWORDS"]

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: Minimal stopword list - enough to keep LDA topics and tag matching clean
#: without pulling in an external resource.
STOPWORDS: FrozenSet[str] = frozenset(
    """
    a an and are as at be but by for from has have i if in into is it its
    me my of on or our so that the their them they this to was we were what
    when which who will with you your rt via amp
    """.split()
)


def tokenize(text: str, *, min_length: int = 2, drop_stopwords: bool = True) -> List[str]:
    """Split *text* into normalized tokens.

    Parameters
    ----------
    text:
        Arbitrary text (tweet, topic label, query string).
    min_length:
        Tokens shorter than this are dropped (digits-only tokens are kept
        regardless, so model numbers like "5" in "iphone 5" survive).
    drop_stopwords:
        Whether to remove :data:`STOPWORDS`.

    Examples
    --------
    >>> tokenize("Loving my new Samsung phone!")
    ['loving', 'new', 'samsung', 'phone']
    """
    tokens = _TOKEN_RE.findall(text.lower())
    kept = []
    for token in tokens:
        if drop_stopwords and token in STOPWORDS:
            continue
        if len(token) < min_length and not token.isdigit():
            continue
        kept.append(token)
    return kept
