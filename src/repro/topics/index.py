"""Topic space and inverted topic -> node index (substrate S12).

``T`` in the paper's ``G = (V, E, T, Λ)``: every user carries a set of
topics; Algorithms 1, 7 and 8 all begin by fetching "the topic node set V_t
from an inverted node index". :class:`TopicIndex` is that index, plus the
query-to-topic matching used by Algorithm 10 line 1.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import ConfigurationError, UnknownTopicError
from .query import KeywordQuery
from .tokenizer import tokenize

__all__ = ["TopicIndex"]

TopicRef = Union[int, str]


class TopicIndex:
    """Immutable topic space with an inverted topic -> nodes index.

    Parameters
    ----------
    n_nodes:
        Number of nodes in the companion graph; topic members must be valid
        node ids.
    assignments:
        Mapping ``node -> iterable of topic labels`` describing which topics
        each user discusses.

    Notes
    -----
    Topic ids are assigned in sorted-label order, so the index is fully
    deterministic for a given assignment.
    """

    def __init__(self, n_nodes: int, assignments: Mapping[int, Iterable[str]]):
        if n_nodes < 0:
            raise ConfigurationError(f"n_nodes must be >= 0, got {n_nodes}")
        self._n_nodes = int(n_nodes)

        members: Dict[str, set] = {}
        for node, labels in assignments.items():
            node = int(node)
            if not 0 <= node < self._n_nodes:
                raise ConfigurationError(
                    f"node {node} outside graph with {self._n_nodes} nodes"
                )
            for label in labels:
                label = str(label).strip().lower()
                if not label:
                    raise ConfigurationError(f"empty topic label for node {node}")
                members.setdefault(label, set()).add(node)

        self._labels: List[str] = sorted(members)
        self._label_to_id: Dict[str, int] = {
            label: i for i, label in enumerate(self._labels)
        }
        self._members: List[np.ndarray] = [
            np.asarray(sorted(members[label]), dtype=np.int64)
            for label in self._labels
        ]
        self._label_tokens: List[Tuple[str, ...]] = [
            tuple(tokenize(label)) for label in self._labels
        ]
        node_topics: List[List[int]] = [[] for _ in range(self._n_nodes)]
        for topic_id, nodes in enumerate(self._members):
            for node in nodes:
                node_topics[int(node)].append(topic_id)
        self._node_topics: List[Tuple[int, ...]] = [tuple(t) for t in node_topics]

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Node count of the companion graph."""
        return self._n_nodes

    @property
    def n_topics(self) -> int:
        """Number of distinct topics."""
        return len(self._labels)

    @property
    def labels(self) -> Sequence[str]:
        """All topic labels, indexable by topic id."""
        return tuple(self._labels)

    def __len__(self) -> int:
        return len(self._labels)

    def __contains__(self, topic: TopicRef) -> bool:
        try:
            self.resolve(topic)
        except UnknownTopicError:
            return False
        return True

    # ------------------------------------------------------------------
    def resolve(self, topic: TopicRef) -> int:
        """Topic id for an id or label; raises :class:`UnknownTopicError`."""
        if isinstance(topic, str):
            topic_id = self._label_to_id.get(topic.strip().lower())
            if topic_id is None:
                raise UnknownTopicError(topic)
            return topic_id
        topic_id = int(topic)
        if not 0 <= topic_id < len(self._labels):
            raise UnknownTopicError(topic)
        return topic_id

    def label(self, topic: TopicRef) -> str:
        """Label of *topic*."""
        return self._labels[self.resolve(topic)]

    def topic_nodes(self, topic: TopicRef) -> np.ndarray:
        """``V_t`` - sorted node ids carrying *topic* (read-only view)."""
        return self._members[self.resolve(topic)]

    def topic_size(self, topic: TopicRef) -> int:
        """``|V_t|`` for *topic*."""
        return int(self._members[self.resolve(topic)].size)

    def topics_of_node(self, node: int) -> Tuple[int, ...]:
        """Topic ids assigned to *node*."""
        node = int(node)
        if not 0 <= node < self._n_nodes:
            raise ConfigurationError(
                f"node {node} outside graph with {self._n_nodes} nodes"
            )
        return self._node_topics[node]

    # ------------------------------------------------------------------
    def related_topics(self, query: Union[str, KeywordQuery]) -> List[int]:
        """Ids of all q-related topics (Algorithm 10, line 1).

        *query* may be a raw string (parsed with default ``mode="all"``) or
        a pre-parsed :class:`KeywordQuery`.
        """
        if isinstance(query, str):
            query = KeywordQuery.parse(query)
        return [
            topic_id
            for topic_id, tokens in enumerate(self._label_tokens)
            if query.matches(tokens)
        ]

    def memory_bytes(self) -> int:
        """Approximate resident size of the inverted lists, in bytes."""
        total = sum(m.nbytes for m in self._members)
        total += sum(len(label) for label in self._labels)
        return int(total)
