"""Fault-injection hooks for robustness testing (internal).

The offline pipeline promises to survive worker crashes, interrupted
writes, and corrupted artifacts. Those failure modes cannot be provoked
reliably from the outside, so the pipeline exposes named *injection
points*: well-defined places where a registered hook runs (or may rewrite
data) before the real work proceeds. In production no hook is registered
and every injection point is a dictionary miss.

Injection points
----------------
``propagation.worker_chunk``
    Inside a worker process, before building a chunk of propagation
    entries. Context: ``chunk`` (index), ``attempt``, ``nodes``.
``propagation.build_entry``
    In the serial build path, before building one entry. Context:
    ``node``, ``attempt``.
``summarize.worker_chunk``
    Inside a worker process, before summarizing a chunk of topics.
    Context: ``chunk`` (index), ``attempt``, ``topics``.
``summarize.build_topic``
    In the serial summary-build path, before summarizing one topic.
    Context: ``topic``, ``attempt``.
``artifact.pre_replace``
    After an artifact's bytes are written and fsynced to a same-directory
    temp file, immediately before ``os.replace`` publishes it. Context:
    ``path``, ``tmp_path``. A hook that raises here simulates a crash
    mid-write: the destination must stay untouched.
``artifact.load_bytes``
    Raw bytes read from disk, before any parsing. The hook receives
    ``data`` and ``path`` and may return replacement bytes (bit flips,
    truncation); returning ``None`` keeps the original bytes.
``serve.handle``
    In the daemon (:mod:`repro.serve`), at the top of every parsed HTTP
    request, before routing. Context: ``method``, ``path``. A hook that
    raises here simulates a handler crash; the daemon must answer with a
    typed 500, never a traceback, and keep serving.
``serve.search_delay``
    Inside the daemon's search executor, before a coalesced batch group
    runs. Context: ``query``, ``k``, ``size``. A :class:`Delay` hook here
    simulates a slow engine, which is how the tests provoke request
    queueing (coalescing) and deadline expiry mid-search.
``serve.reload.swap``
    In the daemon's hot-reload path, after the replacement engine loaded
    and validated but before it is swapped in. Context: ``generation``
    (the generation being installed). A hook that raises here must leave
    the old engine serving.

Hooks registered in the parent process are shipped to build workers via
the pool initializer, so they must be picklable: module-level functions
or instances of the classes below. The classes cover the scenarios the
test suite needs; ``monkeypatch``/:func:`fault` cover everything else.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Callable, Dict, Optional, Sequence, Tuple

__all__ = [
    "INJECTION_POINTS",
    "set_fault",
    "clear_faults",
    "fault",
    "snapshot",
    "install",
    "inject",
    "transform",
    "ExitOnChunk",
    "FailOnChunk",
    "FailOnEntry",
    "InterruptOnEntry",
    "FailOnTopic",
    "InterruptOnTopic",
    "FailOnReplace",
    "FlipByte",
    "TruncateBytes",
    "Delay",
]

Hook = Callable[..., Any]

INJECTION_POINTS = frozenset({
    "propagation.worker_chunk",
    "propagation.build_entry",
    "summarize.worker_chunk",
    "summarize.build_topic",
    "artifact.pre_replace",
    "artifact.load_bytes",
    "serve.handle",
    "serve.search_delay",
    "serve.reload.swap",
})

_hooks: Dict[str, Hook] = {}


def _check_point(point: str) -> str:
    if point not in INJECTION_POINTS:
        raise ValueError(
            f"unknown injection point {point!r}; "
            f"known: {sorted(INJECTION_POINTS)}"
        )
    return point


def set_fault(point: str, hook: Hook) -> None:
    """Register *hook* at *point* (replacing any previous hook there)."""
    _hooks[_check_point(point)] = hook


def clear_faults(point: Optional[str] = None) -> None:
    """Remove the hook at *point*, or every hook when *point* is None."""
    if point is None:
        _hooks.clear()
    else:
        _hooks.pop(_check_point(point), None)


@contextmanager
def fault(point: str, hook: Hook):
    """Context manager: register *hook* at *point*, restore on exit."""
    _check_point(point)
    previous = _hooks.get(point)
    _hooks[point] = hook
    try:
        yield hook
    finally:
        if previous is None:
            _hooks.pop(point, None)
        else:
            _hooks[point] = previous


def snapshot() -> Dict[str, Hook]:
    """The current registry, for shipping to worker processes."""
    return dict(_hooks)


def install(hooks: Dict[str, Hook]) -> None:
    """Replace the registry wholesale (worker-process initialization)."""
    _hooks.clear()
    _hooks.update(hooks)


def inject(point: str, **context: Any) -> None:
    """Run the hook registered at *point*, if any."""
    hook = _hooks.get(point)
    if hook is not None:
        hook(**context)


def transform(point: str, data: bytes, **context: Any) -> bytes:
    """Run the hook at *point* over *data*; hooks may return new bytes."""
    hook = _hooks.get(point)
    if hook is None:
        return data
    replaced = hook(data=data, **context)
    return data if replaced is None else replaced


# ---------------------------------------------------------------------------
# Picklable hook implementations for the standard failure scenarios.
# ---------------------------------------------------------------------------


class ExitOnChunk:
    """Hard-kill the worker process (``os._exit``) on matching chunks.

    Simulates an OOM-killed or segfaulted worker: the pool breaks and
    every in-flight chunk must be retried on a fresh process.
    """

    def __init__(self, chunk: int, attempts: Sequence[int] = (0,), exit_code: int = 1):
        self.chunk = int(chunk)
        self.attempts: Tuple[int, ...] = tuple(int(a) for a in attempts)
        self.exit_code = int(exit_code)

    def __call__(self, *, chunk: int, attempt: int, **_: Any) -> None:
        if chunk == self.chunk and attempt in self.attempts:
            os._exit(self.exit_code)


class FailOnChunk:
    """Raise ``RuntimeError`` inside the worker on matching chunks.

    The worker survives (only the chunk fails), exercising the
    retry-with-backoff path without breaking the pool.
    """

    def __init__(self, chunk: int, attempts: Sequence[int] = (0,)):
        self.chunk = int(chunk)
        self.attempts: Tuple[int, ...] = tuple(int(a) for a in attempts)

    def __call__(self, *, chunk: int, attempt: int, **_: Any) -> None:
        if chunk == self.chunk and attempt in self.attempts:
            raise RuntimeError(
                f"injected fault: chunk {chunk} failed on attempt {attempt}"
            )


class FailOnEntry:
    """Raise ``RuntimeError`` in the serial build path for matching nodes."""

    def __init__(self, node: int, attempts: Sequence[int] = (0,)):
        self.node = int(node)
        self.attempts: Tuple[int, ...] = tuple(int(a) for a in attempts)

    def __call__(self, *, node: int, attempt: int, **_: Any) -> None:
        if node == self.node and attempt in self.attempts:
            raise RuntimeError(
                f"injected fault: entry {node} failed on attempt {attempt}"
            )


class InterruptOnEntry:
    """Raise ``KeyboardInterrupt`` when the serial build reaches *node*.

    Simulates SIGINT mid-build; the build flushes its checkpoint and
    re-raises, so a later run can resume.
    """

    def __init__(self, node: int):
        self.node = int(node)

    def __call__(self, *, node: int, **_: Any) -> None:
        if node == self.node:
            raise KeyboardInterrupt(f"injected interrupt at entry {node}")


class FailOnTopic:
    """Raise ``RuntimeError`` in the serial summary build on matching topics."""

    def __init__(self, topic: int, attempts: Sequence[int] = (0,)):
        self.topic = int(topic)
        self.attempts: Tuple[int, ...] = tuple(int(a) for a in attempts)

    def __call__(self, *, topic: int, attempt: int, **_: Any) -> None:
        if topic == self.topic and attempt in self.attempts:
            raise RuntimeError(
                f"injected fault: topic {topic} failed on attempt {attempt}"
            )


class InterruptOnTopic:
    """Raise ``KeyboardInterrupt`` when the serial summary build reaches *topic*.

    Simulates SIGINT mid-build; the build flushes its checkpoint and
    re-raises, so a later run can resume.
    """

    def __init__(self, topic: int):
        self.topic = int(topic)

    def __call__(self, *, topic: int, **_: Any) -> None:
        if topic == self.topic:
            raise KeyboardInterrupt(f"injected interrupt at topic {topic}")


class FailOnReplace:
    """Raise ``OSError`` between the temp-file write and ``os.replace``."""

    def __call__(self, *, path: Any, tmp_path: Any, **_: Any) -> None:
        raise OSError(f"injected crash before replacing {path}")


class FlipByte:
    """Flip one byte (XOR) of an artifact's bytes as they are loaded."""

    def __init__(self, offset: int, mask: int = 0xFF):
        self.offset = int(offset)
        self.mask = int(mask)

    def __call__(self, *, data: bytes, **_: Any) -> bytes:
        flipped = bytearray(data)
        flipped[self.offset % len(flipped)] ^= self.mask
        return bytes(flipped)


class TruncateBytes:
    """Drop the tail of an artifact's bytes as they are loaded."""

    def __init__(self, keep: int):
        self.keep = int(keep)

    def __call__(self, *, data: bytes, **_: Any) -> bytes:
        return data[: self.keep]


class Delay:
    """Sleep *seconds* at the injection point (slow-engine simulation).

    With ``times`` set, only the first *times* invocations sleep; later
    ones pass through, so a test can make the daemon slow just long
    enough to queue requests behind a busy engine.
    """

    def __init__(self, seconds: float, times: Optional[int] = None):
        self.seconds = float(seconds)
        self.times = None if times is None else int(times)
        self.calls = 0

    def __call__(self, **_: Any) -> None:
        self.calls += 1
        if self.times is not None and self.calls > self.times:
            return
        import time

        time.sleep(self.seconds)
