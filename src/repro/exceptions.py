"""Exception hierarchy for the PIT-Search reproduction library.

Every error raised intentionally by :mod:`repro` derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.

Exceptions whose ``__init__`` takes anything other than a single message
define ``__reduce__``: default exception pickling re-calls ``__init__``
with ``args`` (the formatted message), which breaks when errors cross the
``ProcessPoolExecutor`` boundary used by the parallel offline build.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Base class for graph-construction and graph-access errors."""


class NodeNotFoundError(GraphError, KeyError):
    """A node id was requested that does not exist in the graph."""

    def __init__(self, node: int, n_nodes: int):
        super().__init__(f"node {node!r} not in graph with {n_nodes} nodes")
        self.node = node
        self.n_nodes = n_nodes

    def __reduce__(self):
        return (type(self), (self.node, self.n_nodes))


class EdgeError(GraphError):
    """An edge is malformed (bad endpoints or bad transition probability)."""


class EmptyGraphError(GraphError):
    """An operation that requires a non-empty graph received an empty one."""


class TopicError(ReproError):
    """Base class for topic-space and topic-index errors."""


class UnknownTopicError(TopicError, KeyError):
    """A topic id or label was requested that is not in the topic space."""

    def __init__(self, topic: object):
        super().__init__(f"unknown topic: {topic!r}")
        self.topic = topic

    def __reduce__(self):
        # Single argument, but args holds the formatted message: default
        # pickling would wrap the message a second time on rebuild.
        return (type(self), (self.topic,))


class QueryError(ReproError):
    """A keyword query was empty or otherwise unusable."""


class IndexNotBuiltError(ReproError):
    """An index was consulted before it was built.

    Raised by the walk index, the propagation index, and the engine when the
    offline stage has not been run.
    """


class ConfigurationError(ReproError, ValueError):
    """A parameter value is outside its documented domain."""


class BudgetExceededError(ReproError):
    """A bounded computation exhausted its configured budget.

    The propagation index and the set-enumeration tree are worst-case
    exponential; both accept budgets and raise this error (or degrade
    gracefully, depending on the ``strict`` flag) when the budget is hit.
    """

    def __init__(self, what: str, budget: int):
        super().__init__(f"{what} exceeded budget of {budget}")
        self.what = what
        self.budget = budget

    def __reduce__(self):
        # args holds the formatted message, so default exception pickling
        # would re-call __init__ with one argument; rebuild from the
        # originals instead (worker processes ship this across the pool).
        return (type(self), (self.what, self.budget))


class DatasetError(ReproError):
    """A dataset bundle is inconsistent or cannot be produced as requested."""


class ArtifactError(ReproError):
    """Base class for offline-artifact storage errors (missing, unreadable)."""


class ArtifactCorruptedError(ArtifactError):
    """A persisted artifact failed integrity verification at load time.

    Raised instead of letting :mod:`zipfile`/:mod:`json`/:mod:`numpy`
    errors escape from deep inside a loader. Carries the offending path
    and, for checksum mismatches, the expected and actual digests.
    """

    def __init__(
        self,
        path: object,
        expected: Optional[str] = None,
        actual: Optional[str] = None,
        reason: Optional[str] = None,
    ):
        if expected is not None or actual is not None:
            detail = f"checksum mismatch (expected {expected}, actual {actual})"
            if reason:
                detail = f"{reason}; {detail}"
        else:
            detail = reason or "artifact corrupted"
        super().__init__(f"{path}: {detail}")
        self.path = str(path)
        self.expected = expected
        self.actual = actual
        self.reason = reason

    def __reduce__(self):
        return (type(self), (self.path, self.expected, self.actual, self.reason))


class BuildFailedError(ReproError):
    """An offline index build could not materialize every entry.

    Raised by :meth:`repro.core.propagation.PropagationIndex.build_all`
    when chunks keep failing after ``max_retries`` fresh-process retries
    and the build runs in strict mode. The entries that *did* build are
    preserved: :attr:`partial_index` references the index (already flushed
    to the checkpoint file when checkpointing is on), so a caller can
    inspect or persist the partial result instead of losing hours of work.

    ``partial_index`` is attached by the raiser and deliberately not part
    of the pickled state (a live index does not belong on the wire).
    """

    def __init__(self, failed_nodes: Sequence[int], n_built: int):
        failed = sorted(int(node) for node in failed_nodes)
        preview = ", ".join(str(node) for node in failed[:8])
        if len(failed) > 8:
            preview += ", ..."
        super().__init__(
            f"index build failed for {len(failed)} node(s) [{preview}] "
            f"after retries; {n_built} entries built"
        )
        self.failed_nodes: List[int] = failed
        self.n_built = int(n_built)
        self.partial_index = None

    def __reduce__(self):
        return (type(self), (self.failed_nodes, self.n_built))
