"""Exception hierarchy for the PIT-Search reproduction library.

Every error raised intentionally by :mod:`repro` derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class GraphError(ReproError):
    """Base class for graph-construction and graph-access errors."""


class NodeNotFoundError(GraphError, KeyError):
    """A node id was requested that does not exist in the graph."""

    def __init__(self, node: int, n_nodes: int):
        super().__init__(f"node {node!r} not in graph with {n_nodes} nodes")
        self.node = node
        self.n_nodes = n_nodes


class EdgeError(GraphError):
    """An edge is malformed (bad endpoints or bad transition probability)."""


class EmptyGraphError(GraphError):
    """An operation that requires a non-empty graph received an empty one."""


class TopicError(ReproError):
    """Base class for topic-space and topic-index errors."""


class UnknownTopicError(TopicError, KeyError):
    """A topic id or label was requested that is not in the topic space."""

    def __init__(self, topic: object):
        super().__init__(f"unknown topic: {topic!r}")
        self.topic = topic


class QueryError(ReproError):
    """A keyword query was empty or otherwise unusable."""


class IndexNotBuiltError(ReproError):
    """An index was consulted before it was built.

    Raised by the walk index, the propagation index, and the engine when the
    offline stage has not been run.
    """


class ConfigurationError(ReproError, ValueError):
    """A parameter value is outside its documented domain."""


class BudgetExceededError(ReproError):
    """A bounded computation exhausted its configured budget.

    The propagation index and the set-enumeration tree are worst-case
    exponential; both accept budgets and raise this error (or degrade
    gracefully, depending on the ``strict`` flag) when the budget is hit.
    """

    def __init__(self, what: str, budget: int):
        super().__init__(f"{what} exceeded budget of {budget}")
        self.what = what
        self.budget = budget

    def __reduce__(self):
        # args holds the formatted message, so default exception pickling
        # would re-call __init__ with one argument; rebuild from the
        # originals instead (worker processes ship this across the pool).
        return (type(self), (self.what, self.budget))


class DatasetError(ReproError):
    """A dataset bundle is inconsistent or cannot be produced as requested."""
