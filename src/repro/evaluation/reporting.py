"""Plain-text table rendering for experiment output (S31).

The benchmark harness prints the same rows/series the paper's figures
report; :class:`Table` keeps that output consistent, aligned, and easy to
diff into EXPERIMENTS.md (it also renders GitHub markdown).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["Table", "format_seconds", "format_bytes"]


def format_seconds(seconds: float) -> str:
    """Human-oriented duration: µs/ms/s/min like the paper's axis labels."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 120.0:
        return f"{seconds:.2f}s"
    return f"{seconds / 60.0:.1f}min"


def format_bytes(n_bytes: float) -> str:
    """Human-oriented size (KB/MB/GB)."""
    value = float(n_bytes)
    for unit in ("B", "KB", "MB", "GB"):
        if value < 1024.0 or unit == "GB":
            return f"{value:.1f}{unit}" if unit != "B" else f"{value:.0f}B"
        value /= 1024.0
    return f"{value:.1f}GB"  # pragma: no cover - unreachable


class Table:
    """A fixed-header table accumulating printable rows.

    >>> t = Table("demo", ["k", "time"])
    >>> t.add_row([10, "1.2ms"])
    >>> print(t.render())  # doctest: +ELLIPSIS
    demo
    ...
    """

    def __init__(self, title: str, headers: Sequence[str]):
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: List[List[str]] = []

    def add_row(self, values: Iterable[object]) -> None:
        """Append one row (values are stringified)."""
        row = [str(v) for v in values]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    def render(self) -> str:
        """Aligned plain-text rendering."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title]
        lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(self.headers)))
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """GitHub-markdown rendering (used when updating EXPERIMENTS.md)."""
        lines = [f"**{self.title}**", ""]
        lines.append("| " + " | ".join(self.headers) + " |")
        lines.append("|" + "|".join("---" for _ in self.headers) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def column(self, name: str) -> List[str]:
        """All cells of the named column."""
        index = self.headers.index(name)
        return [row[index] for row in self.rows]

    def __str__(self) -> str:
        return self.render()
