"""Effectiveness metrics (S30, paper §6.4).

The paper's effectiveness figures report **precision**: the fraction of the
approximate method's top-k topics that also appear in the reference top-k
(BaseMatrix's on the small dataset, BasePropagation's on the large one).
Ranking-sensitive companions (Kendall tau, reciprocal rank of the top topic)
are provided for the extended analysis in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

from .._utils import require_in_range
from ..exceptions import ConfigurationError

__all__ = [
    "precision_at_k",
    "mean_precision",
    "kendall_tau",
    "top_item_reciprocal_rank",
]


def _ids(ranking: Sequence) -> List:
    """Accept SearchResult lists or raw id sequences."""
    return [getattr(item, "topic_id", item) for item in ranking]


def precision_at_k(approx: Sequence, reference: Sequence, k: int) -> float:
    """``|top-k(approx) ∩ top-k(reference)| / k`` (the paper's Precision).

    When the reference offers fewer than *k* items the denominator shrinks
    accordingly (otherwise no method could reach precision 1 on small topic
    spaces).
    """
    require_in_range("k", k, 1)
    approx_ids = _ids(approx)[:k]
    reference_ids = _ids(reference)[:k]
    if not reference_ids:
        raise ConfigurationError("reference ranking is empty")
    denominator = min(k, len(reference_ids))
    return len(set(approx_ids) & set(reference_ids)) / denominator


def mean_precision(
    pairs: Iterable[Tuple[Sequence, Sequence]], k: int
) -> float:
    """Average :func:`precision_at_k` over (approx, reference) pairs."""
    values = [precision_at_k(a, r, k) for a, r in pairs]
    if not values:
        raise ConfigurationError("no ranking pairs supplied")
    return float(np.mean(values))


def kendall_tau(approx: Sequence, reference: Sequence) -> float:
    """Kendall tau-b between the two rankings on their common items.

    Returns 1.0 when fewer than two common items exist (no discordance is
    observable).
    """
    approx_ids = _ids(approx)
    reference_ids = _ids(reference)
    common = [i for i in approx_ids if i in set(reference_ids)]
    if len(common) < 2:
        return 1.0
    approx_rank = {item: pos for pos, item in enumerate(approx_ids)}
    reference_rank = {item: pos for pos, item in enumerate(reference_ids)}
    a = [approx_rank[i] for i in common]
    b = [reference_rank[i] for i in common]
    from scipy.stats import kendalltau

    tau, _ = kendalltau(a, b)
    if np.isnan(tau):
        return 1.0
    return float(tau)


def top_item_reciprocal_rank(approx: Sequence, reference: Sequence) -> float:
    """1 / (1 + position) of the reference's best item inside *approx*.

    0.0 when the reference top item does not appear in *approx* at all.
    """
    reference_ids = _ids(reference)
    if not reference_ids:
        raise ConfigurationError("reference ranking is empty")
    target = reference_ids[0]
    approx_ids = _ids(approx)
    try:
        return 1.0 / (1 + approx_ids.index(target))
    except ValueError:
        return 0.0
