"""Per-figure experiment runner (S31).

One method per table/figure of the paper's §6 evaluation. Each method
returns a :class:`~repro.evaluation.reporting.Table` whose rows mirror the
series the paper plots; the benchmark harness prints them and
EXPERIMENTS.md records paper-vs-measured.

Scaling: DESIGN.md §3 documents how the paper's datasets map onto the
bundled scaled analogues. Parameters below (k values, representative-node
counts, workload sizes) default to the same *ratios* the paper uses at its
scale; every figure method accepts overrides.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .._utils import require_in_range
from ..baselines import (
    BaseDijkstraRanker,
    BaseMatrixRanker,
    BasePropagationRanker,
)
from ..core import PITEngine
from ..datasets import DATASETS, DatasetBundle, Workload, generate_workload
from ..exceptions import ConfigurationError
from .memory import measure_peak_allocation, object_bytes
from .metrics import precision_at_k
from .reporting import Table, format_bytes, format_seconds
from .timing import Stopwatch, time_workload

__all__ = ["ExperimentConfig", "ExperimentSuite", "METHODS"]

#: Canonical method names, in the paper's presentation order.
METHODS = ("BaseMatrix", "BaseDijkstra", "BasePropagation", "RCL-A", "LRW-A")

#: Dataset order of the scalability figures (small to large).
SCALABILITY_ORDER = ("data_2k", "data_350k", "data_1.2m", "data_3m")


@dataclass
class ExperimentConfig:
    """Knobs shared by every experiment.

    Attributes mirror the paper's parameters: ``theta`` (§5.1),
    ``walk_length`` = L, ``samples_per_node`` = R, ``rep_fraction`` = μ,
    ``sample_rate`` = |V'|/|V| (§3), ``matrix_length`` = BaseMatrix's
    iteration count. ``dataset_sizes`` overrides bundle node counts (e.g.
    to shrink everything for CI).
    """

    seed: int = 42
    n_queries: int = 5
    n_users: int = 3
    theta: float = 0.002
    walk_length: int = 5
    samples_per_node: int = 25
    rep_fraction: float = 0.1
    sample_rate: float = 0.05
    matrix_length: int = 6
    max_alternatives: int = 3
    #: Per-query cap on BaseDijkstra deviation re-runs (None = unbounded,
    #: the paper's 25-hour regime; the bench profile sets a finite cap).
    deviation_budget: Optional[int] = None
    dataset_sizes: Dict[str, int] = field(default_factory=dict)


class ExperimentSuite:
    """Caches datasets/engines and runs the per-figure experiments.

    Parameters
    ----------
    config:
        Shared knobs; ``ExperimentConfig()`` defaults reproduce the
        committed EXPERIMENTS.md numbers.
    """

    def __init__(self, config: Optional[ExperimentConfig] = None):
        self.config = config or ExperimentConfig()
        self._bundles: Dict[str, DatasetBundle] = {}
        self._workloads: Dict[str, Workload] = {}
        self._engines: Dict[Tuple[str, str, float], PITEngine] = {}
        self._matrix_rankers: Dict[str, BaseMatrixRanker] = {}

    # ------------------------------------------------------------------
    # Cached building blocks
    # ------------------------------------------------------------------
    def bundle(self, name: str) -> DatasetBundle:
        """The (cached) dataset bundle for *name*."""
        if name not in DATASETS:
            raise ConfigurationError(
                f"unknown dataset {name!r}; choose from {sorted(DATASETS)}"
            )
        cached = self._bundles.get(name)
        if cached is None:
            factory = DATASETS[name]
            kwargs = {}
            if name in self.config.dataset_sizes:
                kwargs["n_nodes"] = self.config.dataset_sizes[name]
            if name == "data_2k":
                kwargs["with_corpus"] = False
            cached = factory(seed=self.config.seed, **kwargs)
            self._bundles[name] = cached
        return cached

    def workload(self, name: str) -> Workload:
        """The (cached) query workload for dataset *name*."""
        cached = self._workloads.get(name)
        if cached is None:
            cached = generate_workload(
                self.bundle(name),
                n_queries=self.config.n_queries,
                n_users=self.config.n_users,
                seed=self.config.seed + 1,
            )
            self._workloads[name] = cached
        return cached

    def engine(
        self,
        dataset: str,
        summarizer: str,
        *,
        rep_fraction: Optional[float] = None,
    ) -> PITEngine:
        """A (cached) warmed engine for (dataset, summarizer, μ)."""
        mu = self.config.rep_fraction if rep_fraction is None else rep_fraction
        key = (dataset, summarizer, mu)
        cached = self._engines.get(key)
        if cached is None:
            bundle = self.bundle(dataset)
            cached = PITEngine.from_dataset(
                bundle,
                summarizer=summarizer,
                theta=self.config.theta,
                walk_length=self.config.walk_length,
                samples_per_node=self.config.samples_per_node,
                rep_fraction=mu,
                sample_rate=self.config.sample_rate,
                seed=self.config.seed + 2,
            )
            self._engines[key] = cached
        return cached

    def matrix_ranker(self, dataset: str) -> BaseMatrixRanker:
        """A (cached) BaseMatrix ground-truth ranker for *dataset*."""
        cached = self._matrix_rankers.get(dataset)
        if cached is None:
            bundle = self.bundle(dataset)
            cached = BaseMatrixRanker(
                bundle.graph,
                bundle.topic_index,
                length=self.config.matrix_length,
                cache_vectors=True,
            )
            self._matrix_rankers[dataset] = cached
        return cached

    def _search_callables(
        self,
        dataset: str,
        methods: Sequence[str],
        *,
        rep_fraction: Optional[float] = None,
        shared_propagation: bool = True,
    ) -> Dict[str, Callable[[int, object, int], list]]:
        """``method -> search(user, query, k)`` callables over one dataset."""
        bundle = self.bundle(dataset)
        callables: Dict[str, Callable] = {}
        lrw_engine = None
        for method in methods:
            if method == "BaseMatrix":
                ranker = BaseMatrixRanker(
                    bundle.graph, bundle.topic_index,
                    length=self.config.matrix_length, materialize=True,
                    rebuild_per_query=True,
                )
                callables[method] = ranker.search
            elif method == "BaseDijkstra":
                ranker = BaseDijkstraRanker(
                    bundle.graph, bundle.topic_index,
                    max_alternatives=self.config.max_alternatives,
                    deviation_budget=self.config.deviation_budget,
                )
                callables[method] = ranker.search
            elif method == "BasePropagation":
                shared = (
                    self.engine(dataset, "lrw", rep_fraction=rep_fraction)
                    .propagation_index
                    if shared_propagation
                    else None
                )
                ranker = BasePropagationRanker(
                    bundle.graph, bundle.topic_index,
                    propagation_index=shared, theta=self.config.theta,
                )
                callables[method] = ranker.search
            elif method == "RCL-A":
                engine = self.engine(dataset, "rcl", rep_fraction=rep_fraction)
                callables[method] = engine.search
            elif method == "LRW-A":
                engine = self.engine(dataset, "lrw", rep_fraction=rep_fraction)
                callables[method] = engine.search
            else:
                raise ConfigurationError(f"unknown method {method!r}")
        return callables

    def _warm(self, dataset: str, methods: Sequence[str],
              callables: Mapping[str, Callable],
              ks: Sequence[int]) -> None:
        """One untimed pass per k so offline indexes are materialized.

        The paper's timing figures measure *online* search over pre-built
        indexes; the warm pass builds summaries, walk index, propagation
        entries and (for BaseMatrix) the power matrix. Every k is warmed
        because smaller k values trigger *more* frontier expansion (top-k
        membership is harder to settle) and therefore touch propagation
        entries larger k never needs.
        """
        workload = self.workload(dataset)
        for method in methods:
            if method in ("BaseMatrix", "BaseDijkstra"):
                # BaseMatrix is rebuilt per query by design; BaseDijkstra's
                # deviation searches are per-query too (only the cheap
                # reverse tree would be cached) - warming either would just
                # double their dominant cost.
                continue
            search = callables[method]
            for k in ks:
                for user, query in workload.pairs():
                    search(user, query, k)

    # ------------------------------------------------------------------
    # Figure 4 - dataset summary table
    # ------------------------------------------------------------------
    def fig04_datasets(self, names: Sequence[str] = SCALABILITY_ORDER) -> Table:
        """The dataset summary of Figure 4 (scaled analogues)."""
        table = Table(
            "Fig. 4 - datasets (scaled analogues; see DESIGN.md section 3)",
            ["dataset", "nodes", "edges", "avg degree", "degree range",
             "topics", "paper nodes", "scale"],
        )
        for name in names:
            bundle = self.bundle(name)
            degrees = bundle.graph.out_degrees()
            table.add_row([
                name,
                bundle.graph.n_nodes,
                bundle.graph.n_edges,
                f"{bundle.graph.average_degree():.1f}",
                f"{int(degrees.min())}-{int(degrees.max())}",
                bundle.topic_index.n_topics,
                bundle.meta.get("paper_nodes", "?"),
                f"{float(bundle.meta.get('scale', 1.0)):.5f}",
            ])
        return table

    # ------------------------------------------------------------------
    # Figures 5-7 - query time
    # ------------------------------------------------------------------
    def _time_table(
        self,
        title: str,
        dataset: str,
        methods: Sequence[str],
        ks: Sequence[int],
        *,
        rep_fraction: Optional[float] = None,
    ) -> Table:
        workload = self.workload(dataset)
        callables = self._search_callables(
            dataset, methods, rep_fraction=rep_fraction
        )
        self._warm(dataset, methods, callables, ks)
        table = Table(title, ["method"] + [f"k={k}" for k in ks])
        for method in methods:
            search = callables[method]
            row = [method]
            for k in ks:
                summary = time_workload(
                    lambda user, query: search(user, query, k),
                    workload.pairs(),
                )
                row.append(format_seconds(summary.mean))
            table.add_row(row)
        return table

    def fig05_time_small(self, ks: Sequence[int] = (2, 5, 8, 10)) -> Table:
        """Figure 5: time cost of PIT-Search on data_2k, all five methods.

        Paper k values 10/20/50/100 over 500+ q-topics map to 2/5/8/10 over
        the scaled topic space (same ~2-20 percent of |T_q|).
        """
        return self._time_table(
            "Fig. 5 - PIT-Search time on data_2k (mean per query)",
            "data_2k",
            METHODS,
            ks,
        )

    def fig06_time_large(self, ks: Sequence[int] = (5, 10, 15, 25)) -> Table:
        """Figure 6: time cost on the scaled data_3m (no BaseMatrix).

        The paper omits BaseMatrix here because it needs 120 GB at full
        scale; the scaled run omits it for the same reason at ratio.
        """
        return self._time_table(
            "Fig. 6 - PIT-Search time on data_3m (mean per query)",
            "data_3m",
            ("BaseDijkstra", "BasePropagation", "RCL-A", "LRW-A"),
            ks,
        )

    def fig07_repnodes_time(
        self,
        rep_fractions: Sequence[float] = (0.05, 0.1, 0.2, 0.3),
        k: int = 10,
    ) -> Table:
        """Figure 7: time vs number of representative nodes (data_3m).

        The paper sweeps 1000..6000 representatives for ~20k-node topics,
        i.e. 5-30 percent - exactly the ``rep_fractions`` here.
        """
        dataset = "data_3m"
        workload = self.workload(dataset)
        methods = ("BaseDijkstra", "BasePropagation", "RCL-A", "LRW-A")
        table = Table(
            f"Fig. 7 - time vs representative fraction (data_3m, k={k})",
            ["method"] + [f"mu={mu:g}" for mu in rep_fractions],
        )
        for method in methods:
            row = [method]
            for mu in rep_fractions:
                callables = self._search_callables(
                    dataset, (method,), rep_fraction=mu
                )
                search = callables[method]
                self._warm(dataset, (method,), callables, (k,))
                summary = time_workload(
                    lambda user, query: search(user, query, k),
                    workload.pairs(),
                )
                row.append(format_seconds(summary.mean))
            table.add_row(row)
        return table

    # ------------------------------------------------------------------
    # Figures 8-9 - scalability
    # ------------------------------------------------------------------
    def scalability_table(
        self,
        *,
        rep_fraction: float,
        k: int = 10,
        datasets: Sequence[str] = SCALABILITY_ORDER,
        figure: str = "8",
    ) -> Table:
        """Figures 8/9: mean query time across all datasets.

        BaseMatrix is included only on data_2k (as in the paper).
        """
        table = Table(
            f"Fig. {figure} - scalability, k={k}, mu={rep_fraction:g}",
            ["method"] + list(datasets),
        )
        methods = ("BaseDijkstra", "BasePropagation", "RCL-A", "LRW-A")
        for method in methods:
            row = [method]
            for dataset in datasets:
                callables = self._search_callables(
                    dataset, (method,), rep_fraction=rep_fraction
                )
                search = callables[method]
                self._warm(dataset, (method,), callables, (k,))
                summary = time_workload(
                    lambda user, query: search(user, query, k),
                    self.workload(dataset).pairs(),
                )
                row.append(format_seconds(summary.mean))
            table.add_row(row)
        return table

    def fig08_scalability(self, k: int = 10) -> Table:
        """Figure 8: scalability with the base representative budget."""
        return self.scalability_table(
            rep_fraction=self.config.rep_fraction, k=k, figure="8"
        )

    def fig09_scalability_double_reps(self, k: int = 10) -> Table:
        """Figure 9: same sweep with double the representatives."""
        return self.scalability_table(
            rep_fraction=min(1.0, 2 * self.config.rep_fraction), k=k, figure="9"
        )

    # ------------------------------------------------------------------
    # Figures 10-12 - effectiveness
    # ------------------------------------------------------------------
    def _precision_table(
        self,
        title: str,
        dataset: str,
        methods: Sequence[str],
        reference_method: str,
        ks: Sequence[int],
        *,
        rep_fraction: Optional[float] = None,
    ) -> Table:
        workload = self.workload(dataset)
        if reference_method == "BaseMatrix":
            reference = self.matrix_ranker(dataset).search
        else:
            callables = self._search_callables(dataset, (reference_method,))
            reference = callables[reference_method]
        approx = self._search_callables(
            dataset, methods, rep_fraction=rep_fraction
        )
        table = Table(title, ["method"] + [f"k={k}" for k in ks])
        for method in methods:
            search = approx[method]
            row = [method]
            for k in ks:
                values = [
                    precision_at_k(
                        search(user, query, k),
                        reference(user, query, k),
                        k,
                    )
                    for user, query in workload.pairs()
                ]
                row.append(f"{float(np.mean(values)):.3f}")
            table.add_row(row)
        return table

    def fig10_effectiveness_small(self, ks: Sequence[int] = (2, 5, 8, 10)) -> Table:
        """Figure 10: precision vs BaseMatrix ground truth on data_2k."""
        return self._precision_table(
            "Fig. 10 - precision vs BaseMatrix (data_2k)",
            "data_2k",
            ("BaseDijkstra", "BasePropagation", "RCL-A", "LRW-A"),
            "BaseMatrix",
            ks,
        )

    def fig11_effectiveness_large(self, ks: Sequence[int] = (5, 10, 15, 25)) -> Table:
        """Figure 11: precision vs BasePropagation on the scaled data_3m."""
        return self._precision_table(
            "Fig. 11 - precision vs BasePropagation (data_3m)",
            "data_3m",
            ("BaseDijkstra", "RCL-A", "LRW-A"),
            "BasePropagation",
            ks,
        )

    def fig12_repnodes_precision(
        self,
        rep_fractions: Sequence[float] = (0.05, 0.1, 0.2, 0.3),
        k: int = 10,
    ) -> Table:
        """Figure 12: precision vs representative fraction (data_3m)."""
        dataset = "data_3m"
        workload = self.workload(dataset)
        reference = self._search_callables(dataset, ("BasePropagation",))[
            "BasePropagation"
        ]
        table = Table(
            f"Fig. 12 - precision vs representative fraction (data_3m, k={k})",
            ["method"] + [f"mu={mu:g}" for mu in rep_fractions],
        )
        for method in ("RCL-A", "LRW-A"):
            row = [method]
            for mu in rep_fractions:
                search = self._search_callables(
                    dataset, (method,), rep_fraction=mu
                )[method]
                values = [
                    precision_at_k(
                        search(user, query, k),
                        reference(user, query, k),
                        k,
                    )
                    for user, query in workload.pairs()
                ]
                row.append(f"{float(np.mean(values)):.3f}")
            table.add_row(row)
        return table

    # ------------------------------------------------------------------
    # Figures 13-14 - space cost
    # ------------------------------------------------------------------
    def space_table(
        self,
        *,
        rep_fraction: float,
        k: int = 10,
        datasets: Sequence[str] = SCALABILITY_ORDER,
        figure: str = "13",
    ) -> Table:
        """Figures 13/14: peak allocation while searching, per method.

        BaseMatrix is measured on data_2k only (the paper reports it blows
        past feasible memory on the larger sets; DESIGN.md section 3).
        """
        table = Table(
            f"Fig. {figure} - peak search allocation, k={k}, mu={rep_fraction:g}",
            ["method"] + list(datasets),
        )
        for method in METHODS:
            row = [method]
            for dataset in datasets:
                if method == "BaseMatrix" and dataset != "data_2k":
                    row.append("n/a (paper: infeasible)")
                    continue
                callables = self._search_callables(
                    dataset, (method,), rep_fraction=rep_fraction
                )
                search = callables[method]
                workload = self.workload(dataset)

                def run_all():
                    for user, query in workload.pairs():
                        search(user, query, k)

                _, peak = measure_peak_allocation(run_all)
                row.append(format_bytes(peak))
            table.add_row(row)
        return table

    def fig13_space(self, k: int = 10) -> Table:
        """Figure 13: space cost with the base representative budget."""
        return self.space_table(
            rep_fraction=self.config.rep_fraction, k=k, figure="13"
        )

    def fig14_space_double_reps(self, k: int = 10) -> Table:
        """Figure 14: space cost with double the representatives."""
        return self.space_table(
            rep_fraction=min(1.0, 2 * self.config.rep_fraction), k=k, figure="14"
        )

    # ------------------------------------------------------------------
    # Figures 15-16 - index construction
    # ------------------------------------------------------------------
    def fig15_index_construction(
        self,
        dataset: str = "data_3m",
        sample_rates: Sequence[float] = (0.01, 0.05, 0.1),
        r_values: Sequence[int] = (5, 10, 15),
        topics: int = 3,
    ) -> Tuple[Table, Table]:
        """Figure 15: per-topic summary construction cost.

        Left table sweeps RCL-A's sample rate (paper: 1/5/10 percent);
        right table sweeps LRW-A's R (paper: 100/200/300 walks - scaled to
        the bundled R ratios). Cost is the mean over the *topics* hottest
        query topics, matching "Given a topic, ... average time and space".
        """
        from ..core.rcl import RCLSummarizer
        from ..core.lrw import LRWSummarizer
        from ..walks import WalkIndex

        bundle = self.bundle(dataset)
        workload = self.workload(dataset)
        topic_ids: List[int] = []
        for query in workload.queries:
            topic_ids.extend(bundle.topic_index.related_topics(query))
        topic_ids = sorted(
            set(topic_ids),
            key=lambda t: -bundle.topic_index.topic_size(t),
        )[:topics]

        walk_index = self.engine(dataset, "lrw").walk_index

        rcl_table = Table(
            f"Fig. 15a - RCL-A summary construction on {dataset}",
            ["sample rate", "time/topic", "space"],
        )
        for rate in sample_rates:
            summarizer = RCLSummarizer(
                bundle.graph,
                bundle.topic_index,
                max_hops=self.config.walk_length,
                sample_rate=rate,
                rep_fraction=self.config.rep_fraction,
                walk_index=walk_index,
                seed=self.config.seed,
            )
            with Stopwatch() as sw:
                summaries = [summarizer.summarize(t) for t in topic_ids]
            space = sum(object_bytes(dict(s.weights)) for s in summaries)
            rcl_table.add_row([
                f"{rate:.0%}",
                format_seconds(sw.seconds / len(topic_ids)),
                format_bytes(space + walk_index.memory_bytes()),
            ])

        lrw_table = Table(
            f"Fig. 15b - LRW-A summary construction on {dataset}",
            ["R", "time/topic", "space"],
        )
        for r_value in r_values:
            wi = WalkIndex.built(
                bundle.graph,
                self.config.walk_length,
                r_value,
                seed=self.config.seed,
            )
            summarizer = LRWSummarizer(
                bundle.graph,
                bundle.topic_index,
                wi,
                rep_fraction=self.config.rep_fraction,
            )
            with Stopwatch() as sw:
                summaries = [summarizer.summarize(t) for t in topic_ids]
            space = sum(object_bytes(dict(s.weights)) for s in summaries)
            lrw_table.add_row([
                r_value,
                format_seconds(sw.seconds / len(topic_ids)),
                format_bytes(space + wi.memory_bytes()),
            ])
        return rcl_table, lrw_table

    def fig16_construction_vs_length(
        self,
        dataset: str = "data_3m",
        lengths: Sequence[int] = (2, 3, 4, 5, 6),
        topics: int = 3,
    ) -> Table:
        """Figure 16: summary construction time as L varies."""
        from ..core.rcl import RCLSummarizer
        from ..core.lrw import LRWSummarizer
        from ..walks import WalkIndex

        bundle = self.bundle(dataset)
        workload = self.workload(dataset)
        topic_ids: List[int] = []
        for query in workload.queries:
            topic_ids.extend(bundle.topic_index.related_topics(query))
        topic_ids = sorted(
            set(topic_ids),
            key=lambda t: -bundle.topic_index.topic_size(t),
        )[:topics]

        table = Table(
            f"Fig. 16 - summary construction time vs L on {dataset}",
            ["L", "RCL-A time/topic", "LRW-A time/topic"],
        )
        for length in lengths:
            walk_index = WalkIndex.built(
                bundle.graph,
                length,
                self.config.samples_per_node,
                seed=self.config.seed,
            )
            rcl = RCLSummarizer(
                bundle.graph,
                bundle.topic_index,
                max_hops=length,
                sample_rate=self.config.sample_rate,
                rep_fraction=self.config.rep_fraction,
                walk_index=walk_index,
                seed=self.config.seed,
            )
            with Stopwatch() as rcl_watch:
                for topic in topic_ids:
                    rcl.summarize(topic)
            lrw = LRWSummarizer(
                bundle.graph,
                bundle.topic_index,
                walk_index,
                rep_fraction=self.config.rep_fraction,
            )
            with Stopwatch() as lrw_watch:
                for topic in topic_ids:
                    lrw.summarize(topic)
            table.add_row([
                length,
                format_seconds(rcl_watch.seconds / len(topic_ids)),
                format_seconds(lrw_watch.seconds / len(topic_ids)),
            ])
        return table
