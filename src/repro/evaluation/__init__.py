"""Evaluation harness: metrics, timing, memory, tables, per-figure runs.

See DESIGN.md systems S30-S31.
"""

from .experiments import METHODS, ExperimentConfig, ExperimentSuite
from .memory import measure_peak_allocation, object_bytes
from .metrics import (
    kendall_tau,
    mean_precision,
    precision_at_k,
    top_item_reciprocal_rank,
)
from .reporting import Table, format_bytes, format_seconds
from .timing import Stopwatch, TimingSummary, time_workload

__all__ = [
    "ExperimentSuite",
    "ExperimentConfig",
    "METHODS",
    "precision_at_k",
    "mean_precision",
    "kendall_tau",
    "top_item_reciprocal_rank",
    "Stopwatch",
    "TimingSummary",
    "time_workload",
    "measure_peak_allocation",
    "object_bytes",
    "Table",
    "format_seconds",
    "format_bytes",
]
