"""Wall-clock measurement helpers (S30).

Everything the per-figure experiments need: a context-manager stopwatch and
an averaging harness over query workloads.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, List, Tuple

import numpy as np

from .._utils import require_in_range

__all__ = ["Stopwatch", "TimingSummary", "time_workload"]


class Stopwatch:
    """Context-manager stopwatch using the monotonic performance counter.

    >>> with Stopwatch() as sw:
    ...     _ = sum(range(1000))
    >>> sw.seconds >= 0.0
    True
    """

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        self.seconds = 0.0
        return self

    def __exit__(self, *exc_info) -> None:
        self.seconds = time.perf_counter() - self._start


@dataclass(frozen=True)
class TimingSummary:
    """Aggregate of many per-call timings (seconds)."""

    total: float
    mean: float
    minimum: float
    maximum: float
    calls: int

    @property
    def mean_ms(self) -> float:
        """Mean per call in milliseconds (how the paper's figures report)."""
        return self.mean * 1000.0


def time_workload(
    run: Callable[..., object],
    calls: Iterable[Tuple],
) -> TimingSummary:
    """Time ``run(*args)`` for every argument tuple in *calls*.

    Returns the aggregate; results of ``run`` are discarded (the paper's
    timing figures average wall-clock over 100 queries x 50 users).
    """
    durations: List[float] = []
    for args in calls:
        start = time.perf_counter()
        run(*args)
        durations.append(time.perf_counter() - start)
    if not durations:
        raise ValueError("no calls supplied")
    arr = np.asarray(durations)
    return TimingSummary(
        total=float(arr.sum()),
        mean=float(arr.mean()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        calls=len(durations),
    )
