"""Space-cost accounting (S30, paper §6.5).

Two complementary measurements:

* :func:`measure_peak_allocation` - tracemalloc peak while running a
  callable (what "space cost when searching" means operationally);
* :func:`object_bytes` - recursive payload size of index structures, used
  for the per-component breakdowns in EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
import tracemalloc
from typing import Callable, Tuple

import numpy as np

__all__ = ["measure_peak_allocation", "object_bytes"]


def measure_peak_allocation(run: Callable[[], object]) -> Tuple[object, int]:
    """Run *run* under tracemalloc and return ``(result, peak_bytes)``.

    Nested use is not supported (tracemalloc is process-global); the
    experiment runner serializes measurements.
    """
    already_tracing = tracemalloc.is_tracing()
    if not already_tracing:
        tracemalloc.start()
    tracemalloc.reset_peak()
    try:
        result = run()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        if not already_tracing:
            tracemalloc.stop()
    return result, int(peak)


def object_bytes(obj, _seen=None) -> int:
    """Recursive ``sys.getsizeof`` with numpy-aware payload accounting."""
    if _seen is None:
        _seen = set()
    identity = id(obj)
    if identity in _seen:
        return 0
    _seen.add(identity)
    if isinstance(obj, np.ndarray):
        return int(obj.nbytes) + sys.getsizeof(obj)
    size = sys.getsizeof(obj)
    if isinstance(obj, dict):
        size += sum(
            object_bytes(key, _seen) + object_bytes(value, _seen)
            for key, value in obj.items()
        )
    elif isinstance(obj, (list, tuple, set, frozenset)):
        size += sum(object_bytes(item, _seen) for item in obj)
    return int(size)
