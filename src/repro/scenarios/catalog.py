"""The scenario catalogue: six seeded, replayable workloads.

Three promote the long-standing ``examples/`` demos into regression
workloads (the examples are now thin wrappers over the helpers here);
two are adversarial, built to fight a specific serving-layer defense;
``quickstart`` is the uniform baseline the others are read against.

========================  ==================================================
``quickstart``            Zipf steady-state traffic (the PR 7/8 bench shape)
``targeted-advertising``  one campaign topic, its receptive audience querying
``phone-recommendation``  the paper's Figure 1/2 network, exact summaries
``evolving-network``      mid-trace churn: invalidation + structural reload
``flash-crowd``           hub query spike vs. coalescer/admission control
``topic-churn``           repeated reloads invalidating precompute heads
========================  ==================================================
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.dynamics import TopicUpdate
from ..core.influence import topic_influence_vector
from ..datasets import DatasetBundle, data_2k
from ..datasets.workload import Workload, generate_workload, replay_requests
from ..graph import GraphBuilder, SocialGraph
from ..topics import KeywordQuery, TopicIndex
from .base import Scenario, register
from .quality import OracleInstance, random_oracle_instance
from .trace import timestamped

__all__ = [
    "EDGES",
    "TOPICS",
    "EvolvingNetworkScenario",
    "FlashCrowdScenario",
    "PhoneRecommendationScenario",
    "QuickstartScenario",
    "TargetedAdvertisingScenario",
    "TopicChurnScenario",
    "build_phone_network",
    "campaign_audience",
    "campaign_topic",
    "hot_topic_update",
]


# ---------------------------------------------------------------------------
# Shared helpers (also the examples' building blocks)
# ---------------------------------------------------------------------------

#: Figure 1's edges with weights calibrated to reproduce Figure 2's path
#: table (e.g. path 5 -> 3 carries 0.6 and 2 -> 1 -> 3 carries 0.06).
EDGES = [
    (2, 1, 0.1), (1, 3, 0.6), (5, 3, 0.6), (5, 7, 0.1), (7, 13, 0.4),
    (13, 12, 0.8), (12, 10, 0.5), (10, 6, 0.4), (6, 3, 0.15), (9, 8, 0.3),
    (8, 13, 0.14), (15, 9, 0.9), (1, 2, 0.3), (3, 4, 0.4), (4, 14, 0.5),
    (11, 12, 0.3), (14, 11, 0.4), (6, 10, 0.3), (13, 7, 0.2),
]

#: Users who posted positively about each phone (user 13 mentions all
#: three, as in the paper).
TOPICS = {
    "apple phone": [2, 5, 13, 9, 15],
    "samsung phone": [1, 13, 12, 14],
    "htc phone": [6, 13, 10],
}


def build_phone_network() -> Tuple[SocialGraph, TopicIndex]:
    """The paper's Example 1 network: Figure 1 graph + three phone topics."""
    builder = GraphBuilder(16)
    builder.add_edges(EDGES)
    graph = builder.build()
    assignment: Dict[int, List[str]] = {}
    for label, users in TOPICS.items():
        for user in users:
            assignment.setdefault(user, []).append(label)
    return graph, TopicIndex(16, assignment)


def campaign_topic(topic_index: TopicIndex, keyword: str = "phone") -> int:
    """The hottest *keyword*-related topic - the advertiser's campaign."""
    related = topic_index.related_topics(keyword)
    return max(related, key=topic_index.topic_size)


def campaign_audience(
    bundle: DatasetBundle,
    topic: int,
    *,
    size: int = 20,
    length: int = 6,
) -> List[int]:
    """Users most receptive to *topic*, by exact influence propagation.

    Ranks non-endorsers by the topic's exact influence on them
    (:func:`~repro.core.influence.topic_influence_vector`) - the
    deterministic, summarizer-free half of the targeted-advertising
    story, shared by the scenario's trace generator and the example.
    """
    influence = topic_influence_vector(
        bundle.graph, bundle.topic_index.topic_nodes(topic), length
    )
    endorsers = set(
        int(v) for v in bundle.topic_index.topic_nodes(topic)
    )
    candidates = [v for v in bundle.graph.nodes if v not in endorsers]
    ranked = sorted(candidates, key=lambda v: (-float(influence[v]), v))
    return ranked[:size]


def hot_topic_update(
    engine,
    user: int,
    *,
    hot_label: str = "sold out festival music",
    count: int = 8,
) -> TopicUpdate:
    """A burst of activity: *user*'s strongest influencers adopt a topic.

    Picks the top-*count* nodes of the user's propagation entry Γ(v) and
    returns the :class:`~repro.core.dynamics.TopicUpdate` that has them
    all start talking about *hot_label* - the evolving-network example's
    update, reusable against any engine.
    """
    entry = engine.propagation_index.entry(user)
    influencers = sorted(
        entry.gamma, key=lambda v: (-entry.gamma[v], v)
    )[:count] or [1, 2, 3]
    return TopicUpdate(add={v: (hot_label,) for v in influencers})


def _zipf_trace(
    bundle: DatasetBundle,
    seed: int,
    params: Dict[str, object],
    *,
    skew: float,
) -> List[Dict[str, object]]:
    """The shared workload-then-replay-then-timestamp pipeline."""
    workload = generate_workload(
        bundle,
        n_queries=int(params["n_queries"]),
        n_users=int(params["n_users"]),
        seed=seed,
    )
    records = replay_requests(
        workload,
        n_requests=int(params["n_requests"]),
        k=int(params.get("k", 5)),
        skew=skew,
        seed=seed + 1,
    )
    return timestamped(records, burst=int(params.get("burst", 4)))


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------


@register
class QuickstartScenario(Scenario):
    """Steady-state Zipf traffic over the small synthetic dataset."""

    name = "quickstart"
    title = "Steady-state Zipf traffic"
    description = (
        "The serving benchmarks' bread-and-butter shape: a Zipf-skewed "
        "request stream over data_2k, no events. The baseline every "
        "other scenario's trajectory is read against."
    )
    default_seed = 7
    profiles = {
        "default": {
            "n_nodes": 300, "n_queries": 8, "n_users": 6,
            "n_requests": 240, "k": 5, "burst": 4,
        },
        "smoke": {
            "n_nodes": 150, "n_queries": 4, "n_users": 3,
            "n_requests": 60, "k": 5, "burst": 4,
        },
        # The historical examples/quickstart.py scale.
        "demo": {
            "n_nodes": 600, "n_queries": 8, "n_users": 6,
            "n_requests": 120, "k": 5, "burst": 4,
        },
        # examples/summarization_quality.py needs the tweet corpus.
        "demo-corpus": {
            "n_nodes": 600, "n_queries": 8, "n_users": 6,
            "n_requests": 120, "k": 5, "burst": 4, "with_corpus": True,
        },
    }
    min_summarized_precision = 0.5

    def dataset(self, seed, params):
        return data_2k(
            seed=seed,
            n_nodes=int(params["n_nodes"]),
            with_corpus=bool(params.get("with_corpus", False)),
        )

    def build_trace(self, bundle, seed, params):
        return _zipf_trace(bundle, seed, params, skew=1.0)


# ---------------------------------------------------------------------------
# Promotions of the examples
# ---------------------------------------------------------------------------


@register
class TargetedAdvertisingScenario(Scenario):
    """A campaign's receptive audience hammering campaign-related queries."""

    name = "targeted-advertising"
    title = "Campaign audience traffic"
    description = (
        "Picks the hottest phone-related topic as an ad campaign, ranks "
        "the most receptive non-endorsers by exact influence, and "
        "replays their campaign-related queries - a head-heavy stream "
        "concentrated on one topic neighborhood."
    )
    default_seed = 21
    profiles = {
        "default": {
            "n_nodes": 300, "audience": 16, "n_requests": 200, "k": 5,
            "burst": 4,
        },
        "smoke": {
            "n_nodes": 150, "audience": 8, "n_requests": 60, "k": 5,
            "burst": 4,
        },
        # The historical examples/targeted_advertising.py scale.
        "demo": {
            "n_nodes": 800, "audience": 20, "n_requests": 120, "k": 5,
            "burst": 4,
        },
    }
    min_summarized_precision = 0.5

    def dataset(self, seed, params):
        return data_2k(
            seed=seed, n_nodes=int(params["n_nodes"]), with_corpus=False
        )

    def build_trace(self, bundle, seed, params):
        topic = campaign_topic(bundle.topic_index)
        audience = campaign_audience(
            bundle, topic, size=int(params["audience"])
        )
        label = bundle.topic_index.label(topic)
        workload = Workload(
            queries=(
                KeywordQuery.parse("phone"),
                KeywordQuery.parse(label),
            ),
            users=tuple(sorted(audience)),
        )
        records = replay_requests(
            workload,
            n_requests=int(params["n_requests"]),
            k=int(params.get("k", 5)),
            skew=0.8,
            seed=seed + 1,
        )
        return timestamped(records, burst=int(params.get("burst", 4)))


@register
class PhoneRecommendationScenario(Scenario):
    """The paper's Example 1: Figure 1's 15 users asking about phones."""

    name = "phone-recommendation"
    title = "Figure 1 phone recommendation"
    description = (
        "The fixed 16-node network of the paper's Figures 1-2 with the "
        "three phone topics; every user repeatedly asks phone queries. "
        "Tiny enough that the brute-force oracle covers the *actual* "
        "serving graph, not a miniature."
    )
    default_seed = 1
    profiles = {
        "default": {"n_requests": 180, "k": 3, "burst": 3},
        "smoke": {"n_requests": 60, "k": 3, "burst": 3},
    }
    summarizer = "lrw"
    theta = 0.005
    rep_fraction = 1.0
    min_summarized_precision = 0.8

    def dataset(self, seed, params):
        graph, topic_index = build_phone_network()
        return DatasetBundle(
            name="example1_phone",
            graph=graph,
            topic_index=topic_index,
            tag_bank=None,
            corpus=None,
            seed=seed,
            meta={"type": "paper-figure-1"},
        )

    def build_trace(self, bundle, seed, params):
        workload = Workload(
            queries=tuple(
                KeywordQuery.parse(q)
                for q in ("phone", "apple phone", "samsung phone",
                          "htc phone")
            ),
            users=tuple(range(1, 16)),
        )
        records = replay_requests(
            workload,
            n_requests=int(params["n_requests"]),
            k=int(params.get("k", 3)),
            skew=0.7,
            seed=seed + 1,
        )
        return timestamped(records, burst=int(params.get("burst", 3)))

    def oracle_instance(self, seed):
        graph, topic_index = build_phone_network()
        return OracleInstance(
            graph=graph,
            topic_index=topic_index,
            queries=("phone", "apple phone", "samsung phone", "htc phone"),
            k=3,
        )


@register
class EvolvingNetworkScenario(Scenario):
    """Steady traffic with mid-trace churn: invalidation, then a reload."""

    name = "evolving-network"
    title = "Evolving network with mid-trace churn"
    description = (
        "The paper's Section 4.4 story as serving traffic: a Zipf stream "
        "interrupted first by a targeted answer invalidation (a burst of "
        "activity around the head users) and then by a structural reload "
        "(the offline stage re-ran after the network changed). The "
        "delta profiles replace the invalidation with a *real* streamed "
        "graph delta - edge inserts, deletes, and re-weightings applied "
        "to the live engine with surgical cache invalidation."
    )
    default_seed = 99
    profiles = {
        "default": {
            "n_nodes": 260, "n_queries": 8, "n_users": 6,
            "n_requests": 240, "k": 5, "burst": 4,
        },
        "smoke": {
            "n_nodes": 140, "n_queries": 4, "n_users": 3,
            "n_requests": 80, "k": 5, "burst": 4,
        },
        # The historical examples/evolving_network.py scale.
        "demo": {
            "n_nodes": 600, "n_queries": 8, "n_users": 6,
            "n_requests": 120, "k": 5, "burst": 4,
        },
        # Streamed-delta variants: the mid-trace churn is an actual
        # GraphDelta batch (repro.core.dynamics) instead of a manual
        # answer invalidation.
        "delta": {
            "n_nodes": 260, "n_queries": 8, "n_users": 6,
            "n_requests": 240, "k": 5, "burst": 4, "delta_mode": True,
        },
        "delta-smoke": {
            "n_nodes": 140, "n_queries": 4, "n_users": 3,
            "n_requests": 80, "k": 5, "burst": 4, "delta_mode": True,
        },
    }
    min_summarized_precision = 0.5

    def dataset(self, seed, params):
        return data_2k(
            seed=seed, n_nodes=int(params["n_nodes"]), with_corpus=False
        )

    def build_trace(self, bundle, seed, params):
        return _zipf_trace(bundle, seed, params, skew=1.0)

    def _delta_event(self, bundle, seed, after):
        """A deterministic edit batch derived from the bundle graph.

        Three deletes and three re-weightings of real edges plus three
        inserts of genuinely absent edges, all drawn from a seeded RNG -
        the same seed always streams the same delta, which is what keeps
        the replay digest reproducible in delta mode.
        """
        graph = bundle.graph
        sources, targets, probs = graph.edge_arrays()
        n = graph.n_nodes
        rng = np.random.default_rng(seed + 5)
        picks = rng.choice(
            sources.size, size=min(6, sources.size), replace=False
        )
        deletes = [
            [int(sources[i]), int(targets[i])] for i in picks[:3]
        ]
        reweights = [
            [int(sources[i]), int(targets[i]),
             round(min(1.0, float(probs[i]) * 0.5 + 0.05), 6)]
            for i in picks[3:]
        ]
        taken = set((sources * n + targets).tolist())
        inserts: List[List[object]] = []
        while len(inserts) < 3:
            a = int(rng.integers(0, n))
            b = int(rng.integers(0, n))
            if a == b or a * n + b in taken:
                continue
            taken.add(a * n + b)
            inserts.append([a, b, round(float(rng.uniform(0.05, 0.4)), 6)])
        return {
            "after": after, "kind": "delta",
            "inserts": inserts, "deletes": deletes, "reweights": reweights,
        }

    def build_events(self, bundle, records, seed, params):
        n = len(records)
        if params.get("delta_mode"):
            return [
                self._delta_event(bundle, seed, n // 3),
                {"after": (2 * n) // 3, "kind": "reload", "reseed": 1},
            ]
        # The churn hits the trace's own head users: their cached
        # answers are the ones invalidation must actually evict.
        counts: Dict[int, int] = {}
        for record in records:
            counts[record["user"]] = counts.get(record["user"], 0) + 1
        head_users = sorted(
            counts, key=lambda u: (-counts[u], u)
        )[:3]
        return [
            {"after": n // 3, "kind": "invalidate_users",
             "users": head_users},
            {"after": (2 * n) // 3, "kind": "reload", "reseed": 1},
        ]


# ---------------------------------------------------------------------------
# Adversarial scenarios
# ---------------------------------------------------------------------------


@register
class FlashCrowdScenario(Scenario):
    """A hub-query spike designed to fight the coalescer and admission."""

    name = "flash-crowd"
    title = "Hub-dominated flash-crowd spike"
    description = (
        "Trickle traffic over a hub-dominated preferential-attachment "
        "graph, then a flash crowd: the single hottest (user, query) "
        "pair arrives in concurrent same-instant bursts. In daemon mode "
        "this is exactly the shape the coalescer and the bounded-queue "
        "admission controller exist for; in engine mode it measures the "
        "answer tier's spike absorption (first burst misses, the rest "
        "must hit)."
    )
    adversarial = True
    default_seed = 1234
    #: Small queue: a spike burst overruns admission and must be shed
    #: with 429s, never 5xx.
    daemon_queue = 16
    profiles = {
        "default": {
            "n_nodes": 320, "n_queries": 8, "n_users": 6,
            "trickle": 120, "spike_bursts": 4, "spike_size": 32,
            "cooldown": 40, "k": 5, "burst": 2,
        },
        "smoke": {
            "n_nodes": 150, "n_queries": 4, "n_users": 3,
            "trickle": 40, "spike_bursts": 3, "spike_size": 12,
            "cooldown": 16, "k": 5, "burst": 2,
        },
    }
    min_summarized_precision = 0.5

    def dataset(self, seed, params):
        return data_2k(
            seed=seed, n_nodes=int(params["n_nodes"]), with_corpus=False
        )

    def build_trace(self, bundle, seed, params):
        workload = generate_workload(
            bundle,
            n_queries=int(params["n_queries"]),
            n_users=int(params["n_users"]),
            seed=seed,
        )
        trickle = replay_requests(
            workload,
            n_requests=int(params["trickle"]),
            k=int(params.get("k", 5)),
            skew=1.2,
            seed=seed + 1,
        )
        cooldown = replay_requests(
            workload,
            n_requests=int(params["cooldown"]),
            k=int(params.get("k", 5)),
            skew=1.2,
            seed=seed + 2,
        )
        burst = int(params.get("burst", 2))
        records = timestamped(trickle, burst=burst)
        step_ms = 10
        next_ms = records[-1]["at_ms"] + step_ms

        # The flash crowd: the trickle's hottest (user, query, k) triple
        # arrives spike_size at a time, spike_bursts times in a row.
        counts: Dict[Tuple, int] = {}
        for record in trickle:
            key = (record["user"], record["query"], record["k"])
            counts[key] = counts.get(key, 0) + 1
        user, query, k = max(counts, key=lambda key: (counts[key], key))
        for _ in range(int(params["spike_bursts"])):
            for _ in range(int(params["spike_size"])):
                records.append(
                    {"user": user, "query": query, "k": k,
                     "at_ms": next_ms}
                )
            next_ms += step_ms
        records.extend(
            timestamped(cooldown, burst=burst, start_ms=next_ms)
        )
        return records


@register
class TopicChurnScenario(Scenario):
    """Repeated reloads that invalidate precompute heads mid-replay."""

    name = "topic-churn"
    title = "Topic-churn storm vs. precompute heads"
    description = (
        "A Zipf stream served warm from a mined precompute artifact, "
        "then three rounds of topic churn: each rebuilds the summaries "
        "(new fingerprint), first proving the stale precompute is "
        "*refused* (the PR 8 mismatch contract), then swapping engines "
        "structurally. The answer tier must go cold and re-warm after "
        "every churn without a wrong answer or a dropped request."
    )
    adversarial = True
    default_seed = 4242
    profiles = {
        "default": {
            "n_nodes": 260, "n_queries": 8, "n_users": 6,
            "n_requests": 280, "k": 5, "burst": 4, "churns": 3,
        },
        "smoke": {
            "n_nodes": 140, "n_queries": 4, "n_users": 3,
            "n_requests": 96, "k": 5, "burst": 4, "churns": 3,
        },
    }
    wants_precompute = True
    min_summarized_precision = 0.5

    def dataset(self, seed, params):
        return data_2k(
            seed=seed, n_nodes=int(params["n_nodes"]), with_corpus=False
        )

    def build_trace(self, bundle, seed, params):
        return _zipf_trace(bundle, seed, params, skew=1.0)

    def build_events(self, bundle, records, seed, params):
        n = len(records)
        churns = int(params.get("churns", 3))
        return [
            {
                "after": (i * n) // (churns + 1),
                "kind": "reload",
                "reseed": i,
                "stale_precompute": True,
            }
            for i in range(1, churns + 1)
        ]
