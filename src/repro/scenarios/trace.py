"""Timed replay traces: the scenario suite's request wire format.

A trace is a list of replay records - the ``{"user", "query", "k"}``
dicts ``search --batch``, the daemon's ``POST /search``, and
``pit-search precompute`` already consume - extended with an ``at_ms``
arrival timestamp. Every existing consumer ignores unknown keys, so a
scenario trace file drives all of them unchanged; only the scenario
runner interprets ``at_ms``: records sharing a timestamp form a *burst*
that is replayed together (one ``search_batch`` call in engine mode,
concurrent requests in daemon mode).

Validation here is the scenario boundary's contract: malformed records
are refused with :class:`~repro.exceptions.ConfigurationError` (carrying
the 1-based record number), unknown users with
:class:`~repro.exceptions.NodeNotFoundError` - typed refusals, never a
crash mid-replay. Out-of-order arrival times are tolerated and stably
sorted; duplicate timestamps are meaningful (a burst), not an error.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from ..datasets.workload import replay_jsonl, write_replay_jsonl
from ..exceptions import ConfigurationError
from ..graph import SocialGraph

__all__ = [
    "load_trace",
    "timestamped",
    "trace_bursts",
    "trace_digest",
    "validate_trace",
    "write_trace",
]


def timestamped(
    records: Iterable[Dict[str, object]],
    *,
    burst: int = 1,
    step_ms: int = 10,
    start_ms: int = 0,
) -> List[Dict[str, object]]:
    """Stamp plain replay records with ``at_ms`` arrival times.

    Consecutive groups of *burst* records share one timestamp (arriving
    together), with *step_ms* between groups. This is how scenarios turn
    :func:`~repro.datasets.replay_requests` output into a timed trace.
    """
    if burst < 1:
        raise ConfigurationError(f"burst must be >= 1, got {burst}")
    if step_ms < 1:
        raise ConfigurationError(f"step_ms must be >= 1, got {step_ms}")
    out: List[Dict[str, object]] = []
    for i, record in enumerate(records):
        stamped = dict(record)
        stamped["at_ms"] = int(start_ms) + (i // burst) * int(step_ms)
        out.append(stamped)
    return out


def _check_record(record: object, position: int) -> Dict[str, object]:
    """Validate one record; *position* is 1-based for error messages."""
    if not isinstance(record, dict):
        raise ConfigurationError(
            f"trace record {position} must be a JSON object, got "
            f"{type(record).__name__}"
        )
    query = record.get("query")
    if not isinstance(query, str) or not query.strip():
        raise ConfigurationError(
            f"trace record {position} has no usable 'query' field"
        )
    user = record.get("user")
    if isinstance(user, bool) or not isinstance(user, int) or user < 0:
        raise ConfigurationError(
            f"trace record {position} has no usable 'user' field"
        )
    k = record.get("k", 10)
    if isinstance(k, bool) or not isinstance(k, int) or k < 1:
        raise ConfigurationError(
            f"trace record {position} has an invalid 'k' field"
        )
    at_ms = record.get("at_ms", 0)
    if (
        isinstance(at_ms, bool)
        or not isinstance(at_ms, (int, float))
        or at_ms < 0
    ):
        raise ConfigurationError(
            f"trace record {position} has an invalid 'at_ms' field"
        )
    checked = dict(record)
    checked["k"] = int(k)
    checked["at_ms"] = int(at_ms)
    return checked


def validate_trace(
    records: Iterable[Dict[str, object]],
    *,
    graph: Optional[SocialGraph] = None,
) -> List[Dict[str, object]]:
    """Validate records and normalize arrival order.

    Refuses an empty trace and malformed records with
    :class:`~repro.exceptions.ConfigurationError`; with *graph* given,
    unknown users are refused with
    :class:`~repro.exceptions.NodeNotFoundError` (via
    :meth:`~repro.graph.SocialGraph.validate_node`). Records arriving
    out of timestamp order are stably sorted - relative order within a
    timestamp (a burst) is preserved.
    """
    checked = [
        _check_record(record, i + 1) for i, record in enumerate(records)
    ]
    if not checked:
        raise ConfigurationError(
            "trace is empty: a scenario replay needs at least one record"
        )
    if graph is not None:
        for record in checked:
            graph.validate_node(record["user"])
    checked.sort(key=lambda record: record["at_ms"])
    return checked


def load_trace(
    source, *, graph: Optional[SocialGraph] = None
) -> List[Dict[str, object]]:
    """Load and validate a trace from a JSONL path or record iterable."""
    if isinstance(source, (str, Path)):
        records = []
        with open(source, "r", encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError as exc:
                    raise ConfigurationError(
                        f"{source}: line {lineno} is not valid JSON ({exc})"
                    ) from exc
        return validate_trace(records, graph=graph)
    return validate_trace(source, graph=graph)


def trace_bursts(
    records: Sequence[Dict[str, object]],
) -> List[List[Dict[str, object]]]:
    """Group a validated trace into bursts of equal ``at_ms``."""
    bursts: List[List[Dict[str, object]]] = []
    current_ms: Optional[int] = None
    for record in records:
        at_ms = int(record.get("at_ms", 0))
        if current_ms is None or at_ms != current_ms:
            bursts.append([])
            current_ms = at_ms
        bursts[-1].append(record)
    return bursts


def trace_digest(records: Iterable[Dict[str, object]]) -> str:
    """SHA-256 over the canonical JSONL bytes of *records*.

    Same seed, same scenario, same digest - the determinism gate the
    CLI's ``scenario run`` acceptance check compares across runs.
    """
    payload = replay_jsonl(records).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()


def write_trace(records: Iterable[Dict[str, object]], path) -> Path:
    """Write a trace using the shared canonical JSONL emitter."""
    return write_replay_jsonl(records, path)
