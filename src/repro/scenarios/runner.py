"""Replay a generated scenario through the serving stack and grade it.

Two replay modes over the same generated trace and the same on-disk
artifacts:

* ``engine`` (default): bursts go through
  :meth:`~repro.core.serve_facade.ServingEngine.search_batch` in
  process. Fully deterministic - the report's ``replay`` section
  (results digest, answer-cache hit trajectory, event outcomes) is part
  of the determinism acceptance gate.
* ``daemon``: a real :class:`~repro.serve.server.PITServer` on a
  loopback socket; bursts are fired concurrently, reload events go
  through ``POST /admin/reload``. Timing-dependent counters (sheds,
  deadline misses) land in the report's ``daemon`` section, which the
  determinism comparison excludes; the zero-5xx and stale-precompute
  refusal gates still apply.

Quality is graded against the scenario's brute-force oracle miniature
(:mod:`repro.scenarios.quality`) regardless of mode, so a scenario run
always answers both "did the stack survive this traffic" and "were the
answers any good".
"""

from __future__ import annotations

import hashlib
import json
import math
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.engine import PITEngine
from ..core.persistence import save_propagation_index, save_summaries
from ..core.precompute import build_precompute, save_precompute
from ..core.serve_facade import ServingEngine
from ..exceptions import ConfigurationError, ReproError
from ..obs import MetricsRegistry
from .base import Scenario, ScenarioData, get_scenario
from .quality import evaluate_exact, evaluate_summarized
from .trace import trace_bursts

__all__ = [
    "REPORT_SCHEMA",
    "deterministic_view",
    "run_scenario",
]

REPORT_SCHEMA = "repro.scenarios/v1"

#: Answer/plan tier budgets for scenario runs (plenty at scenario scale).
_ANSWER_CACHE_BYTES = 4 << 20
_PLAN_CACHE_BYTES = 8 << 20

#: Hit-trajectory resolution: the trace is cut into this many windows.
_N_WINDOWS = 12


# ---------------------------------------------------------------------------
# Artifacts
# ---------------------------------------------------------------------------


def _build_artifacts(
    data: ScenarioData,
    scenario: Scenario,
    directory: Path,
    *,
    reseed: int = 0,
    index_path: Optional[Path] = None,
) -> Tuple[Path, Path]:
    """Build generation *reseed*'s artifacts; returns (index, summaries).

    Generation 0 builds the propagation index; later generations (churn
    reloads) rebuild only the summaries - with a shifted seed *and* a
    nudged representative budget, so the summaries fingerprint is
    guaranteed to change and a stale precompute is provably refused.
    """
    rep_fraction = min(1.0, scenario.rep_fraction + 0.05 * reseed)
    engine = PITEngine.from_dataset(
        data.bundle,
        summarizer=scenario.summarizer,
        theta=scenario.theta,
        rep_fraction=rep_fraction,
        seed=data.seed + 1000 * reseed,
    )
    if index_path is None:
        engine.propagation_index.build_all(workers=1)
        index_path = directory / "prop.npz"
        save_propagation_index(engine.propagation_index, index_path)
    engine.build_summaries()
    sums_path = directory / f"sums_{reseed}.json"
    save_summaries(engine.summaries, data.bundle.graph, sums_path)
    return index_path, sums_path


def _open_engine(
    data: ScenarioData,
    scenario: Scenario,
    index_path: Path,
    sums_path: Path,
    *,
    precompute_path: Optional[Path] = None,
    registry: Optional[MetricsRegistry] = None,
) -> ServingEngine:
    return ServingEngine.from_artifacts(
        data.bundle.graph,
        data.bundle.topic_index,
        sums_path,
        index_path=index_path,
        theta=scenario.theta,
        answer_cache_bytes=_ANSWER_CACHE_BYTES,
        plan_cache_bytes=_PLAN_CACHE_BYTES,
        precompute_path=precompute_path,
        metrics=registry,
    )


def _mine_precompute(
    data: ScenarioData,
    scenario: Scenario,
    index_path: Path,
    sums_path: Path,
    directory: Path,
) -> Path:
    """Mine the scenario's own trace into a warm-load artifact."""
    engine = _open_engine(data, scenario, index_path, sums_path)
    artifact = build_precompute(
        engine, data.records, top_queries=16, top_answers=64
    )
    path = directory / "precompute.json"
    save_precompute(artifact, path)
    return path


# ---------------------------------------------------------------------------
# Shared replay accounting
# ---------------------------------------------------------------------------


def _result_line(record: Dict[str, object], results) -> bytes:
    """Canonical bytes of one answered request, for the results digest."""
    payload = {
        "user": record["user"],
        "query": record["query"],
        "k": record["k"],
        "results": [[r.topic_id, r.label, r.influence] for r in results],
    }
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def _payload_line(record: Dict[str, object], body: Dict) -> bytes:
    """Same digest line, from a daemon response body."""
    payload = {
        "user": record["user"],
        "query": record["query"],
        "k": record["k"],
        "results": [
            [r["topic_id"], r["label"], r["influence"]]
            for r in body["results"]
        ],
    }
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


class _HitTracker:
    """Answer-tier hit/miss deltas that survive engine swaps."""

    def __init__(self, engine: ServingEngine):
        self._engine = engine
        self._hits = 0
        self._misses = 0

    def rebase(self, engine: ServingEngine) -> None:
        self._engine = engine
        self._hits = 0
        self._misses = 0

    def delta(self) -> Tuple[int, int]:
        stats = self._engine.answer_cache_stats()
        hits = stats.hits if stats else 0
        misses = stats.misses if stats else 0
        out = (hits - self._hits, misses - self._misses)
        self._hits, self._misses = hits, misses
        return out


class _Windows:
    """Fold per-burst hit/miss deltas into a fixed-width trajectory."""

    def __init__(self, n_records: int):
        self.size = max(1, math.ceil(n_records / _N_WINDOWS))
        self.rows: List[Dict[str, object]] = []
        self._open: Optional[Dict[str, int]] = None

    def add(self, n_requests: int, hits: int, misses: int) -> None:
        if self._open is None:
            self._open = {"requests": 0, "answer_hits": 0,
                          "answer_misses": 0}
        self._open["requests"] += n_requests
        self._open["answer_hits"] += hits
        self._open["answer_misses"] += misses
        if self._open["requests"] >= self.size:
            self.close()

    def close(self) -> None:
        if self._open is None:
            return
        total = self._open["answer_hits"] + self._open["answer_misses"]
        self._open["hit_ratio"] = (
            round(self._open["answer_hits"] / total, 6) if total else 0.0
        )
        self.rows.append(self._open)
        self._open = None


def _expects_answer_hits(records: Sequence[Dict[str, object]]) -> bool:
    """Does the trace repeat any (user, query, k) triple?"""
    seen = set()
    for record in records:
        key = (record["user"], record["query"], record["k"])
        if key in seen:
            return True
        seen.add(key)
    return False


def _event_plan(
    data: ScenarioData,
) -> List[Tuple[int, Dict[str, object]]]:
    return [(int(event["after"]), dict(event)) for event in data.events]


# ---------------------------------------------------------------------------
# Engine-mode replay
# ---------------------------------------------------------------------------


def _search_burst(engine: ServingEngine, burst) -> List:
    """One burst through search_batch, preserving per-record k."""
    outcomes: List = [None] * len(burst)
    by_k: Dict[int, List[int]] = {}
    for i, record in enumerate(burst):
        by_k.setdefault(int(record["k"]), []).append(i)
    for k, indices in sorted(by_k.items()):
        results = engine.search_batch(
            [(burst[i]["user"], burst[i]["query"]) for i in indices], k
        )
        for i, result in zip(indices, results):
            outcomes[i] = result
    return outcomes


def _replay_engine(
    scenario: Scenario,
    data: ScenarioData,
    index_path: Path,
    sums_path: Path,
    directory: Path,
    precompute_path: Optional[Path],
) -> Dict[str, object]:
    engine = _open_engine(
        data, scenario, index_path, sums_path,
        precompute_path=precompute_path,
    )
    warm = engine.tier_stats().get("answers")
    warm_answers = warm.n_items if warm else 0

    digest = hashlib.sha256()
    tracker = _HitTracker(engine)
    windows = _Windows(len(data.records))
    events_out: List[Dict[str, object]] = []
    pending = _event_plan(data)
    generation = 0
    served = 0

    for burst in trace_bursts(data.records):
        while pending and pending[0][0] <= served:
            _, event = pending.pop(0)
            outcome = {"after": served, "kind": event["kind"]}
            if event["kind"] == "invalidate_users":
                outcome["applied"] = True
                outcome["invalidated"] = engine.invalidate_answers(
                    users=event["users"]
                )
            elif event["kind"] == "delta":
                from ..core.dynamics import GraphDelta

                delta = GraphDelta(
                    inserts=tuple(
                        tuple(row) for row in event.get("inserts", ())
                    ),
                    deletes=tuple(
                        tuple(row) for row in event.get("deletes", ())
                    ),
                    reweights=tuple(
                        tuple(row) for row in event.get("reweights", ())
                    ),
                    decay=float(event.get("decay", 1.0)),
                    decay_floor=float(event.get("decay_floor", 0.0)),
                )
                report = engine.apply_delta(delta)
                outcome["applied"] = True
                outcome["affected"] = report["affected"]
                outcome["answers_invalidated"] = (
                    report["answers_invalidated"]
                )
            elif event["kind"] == "reload":
                reseed = int(event.get("reseed", 1))
                _, new_sums = _build_artifacts(
                    data, scenario, directory,
                    reseed=reseed, index_path=index_path,
                )
                if event.get("stale_precompute") and precompute_path:
                    try:
                        _open_engine(
                            data, scenario, index_path, new_sums,
                            precompute_path=precompute_path,
                        )
                        outcome["stale_precompute_refused"] = False
                    except ConfigurationError:
                        outcome["stale_precompute_refused"] = True
                engine = _open_engine(
                    data, scenario, index_path, new_sums
                )
                generation += 1
                engine.set_reload_generation(generation)
                tracker.rebase(engine)
                outcome["applied"] = True
                outcome["generation"] = generation
            else:
                outcome["applied"] = False
                outcome["reason"] = f"unknown event kind {event['kind']!r}"
            events_out.append(outcome)

        outcomes = _search_burst(engine, burst)
        for record, results in zip(burst, outcomes):
            digest.update(_result_line(record, results))
        served += len(burst)
        hits, misses = tracker.delta()
        windows.add(len(burst), hits, misses)
    windows.close()

    totals = {
        "answer_hits": sum(w["answer_hits"] for w in windows.rows),
        "answer_misses": sum(w["answer_misses"] for w in windows.rows),
    }
    return {
        "results_digest": digest.hexdigest(),
        "served": served,
        "warm_answers": warm_answers,
        "windows": windows.rows,
        "events": events_out,
        "answer_cache": totals,
        "generations": generation,
    }


# ---------------------------------------------------------------------------
# Daemon-mode replay
# ---------------------------------------------------------------------------


class _Daemon:
    """A PITServer on a loopback socket, driven from a thread."""

    def __init__(self, loader, config, registry):
        import asyncio
        import threading

        from ..serve import PITServer

        self.server = PITServer(loader, config, metrics=registry)
        self._asyncio = asyncio
        self._ready = threading.Event()
        self.exit_code = None
        self._thread = threading.Thread(target=self._main, daemon=True)

    def _main(self):
        self.exit_code = self._asyncio.run(
            self.server.run(ready_callback=self._ready.set)
        )

    def start(self, timeout: float = 300.0) -> "_Daemon":
        self._thread.start()
        if not self._ready.wait(timeout):
            raise ReproError("scenario daemon did not become ready")
        return self

    def stop(self, timeout: float = 60.0):
        if self._thread.is_alive():
            self.server.request_shutdown(0)
            self._thread.join(timeout)
        return self.exit_code

    def request(self, method, path, body=None, timeout=60):
        import http.client

        conn = http.client.HTTPConnection(
            "127.0.0.1", self.server.port, timeout=timeout
        )
        try:
            payload = json.dumps(body) if body is not None else None
            conn.request(
                method, path, body=payload,
                headers={"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            data = response.read()
            status = response.status
        finally:
            conn.close()
        try:
            parsed = json.loads(data)
        except (ValueError, UnicodeDecodeError):
            parsed = None
        return status, parsed


def _replay_daemon(
    scenario: Scenario,
    data: ScenarioData,
    index_path: Path,
    sums_path: Path,
    directory: Path,
    precompute_path: Optional[Path],
    registry: MetricsRegistry,
) -> Dict[str, object]:
    from ..serve import ServeConfig

    base = {"summaries": str(sums_path), "index": str(index_path)}
    if precompute_path is not None:
        base["precompute"] = str(precompute_path)

    def loader(overrides):
        paths = dict(base)
        # A reload that replaces the summaries implicitly retires the
        # warm-load artifact (it is fingerprint-stamped to the old ones)
        # unless the caller explicitly overrides a precompute path -
        # which is how the stale-precompute refusal is provoked.
        if "summaries" in overrides and "precompute" not in overrides:
            paths.pop("precompute", None)
        paths.update(overrides)
        return ServingEngine.from_artifacts(
            data.bundle.graph,
            data.bundle.topic_index,
            paths["summaries"],
            index_path=paths.get("index"),
            theta=scenario.theta,
            answer_cache_bytes=_ANSWER_CACHE_BYTES,
            plan_cache_bytes=_PLAN_CACHE_BYTES,
            precompute_path=paths.get("precompute"),
            metrics=registry,
        )

    config = ServeConfig(
        port=0,
        max_queue=int(getattr(scenario, "daemon_queue", 64)),
        default_k=5,
    )
    daemon = _Daemon(loader, config, registry).start()
    statuses: Dict[int, int] = {}
    digest = hashlib.sha256()
    digest_covers = 0
    events_out: List[Dict[str, object]] = []
    pending = _event_plan(data)
    served = 0

    def one(record):
        status, body = daemon.request(
            "POST", "/search",
            {"user": record["user"], "query": record["query"],
             "k": record["k"]},
        )
        return status, body

    try:
        for burst in trace_bursts(data.records):
            while pending and pending[0][0] <= served:
                _, event = pending.pop(0)
                outcome = {"after": served, "kind": event["kind"]}
                if event["kind"] == "reload":
                    reseed = int(event.get("reseed", 1))
                    _, new_sums = _build_artifacts(
                        data, scenario, directory,
                        reseed=reseed, index_path=index_path,
                    )
                    if event.get("stale_precompute") and precompute_path:
                        status, _ = daemon.request(
                            "POST", "/admin/reload",
                            {"summaries": str(new_sums),
                             "precompute": str(precompute_path)},
                        )
                        outcome["stale_precompute_refused"] = (
                            status == 400
                        )
                        outcome["stale_status"] = status
                    status, body = daemon.request(
                        "POST", "/admin/reload",
                        {"summaries": str(new_sums)},
                    )
                    outcome["applied"] = status == 200
                    outcome["status"] = status
                    if isinstance(body, dict):
                        outcome["generation"] = body.get("generation")
                elif event["kind"] == "delta":
                    status, body = daemon.request(
                        "POST", "/admin/delta",
                        {
                            key: event[key]
                            for key in ("inserts", "deletes", "reweights",
                                        "decay", "decay_floor")
                            if key in event
                        },
                    )
                    outcome["applied"] = status == 200
                    outcome["status"] = status
                    if isinstance(body, dict):
                        outcome["affected"] = body.get("affected")
                        outcome["answers_invalidated"] = body.get(
                            "answers_invalidated"
                        )
                else:
                    outcome["applied"] = False
                    outcome["reason"] = "engine-mode event"
                events_out.append(outcome)

            if len(burst) == 1:
                replies = [one(burst[0])]
            else:
                # Fire the whole burst concurrently (capped at 32 client
                # threads) - a spike burst larger than the admission
                # queue genuinely overruns it and must be shed with 429.
                with ThreadPoolExecutor(
                    max_workers=min(len(burst), 32)
                ) as pool:
                    replies = list(pool.map(one, burst))
            for record, (status, body) in zip(burst, replies):
                statuses[status] = statuses.get(status, 0) + 1
                if status == 200 and isinstance(body, dict):
                    digest.update(_payload_line(record, body))
                    digest_covers += 1
            served += len(burst)
    finally:
        daemon.stop()

    return {
        "statuses": {str(s): n for s, n in sorted(statuses.items())},
        "served": statuses.get(200, 0),
        "shed": statuses.get(429, 0),
        "deadline_missed": statuses.get(504, 0),
        "server_errors": sum(
            n for s, n in statuses.items() if s >= 500 and s != 504
        ),
        "results_digest": digest.hexdigest(),
        "digest_covers": digest_covers,
        "events": events_out,
    }


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def _gates(
    scenario: Scenario,
    data: ScenarioData,
    quality: Dict[str, Dict[str, object]],
    replay: Optional[Dict[str, object]],
    daemon: Optional[Dict[str, object]],
) -> Dict[str, bool]:
    gates: Dict[str, bool] = {
        "exact_precision": quality["exact"]["precision"] == 1.0,
        "exact_influence": (
            quality["exact"]["max_influence_error"] <= 1e-9
        ),
        "summarized_precision": (
            quality["summarized"]["precision"]
            >= scenario.min_summarized_precision
        ),
    }
    events = (replay or daemon or {}).get("events", [])
    reloads = [e for e in events if e["kind"] == "reload"]
    if reloads:
        gates["reloads_applied"] = all(e.get("applied") for e in reloads)
    deltas = [e for e in events if e["kind"] == "delta"]
    if deltas:
        gates["deltas_applied"] = all(e.get("applied") for e in deltas)
    stale = [
        e for e in events if "stale_precompute_refused" in e
    ]
    if stale:
        gates["stale_precompute_refused"] = all(
            e["stale_precompute_refused"] for e in stale
        )
    if replay is not None and _expects_answer_hits(data.records):
        gates["answer_hits"] = (
            replay["answer_cache"]["answer_hits"] > 0
        )
    if daemon is not None:
        gates["zero_5xx"] = daemon["server_errors"] == 0
        gates["all_admitted_answered"] = (
            daemon["served"] + daemon["shed"]
            + daemon["deadline_missed"]
            + sum(
                n for s, n in daemon["statuses"].items()
                if int(s) not in (200, 429, 504)
            )
            == len(data.records)
        )
    return gates


def run_scenario(
    name,
    *,
    seed: Optional[int] = None,
    profile: str = "default",
    mode: str = "engine",
    workdir=None,
    registry: Optional[MetricsRegistry] = None,
) -> Dict[str, object]:
    """Generate, replay, and grade one scenario; returns the report.

    The report's ``timing`` and ``daemon`` sections are
    timing-dependent; everything else is a pure function of
    ``(name, seed, profile, mode)`` - see :func:`deterministic_view`.
    """
    if mode not in ("engine", "daemon"):
        raise ConfigurationError(
            f"unknown scenario mode {mode!r} (engine or daemon)"
        )
    scenario = name if isinstance(name, Scenario) else get_scenario(name)
    data = scenario.generate(seed, profile)
    registry = registry if registry is not None else MetricsRegistry()

    started = time.perf_counter()
    cleanup = None
    if workdir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="pit-scenario-")
        workdir = cleanup.name
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    try:
        index_path, sums_path = _build_artifacts(data, scenario, workdir)
        precompute_path = None
        if scenario.wants_precompute:
            precompute_path = _mine_precompute(
                data, scenario, index_path, sums_path, workdir
            )
        replay = daemon = None
        if mode == "engine":
            replay = _replay_engine(
                scenario, data, index_path, sums_path, workdir,
                precompute_path,
            )
        else:
            daemon = _replay_daemon(
                scenario, data, index_path, sums_path, workdir,
                precompute_path, registry,
            )
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    oracle = scenario.oracle_instance(data.seed)
    quality = {
        "exact": evaluate_exact(oracle),
        "summarized": evaluate_summarized(
            oracle,
            summarizer=scenario.summarizer,
            rep_fraction=max(scenario.rep_fraction, 0.5),
            seed=data.seed,
        ),
    }
    wall = time.perf_counter() - started
    gates = _gates(scenario, data, quality, replay, daemon)
    report: Dict[str, object] = {
        "schema": REPORT_SCHEMA,
        "scenario": scenario.name,
        "title": scenario.title,
        "adversarial": scenario.adversarial,
        "seed": data.seed,
        "profile": profile,
        "mode": mode,
        "dataset": {
            "n_nodes": data.bundle.graph.n_nodes,
            "n_edges": data.bundle.graph.n_edges,
            "n_topics": data.bundle.topic_index.n_topics,
        },
        "engine": {
            "summarizer": scenario.summarizer,
            "theta": scenario.theta,
            "rep_fraction": scenario.rep_fraction,
            "precompute": scenario.wants_precompute,
        },
        "trace": {
            "digest": data.trace_digest(),
            "n_requests": len(data.records),
            "n_bursts": len(trace_bursts(data.records)),
            "n_events": len(data.events),
        },
        "quality": quality,
        "replay": replay,
        "daemon": daemon,
        "timing": {
            "wall_seconds": round(wall, 3),
            "rps": round(len(data.records) / wall, 1) if wall else None,
        },
        "gates": gates,
        "ok": all(gates.values()),
    }
    return report


def deterministic_view(report: Dict[str, object]) -> Dict[str, object]:
    """The report minus its timing-dependent sections.

    Engine-mode runs must produce identical views for identical
    ``(scenario, seed, profile)`` - the acceptance determinism gate.
    """
    view = dict(report)
    view.pop("timing", None)
    view.pop("daemon", None)
    return view
