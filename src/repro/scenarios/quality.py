"""Oracle-bounded quality metrics for scenarios.

Each scenario carries a *small instance* - a graph tiny enough (<= 16
nodes) that Definition 1's literal simple-path enumeration
(:func:`~repro.core.influence.simple_path_influence`) is affordable -
and two quality evaluations against it, mirroring the property harness
(``tests/test_properties_search.py``):

* :func:`evaluate_exact` drives ``θ = 1e-300`` with *identity*
  summaries (every topic node a representative, uniform ``1/|V_t|``
  weights), where the search's influence provably equals the
  enumeration. The gate is strict: precision 1.0, influence error
  within float tolerance. This is the end-to-end correctness check -
  if replaying a scenario through the serving stack ever broke ranking,
  this catches it.
* :func:`evaluate_summarized` runs the same instance through a real
  :class:`~repro.core.engine.PITEngine` summarizer (the paper's actual
  system) and reports mean top-k precision against the oracle ranking -
  a *quality trajectory* number, gated per scenario with a calibrated
  floor rather than 1.0 (summaries are an approximation by design).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from .._utils import SeedLike, coerce_rng
from ..core.engine import PITEngine
from ..core.influence import simple_path_influence
from ..core.propagation import PropagationIndex
from ..core.search import PersonalizedSearcher
from ..core.summarization import TopicSummary
from ..exceptions import ConfigurationError
from ..graph import SocialGraph, preferential_attachment_graph
from ..topics import TopicIndex

__all__ = [
    "OracleInstance",
    "evaluate_exact",
    "evaluate_summarized",
    "identity_summaries",
    "random_oracle_instance",
]

#: θ low enough that every cycle-free path qualifies for Γ(v): the
#: marked frontier is empty and summary influence is exact.
ORACLE_THETA = 1e-300

_ADJECTIVES = ("solar", "lunar", "tidal", "polar")
_NOUNS = ("phone", "camera", "drone", "tablet")


@dataclass(frozen=True)
class OracleInstance:
    """A brute-force-checkable miniature of a scenario's workload."""

    graph: SocialGraph
    topic_index: TopicIndex
    queries: Tuple[str, ...]
    k: int = 3

    def __post_init__(self):
        if self.graph.n_nodes > 16:
            raise ConfigurationError(
                f"oracle instances must stay brute-forceable: got "
                f"{self.graph.n_nodes} nodes (max 16)"
            )
        if not self.queries:
            raise ConfigurationError("oracle instance needs >= 1 query")


def identity_summaries(topic_index: TopicIndex) -> Dict[int, TopicSummary]:
    """Uniform-weight summaries over every topic node (exact influence)."""
    summaries = {}
    for topic_id in range(topic_index.n_topics):
        nodes = topic_index.topic_nodes(topic_id)
        weight = 1.0 / nodes.size
        summaries[topic_id] = TopicSummary(
            topic_id, {int(v): weight for v in nodes}
        )
    return summaries


def random_oracle_instance(
    seed: int,
    *,
    n_nodes: int = 10,
    n_topics: int = 4,
    queries: Sequence[str] = _NOUNS,
    k: int = 3,
) -> OracleInstance:
    """Seeded random instance in the property harness's mold."""
    graph = preferential_attachment_graph(
        n_nodes, 2, seed=seed, reciprocity=0.4
    )
    rng = coerce_rng(seed + 2)
    labels = [
        f"{_ADJECTIVES[i % len(_ADJECTIVES)]} {_NOUNS[i // len(_ADJECTIVES)]}"
        for i in range(n_topics)
    ]
    assignments = {}
    for node in range(n_nodes):
        count = int(rng.integers(1, 4))
        picks = rng.choice(n_topics, size=min(count, n_topics), replace=False)
        assignments[node] = [labels[int(p)] for p in picks]
    for i, label in enumerate(labels):
        assignments[i % n_nodes] = list(
            set(assignments[i % n_nodes]) | {label}
        )
    topic_index = TopicIndex(n_nodes, assignments)
    return OracleInstance(
        graph=graph,
        topic_index=topic_index,
        queries=tuple(queries),
        k=k,
    )


def _oracle_ranking(
    instance: OracleInstance, query: str, user: int
) -> Tuple[List[int], Dict[int, float]]:
    """Exact top-k topic ids (ties broken by label) and all scores."""
    topic_index = instance.topic_index
    related = topic_index.related_topics(query)
    scores = {
        t: simple_path_influence(
            instance.graph,
            [int(v) for v in topic_index.topic_nodes(t)],
            user,
            max_length=instance.graph.n_nodes,
        )
        for t in related
    }
    expected = sorted(
        scores, key=lambda t: (-scores[t], topic_index.label(t))
    )[: instance.k]
    return expected, scores


def _precision(got: Sequence[int], expected: Sequence[int]) -> float:
    if not expected:
        return 1.0
    return len(set(got) & set(expected)) / len(expected)


def evaluate_exact(instance: OracleInstance) -> Dict[str, object]:
    """Search with identity summaries at ``θ ~ 0`` vs. the enumeration.

    Returns ``{"precision", "max_influence_error", "n_checked"}`` where
    precision is the mean top-k set precision (1.0 expected - this is
    the hard gate) and the influence error is the worst absolute
    deviation from Definition 1 across every returned result.
    """
    searcher = PersonalizedSearcher(
        instance.topic_index,
        identity_summaries(instance.topic_index),
        PropagationIndex(instance.graph, ORACLE_THETA),
    )
    precisions: List[float] = []
    max_error = 0.0
    n_checked = 0
    for user in range(instance.graph.n_nodes):
        for query in instance.queries:
            expected, scores = _oracle_ranking(instance, query, user)
            if not expected:
                continue
            results, _ = searcher.search(user, query, instance.k)
            got = [r.topic_id for r in results]
            precisions.append(_precision(got, expected))
            for result in results:
                error = abs(result.influence - scores[result.topic_id])
                if error > max_error:
                    max_error = error
            n_checked += 1
    if not n_checked:
        raise ConfigurationError(
            "oracle instance matched no topics for any query"
        )
    return {
        "precision": sum(precisions) / len(precisions),
        "max_influence_error": max_error,
        "n_checked": n_checked,
    }


def evaluate_summarized(
    instance: OracleInstance,
    *,
    summarizer: str = "rcl",
    rep_fraction: float = 0.5,
    seed: SeedLike = 0,
) -> Dict[str, object]:
    """Mean top-k precision of a real summarizer vs. the oracle ranking."""
    engine = PITEngine(
        instance.graph,
        instance.topic_index,
        summarizer=summarizer,
        theta=ORACLE_THETA,
        rep_fraction=rep_fraction,
        seed=seed,
    )
    precisions: List[float] = []
    for user in range(instance.graph.n_nodes):
        for query in instance.queries:
            expected, _ = _oracle_ranking(instance, query, user)
            if not expected:
                continue
            results = engine.search(user=user, query=query, k=instance.k)
            precisions.append(
                _precision([r.topic_id for r in results], expected)
            )
    if not precisions:
        raise ConfigurationError(
            "oracle instance matched no topics for any query"
        )
    return {
        "precision": sum(precisions) / len(precisions),
        "n_checked": len(precisions),
        "summarizer": summarizer,
        "rep_fraction": rep_fraction,
    }
