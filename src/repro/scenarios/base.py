"""Scenario model: seeded generators of graph + topics + timed traces.

A :class:`Scenario` bundles everything one replayable workload needs:

* a seeded dataset (graph + topic index), via :meth:`Scenario.dataset`;
* a timed request trace in the shared replay-JSONL format
  (:mod:`repro.scenarios.trace`), via :meth:`Scenario.trace`;
* mid-replay *events* (structural reloads, targeted answer
  invalidation) that the runner applies between trace segments;
* a brute-force-checkable :class:`~repro.scenarios.quality.OracleInstance`
  miniature plus per-scenario gate thresholds.

Everything is a pure function of ``(scenario, seed, profile)``: two
generations with the same inputs produce byte-identical traces (and so
identical digests), which is what the determinism acceptance gate
checks. Profiles scale the same shape up or down (``default`` vs. the
CI-friendly ``smoke``); they never change the scenario's character.

Concrete scenarios live in :mod:`repro.scenarios.catalog` and register
themselves here via :func:`register`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple, Type

from ..datasets import DatasetBundle
from ..exceptions import ConfigurationError
from .quality import OracleInstance, random_oracle_instance
from .trace import trace_digest, validate_trace, write_trace

__all__ = [
    "Scenario",
    "ScenarioData",
    "get_scenario",
    "list_scenarios",
    "register",
]


@dataclass
class ScenarioData:
    """One generated scenario run: dataset + trace + events, frozen."""

    name: str
    seed: int
    profile: str
    bundle: DatasetBundle
    records: List[Dict[str, object]]
    events: List[Dict[str, object]] = field(default_factory=list)
    meta: Dict[str, object] = field(default_factory=dict)

    def trace_digest(self) -> str:
        """SHA-256 of the trace's canonical JSONL bytes."""
        return trace_digest(self.records)

    def write_trace(self, path):
        """Write the trace JSONL (readable by ``search --batch`` etc.)."""
        return write_trace(self.records, path)


class Scenario:
    """Base class: subclass, fill the class attributes, implement hooks.

    Subclasses must set :attr:`name` / :attr:`title` / :attr:`description`
    and implement :meth:`dataset` and :meth:`build_trace`. Optional
    hooks: :meth:`build_events` (default: none), :meth:`oracle_instance`
    (default: a property-harness-style random miniature), and the
    ``engine_*`` knobs below.
    """

    #: Registry key (kebab-case); also the CLI name.
    name: str = ""
    title: str = ""
    description: str = ""
    #: Adversarial scenarios exist to fight a serving-layer defense.
    adversarial: bool = False
    #: Seed used when the caller passes none.
    default_seed: int = 42
    #: Per-profile size knobs; every scenario ships "default" and "smoke".
    profiles: Mapping[str, Mapping[str, object]] = {"default": {}}

    # Engine build knobs for the runner's artifact stage.
    summarizer: str = "rcl"
    theta: float = 0.002
    rep_fraction: float = 0.2
    #: Warm the answer/plan tiers from a mined precompute artifact.
    wants_precompute: bool = False
    #: Daemon-mode admission capacity (small = provoke 429 shedding).
    daemon_queue: int = 64
    #: Floor for the summarized-precision quality gate (calibrated).
    min_summarized_precision: float = 0.5

    # ------------------------------------------------------------------
    def params(self, profile: str = "default") -> Dict[str, object]:
        """Resolved size knobs for *profile* (typed refusal on unknown)."""
        try:
            return dict(self.profiles[profile])
        except KeyError:
            known = ", ".join(sorted(self.profiles))
            raise ConfigurationError(
                f"scenario {self.name!r} has no profile {profile!r} "
                f"(choose from: {known})"
            ) from None

    # -- hooks ---------------------------------------------------------
    def dataset(self, seed: int, params: Dict[str, object]) -> DatasetBundle:
        raise NotImplementedError

    def build_trace(
        self, bundle: DatasetBundle, seed: int, params: Dict[str, object]
    ) -> List[Dict[str, object]]:
        raise NotImplementedError

    def build_events(
        self,
        bundle: DatasetBundle,
        records: List[Dict[str, object]],
        seed: int,
        params: Dict[str, object],
    ) -> List[Dict[str, object]]:
        """Mid-replay events: ``{"after": n, "kind": ...}`` dicts.

        ``after`` counts trace records replayed before the event fires
        (the runner aligns it to the enclosing burst boundary). Kinds:
        ``"reload"`` (rebuild summaries with ``seed + reseed`` and swap
        engines, optionally first attempting a refused stale-precompute
        reload) and ``"invalidate_users"`` (drop those users' answer-tier
        entries; engine mode only).
        """
        return []

    def oracle_instance(self, seed: int) -> OracleInstance:
        """Brute-forceable miniature for the quality gates."""
        return random_oracle_instance(seed)

    # ------------------------------------------------------------------
    def generate(
        self, seed: Optional[int] = None, profile: str = "default"
    ) -> ScenarioData:
        """Generate the full scenario deterministically."""
        seed = self.default_seed if seed is None else int(seed)
        params = self.params(profile)
        bundle = self.dataset(seed, params)
        records = validate_trace(
            self.build_trace(bundle, seed, params), graph=bundle.graph
        )
        events = self.build_events(bundle, records, seed, params)
        for event in events:
            after = event.get("after")
            if not isinstance(after, int) or not 0 <= after <= len(records):
                raise ConfigurationError(
                    f"scenario {self.name!r} event has invalid 'after' "
                    f"offset: {after!r}"
                )
        return ScenarioData(
            name=self.name,
            seed=seed,
            profile=profile,
            bundle=bundle,
            records=records,
            events=sorted(events, key=lambda e: e["after"]),
            meta={
                "title": self.title,
                "adversarial": self.adversarial,
                "n_nodes": bundle.graph.n_nodes,
                "n_edges": bundle.graph.n_edges,
                "n_topics": bundle.topic_index.n_topics,
                **params,
            },
        )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_REGISTRY: Dict[str, Type[Scenario]] = {}


def register(cls: Type[Scenario]) -> Type[Scenario]:
    """Class decorator adding a scenario to the catalogue."""
    if not cls.name:
        raise ConfigurationError(f"{cls.__name__} has no scenario name")
    if cls.name in _REGISTRY:
        raise ConfigurationError(
            f"duplicate scenario name {cls.name!r}"
        )
    _REGISTRY[cls.name] = cls
    return cls


def get_scenario(name: str) -> Scenario:
    """Instantiate a registered scenario (typed refusal on unknown)."""
    try:
        return _REGISTRY[name]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigurationError(
            f"unknown scenario {name!r} (choose from: {known})"
        ) from None


def list_scenarios() -> List[Scenario]:
    """All registered scenarios, sorted by name."""
    return [_REGISTRY[name]() for name in sorted(_REGISTRY)]
