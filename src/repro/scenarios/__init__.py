"""Replayable, oracle-gated workload scenarios (ROADMAP item 5).

Every scenario is a seeded, deterministic generator of a graph + topic
space + timed request trace (the replay-JSONL format shared by ``search
--batch``, the serving daemon, and ``pit-search precompute``), plus the
quality gates to grade a replay: brute-force-oracle precision and
influence error, answer-cache hit trajectory, shed/deadline rates.

* :mod:`~repro.scenarios.catalog` - the six shipped scenarios
* :mod:`~repro.scenarios.runner` - replay through ``ServingEngine`` or
  the live daemon, producing the ``repro.scenarios/v1`` report
* CLI: ``pit-search scenario list | generate | run``
"""

from .base import Scenario, ScenarioData, get_scenario, list_scenarios
from .catalog import (
    EDGES,
    TOPICS,
    build_phone_network,
    campaign_audience,
    campaign_topic,
    hot_topic_update,
)
from .quality import (
    OracleInstance,
    evaluate_exact,
    evaluate_summarized,
    identity_summaries,
    random_oracle_instance,
)
from .runner import REPORT_SCHEMA, deterministic_view, run_scenario
from .trace import (
    load_trace,
    timestamped,
    trace_bursts,
    trace_digest,
    validate_trace,
    write_trace,
)

__all__ = [
    "EDGES",
    "OracleInstance",
    "REPORT_SCHEMA",
    "Scenario",
    "ScenarioData",
    "TOPICS",
    "build_phone_network",
    "campaign_audience",
    "campaign_topic",
    "deterministic_view",
    "evaluate_exact",
    "evaluate_summarized",
    "get_scenario",
    "hot_topic_update",
    "identity_summaries",
    "list_scenarios",
    "load_trace",
    "random_oracle_instance",
    "run_scenario",
    "timestamped",
    "trace_bursts",
    "trace_digest",
    "validate_trace",
    "write_trace",
]
