"""BasePropagation - per-topic-node use of the propagation index (S27, §6.1).

"The basic idea of BasePropagation is to calculate the propagation influence
of each topic node for a given user using only the personalized influence
propagation index described in Section 5.1."

Unlike RCL-A/LRW-A, no summarization happens: every topic node is looked up
in ``Γ(user)`` directly, so the method pays ``O(|V_t|)`` per topic and must
"retrieve all topic nodes into the memory at the beginning of each query
evaluation" - which is exactly why the paper finds it slower and hungrier
than the summarized methods, yet much faster than the exhaustive baselines.
"""

from __future__ import annotations

from typing import Optional

from ..core.propagation import PropagationIndex
from ..exceptions import ConfigurationError
from ..graph import SocialGraph
from ..topics import TopicIndex
from .base import BaselineRanker

__all__ = ["BasePropagationRanker"]


class BasePropagationRanker(BaselineRanker):
    """Exact-within-θ influence via direct propagation-index lookups.

    Parameters
    ----------
    graph / topic_index:
        The social network and its topic space.
    propagation_index:
        A :class:`~repro.core.propagation.PropagationIndex`; pass the
        engine's instance to share materialized entries, or leave ``None``
        to build a private one with the given *theta*.
    theta:
        Path-probability threshold for a privately built index.
    """

    name = "propagation"

    def __init__(
        self,
        graph: SocialGraph,
        topic_index: TopicIndex,
        *,
        propagation_index: Optional[PropagationIndex] = None,
        theta: float = 0.05,
    ):
        super().__init__(graph, topic_index)
        if propagation_index is None:
            propagation_index = PropagationIndex(graph, theta)
        elif propagation_index.graph is not graph:
            raise ConfigurationError(
                "propagation_index was built for a different graph"
            )
        self._propagation = propagation_index

    @property
    def propagation_index(self) -> PropagationIndex:
        """The underlying §5.1 index."""
        return self._propagation

    def topic_influence(self, topic_id: int, user: int) -> float:
        """``(1/|V_t|) Σ_{u ∈ V_t} Γ(user)[u]``."""
        topic_nodes = self._topic_index.topic_nodes(topic_id)
        if topic_nodes.size == 0:
            return 0.0
        gamma = self._propagation.entry(user).gamma
        total = sum(gamma.get(int(node), 0.0) for node in topic_nodes)
        return total / topic_nodes.size
