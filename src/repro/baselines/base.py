"""Common interface of the paper's baseline rankers (S25-S27).

All three baselines answer the same question as the PIT engine - "rank the
q-related topics by influence on this user" - so they share the
:class:`~repro.core.search.SearchResult` output type and a small template
method: subclasses implement :meth:`BaselineRanker.topic_influence` and the
base class does topic retrieval, ranking and tie-breaking.
"""

from __future__ import annotations

import abc
from typing import List, Union

from .._utils import require_in_range
from ..core.search import SearchResult
from ..graph import SocialGraph
from ..topics import KeywordQuery, TopicIndex

__all__ = ["BaselineRanker"]


class BaselineRanker(abc.ABC):
    """Template for the exhaustive topic-influence baselines.

    Parameters
    ----------
    graph / topic_index:
        The social network and its topic space.
    """

    #: Machine name used in reports ("matrix", "dijkstra", "propagation").
    name: str = "abstract"

    def __init__(self, graph: SocialGraph, topic_index: TopicIndex):
        self._graph = graph
        self._topic_index = topic_index

    @property
    def graph(self) -> SocialGraph:
        """The social graph."""
        return self._graph

    @property
    def topic_index(self) -> TopicIndex:
        """The topic space."""
        return self._topic_index

    @abc.abstractmethod
    def topic_influence(self, topic_id: int, user: int) -> float:
        """Influence of one topic on *user* under this baseline's model."""

    def _before_search(self) -> None:
        """Hook invoked at the start of every :meth:`search` call.

        Subclasses use it to reset per-query state (deviation budgets,
        per-query matrix rebuilds).
        """

    def search(
        self,
        user: int,
        query: Union[str, KeywordQuery],
        k: int = 10,
    ) -> List[SearchResult]:
        """Rank the q-related topics by influence on *user*.

        Ties break on topic label, matching the engine's determinism.
        """
        require_in_range("k", k, 1)
        self._before_search()
        user = self._graph._check_node(user)
        topic_ids = self._topic_index.related_topics(query)
        scored = [
            SearchResult(
                topic_id=t,
                label=self._topic_index.label(t),
                influence=self.topic_influence(t, user),
            )
            for t in topic_ids
        ]
        scored.sort(key=lambda r: (-r.influence, r.label))
        return scored[:k]
