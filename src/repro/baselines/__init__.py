"""The paper's three baselines (DESIGN.md S25-S27)."""

from .base import BaselineRanker
from .dijkstra import BaseDijkstraRanker, max_probability_path, path_probability
from .matrix import BaseMatrixRanker
from .propagation import BasePropagationRanker
from .relevance import HybridRanker, RelevanceOnlyRanker

__all__ = [
    "BaselineRanker",
    "BaseMatrixRanker",
    "BaseDijkstraRanker",
    "BasePropagationRanker",
    "RelevanceOnlyRanker",
    "HybridRanker",
    "max_probability_path",
    "path_probability",
]
