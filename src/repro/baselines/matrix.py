"""BaseMatrix - exhaustive matrix-power propagation (S25, paper §6.1).

"For each q-related topic, the influence is propagated to the social users
through a number of matrix multiplication iterations (set to 6 in this
work)." The aggregated influence is exact over *walks* of length 1..L, so
the paper uses BaseMatrix as the ground truth on the small dataset.

Two execution modes:

* ``materialize=False`` (default) - per query, each topic's source vector is
  pushed through ``L`` transposed mat-vec products. Numerically identical
  to the matrix-power formulation and the cheapest exact evaluation.
* ``materialize=True`` - builds (and caches) the cumulative power matrix
  ``M = Σ_{l=1..L} P^l`` with sparse matrix-matrix products, then answers
  by reading ``M``. This is the paper's literal procedure and the reason
  BaseMatrix is hopeless at scale (the powers densify - the paper reports
  120 GB at 3M nodes); it exists here so the Figure 13/14 space-cost
  experiment can measure exactly that blow-up.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .._utils import require_in_range
from ..core.influence import topic_influence_vector
from ..graph import SocialGraph
from ..topics import TopicIndex
from .base import BaselineRanker

__all__ = ["BaseMatrixRanker"]


class BaseMatrixRanker(BaselineRanker):
    """Exact walk-based influence by repeated matrix multiplication.

    Parameters
    ----------
    graph / topic_index:
        The social network and its topic space.
    length:
        ``L`` - the number of propagation iterations (paper: 6).
    materialize:
        Build the explicit cumulative power matrix (see module docstring).
    cache_vectors:
        Cache per-topic influence vectors across queries. Off by default
        (the paper recomputes per query); effectiveness harnesses turn it
        on when using BaseMatrix as ground truth for many queries.
    rebuild_per_query:
        With ``materialize=True``, discard the cumulative power matrix at
        the start of every :meth:`search` call, so each query pays the full
        "number of matrix multiplication iterations" the paper times -
        this is the mode the Figure 5 bench uses.
    """

    name = "matrix"

    def __init__(
        self,
        graph: SocialGraph,
        topic_index: TopicIndex,
        *,
        length: int = 6,
        materialize: bool = False,
        cache_vectors: bool = False,
        rebuild_per_query: bool = False,
    ):
        super().__init__(graph, topic_index)
        require_in_range("length", length, 1)
        self._length = int(length)
        self._materialize = bool(materialize)
        self._cache_vectors = bool(cache_vectors)
        self._rebuild_per_query = bool(rebuild_per_query)
        self._cumulative = None
        self._vector_cache = {}

    def _before_search(self) -> None:
        if self._rebuild_per_query:
            self._cumulative = None
            self._vector_cache.clear()

    @property
    def length(self) -> int:
        """Number of propagation iterations ``L``."""
        return self._length

    # ------------------------------------------------------------------
    def cumulative_power_matrix(self):
        """``Σ_{l=1..L} P^l`` as a CSR matrix (built once, cached)."""
        if self._cumulative is None:
            transition = self._graph.transition_matrix()
            power = transition.copy()
            total = transition.copy()
            for _ in range(self._length - 1):
                power = (power @ transition).tocsr()
                total = (total + power).tocsr()
            self._cumulative = total
        return self._cumulative

    def influence_vector(self, topic_id: int) -> np.ndarray:
        """Influence of *topic_id* on every node (exact, walk-based)."""
        topic_id = self._topic_index.resolve(topic_id)
        cached = self._vector_cache.get(topic_id)
        if cached is not None:
            return cached
        topic_nodes = self._topic_index.topic_nodes(topic_id)
        if self._materialize:
            matrix = self.cumulative_power_matrix()
            source = np.zeros(self._graph.n_nodes, dtype=np.float64)
            source[topic_nodes] = 1.0 / topic_nodes.size
            vector = np.asarray(matrix.T @ source).ravel()
        else:
            vector = topic_influence_vector(
                self._graph, topic_nodes, self._length
            )
        if self._cache_vectors:
            self._vector_cache[topic_id] = vector
        return vector

    def topic_influence(self, topic_id: int, user: int) -> float:
        """Exact influence of one topic on *user*."""
        return float(self.influence_vector(topic_id)[self._graph._check_node(user)])

    def memory_bytes(self) -> int:
        """Approximate space held by materialized powers and cached vectors.

        This is what the Figure 13/14 space benches report for BaseMatrix.
        """
        total = 0
        if self._cumulative is not None:
            total += int(
                self._cumulative.data.nbytes
                + self._cumulative.indices.nbytes
                + self._cumulative.indptr.nbytes
            )
        total += sum(v.nbytes for v in self._vector_cache.values())
        return total
