"""BaseDijkstra - shortest-path + path-substitution baseline (S26, §6.1).

"BaseDijkstra first computes the shortest path from each topic node to the
query user using Dijkstra's algorithm, and then replaces a sub-path in the
shortest path with an alternative path that can connect the two end points
of the sub-path. By repeating the replacement operation, we can generate a
number of distinct paths from the topic node to the query user node."

The *shortest* path under influence semantics is the **maximum-probability**
path, i.e. Dijkstra on edge costs ``-log Λ(u, v)``. Alternative paths come
from a bounded Yen-style deviation search: for each edge of the current best
path, ban it, re-route the suffix, and splice. The influence of a topic node
on the user is the summed probability of the distinct paths found; topic
influence averages over topic nodes with the uniform ``1/|V_t|`` weights.

One documented optimization over the literal pseudocode: the base shortest
paths for *all* topic nodes come from a single reverse Dijkstra rooted at
the query user (identical results, one heap instead of ``|V_t|``); the
deviation reruns are still per topic node and dominate the cost, which is
why this baseline is the slowest at scale in the paper (25 h) and here.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .._utils import require_in_range
from ..graph import SocialGraph
from ..topics import TopicIndex
from .base import BaselineRanker

__all__ = ["BaseDijkstraRanker", "max_probability_path", "path_probability"]


def path_probability(graph: SocialGraph, path: Sequence[int]) -> float:
    """Product of edge transition probabilities along *path*."""
    probability = 1.0
    for u, v in zip(path, path[1:]):
        probability *= graph.edge_probability(int(u), int(v))
    return probability


def max_probability_path(
    graph: SocialGraph,
    source: int,
    target: int,
    *,
    banned_edges: Optional[Set[Tuple[int, int]]] = None,
    banned_nodes: Optional[Set[int]] = None,
) -> Optional[List[int]]:
    """Dijkstra on ``-log`` weights: the single most probable source->target path.

    Returns the node sequence (inclusive) or ``None`` when no path exists
    under the bans.
    """
    source = graph._check_node(source)
    target = graph._check_node(target)
    banned_edges = banned_edges or set()
    banned_nodes = banned_nodes or set()
    if source in banned_nodes or target in banned_nodes:
        return None
    if source == target:
        return [source]

    dist: Dict[int, float] = {source: 0.0}
    parent: Dict[int, int] = {}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    settled: Set[int] = set()
    while heap:
        cost, node = heapq.heappop(heap)
        if node in settled:
            continue
        settled.add(node)
        if node == target:
            break
        targets, probs = graph.out_edges(node)
        for nxt, probability in zip(targets, probs):
            nxt = int(nxt)
            if nxt in banned_nodes or (node, nxt) in banned_edges:
                continue
            candidate = cost - math.log(float(probability))
            if candidate < dist.get(nxt, math.inf):
                dist[nxt] = candidate
                parent[nxt] = node
                heapq.heappush(heap, (candidate, nxt))
    if target not in settled:
        return None
    path = [target]
    while path[-1] != source:
        path.append(parent[path[-1]])
    path.reverse()
    return path


class BaseDijkstraRanker(BaselineRanker):
    """Influence from a bounded set of high-probability distinct paths.

    Parameters
    ----------
    graph / topic_index:
        The social network and its topic space.
    max_alternatives:
        Deviation paths generated per topic node (on top of the best path).
    deviation_budget:
        Optional cap on deviation Dijkstra re-runs *per query*. The paper's
        procedure is unbounded (and needs 25 hours at full scale); the
        benchmark harness sets a budget so timing sweeps finish, after
        which remaining topic nodes fall back to their best path only.
        ``None`` (default) reproduces the unbounded behaviour.
    """

    name = "dijkstra"

    def __init__(
        self,
        graph: SocialGraph,
        topic_index: TopicIndex,
        *,
        max_alternatives: int = 3,
        deviation_budget: Optional[int] = None,
    ):
        super().__init__(graph, topic_index)
        require_in_range("max_alternatives", max_alternatives, 0)
        if deviation_budget is not None:
            require_in_range("deviation_budget", deviation_budget, 0)
        self._max_alternatives = int(max_alternatives)
        self._deviation_budget = deviation_budget
        self._deviations_used = 0
        # Per-user reverse shortest-path tree cache: user -> parent map.
        self._tree_cache: Dict[int, Dict[int, int]] = {}

    def _before_search(self) -> None:
        self._deviations_used = 0

    def _budget_left(self) -> bool:
        return (
            self._deviation_budget is None
            or self._deviations_used < self._deviation_budget
        )

    # ------------------------------------------------------------------
    def _reverse_tree(self, user: int) -> Dict[int, int]:
        """Parent pointers of the max-probability paths from all nodes to *user*.

        ``parent[x]`` is the next hop on the best ``x -> user`` path. Built
        with one Dijkstra over the reversed graph and cached per user.
        """
        cached = self._tree_cache.get(user)
        if cached is not None:
            return cached
        parent: Dict[int, int] = {}
        dist: Dict[int, float] = {user: 0.0}
        heap: List[Tuple[float, int]] = [(0.0, user)]
        settled: Set[int] = set()
        while heap:
            cost, node = heapq.heappop(heap)
            if node in settled:
                continue
            settled.add(node)
            sources, probs = self._graph.in_edges(node)
            for prev, probability in zip(sources, probs):
                prev = int(prev)
                candidate = cost - math.log(float(probability))
                if candidate < dist.get(prev, math.inf):
                    dist[prev] = candidate
                    parent[prev] = node
                    heapq.heappush(heap, (candidate, prev))
        self._tree_cache[user] = parent
        return parent

    def _best_path(self, source: int, user: int) -> Optional[List[int]]:
        """Best source->user path recovered from the reverse tree."""
        if source == user:
            return [source]
        parent = self._reverse_tree(user)
        if source not in parent:
            return None
        path = [source]
        while path[-1] != user:
            path.append(parent[path[-1]])
        return path

    def distinct_paths(self, source: int, user: int) -> List[List[int]]:
        """The best path plus up to ``max_alternatives`` deviation paths."""
        best = self._best_path(source, user)
        if best is None:
            return []
        paths = [best]
        seen = {tuple(best)}
        # Deviate at each edge of the best path: ban it, re-route the
        # remainder, splice with the prefix (sub-path replacement).
        for i in range(len(best) - 1):
            if len(paths) - 1 >= self._max_alternatives:
                break
            if not self._budget_left():
                break
            self._deviations_used += 1
            prefix = best[: i + 1]
            banned_edge = {(best[i], best[i + 1])}
            banned_nodes = set(prefix[:-1])
            suffix = max_probability_path(
                self._graph,
                best[i],
                user,
                banned_edges=banned_edge,
                banned_nodes=banned_nodes,
            )
            if suffix is None:
                continue
            candidate = prefix[:-1] + suffix
            key = tuple(candidate)
            if key not in seen:
                seen.add(key)
                paths.append(candidate)
        return paths

    def node_influence(self, source: int, user: int) -> float:
        """Summed probability of the distinct source->user paths."""
        return sum(
            path_probability(self._graph, path)
            for path in self.distinct_paths(source, user)
            if len(path) > 1
        )

    def topic_influence(self, topic_id: int, user: int) -> float:
        """Average node influence over ``V_t`` (uniform local weights)."""
        topic_nodes = self._topic_index.topic_nodes(topic_id)
        if topic_nodes.size == 0:
            return 0.0
        total = sum(
            self.node_influence(int(node), user) for node in topic_nodes
        )
        return total / topic_nodes.size
