"""Relevance-only topic ranking - the paper's introductory comparator.

"The most widely-accepted method is to select the relevant topics based on
the term relevance between topics and the query" (paper §1). This ranker
ignores the social network entirely: every user gets the same TF-IDF
ranking for the same query. It exists to quantify the personalization gap -
how differently PIT-Search answers compare to a one-size-fits-all keyword
search - and as the non-social arm of the hybrid ranker.

:class:`HybridRanker` combines relevance with personalized influence
(``score = relevance^(1-w) * influence^w``), the natural "personalized
keyword search" extension the paper's related-work section gestures at.
"""

from __future__ import annotations

from typing import Callable, List, Union

from .._utils import require_in_range, require_probability
from ..core.search import SearchResult
from ..exceptions import ConfigurationError
from ..graph import SocialGraph
from ..topics import KeywordQuery, TopicIndex
from ..topics.relevance import TfIdfScorer
from .base import BaselineRanker

__all__ = ["RelevanceOnlyRanker", "HybridRanker"]


class RelevanceOnlyRanker(BaselineRanker):
    """Non-personalized TF-IDF ranking of q-related topics."""

    name = "relevance"

    def __init__(self, graph: SocialGraph, topic_index: TopicIndex):
        super().__init__(graph, topic_index)
        self._scorer = TfIdfScorer(topic_index)

    def topic_influence(self, topic_id: int, user: int) -> float:
        """The TF-IDF score of the active query; user-independent.

        The template's per-topic hook has no query access, so
        :meth:`search` is overridden instead; this method exists only to
        satisfy the interface and scores a topic against its own label
        (always 1.0 for a non-empty label).
        """
        return 1.0

    def search(
        self,
        user: int,
        query: Union[str, KeywordQuery],
        k: int = 10,
    ) -> List[SearchResult]:
        """TF-IDF top-k among the q-related topics (same for every user)."""
        require_in_range("k", k, 1)
        self._graph._check_node(user)
        related = set(self._topic_index.related_topics(query))
        ranked = [
            SearchResult(
                topic_id=topic_id,
                label=self._topic_index.label(topic_id),
                influence=score,
            )
            for topic_id, score in self._scorer.rank(query, self._topic_index.n_topics)
            if topic_id in related
        ]
        return ranked[:k]


class HybridRanker:
    """Geometric blend of term relevance and personalized influence.

    Parameters
    ----------
    topic_index:
        The topic space.
    influence_search:
        Any ``search(user, query, k) -> [SearchResult]`` callable (a
        :class:`~repro.core.engine.PITEngine`'s ``search`` or a baseline's).
    influence_weight:
        ``w`` in ``relevance^(1-w) * influence^w``; 0 = pure keyword
        search, 1 = pure PIT-Search.
    """

    name = "hybrid"

    def __init__(
        self,
        topic_index: TopicIndex,
        influence_search: Callable[..., List[SearchResult]],
        *,
        influence_weight: float = 0.5,
    ):
        require_probability("influence_weight", influence_weight)
        self._topic_index = topic_index
        self._influence_search = influence_search
        self._weight = float(influence_weight)
        self._scorer = TfIdfScorer(topic_index)

    def search(
        self,
        user: int,
        query: Union[str, KeywordQuery],
        k: int = 10,
    ) -> List[SearchResult]:
        """Top-k q-related topics by blended score."""
        require_in_range("k", k, 1)
        related = self._topic_index.related_topics(query)
        if not related:
            return []
        # Influence over the full candidate set, then blend.
        influence_results = self._influence_search(user, query, len(related))
        influence = {r.topic_id: r.influence for r in influence_results}
        max_influence = max(influence.values(), default=0.0)
        blended = []
        for topic_id in related:
            relevance = self._scorer.score(query, topic_id)
            social = influence.get(topic_id, 0.0)
            social = social / max_influence if max_influence > 0 else 0.0
            score = (relevance ** (1.0 - self._weight)) * (social ** self._weight)
            blended.append(
                SearchResult(
                    topic_id=topic_id,
                    label=self._topic_index.label(topic_id),
                    influence=score,
                )
            )
        blended.sort(key=lambda r: (-r.influence, r.label))
        return blended[:k]
