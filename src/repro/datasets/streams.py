"""Temporal topic-activity streams (extension pairing with §4.4 dynamics).

The paper refreshes its offline indexes "after a period of time when the
social network and topics have changed" but never models the change
process. For the dynamic-maintenance machinery in
:mod:`repro.core.dynamics` to be testable under realistic churn, this
module simulates one: a sequence of epochs, each a
:class:`~repro.core.dynamics.TopicUpdate` batch in which

* users *adopt* topics discussed by their in-neighbours (social contagion,
  probability proportional to the number of adopted neighbours), and
* users *drop* topics they carry with a constant churn rate.

The stream is a pure function of its seed, like everything else here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple

from .._utils import SeedLike, coerce_rng, require_in_range, require_probability
from ..core.dynamics import TopicUpdate
from ..exceptions import ConfigurationError
from ..graph import SocialGraph
from ..topics import TopicIndex

__all__ = ["ActivityStream"]


class ActivityStream:
    """Generates epochs of topic adoption/churn over a social graph.

    Parameters
    ----------
    graph:
        The social graph (adoption flows along its edges).
    topic_index:
        The *initial* topic state; the stream tracks membership internally
        from there.
    adoption_rate:
        Per-epoch probability scale of adopting a topic one in-neighbour
        carries (two neighbours double the chance, capped at 1).
    churn_rate:
        Per-epoch probability a user drops each topic they carry.
    max_changes_per_epoch:
        Hard cap on emitted changes per epoch (keeps downstream
        invalidation work bounded).
    seed:
        Seed or generator.
    """

    def __init__(
        self,
        graph: SocialGraph,
        topic_index: TopicIndex,
        *,
        adoption_rate: float = 0.02,
        churn_rate: float = 0.01,
        max_changes_per_epoch: int = 200,
        seed: SeedLike = None,
    ):
        if graph.n_nodes != topic_index.n_nodes:
            raise ConfigurationError(
                "graph and topic index cover different node counts"
            )
        require_probability("adoption_rate", adoption_rate)
        require_probability("churn_rate", churn_rate)
        require_in_range("max_changes_per_epoch", max_changes_per_epoch, 1)
        self._graph = graph
        self._adoption = float(adoption_rate)
        self._churn = float(churn_rate)
        self._max_changes = int(max_changes_per_epoch)
        self._rng = coerce_rng(seed)
        # Mutable membership state: node -> set of labels.
        self._labels = list(topic_index.labels)
        self._membership: List[Set[str]] = [
            {topic_index.label(t) for t in topic_index.topics_of_node(v)}
            for v in range(graph.n_nodes)
        ]

    # ------------------------------------------------------------------
    def membership(self, node: int) -> Set[str]:
        """Current topic labels of *node* (copy)."""
        return set(self._membership[self._graph._check_node(node)])

    def current_index(self) -> TopicIndex:
        """Materialize the current state as a fresh :class:`TopicIndex`."""
        assignment = {
            node: sorted(labels)
            for node, labels in enumerate(self._membership)
            if labels
        }
        return TopicIndex(self._graph.n_nodes, assignment)

    # ------------------------------------------------------------------
    def next_epoch(self) -> TopicUpdate:
        """Advance one epoch and return the batched changes.

        Applies the changes to the internal state, so successive calls
        evolve the network.
        """
        additions: Dict[int, Tuple[str, ...]] = {}
        removals: Dict[int, Tuple[str, ...]] = {}
        changes = 0

        for node in range(self._graph.n_nodes):
            if changes >= self._max_changes:
                break
            carried = self._membership[node]
            # Churn: drop carried topics.
            dropped = tuple(
                label for label in sorted(carried)
                if self._rng.random() < self._churn
            )
            if dropped:
                removals[node] = dropped
                changes += len(dropped)
            # Contagion: count in-neighbour adoption per label.
            exposure: Dict[str, int] = {}
            for neighbor in self._graph.in_neighbors(node):
                for label in self._membership[int(neighbor)]:
                    if label not in carried:
                        exposure[label] = exposure.get(label, 0) + 1
            adopted = tuple(
                label for label in sorted(exposure)
                if self._rng.random() < min(1.0, self._adoption * exposure[label])
            )
            if adopted:
                additions[node] = adopted
                changes += len(adopted)

        update = TopicUpdate(add=additions, remove=removals)
        self._apply(update)
        return update

    def _apply(self, update: TopicUpdate) -> None:
        for node, labels in update.remove.items():
            for label in labels:
                self._membership[node].discard(label)
        for node, labels in update.add.items():
            self._membership[node].update(labels)

    def epochs(self, count: int) -> Iterator[TopicUpdate]:
        """Yield *count* successive epochs."""
        require_in_range("count", count, 1)
        for _ in range(count):
            yield self.next_epoch()
