"""Dataset bundles reproducing the paper's Figure 4 table (substrate S28).

The paper evaluates on four datasets derived from a 2011 Twitter crawl:

====================  ===========  ============  =========
Dataset               Size         Node degree   Type
====================  ===========  ============  =========
``data_3m``           3 million    0 - 695,509   real
``data_1.2m``         1.2 million  101 - 500     synthetic
``data_350k``         350,000      51 - 100      synthetic
``data_2k``           2,000        1 - 500       synthetic
====================  ===========  ============  =========

The crawl is unavailable offline and millions of nodes are out of scope for
a pure-Python test suite, so each factory below produces a *scaled
analogue*: node counts shrink by a documented factor while the structural
relationships the experiments depend on are preserved - in particular
``data_1.2m`` keeps a much higher average degree than ``data_3m``, which is
what drives the paper's Figure 8/9 observation that searching the mid-sized
dataset is *slower* than the large one. Every bundle records its scale
factor in :attr:`DatasetBundle.meta`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .._utils import SeedLike, coerce_rng
from ..exceptions import DatasetError
from ..graph import (
    SocialGraph,
    banded_degree_graph,
    ensure_weakly_connected,
    preferential_attachment_graph,
)
from ..topics import TagBank, TopicIndex, TweetCorpus
from .synthetic import assign_topics, generate_tweets

__all__ = ["DatasetBundle", "data_2k", "data_350k", "data_1_2m", "data_3m", "DATASETS"]


@dataclass
class DatasetBundle:
    """Everything one experiment needs: graph, topics, and provenance.

    Attributes
    ----------
    name:
        Paper dataset name (``data_2k`` etc.).
    graph:
        The social graph (always weakly connected, like the paper's).
    topic_index:
        Topic space + inverted topic -> nodes index.
    tag_bank:
        The tag vocabulary the topics were drawn from (query workloads
        sample their keywords from here).
    corpus:
        Optional tweet corpus (only the small dataset carries text; the
        large ones assign topics directly, as DESIGN.md §3 documents).
    seed:
        The seed the bundle was generated from.
    meta:
        Scale factor, degree band, and generator parameters.
    """

    name: str
    graph: SocialGraph
    topic_index: TopicIndex
    tag_bank: TagBank
    corpus: Optional[TweetCorpus]
    seed: Optional[int]
    meta: Dict[str, object] = field(default_factory=dict)

    def describe(self) -> str:
        """One-line summary matching the paper's Figure 4 row format."""
        degrees = self.graph.out_degrees()
        lo = int(degrees.min()) if degrees.size else 0
        hi = int(degrees.max()) if degrees.size else 0
        kind = self.meta.get("type", "synthetic")
        return (
            f"{self.name}: {self.graph.n_nodes} nodes, degree {lo}-{hi}, "
            f"{self.topic_index.n_topics} topics, type={kind}"
        )


def _finish_bundle(
    name: str,
    graph: SocialGraph,
    *,
    n_tags: int,
    topics_per_user: int,
    popularity_exponent: float,
    with_corpus: bool,
    seed: Optional[int],
    rng,
    meta: Dict[str, object],
) -> DatasetBundle:
    graph, bridges = ensure_weakly_connected(graph, seed=rng)
    tag_bank = TagBank.synthetic(n_tags, seed=rng)
    assignment = assign_topics(
        graph.n_nodes,
        tag_bank,
        topics_per_user=topics_per_user,
        popularity_exponent=popularity_exponent,
        seed=rng,
    )
    corpus = None
    if with_corpus:
        corpus = generate_tweets(assignment, graph.n_nodes, seed=rng)
    topic_index = TopicIndex(graph.n_nodes, assignment)
    meta = dict(meta)
    meta["bridge_edges_added"] = bridges
    return DatasetBundle(
        name=name,
        graph=graph,
        topic_index=topic_index,
        tag_bank=tag_bank,
        corpus=corpus,
        seed=seed,
        meta=meta,
    )


def data_2k(
    seed: Optional[int] = 2011,
    *,
    n_nodes: int = 2000,
    with_corpus: bool = True,
) -> DatasetBundle:
    """The paper's small dataset: 2,000 users, degree 1-500, heavy tail.

    Built at the paper's *exact* size by default. Used to compare against
    the BaseMatrix ground truth (Figures 5 and 10). Carries a tweet corpus
    so the LDA extraction pipeline can be exercised end-to-end.
    """
    rng = coerce_rng(seed)
    graph = preferential_attachment_graph(
        n_nodes, out_degree=6, reciprocity=0.3, scheme="attention", seed=rng
    )
    return _finish_bundle(
        "data_2k",
        graph,
        n_tags=360,
        topics_per_user=18,
        popularity_exponent=1.0,
        with_corpus=with_corpus,
        seed=seed,
        rng=rng,
        meta={"type": "synthetic", "paper_nodes": 2000, "scale": n_nodes / 2000},
    )


def data_350k(
    seed: Optional[int] = 2012,
    *,
    n_nodes: int = 6000,
) -> DatasetBundle:
    """Scaled analogue of ``data_350k`` (350k users, degree band 51-100).

    Node count and degree band shrink by the same factor (~1/58) so edge
    density per node stays proportionally the lowest of the three large
    datasets, as in the paper.
    """
    rng = coerce_rng(seed)
    graph = banded_degree_graph(
        n_nodes, 5, 10, hub_bias=0.8, scheme="attention", seed=rng
    )
    return _finish_bundle(
        "data_350k",
        graph,
        n_tags=300,
        topics_per_user=12,
        popularity_exponent=1.0,
        with_corpus=False,
        seed=seed,
        rng=rng,
        meta={
            "type": "synthetic",
            "paper_nodes": 350_000,
            "paper_degree_band": (51, 100),
            "degree_band": (5, 10),
            "scale": n_nodes / 350_000,
        },
    )


def data_1_2m(
    seed: Optional[int] = 2013,
    *,
    n_nodes: int = 12_000,
) -> DatasetBundle:
    """Scaled analogue of ``data_1.2m`` (1.2M users, degree band 101-500).

    Keeps the defining property of the paper's mid dataset: the **highest
    average degree** of all bundles, so per-query node expansion is the most
    expensive despite the moderate node count (paper §6.3).
    """
    rng = coerce_rng(seed)
    graph = banded_degree_graph(
        n_nodes, 10, 50, hub_bias=0.8, scheme="attention", seed=rng
    )
    return _finish_bundle(
        "data_1.2m",
        graph,
        n_tags=400,
        topics_per_user=12,
        popularity_exponent=1.0,
        with_corpus=False,
        seed=seed,
        rng=rng,
        meta={
            "type": "synthetic",
            "paper_nodes": 1_200_000,
            "paper_degree_band": (101, 500),
            "degree_band": (10, 50),
            "scale": n_nodes / 1_200_000,
        },
    )


def data_3m(
    seed: Optional[int] = 2014,
    *,
    n_nodes: int = 24_000,
) -> DatasetBundle:
    """Scaled analogue of the real 3M-user crawl (degree 0-695,509).

    Generated with preferential attachment so the degree distribution is
    heavy-tailed like the crawl (a few celebrity hubs, a long tail), with a
    moderate average degree (the paper reports an average of 76 at full
    scale; the scaled analogue keeps average degree well below
    ``data_1.2m``'s).
    """
    rng = coerce_rng(seed)
    graph = preferential_attachment_graph(
        n_nodes, out_degree=8, reciprocity=0.2, scheme="attention", seed=rng
    )
    return _finish_bundle(
        "data_3m",
        graph,
        n_tags=500,
        topics_per_user=12,
        popularity_exponent=1.0,
        with_corpus=False,
        seed=seed,
        rng=rng,
        meta={
            "type": "real-analogue",
            "paper_nodes": 3_000_000,
            "scale": n_nodes / 3_000_000,
        },
    )


#: Factory registry in the order the paper's Figure 4 lists the datasets.
DATASETS = {
    "data_3m": data_3m,
    "data_1.2m": data_1_2m,
    "data_350k": data_350k,
    "data_2k": data_2k,
}
