"""Synthetic topic assignment and tweet generation (substrate S28).

The paper's corpus is 50M real tweets; offline we synthesize the two things
the algorithms actually consume:

* a **topic assignment** - which users discuss which topics. Users subscribe
  to topics with probability proportional to tag popularity, so popular
  topics get large ``V_t`` node sets exactly like trending Twitter topics.
* a **tweet corpus** (optional, small datasets only) - text generated from
  each user's topics, so the full LDA-based extraction pipeline
  (:class:`~repro.topics.extraction.TopicExtractor`) can be demonstrated and
  tested against ground truth.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from .._utils import SeedLike, coerce_rng, require_in_range
from ..exceptions import ConfigurationError
from ..topics import TagBank, TweetCorpus, tokenize

__all__ = ["assign_topics", "generate_tweets", "FILLER_WORDS"]

#: Generic words mixed into synthetic tweets so documents are not pure
#: topic labels (gives LDA something to separate).
FILLER_WORDS = (
    "today", "really", "love", "great", "check", "think", "best", "time",
    "people", "good", "news", "just", "wow", "nice", "look", "still",
)


def assign_topics(
    n_users: int,
    tag_bank: TagBank,
    *,
    topics_per_user: int = 5,
    popularity_exponent: float = 1.0,
    seed: SeedLike = None,
) -> Dict[int, List[str]]:
    """Sample a ``user -> topic labels`` assignment.

    Each user independently draws *topics_per_user* distinct tags with
    probability proportional to ``popularity ** popularity_exponent``.
    Raising the exponent concentrates users on fewer, hotter topics
    (larger ``V_t``); zero gives uniform topics.
    """
    require_in_range("n_users", n_users, 1)
    require_in_range("topics_per_user", topics_per_user, 1)
    if topics_per_user > len(tag_bank):
        raise ConfigurationError(
            f"topics_per_user ({topics_per_user}) exceeds tag bank size "
            f"({len(tag_bank)})"
        )
    if popularity_exponent < 0:
        raise ConfigurationError(
            f"popularity_exponent must be >= 0, got {popularity_exponent!r}"
        )
    rng = coerce_rng(seed)

    weights = np.asarray(
        [tag_bank.popularity(i) for i in range(len(tag_bank))], dtype=np.float64
    )
    weights = np.power(weights, popularity_exponent)
    probs = weights / weights.sum()
    tags = list(tag_bank.tags)

    assignment: Dict[int, List[str]] = {}
    for user in range(n_users):
        chosen = rng.choice(len(tags), size=topics_per_user, replace=False, p=probs)
        assignment[user] = [tags[int(i)] for i in sorted(chosen)]
    return assignment


def generate_tweets(
    assignment: Dict[int, List[str]],
    n_users: int,
    *,
    tweets_per_user: int = 8,
    words_per_tweet: int = 8,
    filler_ratio: float = 0.4,
    seed: SeedLike = None,
) -> TweetCorpus:
    """Generate a tweet corpus consistent with a topic *assignment*.

    Each tweet is written "about" one of the user's topics: its words are a
    mix of the topic label's tokens and generic filler words, so LDA can
    recover the topical structure while facing realistic noise.
    """
    require_in_range("n_users", n_users, 1)
    require_in_range("tweets_per_user", tweets_per_user, 1)
    require_in_range("words_per_tweet", words_per_tweet, 2)
    if not 0.0 <= filler_ratio < 1.0:
        raise ConfigurationError(
            f"filler_ratio must be in [0, 1), got {filler_ratio!r}"
        )
    rng = coerce_rng(seed)

    corpus = TweetCorpus(n_users)
    for user in range(n_users):
        topics = assignment.get(user, [])
        if not topics:
            continue
        for _ in range(tweets_per_user):
            topic = topics[int(rng.integers(len(topics)))]
            topic_tokens = tokenize(topic) or [topic]
            words: List[str] = []
            for _ in range(words_per_tweet):
                if rng.random() < filler_ratio:
                    words.append(FILLER_WORDS[int(rng.integers(len(FILLER_WORDS)))])
                else:
                    words.append(topic_tokens[int(rng.integers(len(topic_tokens)))])
            corpus.add_tweet(user, " ".join(words))
    return corpus
