"""Dataset bundles and query workloads (DESIGN.md S28-S29)."""

from .streams import ActivityStream
from .synthetic import FILLER_WORDS, assign_topics, generate_tweets
from .twitter import (
    DATASETS,
    DatasetBundle,
    data_1_2m,
    data_2k,
    data_350k,
    data_3m,
)
from .workload import (
    Workload,
    generate_workload,
    rank_query_tokens,
    replay_jsonl,
    replay_requests,
    write_replay_jsonl,
)

__all__ = [
    "DatasetBundle",
    "DATASETS",
    "data_2k",
    "data_350k",
    "data_1_2m",
    "data_3m",
    "assign_topics",
    "generate_tweets",
    "FILLER_WORDS",
    "Workload",
    "generate_workload",
    "replay_requests",
    "replay_jsonl",
    "write_replay_jsonl",
    "rank_query_tokens",
    "ActivityStream",
]
