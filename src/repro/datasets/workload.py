"""Query workload generation (substrate S29, paper §6.2).

"We select 100 tags to represent a user's keyword queries. Each tag would
produce 500+ topics ... Then, we randomly select an additional 49 users, but
keep the 100 sampled keyword queries unchanged."

A workload here is the cross product of a set of keyword queries (tag head
tokens, preferring tokens that match many topics) and a set of query users.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Sequence, Tuple

import numpy as np

from .._utils import SeedLike, coerce_rng, require_in_range
from ..exceptions import ConfigurationError
from ..topics import KeywordQuery, TopicIndex, tokenize
from .twitter import DatasetBundle

__all__ = [
    "Workload",
    "generate_workload",
    "rank_query_tokens",
    "replay_requests",
    "replay_jsonl",
    "write_replay_jsonl",
]


@dataclass(frozen=True)
class Workload:
    """A reproducible set of (query, user) evaluation pairs.

    Attributes
    ----------
    queries:
        Parsed keyword queries.
    users:
        Query-user node ids.
    """

    queries: Tuple[KeywordQuery, ...]
    users: Tuple[int, ...]

    def pairs(self) -> Iterator[Tuple[int, KeywordQuery]]:
        """Iterate every ``(user, query)`` combination."""
        for user in self.users:
            for query in self.queries:
                yield user, query

    @property
    def size(self) -> int:
        """Total number of (user, query) pairs."""
        return len(self.queries) * len(self.users)


def rank_query_tokens(topic_index: TopicIndex) -> List[Tuple[str, int]]:
    """Tokens of topic labels ranked by how many topics they match.

    The paper picks query tags that "produce 500+ topics"; at scaled size we
    analogously prefer the tokens matching the most topics.
    """
    counts: Dict[str, int] = {}
    for label in topic_index.labels:
        for token in set(tokenize(label)):
            counts[token] = counts.get(token, 0) + 1
    return sorted(counts.items(), key=lambda item: (-item[1], item[0]))


def generate_workload(
    bundle: DatasetBundle,
    *,
    n_queries: int = 10,
    n_users: int = 5,
    min_topics_per_query: int = 2,
    seed: SeedLike = None,
) -> Workload:
    """Build a workload from a dataset bundle.

    Parameters
    ----------
    bundle:
        The dataset to draw queries and users from.
    n_queries:
        Number of keyword queries (paper: 100).
    n_users:
        Number of query users (paper: 50).
    min_topics_per_query:
        Only tokens matching at least this many topics qualify as queries,
        mirroring the paper's "500+ topics per tag" requirement at scale.
    seed:
        Seed or generator for user sampling.
    """
    require_in_range("n_queries", n_queries, 1)
    require_in_range("n_users", n_users, 1)
    rng = coerce_rng(seed)

    ranked = [
        token
        for token, count in rank_query_tokens(bundle.topic_index)
        if count >= min_topics_per_query
    ]
    if len(ranked) < n_queries:
        raise ConfigurationError(
            f"dataset {bundle.name} only offers {len(ranked)} query tokens with "
            f">= {min_topics_per_query} topics; requested {n_queries}"
        )
    queries = tuple(KeywordQuery.parse(token) for token in ranked[:n_queries])

    if n_users > bundle.graph.n_nodes:
        raise ConfigurationError(
            f"requested {n_users} query users from a graph with "
            f"{bundle.graph.n_nodes} nodes"
        )
    users = rng.choice(bundle.graph.n_nodes, size=n_users, replace=False)
    return Workload(queries=queries, users=tuple(int(u) for u in sorted(users)))


def replay_requests(
    workload: Workload,
    *,
    n_requests: int,
    k: int = 10,
    skew: float = 1.0,
    seed: SeedLike = None,
) -> List[Dict[str, object]]:
    """Sample a Zipf-skewed request stream from a workload.

    Real serving traffic is not uniform: a few (user, query) pairs
    dominate. This draws *n_requests* pairs from ``workload.pairs()``
    with probability proportional to ``rank ** -skew`` (rank 1 = most
    popular; ``skew=0`` is uniform, larger = more head-heavy), which is
    what makes request coalescing and caching measurable in the serving
    benchmark: the head pairs repeat, so concurrent duplicates exist.

    Returns JSONL-ready ``{"user", "query", "k"}`` dicts - the same
    record format ``pit-search search --batch`` consumes and the daemon's
    ``POST /search`` accepts, so one replay file drives both paths.
    """
    require_in_range("n_requests", n_requests, 1)
    if skew < 0:
        raise ConfigurationError(f"skew must be >= 0, got {skew}")
    rng = coerce_rng(seed)
    pairs = list(workload.pairs())
    ranks = np.arange(1, len(pairs) + 1, dtype=np.float64)
    weights = ranks ** -float(skew)
    weights /= weights.sum()
    # Shuffle once so popularity is not correlated with user id order.
    order = rng.permutation(len(pairs))
    picks = rng.choice(len(pairs), size=n_requests, p=weights)
    return [
        {
            "user": int(pairs[order[i]][0]),
            "query": pairs[order[i]][1].raw,
            "k": int(k),
        }
        for i in picks
    ]


def replay_jsonl(records: Iterable[Dict[str, object]]) -> str:
    """Canonical JSONL serialization of replay records.

    Sorted keys, compact separators, one record per line: the same seed
    always yields byte-identical output, which is what lets scenario
    traces be digested (SHA-256 over these bytes) and compared across
    runs. Every consumer of the record format - ``search --batch``, the
    daemon's ``POST /search``, and ``pit-search precompute`` - ignores
    unknown keys, so records may carry extras such as ``at_ms``.
    """
    return "".join(
        json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        for record in records
    )


def write_replay_jsonl(
    records: Iterable[Dict[str, object]], path
) -> Path:
    """Write records to *path* in the canonical JSONL form.

    The single emitter shared by the scenario suite and
    ``benchmarks/bench_serve.py`` - one serialization, one digest.
    """
    path = Path(path)
    path.write_text(replay_jsonl(records), encoding="utf-8")
    return path
