"""Summary and index-build diagnostics (library extension).

Operational tooling a user of the library needs before trusting a summary:
how much of the topic's local weight was migrated, how concentrated the
representative weights are, how far the representatives sit from the topic
nodes, and (optionally, since it costs a propagation) the Definition 1 L1
error. The engine-level report aggregates these over a set of topics.

:class:`PropagationBuildStats` is the offline-stage counterpart: build
time and throughput counters recorded by
:meth:`~repro.core.propagation.PropagationIndex.build_all`, feeding the
``benchmarks/bench_propagation_index.py`` perf trajectory.

:class:`CacheStats` is the online-serving counterpart: hit/miss/byte
accounting snapshots of the bounded LRU caches behind
:meth:`~repro.core.search.PersonalizedSearcher.search_many`, feeding the
``benchmarks/bench_online_search.py`` trajectory.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Dict, Iterable, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..graph import SocialGraph, hop_distances
from ..obs.registry import MetricsSnapshot
from ..topics import TopicIndex
from .summarization import TopicSummary, summarization_error

__all__ = [
    "CacheStats",
    "PropagationBuildStats",
    "SummaryBuildStats",
    "SummaryDiagnostics",
    "diagnose_summary",
    "diagnostics_table",
]


@dataclass(frozen=True)
class CacheStats:
    """Hit/miss/byte accounting snapshot of one bounded serving cache.

    Attributes
    ----------
    name:
        Which cache ("propagation-entries", "summary-arrays", ...).
    hits / misses:
        Lookup outcomes since the cache was created (or last cleared).
    evictions:
        Items displaced by the byte budget.
    n_items:
        Items currently resident.
    current_bytes / max_bytes:
        Resident payload bytes and the configured budget (0 = unbounded).
    """

    name: str
    hits: int
    misses: int
    evictions: int
    n_items: int
    current_bytes: int
    max_bytes: int

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 when the cache was never consulted)."""
        total = self.lookups
        if total == 0:
            return 0.0
        return self.hits / total

    def as_dict(self) -> Dict[str, float]:
        """JSON-ready payload including the derived hit rate."""
        payload = asdict(self)
        payload["lookups"] = self.lookups
        payload["hit_rate"] = self.hit_rate
        return payload


@dataclass(frozen=True)
class PropagationBuildStats:
    """Throughput counters for one ``PropagationIndex.build_all`` call.

    Attributes
    ----------
    n_entries:
        Entries cached in the index after the call.
    n_built:
        Entries materialized by this call (cached entries are skipped).
    total_branches:
        Branch extensions performed across the built entries.
    total_members:
        ``Σ |Γ(v)|`` over the built entries.
    wall_seconds:
        Wall-clock build time.
    workers:
        Worker processes used (1 = serial in-process build).
    peak_entry_bytes:
        Largest single-entry storage footprint built by this call.
    total_bytes:
        Exact storage bytes of every cached entry after the call.
    failed_nodes:
        Nodes whose entries could not be built after the configured
        retries (empty for a fully successful build; only populated when
        the build degrades gracefully instead of raising
        :class:`~repro.exceptions.BuildFailedError`).
    n_resumed:
        Entries absorbed from a checkpoint before building started.
    """

    n_entries: int
    n_built: int
    total_branches: int
    total_members: int
    wall_seconds: float
    workers: int
    peak_entry_bytes: int
    total_bytes: int
    failed_nodes: Tuple[int, ...] = ()
    n_resumed: int = 0

    @classmethod
    def from_metrics(
        cls,
        delta: "MetricsSnapshot",
        *,
        n_entries: int,
        workers: int,
        total_bytes: int,
        failed_nodes: Tuple[int, ...] = (),
        n_resumed: int = 0,
    ) -> "PropagationBuildStats":
        """View one build's stats out of a registry delta snapshot.

        *delta* is ``registry.snapshot().delta(before)`` taken around one
        :meth:`~repro.core.propagation.PropagationIndex.build_all` call;
        the ``propagation.*`` counters and the
        ``phase.propagation.build_all.seconds`` histogram it carries are
        the single source of truth for throughput accounting. Quantities
        a snapshot cannot express (cache size after the call, the worker
        count, which nodes failed) come in as keywords.

        ``peak_entry_bytes`` is read from the ``propagation.entry_bytes``
        histogram, whose ``max`` tracks the registry's lifetime - on a
        long-lived shared registry it is an upper bound over all builds,
        not only this one.
        """
        phase = delta.histogram("phase.propagation.build_all.seconds")
        entry_bytes = delta.histogram("propagation.entry_bytes")
        return cls(
            n_entries=int(n_entries),
            n_built=int(delta.counter("propagation.entries_built")),
            total_branches=int(delta.counter("propagation.branches")),
            total_members=int(delta.counter("propagation.members")),
            wall_seconds=phase.sum if phase is not None else 0.0,
            workers=int(workers),
            peak_entry_bytes=(
                int(entry_bytes.max)
                if entry_bytes is not None and entry_bytes.count
                else 0
            ),
            total_bytes=int(total_bytes),
            failed_nodes=tuple(failed_nodes),
            n_resumed=int(n_resumed),
        )

    @property
    def n_failed(self) -> int:
        """Number of nodes that could not be built."""
        return len(self.failed_nodes)

    @property
    def entries_per_second(self) -> float:
        """Build throughput (0 when the call was instantaneous)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.n_built / self.wall_seconds

    @property
    def branches_per_second(self) -> float:
        """Branch-extension throughput (0 when instantaneous)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.total_branches / self.wall_seconds

    def as_dict(self) -> Dict[str, float]:
        """JSON-ready payload including the derived rates."""
        payload = asdict(self)
        payload["failed_nodes"] = list(self.failed_nodes)
        payload["n_failed"] = self.n_failed
        payload["entries_per_second"] = self.entries_per_second
        payload["branches_per_second"] = self.branches_per_second
        return payload


@dataclass(frozen=True)
class SummaryBuildStats:
    """Throughput counters for one ``PITEngine.build_summaries`` call.

    Attributes
    ----------
    n_summaries:
        Topic summaries cached on the engine after the call.
    n_built:
        Summaries built by this call (resumed/cached topics are skipped).
    wall_seconds:
        Wall-clock build time.
    workers:
        Worker processes used (1 = serial in-process build).
    failed_topics:
        Topics whose summaries could not be built after the configured
        retries (populated only when the build degrades gracefully
        instead of raising :class:`~repro.exceptions.BuildFailedError`).
    n_resumed:
        Summaries absorbed from a checkpoint before building started.
    """

    n_summaries: int
    n_built: int
    wall_seconds: float
    workers: int
    failed_topics: Tuple[int, ...] = ()
    n_resumed: int = 0

    @classmethod
    def from_metrics(
        cls,
        delta: "MetricsSnapshot",
        *,
        n_summaries: int,
        workers: int,
        failed_topics: Tuple[int, ...] = (),
        n_resumed: int = 0,
    ) -> "SummaryBuildStats":
        """View one build's stats out of a registry delta snapshot.

        *delta* is ``registry.snapshot().delta(before)`` taken around one
        :meth:`~repro.core.engine.PITEngine.build_summaries` call; the
        ``summarize.topics_built`` counter and the
        ``phase.summarize.build_all.seconds`` histogram it carries are
        the single source of truth for throughput accounting.
        """
        phase = delta.histogram("phase.summarize.build_all.seconds")
        return cls(
            n_summaries=int(n_summaries),
            n_built=int(delta.counter("summarize.topics_built")),
            wall_seconds=phase.sum if phase is not None else 0.0,
            workers=int(workers),
            failed_topics=tuple(failed_topics),
            n_resumed=int(n_resumed),
        )

    @property
    def n_failed(self) -> int:
        """Number of topics whose summaries could not be built."""
        return len(self.failed_topics)

    @property
    def topics_per_second(self) -> float:
        """Build throughput (0 when the call was instantaneous)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.n_built / self.wall_seconds

    def as_dict(self) -> Dict[str, float]:
        """JSON-ready payload including the derived rates."""
        payload = asdict(self)
        payload["failed_topics"] = list(self.failed_topics)
        payload["n_failed"] = self.n_failed
        payload["topics_per_second"] = self.topics_per_second
        return payload


@dataclass(frozen=True)
class SummaryDiagnostics:
    """Quality indicators for one topic summary.

    Attributes
    ----------
    topic_id / label:
        The topic.
    topic_size:
        ``|V_t|``.
    n_representatives:
        Summary size.
    total_weight:
        Migrated local weight (1.0 = nothing lost).
    weight_entropy:
        Normalized Shannon entropy of the weights in [0, 1]; 1 means the
        weight is spread evenly over the representatives, 0 means a single
        representative dominates.
    representative_overlap:
        Fraction of representatives that are themselves topic nodes.
    mean_distance_to_topic:
        Mean hop distance from each representative to its nearest topic
        node (0 for topic-node representatives).
    l1_error:
        Definition 1 error, when requested (None otherwise).
    """

    topic_id: int
    label: str
    topic_size: int
    n_representatives: int
    total_weight: float
    weight_entropy: float
    representative_overlap: float
    mean_distance_to_topic: float
    l1_error: Optional[float]


def _normalized_entropy(weights: Sequence[float]) -> float:
    values = np.asarray([w for w in weights if w > 0], dtype=np.float64)
    if values.size <= 1:
        return 0.0
    probabilities = values / values.sum()
    entropy = float(-(probabilities * np.log(probabilities)).sum())
    return entropy / math.log(values.size)


def diagnose_summary(
    graph: SocialGraph,
    topic_index: TopicIndex,
    summary: TopicSummary,
    *,
    compute_error: bool = False,
    error_length: int = 6,
    distance_cap: int = 6,
) -> SummaryDiagnostics:
    """Compute :class:`SummaryDiagnostics` for one summary."""
    topic_id = summary.topic_id
    label = topic_index.label(topic_id)
    topic_nodes = topic_index.topic_nodes(topic_id)
    topic_set = set(int(v) for v in topic_nodes)
    reps = summary.representatives

    if reps:
        overlap = sum(1 for r in reps if r in topic_set) / len(reps)
        distances = []
        for rep in reps:
            if rep in topic_set:
                distances.append(0)
                continue
            dist = hop_distances(graph, rep, distance_cap)
            reachable = [
                int(dist[v]) for v in topic_set if dist[v] >= 0
            ]
            distances.append(min(reachable) if reachable else distance_cap + 1)
        mean_distance = float(np.mean(distances))
    else:
        overlap = 0.0
        mean_distance = float("nan")

    error = None
    if compute_error:
        error = summarization_error(
            graph, topic_nodes, summary, length=error_length
        )
    return SummaryDiagnostics(
        topic_id=topic_id,
        label=label,
        topic_size=int(topic_nodes.size),
        n_representatives=len(reps),
        total_weight=summary.total_weight,
        weight_entropy=_normalized_entropy(list(summary.weights.values())),
        representative_overlap=overlap,
        mean_distance_to_topic=mean_distance,
        l1_error=error,
    )


def diagnostics_table(
    graph: SocialGraph,
    topic_index: TopicIndex,
    summaries: Iterable[TopicSummary],
    *,
    compute_error: bool = False,
):
    """A :class:`~repro.evaluation.reporting.Table` over many summaries."""
    from ..evaluation.reporting import Table

    table = Table(
        "Topic summary diagnostics",
        ["topic", "|V_t|", "reps", "weight", "entropy", "overlap",
         "mean dist", "L1 error"],
    )
    for summary in summaries:
        diag = diagnose_summary(
            graph, topic_index, summary, compute_error=compute_error
        )
        table.add_row([
            diag.label,
            diag.topic_size,
            diag.n_representatives,
            f"{diag.total_weight:.3f}",
            f"{diag.weight_entropy:.3f}",
            f"{diag.representative_overlap:.2f}",
            f"{diag.mean_distance_to_topic:.2f}",
            "-" if diag.l1_error is None else f"{diag.l1_error:.4f}",
        ])
    return table
