"""Influence propagation primitives shared across the core and baselines.

The paper defines the influence of a weighted source set on a node as the
sum over propagation paths of the product of edge transition probabilities
(Definition 1). Enumerating simple paths is exponential, so - exactly like
the paper's BaseMatrix ground truth - the canonical computation here is
*walk based*: ``L`` rounds of sparse matrix-vector products accumulate the
probability mass arriving over walks of length 1..L.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional, Tuple, Union

import numpy as np

from .._utils import require_in_range
from ..exceptions import ConfigurationError
from ..graph import SocialGraph

__all__ = [
    "source_vector",
    "propagate_influence",
    "topic_influence_vector",
    "simple_path_influence",
    "enumerate_simple_paths",
]

SourceWeights = Union[Mapping[int, float], np.ndarray]


def source_vector(graph: SocialGraph, weights: SourceWeights) -> np.ndarray:
    """Normalize *weights* into a dense length-``n`` source vector.

    Accepts a ``node -> weight`` mapping or an already-dense array (which is
    validated and copied).
    """
    n = graph.n_nodes
    if isinstance(weights, np.ndarray):
        if weights.shape != (n,):
            raise ConfigurationError(
                f"weight vector has shape {weights.shape}, expected ({n},)"
            )
        vector = weights.astype(np.float64, copy=True)
    else:
        vector = np.zeros(n, dtype=np.float64)
        for node, weight in weights.items():
            node = graph._check_node(node)
            vector[node] += float(weight)
    if np.any(vector < 0):
        raise ConfigurationError("source weights must be non-negative")
    return vector


def propagate_influence(
    graph: SocialGraph,
    weights: SourceWeights,
    length: int,
    *,
    include_source_mass: bool = False,
) -> np.ndarray:
    """Influence of weighted sources on every node over walks of length <= L.

    Computes ``sum_{l=1..L} (P^T)^l x`` where ``P`` is the transition matrix
    and ``x`` the source vector: entry ``v`` aggregates, over every walk of
    length 1..L from a source to ``v``, the walk probability times the
    source weight. This is exactly what the paper's BaseMatrix does with
    "a number of matrix multiplication iterations" (§6.1).

    Parameters
    ----------
    graph:
        The social graph.
    weights:
        Source weights (e.g. ``1/|V_t|`` per topic node, or a summary's
        representative weights).
    length:
        ``L`` - the maximum walk length.
    include_source_mass:
        When true, the l=0 term (the source vector itself) is included;
        the paper's influence definitions exclude it.
    """
    require_in_range("length", length, 1)
    x = source_vector(graph, weights)
    transition_t = graph.transition_matrix().T.tocsr()
    total = x.copy() if include_source_mass else np.zeros_like(x)
    current = x
    for _ in range(length):
        current = transition_t @ current
        total += current
    return total


def enumerate_simple_paths(
    graph: SocialGraph,
    source: int,
    target: int,
    max_length: int,
    *,
    max_paths: int = 100_000,
):
    """All simple (cycle-free) paths source -> target of length <= L.

    Yields ``(path, probability)`` pairs where *path* is the node tuple and
    *probability* the product of its edge transition probabilities. This is
    Definition 1's literal ``P_u^v`` path set; exponential in general, so a
    *max_paths* budget guards the enumeration (exceeding it raises).

    Used for ground-truth checks on small graphs - Example 1's Figure 2
    table is exactly this enumeration.
    """
    from ..exceptions import BudgetExceededError

    source = graph._check_node(source)
    target = graph._check_node(target)
    require_in_range("max_length", max_length, 1)
    emitted = 0
    stack = [(source, (source,), 1.0)]
    while stack:
        node, path, probability = stack.pop()
        if len(path) - 1 >= max_length:
            continue
        targets, probs = graph.out_edges(node)
        for nxt, edge_probability in zip(targets, probs):
            nxt = int(nxt)
            if nxt in path:
                continue
            extended = probability * float(edge_probability)
            if nxt == target:
                emitted += 1
                if emitted > max_paths:
                    raise BudgetExceededError("simple-path enumeration", max_paths)
                yield path + (nxt,), extended
            else:
                stack.append((nxt, path + (nxt,), extended))


def simple_path_influence(
    graph: SocialGraph,
    sources: Iterable[int],
    target: int,
    max_length: int,
    *,
    max_paths: int = 100_000,
) -> float:
    """Definition 1's exact ``I(t, v)`` over simple paths.

    ``(1/|V_t|) * sum_{u in V_t} sum_{p in P_u^v} Pr(p)`` with paths up to
    *max_length* hops. Exponential in general - intended for small graphs
    and ground-truth tests (BaseMatrix's walk-counting is the scalable
    approximation the paper itself uses).
    """
    nodes = [graph._check_node(v) for v in sources]
    if not nodes:
        raise ConfigurationError("source set is empty")
    total = 0.0
    for source in nodes:
        if source == target:
            continue
        for _, probability in enumerate_simple_paths(
            graph, source, target, max_length, max_paths=max_paths
        ):
            total += probability
    return total / len(nodes)


def topic_influence_vector(
    graph: SocialGraph, topic_nodes: Iterable[int], length: int
) -> np.ndarray:
    """``I(t, .)`` - influence of a topic's node set with uniform local weights.

    Each topic node gets local weight ``1/|V_t|`` (paper §2 / Example 1).
    """
    nodes = [graph._check_node(v) for v in topic_nodes]
    if not nodes:
        raise ConfigurationError("topic node set is empty")
    weight = 1.0 / len(nodes)
    return propagate_influence(graph, {v: weight for v in nodes}, length)
