"""Head-query precomputation (ROADMAP item 4, the offline half).

Zipf traffic means a small set of (query, k) pairs - and an even smaller
set of (user, query, k) triples - dominates the request stream. "Real-time
Topic-aware Influence Maximization Using Preprocessing" wins by moving
exactly that work offline; this module applies the idea above the
propagation index:

1. **Mine** a JSONL workload trace (the ``datasets.replay_requests``
   record format, which is also what ``search --batch`` and the daemon's
   ``POST /search`` consume) for head query keys and heavy-hitter
   (user, query, k) triples. Keys are normalized
   (:func:`~repro.core.search.normalized_query_key`), so spelling
   variants of one query pool their counts.
2. **Precompile** the user-independent :class:`~repro.core.search._QueryPlan`
   state for the head queries, and the full top-k answers (results plus
   the deterministic work stats) for the heavy hitters, by running them
   through a live engine over the exact artifacts that will serve.
3. **Persist** both into one versioned, checksummed JSON artifact
   (:mod:`repro._artifacts`), stamped with the graph signature, theta,
   and a SHA-256 fingerprint of the summaries - the three things a
   precomputed answer is only valid for. Loading refuses on any mismatch
   (:class:`~repro.exceptions.ConfigurationError`), so a daemon can never
   warm its answer tier from an artifact built against different data.

The serving half lives in :meth:`~repro.core.serve_facade.ServingEngine.
warm_from_precompute`; the CLI entry point is ``pit-search precompute``.

Float fidelity: influence scores and plan weights pass through JSON
unrounded (``repr`` round-trips the exact double), which is what keeps a
warm-loaded answer bit-exact with the search that produced it.
"""

from __future__ import annotations

import hashlib
import json
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Tuple

import numpy as np

from .._artifacts import load_json_payload, require_keys, save_json_payload
from .._utils import require_in_range
from ..exceptions import ArtifactCorruptedError, ConfigurationError
from ..graph import SocialGraph
from ..topics import KeywordQuery
from .persistence import _graph_signature
from .search import SearchResult, _QueryPlan, normalized_query_key
from .summarization import TopicSummary

__all__ = [
    "PrecomputeArtifact",
    "TraceStats",
    "mine_trace",
    "build_precompute",
    "save_precompute",
    "load_precompute",
    "validate_precompute",
    "summaries_fingerprint",
    "plan_from_record",
    "answer_entry",
]

ARTIFACT_KIND = "precompute"

#: Default head sizes; both CLI-overridable.
DEFAULT_TOP_QUERIES = 64
DEFAULT_TOP_ANSWERS = 256

QueryKey = Tuple[Tuple[str, ...], str]


def summaries_fingerprint(summaries: Mapping[int, TopicSummary]) -> str:
    """SHA-256 over every summary's exact array content, order-free.

    Topic ids are visited sorted; each contributes its id, its sorted
    representative ids, and their ``float64`` weights byte-for-byte. Two
    summary sets fingerprint equal iff every cached answer computed over
    one is valid over the other - which is why the precompute artifact
    stores this rather than a file checksum (the same summaries re-saved
    get a new file checksum but the same fingerprint).
    """
    digest = hashlib.sha256()
    for topic_id in sorted(summaries):
        arrays = summaries[topic_id].arrays()
        digest.update(struct.pack("<q", int(topic_id)))
        digest.update(np.ascontiguousarray(arrays.representatives).tobytes())
        digest.update(np.ascontiguousarray(arrays.weights).tobytes())
    return digest.hexdigest()


# ---------------------------------------------------------------------------
# Trace mining
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class TraceStats:
    """What the miner saw (recorded in the artifact for provenance)."""

    n_records: int
    n_distinct_queries: int
    n_distinct_triples: int


@dataclass
class _Tally:
    """Counts for one normalized key, plus a raw spelling to recompile."""

    count: int = 0
    raw: str = ""
    mode: str = "all"


def _iter_trace(source) -> Iterable[Dict]:
    if isinstance(source, (str, Path)):
        path = Path(source)
        try:
            handle = path.open("r", encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read trace file {path}: {exc}"
            ) from exc
        with handle:
            for line_no, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError as exc:
                    raise ConfigurationError(
                        f"{path}:{line_no}: unreadable trace record ({exc})"
                    ) from exc
                yield record
        return
    yield from source


def mine_trace(
    source, *, default_k: int = 10
) -> Tuple[Dict[Tuple, _Tally], Dict[Tuple, _Tally], TraceStats]:
    """Count head (query, k) keys and heavy-hitter (user, query, k) triples.

    *source* is a JSONL path or an iterable of ``{"user", "query", "k"}``
    dicts (``k`` optional, defaulting to *default_k* - the daemon's own
    default-k behavior). Returns ``(query_counts, triple_counts, stats)``
    where keys are ``(keywords, mode, k)`` and ``(user, keywords, mode,
    k)`` with normalized keywords, and each tally keeps one raw spelling
    so the builder can recompile through the ordinary parse path.
    """
    query_counts: Dict[Tuple, _Tally] = {}
    triple_counts: Dict[Tuple, _Tally] = {}
    n_records = 0
    for record in _iter_trace(source):
        if not isinstance(record, dict):
            raise ConfigurationError(
                f"trace records must be JSON objects, got "
                f"{type(record).__name__}"
            )
        raw = record.get("query")
        if not isinstance(raw, str) or not raw:
            raise ConfigurationError(
                f"trace record {n_records + 1} has no usable 'query' field"
            )
        user = record.get("user")
        if isinstance(user, bool) or not isinstance(user, int) or user < 0:
            raise ConfigurationError(
                f"trace record {n_records + 1} has no usable 'user' field"
            )
        k = record.get("k", default_k)
        if isinstance(k, bool) or not isinstance(k, int) or k < 1:
            raise ConfigurationError(
                f"trace record {n_records + 1} has an invalid 'k' field"
            )
        query = KeywordQuery.parse(raw)
        keywords, mode = normalized_query_key(query)
        n_records += 1

        q_key = (keywords, mode, k)
        tally = query_counts.get(q_key)
        if tally is None:
            tally = query_counts[q_key] = _Tally(raw=raw, mode=mode)
        tally.count += 1

        t_key = (user, keywords, mode, k)
        tally = triple_counts.get(t_key)
        if tally is None:
            tally = triple_counts[t_key] = _Tally(raw=raw, mode=mode)
        tally.count += 1
    stats = TraceStats(
        n_records=n_records,
        n_distinct_queries=len(query_counts),
        n_distinct_triples=len(triple_counts),
    )
    return query_counts, triple_counts, stats


def _head(counts: Dict[Tuple, _Tally], top: int) -> List[Tuple[Tuple, _Tally]]:
    """The *top* highest-count keys, count-descending, key as tiebreak.

    The key tiebreak makes the head deterministic for equal counts, so
    two precompute runs over one trace produce byte-identical artifacts.
    """
    ranked = sorted(counts.items(), key=lambda item: (-item[1].count, item[0]))
    return ranked[:top]


# ---------------------------------------------------------------------------
# Artifact model
# ---------------------------------------------------------------------------

@dataclass
class PrecomputeArtifact:
    """In-memory form of one precompute artifact.

    ``plans`` and ``answers`` hold plain-JSON records (see
    :func:`plan_from_record` / :func:`answer_entry` for their runtime
    forms); everything else is the validity stamp and provenance.
    """

    signature: Dict[str, int]
    theta: float
    summaries_fingerprint: str
    plans: List[Dict] = field(default_factory=list)
    answers: List[Dict] = field(default_factory=list)
    trace: Dict[str, int] = field(default_factory=dict)

    def memory_hint_bytes(self) -> int:
        """Rough warm-tier footprint (sizing aid for ``--answer-cache-mb``)."""
        total = 0
        for record in self.plans:
            total += 24 * len(record["rep_ids"]) + 16 * len(record["topic_ids"])
        for record in self.answers:
            total += 160 + sum(
                96 + len(label) for _, label, _ in record["results"]
            )
        return total


def _plan_record(plan: _QueryPlan, k: int, count: int) -> Dict:
    keywords, mode = plan.key
    return {
        "keywords": list(keywords),
        "mode": mode,
        "k": int(k),
        "count": int(count),
        "topic_ids": [int(t) for t in plan.topic_ids],
        "labels": list(plan.labels),
        "rep_counts": [int(c) for c in plan.rep_counts.tolist()],
        "rep_ids": [int(r) for r in plan.rep_ids.tolist()],
        "rep_weights": [float(w) for w in plan.rep_weights.tolist()],
    }


def plan_from_record(record: Dict) -> _QueryPlan:
    """Rebuild a compiled :class:`_QueryPlan` from its artifact record.

    The flattened rep block is re-sliced per topic with the persisted
    counts; the plan's key is the normalized query key, so the searcher's
    ordinary ``_plan`` lookup hits it.
    """
    key = (tuple(record["keywords"]), record["mode"])
    rep_ids = np.asarray(record["rep_ids"], dtype=np.int64)
    rep_weights = np.asarray(record["rep_weights"], dtype=np.float64)
    rep_arrays = []
    offset = 0
    for count in record["rep_counts"]:
        rep_arrays.append(
            (rep_ids[offset:offset + count], rep_weights[offset:offset + count])
        )
        offset += count
    return _QueryPlan(key, record["topic_ids"], record["labels"], rep_arrays)


def _answer_record(
    user: int,
    keywords: Tuple[str, ...],
    mode: str,
    k: int,
    count: int,
    results: List[SearchResult],
    work: Tuple[int, int, int, int, int],
) -> Dict:
    return {
        "user": int(user),
        "keywords": list(keywords),
        "mode": mode,
        "k": int(k),
        "count": int(count),
        "results": [
            [int(r.topic_id), r.label, float(r.influence)] for r in results
        ],
        "work": [int(w) for w in work],
    }


def answer_entry(record: Dict):
    """The ``(key, value)`` pair an answer record inserts into the tier."""
    key = (
        int(record["user"]),
        (tuple(record["keywords"]), record["mode"]),
        int(record["k"]),
    )
    results = tuple(
        SearchResult(topic_id=int(t), label=label, influence=float(score))
        for t, label, score in record["results"]
    )
    return key, (results, tuple(int(w) for w in record["work"]))


# ---------------------------------------------------------------------------
# Build / persist / validate
# ---------------------------------------------------------------------------

def build_precompute(
    engine,
    trace,
    *,
    top_queries: int = DEFAULT_TOP_QUERIES,
    top_answers: int = DEFAULT_TOP_ANSWERS,
    default_k: int = 10,
) -> PrecomputeArtifact:
    """Mine *trace* and precompute head plans + heavy-hitter answers.

    *engine* is the :class:`~repro.core.serve_facade.ServingEngine` (or
    ``PITEngine``) holding the exact artifacts that will serve; plans and
    answers are computed by the same code paths a live request takes, so
    what the artifact stores is definitionally bit-exact with what an
    uncached search returns. ``top_queries``/``top_answers`` bound the
    head sizes (0 disables that half).
    """
    require_in_range("top_queries", top_queries, 0)
    require_in_range("top_answers", top_answers, 0)
    query_counts, triple_counts, stats = mine_trace(
        trace, default_k=default_k
    )
    searcher = engine._searcher  # same-package seam; see plan_for
    plans: List[Dict] = []
    for (keywords, mode, k), tally in _head(query_counts, top_queries):
        plan = searcher.plan_for(KeywordQuery.parse(tally.raw, mode=mode))
        plans.append(_plan_record(plan, k, tally.count))
    answers: List[Dict] = []
    for (user, keywords, mode, k), tally in _head(triple_counts, top_answers):
        results, work_stats = engine.search(
            user, KeywordQuery.parse(tally.raw, mode=mode), k,
            with_stats=True,
        )
        work = (
            work_stats.topics_considered,
            work_stats.topics_pruned,
            work_stats.entries_probed,
            work_stats.expansion_rounds,
            work_stats.representatives_touched,
        )
        answers.append(
            _answer_record(user, keywords, mode, k, tally.count, results, work)
        )
    return PrecomputeArtifact(
        signature=_graph_signature(engine.graph),
        theta=float(engine.theta),
        summaries_fingerprint=summaries_fingerprint(engine._summaries),
        plans=plans,
        answers=answers,
        trace={
            "n_records": stats.n_records,
            "n_distinct_queries": stats.n_distinct_queries,
            "n_distinct_triples": stats.n_distinct_triples,
        },
    )


def save_precompute(artifact: PrecomputeArtifact, path) -> None:
    """Atomically write the artifact as checksummed, versioned JSON."""
    payload = {
        "kind": ARTIFACT_KIND,
        "n_nodes": int(artifact.signature["n_nodes"]),
        "n_edges": int(artifact.signature["n_edges"]),
        "theta": float(artifact.theta),
        "summaries_fingerprint": artifact.summaries_fingerprint,
        "trace": dict(artifact.trace),
        "plans": artifact.plans,
        "answers": artifact.answers,
    }
    save_json_payload(path, payload)


def load_precompute(path) -> PrecomputeArtifact:
    """Read a precompute artifact, verifying checksum and shape."""
    path = Path(path)
    payload = load_json_payload(path, what="precompute artifact")
    require_keys(
        payload,
        (
            "kind", "n_nodes", "n_edges", "theta",
            "summaries_fingerprint", "plans", "answers",
        ),
        path,
    )
    if payload["kind"] != ARTIFACT_KIND:
        raise ArtifactCorruptedError(
            path,
            reason=(
                f"expected kind {ARTIFACT_KIND!r}, got {payload['kind']!r}"
            ),
        )
    plan_keys = (
        "keywords", "mode", "k", "count", "topic_ids", "labels",
        "rep_counts", "rep_ids", "rep_weights",
    )
    for record in payload["plans"]:
        require_keys(record, plan_keys, path)
        if len(record["rep_ids"]) != len(record["rep_weights"]) or (
            sum(record["rep_counts"]) != len(record["rep_ids"])
        ):
            raise ArtifactCorruptedError(
                path, reason="plan record rep block is inconsistent"
            )
    answer_keys = ("user", "keywords", "mode", "k", "count", "results", "work")
    for record in payload["answers"]:
        require_keys(record, answer_keys, path)
        if len(record["work"]) != 5:
            raise ArtifactCorruptedError(
                path, reason="answer record work stats must have 5 fields"
            )
    return PrecomputeArtifact(
        signature={
            "n_nodes": int(payload["n_nodes"]),
            "n_edges": int(payload["n_edges"]),
        },
        theta=float(payload["theta"]),
        summaries_fingerprint=str(payload["summaries_fingerprint"]),
        plans=list(payload["plans"]),
        answers=list(payload["answers"]),
        trace=dict(payload.get("trace", {})),
    )


def validate_precompute(
    artifact: PrecomputeArtifact,
    graph: SocialGraph,
    theta: float,
    summaries: Mapping[int, TopicSummary],
) -> None:
    """Refuse an artifact that does not match the serving data exactly.

    Checks, in cheapest-first order: graph signature, theta, then the
    summaries fingerprint. Any mismatch raises
    :class:`~repro.exceptions.ConfigurationError` - a precomputed answer
    over different data is not an optimization, it is a wrong answer.
    """
    expected = _graph_signature(graph)
    if artifact.signature != expected:
        raise ConfigurationError(
            f"precompute artifact was built for a graph with "
            f"{artifact.signature}, but the serving graph has {expected}"
        )
    if float(artifact.theta) != float(theta):
        raise ConfigurationError(
            f"precompute artifact was built at theta={artifact.theta}, "
            f"but the serving index uses theta={theta}"
        )
    fingerprint = summaries_fingerprint(summaries)
    if artifact.summaries_fingerprint != fingerprint:
        raise ConfigurationError(
            "precompute artifact was built over different topic summaries "
            f"(fingerprint {artifact.summaries_fingerprint[:12]}... vs "
            f"{fingerprint[:12]}...); rebuild it against the serving "
            "summaries artifact"
        )
