"""Centroid selection for a topic-node group - Algorithm 4 (S16).

A group's representative is the node with the best closeness centrality
with respect to the group (Definition 3). Computing exact centrality for
every graph node is Θ(|V|³), so the paper first *votes*: every node that can
reach a group member within L hops gets one vote per member it reaches, the
top voters become candidates, and exact (hop-limited) centrality is
evaluated only for them.

Both stages are batched over the group: voting popcounts one bitset
propagation (:func:`~repro.graph.traversal.reachability_bitsets`) instead
of one reverse BFS per member, and candidate centralities come from a
single :func:`~repro.graph.traversal.hop_distance_matrix` call followed by
one vectorized argmax. The historical per-member loops are retained in
:mod:`repro.core._scalar_summarize` as the parity baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..._utils import require_in_range
from ...exceptions import ConfigurationError
from ...graph import SocialGraph, hop_distance_matrix, reachability_bitsets
from ...obs.registry import MetricsRegistry, get_registry
from ...obs.tracing import trace
from ...walks import WalkIndex

__all__ = ["closeness_centrality", "select_central", "vote_candidates"]


def _group_distance_totals(
    graph: SocialGraph,
    nodes: np.ndarray,
    members: np.ndarray,
    *,
    max_hops: int,
    unreachable_distance: int,
) -> np.ndarray:
    """Summed hop distance from each of *nodes* to every group member.

    One batched propagation answers all ``len(nodes) x len(members)``
    distance questions; members unreachable within *max_hops* count as
    *unreachable_distance*. Duplicate members each contribute a column,
    matching the scalar per-member summation.
    """
    distances = hop_distance_matrix(graph, members, max_hops)[nodes]
    penalized = np.where(distances >= 0, distances, unreachable_distance)
    return penalized.sum(axis=1, dtype=np.int64)


def closeness_centrality(
    graph: SocialGraph,
    node: int,
    group: Sequence[int],
    *,
    max_hops: int,
    unreachable_distance: Optional[int] = None,
) -> float:
    """Definition 3: ``|V_g| / sum_j distance(node, group_j)``.

    Distances are forward hop counts from *node*, capped at *max_hops*
    (the paper bounds intra-group distances by ``2L``). Members unreachable
    within the cap count as *unreachable_distance* (default ``max_hops+1``),
    so candidates that miss part of the group are penalized rather than
    crashing the computation.
    """
    if not group:
        raise ConfigurationError("group is empty")
    require_in_range("max_hops", max_hops, 1)
    if unreachable_distance is None:
        unreachable_distance = max_hops + 1
    members = graph.validate_nodes(group)
    nodes = np.asarray([graph.validate_node(node)], dtype=np.int64)
    total = float(
        _group_distance_totals(
            graph,
            nodes,
            members,
            max_hops=max_hops,
            unreachable_distance=int(unreachable_distance),
        )[0]
    )
    if total == 0.0:
        # Only possible for a singleton group containing the node itself.
        return float("inf")
    return len(group) / total


def vote_candidates(
    graph: SocialGraph,
    group: Sequence[int],
    *,
    max_hops: int,
    walk_index: Optional[WalkIndex] = None,
    include_members: bool = True,
    metrics: Optional[MetricsRegistry] = None,
) -> Tuple[List[int], Dict[int, int]]:
    """Algorithm 4 lines 1-7: vote counting and top-candidate extraction.

    Every node reaching member ``v_i`` within L hops earns a vote; the
    candidates are the nodes holding the maximum vote count. Reachability
    uses the sampled walk index when given; otherwise one batched bitset
    propagation replaces the per-member reverse BFS, and the tally is a
    row-wise popcount (a duplicate member occupies its own bit, so it
    double-counts exactly like the scalar loop).

    Returns
    -------
    (candidates, votes):
        *candidates* sorted ascending; *votes* is the full tally (useful
        for diagnostics and tests).
    """
    if not group:
        raise ConfigurationError("group is empty")
    registry = metrics if metrics is not None else get_registry()
    members = graph.validate_nodes(group)
    tally = np.zeros(graph.n_nodes, dtype=np.int64)
    with trace("summarize.reachability", registry=registry):
        if walk_index is not None:
            for member in members:
                reachers = walk_index.reverse_reachable(int(member))
                tally[reachers] += 1
        else:
            bits = reachability_bitsets(graph, members, max_hops)
            tally = np.bitwise_count(bits).sum(axis=1, dtype=np.int64)
    if include_members:
        # A member trivially reaches itself in 0 hops.
        np.add.at(tally, members, 1)
    voters = np.flatnonzero(tally)
    votes = {int(v): int(tally[v]) for v in voters}
    if not votes:
        return [], votes
    top = int(tally.max())
    candidates = [int(v) for v in np.flatnonzero(tally == top)]
    return candidates, votes


def select_central(
    graph: SocialGraph,
    group: Sequence[int],
    *,
    max_hops: int,
    walk_index: Optional[WalkIndex] = None,
    max_candidates: int = 8,
    metrics: Optional[MetricsRegistry] = None,
) -> int:
    """Algorithm 4: the best central node for *group*.

    When more than *max_candidates* nodes tie for the top vote count, only
    the best-connected ones (largest total degree, then smallest id) enter
    the exact centrality evaluation - the candidate-set reduction the paper
    describes as its first optimization at the end of §3.2. The surviving
    candidates are scored with one batched distance-matrix propagation and
    a single argmax (first maximum wins, matching the scalar first-best
    scan).

    Falls back to the group member with the largest out-degree when voting
    produces no candidates (possible on sampled reachability when no walk
    reached any member).
    """
    require_in_range("max_candidates", max_candidates, 1)
    group = [int(v) for v in graph.validate_nodes(group)]
    candidates, _ = vote_candidates(
        graph, group, max_hops=max_hops, walk_index=walk_index, metrics=metrics
    )
    if not candidates:
        return max(group, key=lambda v: (graph.out_degree(v), -v))
    if len(candidates) > max_candidates:
        degrees = graph.total_degrees()
        candidates = sorted(candidates, key=lambda v: (-int(degrees[v]), v))
        candidates = sorted(candidates[:max_candidates])
    centrality_hops = 2 * max_hops
    totals = _group_distance_totals(
        graph,
        np.asarray(candidates, dtype=np.int64),
        np.asarray(group, dtype=np.int64),
        max_hops=centrality_hops,
        unreachable_distance=centrality_hops + 1,
    )
    scores = np.divide(
        float(len(group)),
        totals.astype(np.float64),
        out=np.full(totals.size, np.inf),
        where=totals > 0,
    )
    return candidates[int(np.argmax(scores))]
