"""Centroid selection for a topic-node group - Algorithm 4 (S16).

A group's representative is the node with the best closeness centrality
with respect to the group (Definition 3). Computing exact centrality for
every graph node is Θ(|V|³), so the paper first *votes*: every node that can
reach a group member within L hops gets one vote per member it reaches, the
top voters become candidates, and exact (hop-limited) centrality is
evaluated only for them.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..._utils import require_in_range
from ...exceptions import ConfigurationError
from ...graph import SocialGraph, hop_distances, reverse_reachable
from ...walks import WalkIndex

__all__ = ["closeness_centrality", "select_central", "vote_candidates"]


def closeness_centrality(
    graph: SocialGraph,
    node: int,
    group: Sequence[int],
    *,
    max_hops: int,
    unreachable_distance: Optional[int] = None,
) -> float:
    """Definition 3: ``|V_g| / sum_j distance(node, group_j)``.

    Distances are forward hop counts from *node*, capped at *max_hops*
    (the paper bounds intra-group distances by ``2L``). Members unreachable
    within the cap count as *unreachable_distance* (default ``max_hops+1``),
    so candidates that miss part of the group are penalized rather than
    crashing the computation.
    """
    if not group:
        raise ConfigurationError("group is empty")
    require_in_range("max_hops", max_hops, 1)
    if unreachable_distance is None:
        unreachable_distance = max_hops + 1
    dist = hop_distances(graph, node, max_hops)
    total = 0.0
    for member in group:
        d = int(dist[graph._check_node(member)])
        total += d if d >= 0 else unreachable_distance
    if total == 0.0:
        # Only possible for a singleton group containing the node itself.
        return float("inf")
    return len(group) / total


def vote_candidates(
    graph: SocialGraph,
    group: Sequence[int],
    *,
    max_hops: int,
    walk_index: Optional[WalkIndex] = None,
    include_members: bool = True,
) -> Tuple[List[int], Dict[int, int]]:
    """Algorithm 4 lines 1-7: vote counting and top-candidate extraction.

    Every node reaching member ``v_i`` within L hops earns a vote; the
    candidates are the nodes holding the maximum vote count. Reachability
    uses the sampled walk index when given, exact reverse BFS otherwise.

    Returns
    -------
    (candidates, votes):
        *candidates* sorted ascending; *votes* is the full tally (useful
        for diagnostics and tests).
    """
    if not group:
        raise ConfigurationError("group is empty")
    votes: Dict[int, int] = {}
    for member in group:
        member = graph._check_node(member)
        if walk_index is not None:
            reachers = walk_index.reverse_reachable(member)
        else:
            reachers = reverse_reachable(graph, member, max_hops)
        for reacher in reachers:
            reacher = int(reacher)
            votes[reacher] = votes.get(reacher, 0) + 1
        if include_members:
            # A member trivially reaches itself in 0 hops.
            votes[member] = votes.get(member, 0) + 1
    if not votes:
        return [], votes
    top = max(votes.values())
    candidates = sorted(node for node, count in votes.items() if count == top)
    return candidates, votes


def select_central(
    graph: SocialGraph,
    group: Sequence[int],
    *,
    max_hops: int,
    walk_index: Optional[WalkIndex] = None,
    max_candidates: int = 8,
) -> int:
    """Algorithm 4: the best central node for *group*.

    When more than *max_candidates* nodes tie for the top vote count, only
    the best-connected ones (largest total degree, then smallest id) enter
    the exact centrality evaluation - the candidate-set reduction the paper
    describes as its first optimization at the end of §3.2.

    Falls back to the group member with the largest out-degree when voting
    produces no candidates (possible on sampled reachability when no walk
    reached any member).
    """
    require_in_range("max_candidates", max_candidates, 1)
    group = [graph._check_node(v) for v in group]
    candidates, _ = vote_candidates(
        graph, group, max_hops=max_hops, walk_index=walk_index
    )
    if not candidates:
        return max(group, key=lambda v: (graph.out_degree(v), -v))
    if len(candidates) > max_candidates:
        degrees = graph.total_degrees()
        candidates = sorted(candidates, key=lambda v: (-int(degrees[v]), v))
        candidates = sorted(candidates[:max_candidates])
    best = candidates[0]
    best_score = -1.0
    for candidate in candidates:
        score = closeness_centrality(graph, candidate, group, max_hops=2 * max_hops)
        if score > best_score:
            best = candidate
            best_score = score
    return best
