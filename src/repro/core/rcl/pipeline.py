"""RCL-A summarizer - Algorithms 1 + 5 assembled (S17).

Offline stage of the RCL-A approach: for each topic,

1. sample ``V'`` (degree-proportional by default, §3.1/§6),
2. compute pairwise grouping probabilities over the topic nodes and label
   pairs with Rules 1-3 (Algorithm 1),
3. extract non-overlapping groups (Algorithms 2 + 3),
4. select one closeness-centrality centroid per group (Algorithm 4),
5. weight each centroid by the share of topic nodes it represents
   (Algorithm 5 line 5; DESIGN.md note 10).

The result is a :class:`~repro.core.summarization.TopicSummary` per topic.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..._utils import (
    SeedLike,
    derive_topic_rng,
    require_in_range,
    require_probability,
    spawn_entropy,
)
from ...exceptions import ConfigurationError
from ...graph import SocialGraph, sample_nodes_by_degree, sample_rate_to_count
from ...obs.registry import MetricsRegistry, get_registry
from ...obs.tracing import trace
from ...topics import TopicIndex
from ...walks import WalkIndex
from ..summarization import Summarizer, TopicSummary
from .centroid import select_central
from .grouping import compute_grouping_probabilities, label_pairs
from .no_overlap import greedy_no_overlap, no_overlap_from_tree

__all__ = ["RCLSummarizer"]


class RCLSummarizer(Summarizer):
    """Approximate random clustering (RCL-A) social summarizer.

    Parameters
    ----------
    graph:
        The social graph.
    topic_index:
        Topic space (provides ``V_t`` per topic).
    max_hops:
        ``L`` - the reachability horizon for grouping and voting.
    sample_rate:
        ``|V'| / |V|`` - size of the sampled node set (paper sweeps 1%,
        5%, 10% in Figure 15).
    rep_fraction:
        Desired representatives per topic as a fraction of ``|V_t|``;
        fixes ``C_Size = ceil(rep_fraction * |V_t|)``. Matches LRW-A's
        ``mu`` so the two summarizers are comparable at equal budget.
    walk_index:
        Optional pre-built :class:`~repro.walks.WalkIndex`; when given, its
        sampled ``I_L`` reachability replaces exact reverse BFS (the
        paper's indexed variant; much faster on large graphs).
    policy:
        ``CHECK_GROUPING`` policy, ``"all"`` or ``"any"``.
    use_tree:
        Route group extraction through the literal set-enumeration tree
        (Algorithm 2/3) instead of its greedy closed form. Exponential in
        the worst case; for tests and small topics.
    seed:
        Seed or generator driving sampling and Rule 3 randomization. One
        entropy value is drawn at construction time and each topic derives
        its own generator from ``(entropy, topic_id)``, so a topic's
        summary does not depend on how many other topics were summarized
        first - the property that lets parallel multi-topic builds match
        the serial output byte for byte.
    metrics:
        Registry receiving the per-phase timings
        (``phase.summarize.rcl.*``); ``None`` uses the process default.
    """

    name = "rcl"

    def __init__(
        self,
        graph: SocialGraph,
        topic_index: TopicIndex,
        *,
        max_hops: int = 4,
        sample_rate: float = 0.05,
        rep_fraction: float = 0.05,
        walk_index: Optional[WalkIndex] = None,
        policy: str = "all",
        use_tree: bool = False,
        seed: SeedLike = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        require_in_range("max_hops", max_hops, 1)
        require_probability("sample_rate", sample_rate, inclusive_zero=False)
        require_probability("rep_fraction", rep_fraction, inclusive_zero=False)
        if walk_index is not None and walk_index.graph is not graph:
            raise ConfigurationError("walk_index was built for a different graph")
        self._graph = graph
        self._topic_index = topic_index
        self._max_hops = int(max_hops)
        self._sample_rate = float(sample_rate)
        self._rep_fraction = float(rep_fraction)
        self._walk_index = walk_index
        self._policy = policy
        self._use_tree = bool(use_tree)
        self._entropy = spawn_entropy(seed)
        self._metrics = metrics

    def set_metrics(self, registry: Optional[MetricsRegistry]) -> None:
        """Route phase metrics to *registry* (None = process default)."""
        self._metrics = registry

    def _registry(self) -> MetricsRegistry:
        metrics = self._metrics
        return metrics if metrics is not None else get_registry()

    # ------------------------------------------------------------------
    @property
    def graph(self) -> SocialGraph:
        """The summarized graph."""
        return self._graph

    @property
    def topic_index(self) -> TopicIndex:
        """The topic space."""
        return self._topic_index

    def n_clusters_for(self, topic_id: int) -> int:
        """``C_Size`` for a topic: ``ceil(rep_fraction * |V_t|)``."""
        size = self._topic_index.topic_size(topic_id)
        return max(1, math.ceil(self._rep_fraction * size))

    # ------------------------------------------------------------------
    def cluster_topic(self, topic_id: int) -> List[Tuple[int, ...]]:
        """Algorithm 1 (+2/3): non-overlapping groups of topic *node ids*."""
        topic_nodes = self._topic_index.topic_nodes(topic_id)
        if topic_nodes.size == 0:
            raise ConfigurationError(
                f"topic {topic_id} has no member nodes to cluster"
            )
        if topic_nodes.size == 1:
            return [(int(topic_nodes[0]),)]
        registry = self._registry()
        rng = derive_topic_rng(self._entropy, topic_id)
        with trace(
            "summarize.rcl.sampling", registry=registry, topic=topic_id
        ):
            sample_count = sample_rate_to_count(self._graph, self._sample_rate)
            sample = sample_nodes_by_degree(self._graph, sample_count, rng)
        with trace(
            "summarize.rcl.grouping", registry=registry, topic=topic_id
        ):
            _, gp_pos, gp_neg = compute_grouping_probabilities(
                self._graph,
                topic_nodes,
                sample,
                max_hops=self._max_hops,
                walk_index=self._walk_index,
                metrics=registry,
            )
            labels = label_pairs(gp_pos, gp_neg, seed=rng)
        n_clusters = self.n_clusters_for(topic_id)
        with trace(
            "summarize.rcl.no_overlap", registry=registry, topic=topic_id
        ):
            if self._use_tree:
                position_groups = no_overlap_from_tree(
                    labels, n_clusters, policy=self._policy
                )
            else:
                position_groups = greedy_no_overlap(
                    labels, n_clusters, policy=self._policy
                )
        ordered = np.asarray(sorted(set(int(v) for v in topic_nodes)), dtype=np.int64)
        return [tuple(int(ordered[p]) for p in group) for group in position_groups]

    def summarize(self, topic_id: int) -> TopicSummary:
        """Algorithm 5 offline stage: groups -> centroids -> weights."""
        topic_id = self._topic_index.resolve(topic_id)
        registry = self._registry()
        groups = self.cluster_topic(topic_id)
        total_nodes = sum(len(g) for g in groups)
        weights: Dict[int, float] = {}
        with trace(
            "summarize.rcl.centroid", registry=registry, topic=topic_id
        ):
            for group in groups:
                central = select_central(
                    self._graph,
                    group,
                    max_hops=self._max_hops,
                    walk_index=self._walk_index,
                    metrics=registry,
                )
                share = len(group) / total_nodes
                # Two groups may elect the same centroid; their shares merge.
                weights[central] = weights.get(central, 0.0) + share
        registry.inc("summaries.built")
        return TopicSummary(topic_id, weights)
