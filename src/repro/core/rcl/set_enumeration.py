"""Set-enumeration tree over groupable topic nodes - Algorithm 2 (S14).

The SETree enumerates candidate topic-node groups: the root holds the empty
set, depth-1 nodes are singletons, and a child extends its parent's set by
one later element that passes ``CHECK_GROUPING`` against the set. The paper
leaves ``CHECK_GROUPING``'s exact semantics open; we implement two policies
(DESIGN.md note 3):

* ``"all"`` (default) - the new element must be pairwise grouped with every
  member, so every emitted set is a clique of the grouping relation;
* ``"any"`` - one grouped member suffices (looser, larger groups).

The tree is worst-case exponential, so construction takes a node budget;
at the paper's group sizes the budget never binds, but a hostile labelling
cannot hang the library (``strict`` controls whether hitting the budget
raises or truncates).
"""

from __future__ import annotations

import warnings
from typing import Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ...exceptions import BudgetExceededError, ConfigurationError

__all__ = ["SETreeNode", "SetEnumerationTree", "GROUPING_POLICIES"]

GROUPING_POLICIES = ("all", "any")


class SETreeNode:
    """One tree node: an index set over the topic-node array.

    ``members`` are *positions* into the topic-node array (not graph ids),
    matching the label-matrix axes of
    :class:`~repro.core.rcl.grouping.PairwiseGrouping`.
    """

    __slots__ = ("members", "children", "parent")

    def __init__(self, members: Tuple[int, ...], parent: Optional["SETreeNode"]):
        self.members = members
        self.parent = parent
        self.children: List["SETreeNode"] = []

    @property
    def tail(self) -> int:
        """The largest (most recently added) member position."""
        return self.members[-1]

    def is_leaf(self) -> bool:
        """Whether the node has no children."""
        return not self.children

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SETreeNode{self.members!r}"


class SetEnumerationTree:
    """Materialized set-enumeration tree for one topic's grouping labels.

    Parameters
    ----------
    labels:
        Symmetric 0/1 matrix from
        :func:`~repro.core.rcl.grouping.label_pairs`.
    policy:
        ``CHECK_GROUPING`` policy, ``"all"`` or ``"any"``.
    max_nodes:
        Construction budget (tree nodes, root excluded).
    strict:
        Raise :class:`BudgetExceededError` when the budget binds (default
        warns and truncates).
    """

    def __init__(
        self,
        labels: np.ndarray,
        *,
        policy: str = "all",
        max_nodes: int = 50_000,
        strict: bool = False,
    ):
        if labels.ndim != 2 or labels.shape[0] != labels.shape[1]:
            raise ConfigurationError("labels must be a square matrix")
        if policy not in GROUPING_POLICIES:
            raise ConfigurationError(
                f"unknown policy {policy!r}; choose from {GROUPING_POLICIES}"
            )
        if max_nodes < 1:
            raise ConfigurationError(f"max_nodes must be >= 1, got {max_nodes}")
        self._labels = labels
        self._policy = policy
        self._n = labels.shape[0]
        self.root = SETreeNode((), None)
        self._n_nodes = 0
        self._build(max_nodes, strict)

    # ------------------------------------------------------------------
    def check_grouping(self, members: Sequence[int], candidate: int) -> bool:
        """``CHECK_GROUPING`` - may *candidate* join the set *members*?"""
        if not members:
            return True
        if self._policy == "all":
            return all(self._labels[m, candidate] == 1 for m in members)
        return any(self._labels[m, candidate] == 1 for m in members)

    def _build(self, max_nodes: int, strict: bool) -> None:
        # Depth-1 layer: every position as a singleton child of the root.
        frontier: List[SETreeNode] = []
        for position in range(self._n):
            child = SETreeNode((position,), self.root)
            self.root.children.append(child)
            frontier.append(child)
            self._n_nodes += 1
        # Breadth-first expansion: extend each set with later positions that
        # pass CHECK_GROUPING (the "right-side sibling" merge of Alg. 2).
        cursor = 0
        while cursor < len(frontier):
            node = frontier[cursor]
            cursor += 1
            for candidate in range(node.tail + 1, self._n):
                if not self.check_grouping(node.members, candidate):
                    continue
                if self._n_nodes >= max_nodes:
                    if strict:
                        raise BudgetExceededError("set-enumeration tree", max_nodes)
                    warnings.warn(
                        f"set-enumeration tree truncated at {max_nodes} nodes",
                        RuntimeWarning,
                        stacklevel=3,
                    )
                    return
                child = SETreeNode(node.members + (candidate,), node)
                node.children.append(child)
                frontier.append(child)
                self._n_nodes += 1

    # ------------------------------------------------------------------
    @property
    def n_nodes(self) -> int:
        """Number of tree nodes built (root excluded)."""
        return self._n_nodes

    def iter_sets(self) -> Iterator[Tuple[int, ...]]:
        """Yield every enumerated set (pre-order)."""
        stack = list(reversed(self.root.children))
        while stack:
            node = stack.pop()
            yield node.members
            stack.extend(reversed(node.children))

    def maximal_sets(self) -> List[Tuple[int, ...]]:
        """All leaf sets (sets with no groupable extension)."""
        return [members for members in self._iter_leaves()]

    def _iter_leaves(self) -> Iterator[Tuple[int, ...]]:
        stack = list(reversed(self.root.children))
        while stack:
            node = stack.pop()
            if node.is_leaf():
                yield node.members
            else:
                stack.extend(reversed(node.children))

    def leftmost_deepest(self) -> Tuple[int, ...]:
        """The leftmost leaf reached by always following the first child.

        This is the set Algorithm 3 repeatedly extracts; for the ``"all"``
        policy it equals the greedy clique seeded at the smallest position.
        """
        if not self.root.children:
            raise ConfigurationError("tree is empty")
        node = self.root.children[0]
        while node.children:
            node = node.children[0]
        return node.members
