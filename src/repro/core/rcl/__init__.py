"""RCL-A: approximate random clustering summarizer (paper §3, S13-S17)."""

from .centroid import closeness_centrality, select_central, vote_candidates
from .grouping import (
    GroupingProbabilities,
    PairwiseGrouping,
    compute_grouping_probabilities,
    grouping_probability,
    label_pairs,
)
from .no_overlap import greedy_no_overlap, group_size_cap, no_overlap_from_tree
from .pipeline import RCLSummarizer
from .set_enumeration import GROUPING_POLICIES, SETreeNode, SetEnumerationTree

__all__ = [
    "RCLSummarizer",
    "GroupingProbabilities",
    "PairwiseGrouping",
    "compute_grouping_probabilities",
    "grouping_probability",
    "label_pairs",
    "SetEnumerationTree",
    "SETreeNode",
    "GROUPING_POLICIES",
    "greedy_no_overlap",
    "no_overlap_from_tree",
    "group_size_cap",
    "closeness_centrality",
    "select_central",
    "vote_candidates",
]
