"""Non-overlapping group extraction - Algorithm 3 (S15).

Algorithm 3 walks the set-enumeration tree: repeatedly take the leftmost
deepest set not exceeding the size cap ``ceil(|V_t| / C_Size)``, emit it as
a group, delete its members everywhere, and continue until the tree is
empty (Rule 4: clustering is hard - every node in exactly one group).

Two equivalent implementations are provided:

* :func:`no_overlap_from_tree` - the literal tree-walking procedure, used
  on small inputs and in the fidelity tests;
* :func:`greedy_no_overlap` - the closed form of the same process: seed a
  group at the smallest unassigned position and greedily absorb later
  unassigned positions that pass ``CHECK_GROUPING``, stopping at the size
  cap. It never materializes the (worst-case exponential) tree, which is
  what makes RCL-A usable beyond toy topic sets.

``tests/core/test_no_overlap.py`` verifies the two agree on random
instances.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple

import numpy as np

from ...exceptions import ConfigurationError
from .set_enumeration import GROUPING_POLICIES, SetEnumerationTree

__all__ = ["group_size_cap", "greedy_no_overlap", "no_overlap_from_tree"]


def group_size_cap(n_topic_nodes: int, n_clusters: int) -> int:
    """Algorithm 3 line 1: approximate group size ``ceil(|V_t| / C_Size)``."""
    if n_topic_nodes < 1:
        raise ConfigurationError(f"n_topic_nodes must be >= 1, got {n_topic_nodes}")
    if n_clusters < 1:
        raise ConfigurationError(f"n_clusters must be >= 1, got {n_clusters}")
    return max(1, math.ceil(n_topic_nodes / n_clusters))


def _check_grouping(labels: np.ndarray, members: Sequence[int], candidate: int,
                    policy: str) -> bool:
    if not members:
        return True
    if policy == "all":
        return all(labels[m, candidate] == 1 for m in members)
    return any(labels[m, candidate] == 1 for m in members)


def greedy_no_overlap(
    labels: np.ndarray,
    n_clusters: int,
    *,
    policy: str = "all",
) -> List[Tuple[int, ...]]:
    """Non-overlapping groups via the greedy equivalent of Algorithm 3.

    Parameters
    ----------
    labels:
        Symmetric 0/1 grouping matrix over topic-node positions.
    n_clusters:
        ``C_Size`` - the requested number of clusters, which fixes the
        per-group size cap.
    policy:
        ``CHECK_GROUPING`` policy (must match the tree policy when
        comparing against :func:`no_overlap_from_tree`).

    Returns
    -------
    Groups as tuples of positions; every position appears exactly once.
    """
    if labels.ndim != 2 or labels.shape[0] != labels.shape[1]:
        raise ConfigurationError("labels must be a square matrix")
    if policy not in GROUPING_POLICIES:
        raise ConfigurationError(
            f"unknown policy {policy!r}; choose from {GROUPING_POLICIES}"
        )
    n = labels.shape[0]
    cap = group_size_cap(n, n_clusters)
    assigned = np.zeros(n, dtype=bool)
    grouped = labels == 1
    groups: List[Tuple[int, ...]] = []
    for seed in range(n):
        if assigned[seed]:
            continue
        members: List[int] = [seed]
        assigned[seed] = True
        if cap > 1 and seed + 1 < n:
            # compat[c] <=> CHECK_GROUPING(members, c) under the policy;
            # updated incrementally as members join.
            compat = grouped[seed].copy()
            candidate = seed + 1
            while len(members) < cap:
                eligible = np.flatnonzero(
                    compat[candidate:] & ~assigned[candidate:]
                )
                if eligible.size == 0:
                    break
                candidate = candidate + int(eligible[0])
                members.append(candidate)
                assigned[candidate] = True
                if policy == "all":
                    compat &= grouped[candidate]
                else:
                    compat |= grouped[candidate]
                candidate += 1
        groups.append(tuple(members))
    return groups


def no_overlap_from_tree(
    labels: np.ndarray,
    n_clusters: int,
    *,
    policy: str = "all",
    max_tree_nodes: int = 50_000,
) -> List[Tuple[int, ...]]:
    """Non-overlapping groups via the literal Algorithm 3 tree walk.

    Rebuilds the set-enumeration tree after every extraction (deleting the
    emitted members), exactly as removing them from the paper's tree would
    leave it. Exponential in the worst case - intended for fidelity tests
    and small inputs only.
    """
    n = labels.shape[0]
    cap = group_size_cap(n, n_clusters)
    remaining = list(range(n))
    groups: List[Tuple[int, ...]] = []
    while remaining:
        index = {position: original for position, original in enumerate(remaining)}
        sub = labels[np.ix_(remaining, remaining)]
        tree = SetEnumerationTree(sub, policy=policy, max_nodes=max_tree_nodes)
        chosen = tree.leftmost_deepest()
        # Algorithm 3 lines 4-9: an oversized leftmost set is trimmed back
        # (removing tree nodes climbs toward the parent prefix).
        if len(chosen) > cap:
            chosen = chosen[:cap]
        group = tuple(index[p] for p in chosen)
        groups.append(group)
        chosen_set = set(group)
        remaining = [p for p in remaining if p not in chosen_set]
    return groups
