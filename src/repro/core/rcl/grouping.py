"""Grouping probabilities and clustering rules - Algorithm 1 (S13).

For a pair of topic nodes ``u, v`` and a sampled node set ``V'``, the paper
partitions ``V'`` into three buckets (each sampled node lands in exactly
one):

* ``GP+``: fraction of V' reaching *both* u and v within L hops - evidence
  the pair belongs together;
* ``GP-``: fraction reaching exactly one of them - evidence for splitting;
* ``GP*``: fraction reaching neither - no evidence either way.

The clustering rules then label each pair grouped / split / randomized
(Rule 3 groups with probability ``GP+ / (GP+ + GP*)``).

Reachability sets come from either the sampled walk index (``I_L``,
Algorithm 6) or exact hop-limited reverse BFS; both are supported and the
choice is an explicit parameter. The exact branch runs one batched bitset
propagation (:func:`~repro.graph.traversal.reachability_bitsets`) for the
whole topic-node set instead of one reverse BFS per topic node; the indexed
branch resolves each ``I_L`` set against the sorted sample with a single
``searchsorted`` pass. The retained scalar loop lives in
:mod:`repro.core._scalar_summarize` as the parity baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..._utils import SeedLike, coerce_rng
from ...exceptions import ConfigurationError
from ...graph import SocialGraph, reachability_bitsets, unpack_bitset
from ...obs.registry import MetricsRegistry, get_registry
from ...obs.tracing import trace
from ...walks import WalkIndex

__all__ = [
    "GroupingProbabilities",
    "PairwiseGrouping",
    "compute_grouping_probabilities",
    "label_pairs",
    "grouping_probability",
]


@dataclass(frozen=True)
class GroupingProbabilities:
    """The (GP+, GP-, GP*) triple for one node pair."""

    positive: float
    negative: float
    unknown: float

    def __post_init__(self):
        total = self.positive + self.negative + self.unknown
        if not np.isclose(total, 1.0, atol=1e-9):
            raise ConfigurationError(
                f"grouping probabilities must sum to 1, got {total}"
            )
        for name in ("positive", "negative", "unknown"):
            value = getattr(self, name)
            if not -1e-12 <= value <= 1.0 + 1e-12:
                raise ConfigurationError(f"{name} probability out of [0,1]: {value}")


def grouping_probability(gp: GroupingProbabilities) -> float:
    """Rule 3's randomized grouping probability ``GP+ / (GP+ + GP*)``.

    Property 1 of the paper guarantees this dominates the corresponding
    split probability whenever ``GP+ >= GP-``.
    """
    denominator = gp.positive + gp.unknown
    if denominator == 0.0:
        return 0.0
    return gp.positive / denominator


class PairwiseGrouping:
    """Dense pairwise grouping state over a topic's node set.

    Attributes
    ----------
    topic_nodes:
        The topic node ids, in index order (matrix axes refer to these
        positions).
    reach:
        Boolean matrix ``(n_t, |V'|)``: does topic node i reach sampled
        node j within L hops.
    labels:
        Symmetric ``int8`` matrix: 1 grouped, 0 split (diagonal is 1).
    """

    def __init__(
        self,
        topic_nodes: np.ndarray,
        reach: np.ndarray,
        labels: np.ndarray,
        probabilities: Optional[np.ndarray] = None,
    ):
        self.topic_nodes = topic_nodes
        self.reach = reach
        self.labels = labels
        self._probabilities = probabilities

    def grouped(self, i: int, j: int) -> bool:
        """Whether topic-node positions *i* and *j* were labelled grouped."""
        return bool(self.labels[i, j] == 1)

    def pair_probabilities(self, i: int, j: int) -> GroupingProbabilities:
        """The (GP+, GP-, GP*) triple for positions *i*, *j*."""
        if self._probabilities is None:
            raise ConfigurationError("probabilities were not retained")
        gp_pos, gp_neg = self._probabilities[i, j]
        return GroupingProbabilities(gp_pos, gp_neg, 1.0 - gp_pos - gp_neg)

    @property
    def n_topic_nodes(self) -> int:
        """Number of topic nodes covered."""
        return int(self.topic_nodes.size)


def _reachability_matrix(
    graph: SocialGraph,
    topic_nodes: np.ndarray,
    sample: np.ndarray,
    max_hops: int,
    walk_index: Optional[WalkIndex],
) -> np.ndarray:
    """Boolean ``(n_t, |V'|)`` matrix of 'sample node reaches topic node'.

    *sample* must be sorted (the caller dedups and sorts). The exact-BFS
    branch answers all ``n_t`` reverse reachability questions with one
    bitset propagation; the walk-index branch intersects each ``I_L`` set
    with the sample via ``searchsorted`` instead of per-node dict probes.
    """
    if walk_index is not None:
        reach = np.zeros((topic_nodes.size, sample.size), dtype=bool)
        for i, node in enumerate(topic_nodes):
            reachers = walk_index.reverse_reachable(int(node))
            if reachers.size == 0:
                continue
            pos = np.searchsorted(sample, reachers)
            in_range = pos < sample.size
            pos = pos[in_range]
            hits = pos[sample[pos] == reachers[in_range]]
            reach[i, hits] = True
        return reach
    bits = reachability_bitsets(graph, topic_nodes, max_hops)
    # Row v, bit i = "v reaches topic_nodes[i]"; select the sampled rows.
    return unpack_bitset(bits[sample], topic_nodes.size).T


def _pair_common_counts(reach: np.ndarray) -> np.ndarray:
    """``|V_uL ∩ V_vL ∩ V'|`` for every topic-node pair, as ``int64``.

    Packs each reachability row into uint64 words and popcounts the
    pairwise AND, so a pair costs ``ceil(|V'|/64)`` word ops instead of a
    ``|V'|``-wide float dot product.
    """
    n_t, n_s = reach.shape
    pad = (-n_s) % 64
    if pad:
        reach = np.concatenate(
            [reach, np.zeros((n_t, pad), dtype=bool)], axis=1
        )
    packed = np.packbits(reach, axis=1, bitorder="little").view(np.uint64)
    pair_and = packed[:, None, :] & packed[None, :, :]
    return np.bitwise_count(pair_and).sum(axis=2, dtype=np.int64)


def compute_grouping_probabilities(
    graph: SocialGraph,
    topic_nodes: Sequence[int],
    sample: Sequence[int],
    *,
    max_hops: int,
    walk_index: Optional[WalkIndex] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized GP+ / GP- matrices for all topic-node pairs.

    Returns
    -------
    (reach, gp_positive, gp_negative):
        *reach* is the boolean reachability matrix; the GP matrices are
        symmetric ``float64`` with an undefined diagonal (set to 1 / 0).
        ``GP*`` is implicitly ``1 - GP+ - GP-``.
    """
    registry = metrics if metrics is not None else get_registry()
    topic_nodes = np.asarray(sorted(set(int(v) for v in topic_nodes)), dtype=np.int64)
    sample = np.asarray(sorted(set(int(v) for v in sample)), dtype=np.int64)
    if topic_nodes.size == 0:
        raise ConfigurationError("topic node set is empty")
    if sample.size == 0:
        raise ConfigurationError("sample node set V' is empty")

    with trace("summarize.reachability", registry=registry):
        reach = _reachability_matrix(
            graph, topic_nodes, sample, max_hops, walk_index
        )
    # Integer intersection / row counts are exact in float64 (|V'| << 2^53),
    # so these GP values are bit-identical to the historical float matmul.
    common = _pair_common_counts(reach).astype(np.float64)
    registry.inc("summarize.grouping.pairs", topic_nodes.size * topic_nodes.size)
    sample_size = float(sample.size)
    row = reach.sum(axis=1, dtype=np.int64).astype(np.float64)
    gp_positive = common / sample_size
    # reaches exactly one: (|u| - common) + (|v| - common)
    gp_negative = (row[:, None] + row[None, :] - 2.0 * common) / sample_size
    np.fill_diagonal(gp_positive, 1.0)
    np.fill_diagonal(gp_negative, 0.0)
    return reach, gp_positive, gp_negative


def label_pairs(
    gp_positive: np.ndarray,
    gp_negative: np.ndarray,
    *,
    seed: SeedLike = None,
) -> np.ndarray:
    """Apply clustering Rules 1-3 to every pair (Algorithm 1 lines 12-21).

    Returns a symmetric ``int8`` matrix with 1 = grouped, 0 = split. The
    randomized Rule 3 draws one uniform variate per unordered pair, so the
    result is symmetric and reproducible under a fixed seed.
    """
    if gp_positive.shape != gp_negative.shape or gp_positive.ndim != 2:
        raise ConfigurationError("GP matrices must be square and congruent")
    rng = coerce_rng(seed)
    n = gp_positive.shape[0]
    gp_unknown = 1.0 - gp_positive - gp_negative
    # Rule 1: clearly in. Rule 2: clearly out - applied after Rule 1, so a
    # tie (GP+ == GP-, both >= GP*) resolves to split. Rule 3 is disjoint
    # from both (it requires GP+ < GP*, Rule 1 requires GP+ >= GP*; at
    # GP+ == GP- Rule 2 would require GP- >= GP* which contradicts Rule 3).
    rule1 = (gp_positive >= gp_negative) & (gp_positive >= gp_unknown)
    rule2 = (gp_negative >= gp_positive) & (gp_negative >= gp_unknown)
    rule3 = (gp_positive >= gp_negative) & (gp_positive < gp_unknown)
    denominator = 1.0 - gp_negative
    probability = np.divide(
        gp_positive,
        np.where(denominator > 0.0, denominator, 1.0),
        out=np.zeros_like(gp_positive),
        where=denominator > 0.0,
    )
    # One uniform draw per unordered pair, mirrored for symmetry.
    draws = rng.random((n, n))
    upper = np.triu(draws, 1)
    draws = upper + upper.T
    grouped = (rule1 & ~rule2) | (rule3 & (draws <= probability))
    labels = grouped.astype(np.int8)
    labels = np.maximum(labels, labels.T)  # defensive: keep symmetric
    np.fill_diagonal(labels, 1)
    return labels
