"""Social summarization interfaces and quality metric (Definition 1, S23).

A *t-aware social summarization* replaces a topic's (possibly huge) node set
``V_t``, each node carrying local weight ``1/|V_t|``, with a small weighted
set of representative nodes whose propagated influence approximates the
original. :class:`TopicSummary` is that weighted set; :class:`Summarizer` is
the interface both RCL-A and LRW-A implement; and
:func:`summarization_error` evaluates Definition 1's L1 objective
``sum_v |I(t, v) - I*(t, v)|``.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..graph import SocialGraph
from ..topics import TopicIndex
from .influence import propagate_influence, topic_influence_vector

__all__ = ["SummaryArrays", "TopicSummary", "Summarizer", "summarization_error"]


class SummaryArrays:
    """Frozen array form of a summary, the online kernels' native input.

    Representative ids live in a sorted ``int64`` array with the weights
    aligned in a parallel ``float64`` array, so resolving a whole summary
    against a propagation entry's sorted source array is a single
    ``np.searchsorted`` pass instead of one hash probe per representative.
    Built once per summary (see :meth:`TopicSummary.arrays`) and shared by
    every query that touches the topic.
    """

    __slots__ = ("representatives", "weights")

    def __init__(self, representatives: np.ndarray, weights: np.ndarray):
        representatives = np.asarray(representatives, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.float64)
        representatives.setflags(write=False)
        weights.setflags(write=False)
        self.representatives = representatives
        self.weights = weights

    @property
    def size(self) -> int:
        """Number of representatives."""
        return int(self.representatives.size)

    def memory_bytes(self) -> int:
        """Exact resident size of the two storage arrays."""
        return int(self.representatives.nbytes + self.weights.nbytes)


@dataclass(frozen=True)
class TopicSummary:
    """Weighted representative nodes standing in for a topic's node set.

    Attributes
    ----------
    topic_id:
        The topic this summary represents.
    weights:
        ``representative node -> local influence weight``. Weights are the
        initial propagation power of each representative (Definition 1);
        they are non-negative and sum to at most 1 (equality when every
        topic node's local weight was fully migrated). Stored in sorted
        representative order regardless of the mapping passed in, so every
        consumer iterates (and accumulates floats) in one deterministic
        order - the same order the array kernels use.
    """

    topic_id: int
    weights: Mapping[int, float]

    def __post_init__(self):
        total = 0.0
        for node, weight in self.weights.items():
            if weight < 0:
                raise ConfigurationError(
                    f"summary weight for node {node} is negative: {weight!r}"
                )
            total += weight
        if total > 1.0 + 1e-9:
            raise ConfigurationError(
                f"summary weights sum to {total}, which exceeds 1"
            )
        normalized = {
            int(node): float(self.weights[node]) for node in sorted(self.weights)
        }
        object.__setattr__(self, "weights", normalized)

    @property
    def representatives(self) -> Tuple[int, ...]:
        """Representative node ids, sorted."""
        return tuple(sorted(self.weights))

    @property
    def size(self) -> int:
        """Number of representative nodes."""
        return len(self.weights)

    @property
    def total_weight(self) -> float:
        """Aggregate migrated weight (<= 1)."""
        return float(sum(self.weights.values()))

    def weight(self, node: int) -> float:
        """Weight of one representative (0 when not a representative)."""
        return float(self.weights.get(int(node), 0.0))

    def with_topic_id(self, topic_id: int) -> "TopicSummary":
        """This summary re-keyed under *topic_id* (same representatives).

        Topic ids are label-ordered, so an unrelated topic appearing or
        vanishing renumbers every id; dynamic maintenance re-keys the
        surviving summaries. The cached array form carries over - the
        weights are untouched, so the arrays stay valid.
        """
        topic_id = int(topic_id)
        if topic_id == self.topic_id:
            return self
        rekeyed = TopicSummary(topic_id, dict(self.weights))
        cached = self.__dict__.get("_array_form")
        if cached is not None:
            object.__setattr__(rekeyed, "_array_form", cached)
        return rekeyed

    def restricted_to(self, nodes: Iterable[int]) -> "TopicSummary":
        """A summary keeping only representatives in *nodes*."""
        keep = set(int(v) for v in nodes)
        return TopicSummary(
            self.topic_id,
            {v: w for v, w in self.weights.items() if v in keep},
        )

    def arrays(self) -> SummaryArrays:
        """The :class:`SummaryArrays` form, built once and cached.

        The cache lives on the instance (the dataclass is frozen but not
        slotted), so every searcher sharing this summary shares one array
        build.
        """
        cached = self.__dict__.get("_array_form")
        if cached is None:
            reps = sorted(self.weights)
            representatives = np.fromiter(
                reps, dtype=np.int64, count=len(reps)
            )
            weights = np.fromiter(
                (self.weights[r] for r in reps),
                dtype=np.float64,
                count=len(reps),
            )
            cached = SummaryArrays(representatives, weights)
            object.__setattr__(self, "_array_form", cached)
        return cached

    def memory_bytes(self) -> int:
        """Approximate resident size of the summary.

        16 bytes per mapping pair (an ``int64`` id plus a ``float64``
        weight) plus the cached array form when it has been built.
        """
        total = 16 * len(self.weights)
        cached = self.__dict__.get("_array_form")
        if cached is not None:
            total += cached.memory_bytes()
        return int(total)


class Summarizer(abc.ABC):
    """Common interface of the RCL-A and LRW-A offline summarizers.

    Concrete summarizers are bound to a graph and a topic index at
    construction and produce one :class:`TopicSummary` per topic.
    """

    #: Short machine name ("rcl" / "lrw"), used by the engine and reports.
    name: str = "abstract"

    @abc.abstractmethod
    def summarize(self, topic_id: int) -> TopicSummary:
        """Build the summary of one topic."""

    def summarize_all(self, topic_ids: Iterable[int]) -> Dict[int, TopicSummary]:
        """Build summaries for many topics (offline pre-processing stage)."""
        return {int(t): self.summarize(int(t)) for t in topic_ids}


def summarization_error(
    graph: SocialGraph,
    topic_nodes: Iterable[int],
    summary: TopicSummary,
    *,
    length: int = 6,
) -> float:
    """Definition 1's objective: ``sum_v |I(t, v) - I*(t, v)|``.

    ``I`` propagates the uniform topic-node weights, ``I*`` the summary's
    representative weights, both over walks of length 1..``length``; the
    returned value is the L1 distance between the two influence vectors.
    Lower is better; 0 means the summary reproduces the topic's influence
    field exactly.
    """
    exact = topic_influence_vector(graph, topic_nodes, length)
    approx = propagate_influence(graph, dict(summary.weights), length)
    return float(np.abs(exact - approx).sum())
