"""Retained scalar reference implementation of the offline summarizers.

This module freezes the per-node / per-pair / per-walk summarization code
paths exactly as they stood before :mod:`repro.graph.traversal`'s bitset
kernels made :mod:`repro.core.rcl` and :mod:`repro.core.lrw` array-native
(same pattern as :mod:`repro.core._scalar_search` for the online stage).
It exists for two reasons:

1. **Differential testing** - ``tests/test_properties_summarization.py``
   runs the vectorized RCL-A / LRW-A pipelines against these baselines on
   seeded random graphs and asserts bit-exact groupings, representative
   sets, and summary weights.
2. **Benchmark baseline** - ``benchmarks/bench_summarization.py`` measures
   the vectorized speedup against this code and gates on parity in the
   same run.

Do not optimize this module - its value is staying the fixed reference
point. The shared pure helpers (``label_pairs``, the no-overlap
extraction, ``select_representatives``, degree sampling) are imported
rather than duplicated: they are identical in both paths, so they cannot
mask a divergence in the rewritten kernels.

The one deliberate deviation from the historical code is randomness
plumbing: :class:`ScalarRCLSummarizer` derives a per-topic generator from
``(entropy, topic_id)`` exactly like the vectorized
:class:`~repro.core.rcl.pipeline.RCLSummarizer` now does, so the two can
be compared under a common seed. Within a topic the consumption order is
unchanged (sampling first, then Rule 3 draws).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from .._utils import (
    SeedLike,
    derive_topic_rng,
    normalize_rows,
    require_in_range,
    require_probability,
    spawn_entropy,
)
from ..exceptions import ConfigurationError
from ..graph import (
    SocialGraph,
    hop_distances,
    reverse_reachable,
    sample_nodes_by_degree,
    sample_rate_to_count,
)
from ..topics import TopicIndex
from ..walks import WalkIndex, first_absorption
from .lrw.repnodes import select_representatives
from .rcl.grouping import label_pairs
from .rcl.no_overlap import greedy_no_overlap, no_overlap_from_tree
from .summarization import Summarizer, TopicSummary

__all__ = [
    "scalar_compute_grouping_probabilities",
    "scalar_closeness_centrality",
    "scalar_vote_candidates",
    "scalar_select_central",
    "scalar_migration_matrix",
    "scalar_migrate_influence",
    "ScalarRCLSummarizer",
    "ScalarLRWSummarizer",
]


# ---------------------------------------------------------------------------
# RCL-A grouping (pre-bitset `rcl/grouping.py`)
# ---------------------------------------------------------------------------


def _scalar_reachability_matrix(
    graph: SocialGraph,
    topic_nodes: np.ndarray,
    sample: np.ndarray,
    max_hops: int,
    walk_index: Optional[WalkIndex],
) -> np.ndarray:
    """Boolean ``(n_t, |V'|)`` matrix of 'sample node reaches topic node'."""
    sample_positions = {int(node): j for j, node in enumerate(sample)}
    reach = np.zeros((topic_nodes.size, sample.size), dtype=bool)
    for i, node in enumerate(topic_nodes):
        if walk_index is not None:
            reachers = walk_index.reverse_reachable(int(node))
        else:
            reachers = reverse_reachable(graph, int(node), max_hops)
        for reacher in reachers:
            j = sample_positions.get(int(reacher))
            if j is not None:
                reach[i, j] = True
    return reach


def scalar_compute_grouping_probabilities(
    graph: SocialGraph,
    topic_nodes: Sequence[int],
    sample: Sequence[int],
    *,
    max_hops: int,
    walk_index: Optional[WalkIndex] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """GP+ / GP- matrices via one reverse BFS per topic node (Algorithm 1)."""
    topic_nodes = np.asarray(sorted(set(int(v) for v in topic_nodes)), dtype=np.int64)
    sample = np.asarray(sorted(set(int(v) for v in sample)), dtype=np.int64)
    if topic_nodes.size == 0:
        raise ConfigurationError("topic node set is empty")
    if sample.size == 0:
        raise ConfigurationError("sample node set V' is empty")

    reach = _scalar_reachability_matrix(
        graph, topic_nodes, sample, max_hops, walk_index
    )
    reach_f = reach.astype(np.float64)
    sample_size = float(sample.size)
    common = reach_f @ reach_f.T  # |V_uL ∩ V_vL ∩ V'| for every pair
    row = reach_f.sum(axis=1)
    gp_positive = common / sample_size
    # reaches exactly one: (|u| - common) + (|v| - common)
    gp_negative = (row[:, None] + row[None, :] - 2.0 * common) / sample_size
    np.fill_diagonal(gp_positive, 1.0)
    np.fill_diagonal(gp_negative, 0.0)
    return reach, gp_positive, gp_negative


# ---------------------------------------------------------------------------
# RCL-A centroid selection (pre-bitset `rcl/centroid.py`)
# ---------------------------------------------------------------------------


def scalar_closeness_centrality(
    graph: SocialGraph,
    node: int,
    group: Sequence[int],
    *,
    max_hops: int,
    unreachable_distance: Optional[int] = None,
) -> float:
    """Definition 3 via one forward BFS and a Python loop over the group."""
    if not group:
        raise ConfigurationError("group is empty")
    require_in_range("max_hops", max_hops, 1)
    if unreachable_distance is None:
        unreachable_distance = max_hops + 1
    dist = hop_distances(graph, node, max_hops)
    total = 0.0
    for member in group:
        d = int(dist[graph.validate_node(member)])
        total += d if d >= 0 else unreachable_distance
    if total == 0.0:
        # Only possible for a singleton group containing the node itself.
        return float("inf")
    return len(group) / total


def scalar_vote_candidates(
    graph: SocialGraph,
    group: Sequence[int],
    *,
    max_hops: int,
    walk_index: Optional[WalkIndex] = None,
    include_members: bool = True,
) -> Tuple[List[int], Dict[int, int]]:
    """Algorithm 4 lines 1-7 with a dict tally and per-member BFS."""
    if not group:
        raise ConfigurationError("group is empty")
    votes: Dict[int, int] = {}
    for member in group:
        member = graph.validate_node(member)
        if walk_index is not None:
            reachers = walk_index.reverse_reachable(member)
        else:
            reachers = reverse_reachable(graph, member, max_hops)
        for reacher in reachers:
            reacher = int(reacher)
            votes[reacher] = votes.get(reacher, 0) + 1
        if include_members:
            # A member trivially reaches itself in 0 hops.
            votes[member] = votes.get(member, 0) + 1
    if not votes:
        return [], votes
    top = max(votes.values())
    candidates = sorted(node for node, count in votes.items() if count == top)
    return candidates, votes


def scalar_select_central(
    graph: SocialGraph,
    group: Sequence[int],
    *,
    max_hops: int,
    walk_index: Optional[WalkIndex] = None,
    max_candidates: int = 8,
) -> int:
    """Algorithm 4 with one centrality BFS per surviving candidate."""
    require_in_range("max_candidates", max_candidates, 1)
    group = [graph.validate_node(v) for v in group]
    candidates, _ = scalar_vote_candidates(
        graph, group, max_hops=max_hops, walk_index=walk_index
    )
    if not candidates:
        return max(group, key=lambda v: (graph.out_degree(v), -v))
    if len(candidates) > max_candidates:
        degrees = graph.total_degrees()
        candidates = sorted(candidates, key=lambda v: (-int(degrees[v]), v))
        candidates = sorted(candidates[:max_candidates])
    best = candidates[0]
    best_score = -1.0
    for candidate in candidates:
        score = scalar_closeness_centrality(
            graph, candidate, group, max_hops=2 * max_hops
        )
        if score > best_score:
            best = candidate
            best_score = score
    return best


# ---------------------------------------------------------------------------
# LRW-A influence migration (pre-vectorization `lrw/migration.py`)
# ---------------------------------------------------------------------------


def _record_hits(
    records,
    absorbers: Set[int],
    row: int,
    column_of: Dict[int, int],
    matrix: np.ndarray,
    *,
    absorb_first: bool,
    transpose: bool,
) -> None:
    """Update ``M`` with the absorption events of one node's walks."""
    for record in records:
        if absorb_first:
            hit = first_absorption(record, absorbers)
            hits = [hit] if hit is not None else []
        else:
            path = record.path
            hits = [
                (int(path[pos]), pos)
                for pos in range(1, path.size)
                if int(path[pos]) in absorbers
            ]
        for node, distance in hits:
            closeness = 1.0 / (distance + 1.0)
            column = column_of[node]
            i, j = (column, row) if transpose else (row, column)
            if matrix[i, j] < closeness:
                matrix[i, j] = closeness


def scalar_migration_matrix(
    walk_index: WalkIndex,
    topic_nodes: Sequence[int],
    representatives: Sequence[int],
    *,
    absorb_first: bool = True,
) -> np.ndarray:
    """Algorithm 8 lines 2-12 with per-walk Python loops."""
    topics = [int(v) for v in topic_nodes]
    reps = [int(v) for v in representatives]
    if not topics:
        raise ConfigurationError("topic node set is empty")
    if not reps:
        raise ConfigurationError("representative set is empty")
    if len(set(topics)) != len(topics):
        raise ConfigurationError("topic nodes contain duplicates")
    if len(set(reps)) != len(reps):
        raise ConfigurationError("representatives contain duplicates")

    matrix = np.zeros((len(topics), len(reps)), dtype=np.float64)
    rep_set = set(reps)
    topic_set = set(topics)
    rep_column = {node: j for j, node in enumerate(reps)}
    topic_row = {node: i for i, node in enumerate(topics)}

    # Forward: topic-node walks absorbed by representatives (lines 3-7).
    for i, topic_node in enumerate(topics):
        _record_hits(
            walk_index.walks_from(topic_node),
            rep_set,
            i,
            rep_column,
            matrix,
            absorb_first=absorb_first,
            transpose=False,
        )
    # Backward: representative walks absorbing topic nodes (lines 8-12).
    for j, rep in enumerate(reps):
        _record_hits(
            walk_index.walks_from(rep),
            topic_set,
            j,
            topic_row,
            matrix,
            absorb_first=absorb_first,
            transpose=True,
        )
    # A representative that *is* a topic node absorbs itself at distance 0.
    for node in rep_set & topic_set:
        matrix[topic_row[node], rep_column[node]] = max(
            matrix[topic_row[node], rep_column[node]], 1.0
        )
    return matrix


def scalar_migrate_influence(
    topic_id: int,
    walk_index: WalkIndex,
    topic_nodes: Sequence[int],
    representatives: Sequence[int],
    *,
    absorb_first: bool = True,
) -> TopicSummary:
    """Algorithm 8 end-to-end on the scalar migration matrix."""
    matrix = scalar_migration_matrix(
        walk_index, topic_nodes, representatives, absorb_first=absorb_first
    )
    normalized = normalize_rows(matrix)
    m = normalized.shape[0]
    column_weight = normalized.sum(axis=0) / m
    reps = [int(v) for v in representatives]
    weights = {
        rep: float(w) for rep, w in zip(reps, column_weight) if w > 0.0
    }
    return TopicSummary(int(topic_id), weights)


# ---------------------------------------------------------------------------
# Frozen pipelines
# ---------------------------------------------------------------------------


class ScalarRCLSummarizer(Summarizer):
    """RCL-A assembled from the scalar kernels above (no tracing).

    Mirrors :class:`~repro.core.rcl.pipeline.RCLSummarizer` constructor
    argument for argument, including the per-topic RNG derivation, so a
    vectorized and a scalar instance built from the same seed produce
    comparable (bit-identical) output.
    """

    name = "rcl-scalar"

    def __init__(
        self,
        graph: SocialGraph,
        topic_index: TopicIndex,
        *,
        max_hops: int = 4,
        sample_rate: float = 0.05,
        rep_fraction: float = 0.05,
        walk_index: Optional[WalkIndex] = None,
        policy: str = "all",
        use_tree: bool = False,
        seed: SeedLike = None,
    ):
        require_in_range("max_hops", max_hops, 1)
        require_probability("sample_rate", sample_rate, inclusive_zero=False)
        require_probability("rep_fraction", rep_fraction, inclusive_zero=False)
        if walk_index is not None and walk_index.graph is not graph:
            raise ConfigurationError("walk_index was built for a different graph")
        self._graph = graph
        self._topic_index = topic_index
        self._max_hops = int(max_hops)
        self._sample_rate = float(sample_rate)
        self._rep_fraction = float(rep_fraction)
        self._walk_index = walk_index
        self._policy = policy
        self._use_tree = bool(use_tree)
        self._entropy = spawn_entropy(seed)

    def n_clusters_for(self, topic_id: int) -> int:
        """``C_Size`` for a topic: ``ceil(rep_fraction * |V_t|)``."""
        size = self._topic_index.topic_size(topic_id)
        return max(1, math.ceil(self._rep_fraction * size))

    def cluster_topic(self, topic_id: int) -> List[Tuple[int, ...]]:
        """Algorithm 1 (+2/3): non-overlapping groups of topic *node ids*."""
        topic_nodes = self._topic_index.topic_nodes(topic_id)
        if topic_nodes.size == 0:
            raise ConfigurationError(
                f"topic {topic_id} has no member nodes to cluster"
            )
        if topic_nodes.size == 1:
            return [(int(topic_nodes[0]),)]
        rng = derive_topic_rng(self._entropy, topic_id)
        sample_count = sample_rate_to_count(self._graph, self._sample_rate)
        sample = sample_nodes_by_degree(self._graph, sample_count, rng)
        _, gp_pos, gp_neg = scalar_compute_grouping_probabilities(
            self._graph,
            topic_nodes,
            sample,
            max_hops=self._max_hops,
            walk_index=self._walk_index,
        )
        labels = label_pairs(gp_pos, gp_neg, seed=rng)
        n_clusters = self.n_clusters_for(topic_id)
        if self._use_tree:
            position_groups = no_overlap_from_tree(
                labels, n_clusters, policy=self._policy
            )
        else:
            position_groups = greedy_no_overlap(
                labels, n_clusters, policy=self._policy
            )
        ordered = np.asarray(sorted(set(int(v) for v in topic_nodes)), dtype=np.int64)
        return [tuple(int(ordered[p]) for p in group) for group in position_groups]

    def summarize(self, topic_id: int) -> TopicSummary:
        """Algorithm 5 offline stage: groups -> centroids -> weights."""
        topic_id = self._topic_index.resolve(topic_id)
        groups = self.cluster_topic(topic_id)
        total_nodes = sum(len(g) for g in groups)
        weights: Dict[int, float] = {}
        for group in groups:
            central = scalar_select_central(
                self._graph,
                group,
                max_hops=self._max_hops,
                walk_index=self._walk_index,
            )
            share = len(group) / total_nodes
            # Two groups may elect the same centroid; their shares merge.
            weights[central] = weights.get(central, 0.0) + share
        return TopicSummary(topic_id, weights)


class ScalarLRWSummarizer(Summarizer):
    """LRW-A assembled from the scalar migration kernel (no tracing).

    Representative selection (Algorithm 7) is shared with the vectorized
    pipeline - it was already array-native - so any divergence observed in
    a differential run is attributable to the migration rewrite.
    """

    name = "lrw-scalar"

    def __init__(
        self,
        graph: SocialGraph,
        topic_index: TopicIndex,
        walk_index: WalkIndex,
        *,
        damping: float = 0.85,
        rep_fraction: float = 0.05,
        absorb_first: bool = True,
        initial: str = "restart",
        reinforcement: str = "divrank",
        candidates: str = "topic",
    ):
        require_probability("damping", damping)
        require_probability("rep_fraction", rep_fraction, inclusive_zero=False)
        if walk_index.graph is not graph:
            raise ConfigurationError("walk_index was built for a different graph")
        if not walk_index.is_built:
            walk_index.build()
        self._graph = graph
        self._topic_index = topic_index
        self._walk_index = walk_index
        self._damping = float(damping)
        self._rep_fraction = float(rep_fraction)
        self._absorb_first = bool(absorb_first)
        self._initial = initial
        self._reinforcement = reinforcement
        self._candidates = candidates

    def representatives(self, topic_id: int):
        """Algorithm 7: the ranked representative node ids for a topic."""
        topic_id = self._topic_index.resolve(topic_id)
        topic_nodes = self._topic_index.topic_nodes(topic_id)
        return select_representatives(
            self._graph,
            topic_nodes,
            self._walk_index,
            damping=self._damping,
            rep_fraction=self._rep_fraction,
            initial=self._initial,
            reinforcement=self._reinforcement,
            candidates=self._candidates,
        )

    def summarize(self, topic_id: int) -> TopicSummary:
        """Algorithm 9 offline stage: RepNodes + InfluenceMigration."""
        topic_id = self._topic_index.resolve(topic_id)
        topic_nodes = self._topic_index.topic_nodes(topic_id)
        reps = self.representatives(topic_id)
        return scalar_migrate_influence(
            topic_id,
            self._walk_index,
            [int(v) for v in topic_nodes],
            [int(v) for v in reps],
            absorb_first=self._absorb_first,
        )
