"""Persistence for the offline artifacts (library extension).

The paper amortizes its expensive offline stage ("building the L-length
random walk index required around seven hours ... Since it is only ran
once, this cost is amortized", §6.6) - which presumes the artifacts are
*stored*. This module provides that storage:

* topic summaries - JSON (human-inspectable, tiny);
* propagation entries - compressed NPZ (flat arrays);
* walk indexes - compressed NPZ (paths flattened with offsets).

A seven-hour artifact must also be *trustworthy*, so every writer goes
through :mod:`repro._artifacts`: writes are atomic (same-directory temp
file + ``os.replace``), payloads carry a SHA-256 content checksum and a
format-version field, and loaders verify both - a truncated or
bit-flipped file raises :class:`~repro.exceptions.ArtifactCorruptedError`
naming the path and digests instead of crashing deep inside numpy. All
loaders additionally validate the declared graph signature (node/edge
counts) so an index cannot silently be replayed against a different
graph.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Sequence, Union

import numpy as np

from .._artifacts import (
    load_json_payload,
    load_npz_payload,
    require_keys,
    save_json_payload,
    save_npz_payload,
)
from ..exceptions import ArtifactCorruptedError, ConfigurationError, IndexNotBuiltError
from ..graph import SocialGraph
from ..walks import WalkIndex
from ..walks.engine import WalkRecord
from .propagation import PropagationEntry, PropagationIndex
from .summarization import TopicSummary

__all__ = [
    "save_summaries",
    "load_summaries",
    "pack_entry_blocks",
    "iter_entry_blocks",
    "save_propagation_index",
    "load_propagation_index",
    "save_walk_index",
    "load_walk_index",
]

PathLike = Union[str, Path]


def _graph_signature(graph: SocialGraph) -> Dict[str, int]:
    return {"n_nodes": graph.n_nodes, "n_edges": graph.n_edges}


def _check_signature(payload: Dict, graph: SocialGraph, path: Path) -> None:
    expected = _graph_signature(graph)
    found = {
        "n_nodes": int(payload["n_nodes"]),
        "n_edges": int(payload["n_edges"]),
    }
    if found != expected:
        raise ConfigurationError(
            f"{path}: artifact was built for a graph with {found}, "
            f"but the supplied graph has {expected}"
        )


# ---------------------------------------------------------------------------
# Topic summaries
# ---------------------------------------------------------------------------


def save_summaries(
    summaries: Dict[int, TopicSummary], graph: SocialGraph, path: PathLike
) -> None:
    """Write ``topic_id -> TopicSummary`` to a checksummed JSON file."""
    payload = {
        **_graph_signature(graph),
        "summaries": {
            str(topic_id): {str(node): weight
                            for node, weight in summary.weights.items()}
            for topic_id, summary in summaries.items()
        },
    }
    save_json_payload(Path(path), payload)


def load_summaries(path: PathLike, graph: SocialGraph) -> Dict[int, TopicSummary]:
    """Read summaries written by :func:`save_summaries`."""
    path = Path(path)
    payload = load_json_payload(path, "summaries artifact")
    require_keys(payload, ("n_nodes", "n_edges", "summaries"), path)
    _check_signature(payload, graph, path)
    summaries: Dict[int, TopicSummary] = {}
    try:
        for topic_key, weights in payload["summaries"].items():
            topic_id = int(topic_key)
            summaries[topic_id] = TopicSummary(
                topic_id, {int(node): float(w) for node, w in weights.items()}
            )
    except (AttributeError, TypeError, ValueError) as exc:
        raise ArtifactCorruptedError(
            path, reason=f"malformed summaries payload ({exc})"
        ) from exc
    return summaries


# ---------------------------------------------------------------------------
# Propagation index
# ---------------------------------------------------------------------------

_PROPAGATION_KEYS = (
    "n_nodes", "n_edges", "theta", "nodes", "offsets", "sources",
    "probabilities", "marked_offsets", "marked_nodes", "branch_counts",
)


def pack_entry_blocks(
    entries: Sequence[PropagationEntry],
) -> Dict[str, np.ndarray]:
    """Concatenate *entries* into flat CSR-style arrays.

    The shared serialization core of the legacy single-NPZ artifact and
    the sharded binary format (:mod:`repro.core.shards`): entries already
    store Γ as sorted source/probability arrays, so the flat payload is a
    straight concatenation - no per-entry dict walks. Deterministic for a
    given entry sequence, which is what keeps both artifact formats
    byte-identical across resumed builds.
    """
    nodes = np.fromiter(
        (e.node for e in entries), dtype=np.int64, count=len(entries)
    )
    offsets = np.zeros(len(entries) + 1, dtype=np.int64)
    np.cumsum(
        np.asarray([e.size for e in entries], dtype=np.int64), out=offsets[1:]
    )
    marked_offsets = np.zeros(len(entries) + 1, dtype=np.int64)
    np.cumsum(
        np.asarray([e.marked_array.size for e in entries], dtype=np.int64),
        out=marked_offsets[1:],
    )
    empty_i = np.empty(0, dtype=np.int64)
    empty_f = np.empty(0, dtype=np.float64)
    return {
        "nodes": nodes,
        "offsets": offsets,
        "sources": np.concatenate([e.sources for e in entries] or [empty_i]),
        "probabilities": np.concatenate(
            [e.probabilities for e in entries] or [empty_f]
        ),
        "marked_offsets": marked_offsets,
        "marked_nodes": np.concatenate(
            [e.marked_array for e in entries] or [empty_i]
        ),
        "branch_counts": np.fromiter(
            (e.branches for e in entries), dtype=np.int64, count=len(entries)
        ),
    }


def iter_entry_blocks(payload: Dict[str, np.ndarray]):
    """Yield zero-copy :class:`PropagationEntry` views from flat blocks.

    Inverse of :func:`pack_entry_blocks`; raises ``IndexError`` /
    ``ValueError`` on inconsistent offsets (callers wrap these in
    :class:`~repro.exceptions.ArtifactCorruptedError`).
    """
    nodes = payload["nodes"]
    offsets = payload["offsets"]
    marked_offsets = payload["marked_offsets"]
    sources = payload["sources"]
    probabilities = payload["probabilities"]
    marked_nodes = payload["marked_nodes"]
    branch_counts = payload["branch_counts"]
    for i, node in enumerate(nodes):
        lo, hi = int(offsets[i]), int(offsets[i + 1])
        mlo, mhi = int(marked_offsets[i]), int(marked_offsets[i + 1])
        yield PropagationEntry.from_arrays(
            int(node),
            sources[lo:hi],
            probabilities[lo:hi],
            marked_nodes[mlo:mhi],
            int(branch_counts[i]),
        )


def save_propagation_index(index: PropagationIndex, path: PathLike) -> None:
    """Write every *cached* entry of a propagation index to NPZ.

    Lazy entries that were never materialized are not persisted; loading
    restores exactly the cached set (further entries rebuild lazily).
    A thin adapter over :func:`pack_entry_blocks` + the shared artifact
    layer: the write is atomic and the payload checksummed; identical
    entry sets produce byte-identical files, which is what lets a resumed
    build be compared digest-for-digest against an uninterrupted one.
    """
    entries = [index._entries[node] for node in sorted(index._entries)]
    save_npz_payload(Path(path), {
        "n_nodes": np.asarray([index.graph.n_nodes]),
        "n_edges": np.asarray([index.graph.n_edges]),
        "theta": np.asarray([index.theta]),
        "max_branches": np.asarray([index.max_branches]),
        "strict": np.asarray([int(index.strict)]),
        **pack_entry_blocks(entries),
    })


def load_propagation_index(path: PathLike, graph: SocialGraph) -> PropagationIndex:
    """Read a propagation index written by :func:`save_propagation_index`.

    Entries are reconstructed as zero-copy views into the flat payload
    arrays, so a fully built index loads in milliseconds and occupies
    exactly its storage-array footprint.
    """
    path = Path(path)
    payload = load_npz_payload(path, "propagation index artifact")
    require_keys(payload, _PROPAGATION_KEYS, path)
    _check_signature(
        {"n_nodes": payload["n_nodes"][0], "n_edges": payload["n_edges"][0]},
        graph,
        path,
    )
    kwargs = {}
    if "max_branches" in payload:
        kwargs["max_branches"] = int(payload["max_branches"][0])
    if "strict" in payload:
        kwargs["strict"] = bool(payload["strict"][0])
    index = PropagationIndex(graph, float(payload["theta"][0]), **kwargs)
    try:
        for entry in iter_entry_blocks(payload):
            index._entries[entry.node] = entry
    except (IndexError, ValueError) as exc:
        raise ArtifactCorruptedError(
            path, reason=f"inconsistent propagation payload ({exc})"
        ) from exc
    return index


# ---------------------------------------------------------------------------
# Walk index
# ---------------------------------------------------------------------------

_WALK_KEYS = (
    "n_nodes", "n_edges", "walk_length", "samples", "offsets", "paths",
    "counts", "hit",
)


def save_walk_index(index: WalkIndex, path: PathLike) -> None:
    """Write a built walk index to NPZ (paths flattened with offsets)."""
    if not index.is_built:
        raise IndexNotBuiltError("cannot save an unbuilt WalkIndex")
    flat_paths: List[int] = []
    flat_counts: List[int] = []
    offsets: List[int] = [0]
    for node in range(index.graph.n_nodes):
        for record in index.walks_from(node):
            flat_paths.extend(int(v) for v in record.path)
            flat_counts.extend(int(c) for c in record.visit_counts)
            offsets.append(len(flat_paths))
    save_npz_payload(Path(path), {
        "n_nodes": np.asarray([index.graph.n_nodes]),
        "n_edges": np.asarray([index.graph.n_edges]),
        "walk_length": np.asarray([index.walk_length]),
        "samples": np.asarray([index.samples_per_node]),
        "offsets": np.asarray(offsets, dtype=np.int64),
        "paths": np.asarray(flat_paths, dtype=np.int64),
        "counts": np.asarray(flat_counts, dtype=np.int64),
        "hit": index.hitting_frequencies(),
    })


def load_walk_index(path: PathLike, graph: SocialGraph) -> WalkIndex:
    """Read a walk index written by :func:`save_walk_index`.

    The reverse-reachability sets are reconstructed from the stored paths,
    so the loaded index answers every query identically to the saved one.
    """
    path = Path(path)
    payload = load_npz_payload(path, "walk index artifact")
    require_keys(payload, _WALK_KEYS, path)
    _check_signature(
        {"n_nodes": payload["n_nodes"][0], "n_edges": payload["n_edges"][0]},
        graph,
        path,
    )
    index = WalkIndex(
        graph,
        int(payload["walk_length"][0]),
        int(payload["samples"][0]),
    )
    samples = index.samples_per_node
    offsets = payload["offsets"]
    paths = payload["paths"]
    counts = payload["counts"]
    walks: List[List[WalkRecord]] = [[] for _ in range(graph.n_nodes)]
    reverse = [set() for _ in range(graph.n_nodes)]
    cursor = 0
    try:
        for node in range(graph.n_nodes):
            for _ in range(samples):
                lo, hi = int(offsets[cursor]), int(offsets[cursor + 1])
                cursor += 1
                path_arr = paths[lo:hi].copy()
                count_arr = counts[lo:hi].copy()
                steps = int(count_arr.sum() - 1)
                walks[node].append(WalkRecord(path_arr, count_arr, steps))
                for visited in path_arr[1:]:
                    reverse[int(visited)].add(node)
    except (IndexError, ValueError) as exc:
        raise ArtifactCorruptedError(
            path, reason=f"inconsistent walk payload ({exc})"
        ) from exc
    index._walks = walks
    index._hit_frequency = payload["hit"]
    index._reverse = reverse
    return index
