"""Local influence migration via absorbing walks - Algorithm 8 (S19).

Once representatives are selected, each topic node's uniform local weight
``1/|V_t|`` is migrated to the representatives that are *locally close* to
it. Closeness is estimated from the pre-sampled random walks:

* forward pass - for each topic node, the first representative on each of
  its R walks absorbs it (absorbing-Markov-chain semantics, §4.3);
* backward pass - for each representative, the first topic node on each of
  its walks is likewise absorbed;
* each absorption records the closeness kernel ``1/(D+1)`` in an
  association matrix ``M`` (keeping the max over paths, i.e. min distance);
* ``M`` is row-normalized into a closeness distribution ``M'`` per topic
  node, and representative ``j``'s weight is ``(1/m) Σ_i M'(i, j)``.

Each pass stacks every relevant walk into one padded int path matrix,
finds absorption positions with vectorized membership masks, and scatters
the closeness kernel into ``M`` with an unbuffered ``np.maximum.at`` - no
per-walk Python loop. The historical per-record loop is retained in
:mod:`repro.core._scalar_summarize` as the parity baseline.

DESIGN.md note: Algorithm 8's pseudocode tests "``p`` contains a
representative" for *every* representative on the path, while §4.3's prose
says the *first* one absorbs the walk. ``absorb_first`` (default True)
follows the prose; False follows the literal pseudocode - the difference is
measurable only when multiple representatives share a walk.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..._utils import normalize_rows
from ...exceptions import ConfigurationError
from ...obs.registry import MetricsRegistry, get_registry
from ...walks import WalkIndex
from ..summarization import TopicSummary

__all__ = ["migration_matrix", "migrate_influence"]


def _padded_paths(walk_index: WalkIndex, sources: Sequence[int]):
    """Stack the walks of all *sources* into one padded path matrix.

    Returns ``(paths, row_of)``: *paths* is ``(n_walks, width)`` int64
    padded with ``-1`` (column 0 is the walk's start node), *row_of* maps
    each walk back to the index of its source in *sources*. The rows are
    sliced out of the walk index's cached global padded matrix
    (:meth:`~repro.walks.WalkIndex.padded_paths`), so assembling a
    topic's walks is one fancy-index instead of a per-record loop.
    """
    source_ids = np.asarray(list(sources), dtype=np.int64)
    if source_ids.size == 0:
        return np.empty((0, 1), dtype=np.int64), np.empty(0, dtype=np.int64)
    padded = walk_index.padded_paths()
    samples = walk_index.samples_per_node
    rows = (
        source_ids[:, None] * samples + np.arange(samples, dtype=np.int64)
    ).ravel()
    row_of = np.repeat(
        np.arange(source_ids.size, dtype=np.int64), samples
    )
    return padded[rows], row_of


def _scatter_hits(
    walk_index: WalkIndex,
    sources: Sequence[int],
    column_of: np.ndarray,
    matrix: np.ndarray,
    *,
    absorb_first: bool,
    transpose: bool,
) -> int:
    """Record the absorption events of all *sources*' walks into ``M``.

    *column_of* is a dense ``n_nodes + 1``-long map holding each
    absorber's matrix column, ``-1`` elsewhere - including the trailing
    sentinel slot, which the padding value ``-1`` indexes, so one gather
    translates the whole path matrix with no validity mask. Returns the
    number of absorption events recorded. ``np.maximum.at`` is
    unbuffered, so walks hitting the same cell keep the closest (max
    ``1/(D+1)``) observation - identical to the scalar per-record
    comparison.
    """
    paths, row_of = _padded_paths(walk_index, sources)
    if paths.shape[1] <= 1:
        return 0
    body = paths[:, 1:]  # positions 1..; position 0 is the source itself
    columns = column_of[body]
    hit = columns >= 0
    if absorb_first:
        absorbed = hit.any(axis=1)
        first = np.argmax(hit, axis=1)
        walk_ids = np.flatnonzero(absorbed)
        positions = first[walk_ids] + 1  # D: true position within the path
        col_idx = columns[walk_ids, first[walk_ids]]
    else:
        walk_ids, body_pos = np.nonzero(hit)
        positions = body_pos + 1
        col_idx = columns[walk_ids, body_pos]
    if walk_ids.size == 0:
        return 0
    row_idx = row_of[walk_ids]
    closeness = 1.0 / (positions + 1.0)
    if transpose:
        np.maximum.at(matrix, (col_idx, row_idx), closeness)
    else:
        np.maximum.at(matrix, (row_idx, col_idx), closeness)
    return int(walk_ids.size)


def migration_matrix(
    walk_index: WalkIndex,
    topic_nodes: Sequence[int],
    representatives: Sequence[int],
    *,
    absorb_first: bool = True,
    metrics: Optional[MetricsRegistry] = None,
) -> np.ndarray:
    """The raw association matrix ``M`` of Algorithm 8 (lines 2-12).

    ``M[i, j] = 1 / (D(topic_i, rep_j) + 1)`` where ``D`` is the shortest
    first-hit distance observed over the forward and backward walk samples
    (0 when the pair never co-occurred on a walk).
    """
    topics = [int(v) for v in topic_nodes]
    reps = [int(v) for v in representatives]
    if not topics:
        raise ConfigurationError("topic node set is empty")
    if not reps:
        raise ConfigurationError("representative set is empty")
    if len(set(topics)) != len(topics):
        raise ConfigurationError("topic nodes contain duplicates")
    if len(set(reps)) != len(reps):
        raise ConfigurationError("representatives contain duplicates")

    registry = metrics if metrics is not None else get_registry()
    matrix = np.zeros((len(topics), len(reps)), dtype=np.float64)
    n_nodes = walk_index.graph.n_nodes
    # One extra slot: the padding value -1 indexes it and reads -1, so
    # _scatter_hits can translate padded paths with a single gather.
    rep_column = np.full(n_nodes + 1, -1, dtype=np.int64)
    rep_column[reps] = np.arange(len(reps), dtype=np.int64)
    topic_row = np.full(n_nodes + 1, -1, dtype=np.int64)
    topic_row[topics] = np.arange(len(topics), dtype=np.int64)

    # Forward: topic-node walks absorbed by representatives (lines 3-7).
    absorptions = _scatter_hits(
        walk_index,
        topics,
        rep_column,
        matrix,
        absorb_first=absorb_first,
        transpose=False,
    )
    # Backward: representative walks absorbing topic nodes (lines 8-12).
    absorptions += _scatter_hits(
        walk_index,
        reps,
        topic_row,
        matrix,
        absorb_first=absorb_first,
        transpose=True,
    )
    registry.inc("summarize.migration.absorptions", absorptions)
    # A representative that *is* a topic node absorbs itself at distance 0.
    shared = np.flatnonzero((rep_column >= 0) & (topic_row >= 0))
    if shared.size:
        rows = topic_row[shared]
        cols = rep_column[shared]
        matrix[rows, cols] = np.maximum(matrix[rows, cols], 1.0)
    return matrix


def migrate_influence(
    topic_id: int,
    walk_index: WalkIndex,
    topic_nodes: Sequence[int],
    representatives: Sequence[int],
    *,
    absorb_first: bool = True,
    metrics: Optional[MetricsRegistry] = None,
) -> TopicSummary:
    """Algorithm 8: weighted representative set for one topic.

    Row-normalizes ``M`` into ``M'`` and assigns representative ``j`` the
    aggregate ``(1/m) Σ_i M'(i, j)``. Topic nodes that were never absorbed
    contribute nothing, so the summary's total weight can be below 1 - the
    un-migrated mass is exactly the influence the summary cannot see, which
    the online search accounts for via the remaining-weight bound.
    """
    matrix = migration_matrix(
        walk_index,
        topic_nodes,
        representatives,
        absorb_first=absorb_first,
        metrics=metrics,
    )
    normalized = normalize_rows(matrix)
    m = normalized.shape[0]
    column_weight = normalized.sum(axis=0) / m
    reps = [int(v) for v in representatives]
    weights = {
        rep: float(w) for rep, w in zip(reps, column_weight) if w > 0.0
    }
    return TopicSummary(int(topic_id), weights)
