"""Local influence migration via absorbing walks - Algorithm 8 (S19).

Once representatives are selected, each topic node's uniform local weight
``1/|V_t|`` is migrated to the representatives that are *locally close* to
it. Closeness is estimated from the pre-sampled random walks:

* forward pass - for each topic node, the first representative on each of
  its R walks absorbs it (absorbing-Markov-chain semantics, §4.3);
* backward pass - for each representative, the first topic node on each of
  its walks is likewise absorbed;
* each absorption records the closeness kernel ``1/(D+1)`` in an
  association matrix ``M`` (keeping the max over paths, i.e. min distance);
* ``M`` is row-normalized into a closeness distribution ``M'`` per topic
  node, and representative ``j``'s weight is ``(1/m) Σ_i M'(i, j)``.

DESIGN.md note: Algorithm 8's pseudocode tests "``p`` contains a
representative" for *every* representative on the path, while §4.3's prose
says the *first* one absorbs the walk. ``absorb_first`` (default True)
follows the prose; False follows the literal pseudocode - the difference is
measurable only when multiple representatives share a walk.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

import numpy as np

from ..._utils import normalize_rows
from ...exceptions import ConfigurationError
from ...walks import WalkIndex, first_absorption
from ..summarization import TopicSummary

__all__ = ["migration_matrix", "migrate_influence"]


def _record_hits(
    records,
    absorbers: Set[int],
    row: int,
    column_of: Dict[int, int],
    matrix: np.ndarray,
    *,
    absorb_first: bool,
    transpose: bool,
) -> None:
    """Update ``M`` with the absorption events of one node's walks."""
    for record in records:
        if absorb_first:
            hit = first_absorption(record, absorbers)
            hits = [hit] if hit is not None else []
        else:
            path = record.path
            hits = [
                (int(path[pos]), pos)
                for pos in range(1, path.size)
                if int(path[pos]) in absorbers
            ]
        for node, distance in hits:
            closeness = 1.0 / (distance + 1.0)
            column = column_of[node]
            i, j = (column, row) if transpose else (row, column)
            if matrix[i, j] < closeness:
                matrix[i, j] = closeness


def migration_matrix(
    walk_index: WalkIndex,
    topic_nodes: Sequence[int],
    representatives: Sequence[int],
    *,
    absorb_first: bool = True,
) -> np.ndarray:
    """The raw association matrix ``M`` of Algorithm 8 (lines 2-12).

    ``M[i, j] = 1 / (D(topic_i, rep_j) + 1)`` where ``D`` is the shortest
    first-hit distance observed over the forward and backward walk samples
    (0 when the pair never co-occurred on a walk).
    """
    topics = [int(v) for v in topic_nodes]
    reps = [int(v) for v in representatives]
    if not topics:
        raise ConfigurationError("topic node set is empty")
    if not reps:
        raise ConfigurationError("representative set is empty")
    if len(set(topics)) != len(topics):
        raise ConfigurationError("topic nodes contain duplicates")
    if len(set(reps)) != len(reps):
        raise ConfigurationError("representatives contain duplicates")

    matrix = np.zeros((len(topics), len(reps)), dtype=np.float64)
    rep_set = set(reps)
    topic_set = set(topics)
    rep_column = {node: j for j, node in enumerate(reps)}
    topic_row = {node: i for i, node in enumerate(topics)}

    # Forward: topic-node walks absorbed by representatives (lines 3-7).
    for i, topic_node in enumerate(topics):
        _record_hits(
            walk_index.walks_from(topic_node),
            rep_set,
            i,
            rep_column,
            matrix,
            absorb_first=absorb_first,
            transpose=False,
        )
    # Backward: representative walks absorbing topic nodes (lines 8-12).
    for j, rep in enumerate(reps):
        _record_hits(
            walk_index.walks_from(rep),
            topic_set,
            j,
            topic_row,
            matrix,
            absorb_first=absorb_first,
            transpose=True,
        )
    # A representative that *is* a topic node absorbs itself at distance 0.
    for node in rep_set & topic_set:
        matrix[topic_row[node], rep_column[node]] = max(
            matrix[topic_row[node], rep_column[node]], 1.0
        )
    return matrix


def migrate_influence(
    topic_id: int,
    walk_index: WalkIndex,
    topic_nodes: Sequence[int],
    representatives: Sequence[int],
    *,
    absorb_first: bool = True,
) -> TopicSummary:
    """Algorithm 8: weighted representative set for one topic.

    Row-normalizes ``M`` into ``M'`` and assigns representative ``j`` the
    aggregate ``(1/m) Σ_i M'(i, j)``. Topic nodes that were never absorbed
    contribute nothing, so the summary's total weight can be below 1 - the
    un-migrated mass is exactly the influence the summary cannot see, which
    the online search accounts for via the remaining-weight bound.
    """
    matrix = migration_matrix(
        walk_index, topic_nodes, representatives, absorb_first=absorb_first
    )
    normalized = normalize_rows(matrix)
    m = normalized.shape[0]
    column_weight = normalized.sum(axis=0) / m
    reps = [int(v) for v in representatives]
    weights = {
        rep: float(w) for rep, w in zip(reps, column_weight) if w > 0.0
    }
    return TopicSummary(int(topic_id), weights)
