"""LRW-A: L-length random-walk summarizer (paper §4, S18-S20)."""

from .migration import migrate_influence, migration_matrix
from .pipeline import LRWSummarizer
from .repnodes import diversified_pagerank, select_representatives

__all__ = [
    "LRWSummarizer",
    "diversified_pagerank",
    "select_representatives",
    "migrate_influence",
    "migration_matrix",
]
