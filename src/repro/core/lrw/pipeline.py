"""LRW-A summarizer - Algorithm 9 assembled (S20).

Offline stage of the L-length random-walk approach: for each topic,

1. rank all nodes with the diversified, vertex-reinforced PageRank of
   Algorithm 7 (restart mass on the topic nodes, reinforcement from the
   walk index's time-variant hitting frequencies);
2. keep the top ``μ·|V_t|`` nodes as representatives;
3. migrate the topic nodes' local influence onto them with the absorbing
   random walks of Algorithm 8.

The expensive, query-independent part - the walk index - is built once per
graph (Algorithm 6) and shared across topics, which is exactly the paper's
amortization argument in §6.6.
"""

from __future__ import annotations

from typing import Optional

from ..._utils import SeedLike, require_in_range, require_probability
from ...exceptions import ConfigurationError
from ...graph import SocialGraph
from ...obs.registry import MetricsRegistry, get_registry
from ...obs.tracing import trace
from ...topics import TopicIndex
from ...walks import WalkIndex
from ..summarization import Summarizer, TopicSummary
from .migration import migrate_influence
from .repnodes import select_representatives

__all__ = ["LRWSummarizer"]


class LRWSummarizer(Summarizer):
    """Approximate L-length random walk (LRW-A) social summarizer.

    Parameters
    ----------
    graph:
        The social graph.
    topic_index:
        Topic space (provides ``V_t`` per topic).
    walk_index:
        A built :class:`~repro.walks.WalkIndex` over *graph*. Its ``L`` and
        ``R`` are the paper's parameters of the same names.
    damping:
        ``λ`` of Equation 5.
    rep_fraction:
        ``μ`` - representatives per topic as a fraction of ``|V_t|``.
    absorb_first:
        Absorbing semantics for influence migration (see
        :mod:`~repro.core.lrw.migration`).
    initial / reinforcement / candidates:
        Interpretation knobs of Algorithm 7; defaults follow Equation 5's
        personalized semantics with DivRank self-reinforcement and a
        topic-node candidate pool (see :mod:`~repro.core.lrw.repnodes`).
    metrics:
        Registry receiving the per-phase timings
        (``phase.summarize.lrw.*``); ``None`` uses the process default.
    """

    name = "lrw"

    def __init__(
        self,
        graph: SocialGraph,
        topic_index: TopicIndex,
        walk_index: WalkIndex,
        *,
        damping: float = 0.85,
        rep_fraction: float = 0.05,
        absorb_first: bool = True,
        initial: str = "restart",
        reinforcement: str = "divrank",
        candidates: str = "topic",
        metrics: Optional[MetricsRegistry] = None,
    ):
        require_probability("damping", damping)
        require_probability("rep_fraction", rep_fraction, inclusive_zero=False)
        if walk_index.graph is not graph:
            raise ConfigurationError("walk_index was built for a different graph")
        if not walk_index.is_built:
            walk_index.build()
        self._graph = graph
        self._topic_index = topic_index
        self._walk_index = walk_index
        self._damping = float(damping)
        self._rep_fraction = float(rep_fraction)
        self._absorb_first = bool(absorb_first)
        self._initial = initial
        self._reinforcement = reinforcement
        self._candidates = candidates
        self._metrics = metrics

    def set_metrics(self, registry: Optional[MetricsRegistry]) -> None:
        """Route phase metrics to *registry* (None = process default)."""
        self._metrics = registry

    def _registry(self) -> MetricsRegistry:
        metrics = self._metrics
        return metrics if metrics is not None else get_registry()

    @property
    def graph(self) -> SocialGraph:
        """The summarized graph."""
        return self._graph

    @property
    def topic_index(self) -> TopicIndex:
        """The topic space."""
        return self._topic_index

    @property
    def walk_index(self) -> WalkIndex:
        """The shared Algorithm 6 walk index."""
        return self._walk_index

    def representatives(self, topic_id: int):
        """Algorithm 7: the ranked representative node ids for a topic."""
        topic_id = self._topic_index.resolve(topic_id)
        topic_nodes = self._topic_index.topic_nodes(topic_id)
        with trace(
            "summarize.lrw.repnodes", registry=self._registry(), topic=topic_id
        ):
            return select_representatives(
                self._graph,
                topic_nodes,
                self._walk_index,
                damping=self._damping,
                rep_fraction=self._rep_fraction,
                initial=self._initial,
                reinforcement=self._reinforcement,
                candidates=self._candidates,
            )

    def summarize(self, topic_id: int) -> TopicSummary:
        """Algorithm 9 offline stage: RepNodes + InfluenceMigration."""
        topic_id = self._topic_index.resolve(topic_id)
        topic_nodes = self._topic_index.topic_nodes(topic_id)
        registry = self._registry()
        reps = self.representatives(topic_id)
        with trace("summarize.lrw.migration", registry=registry, topic=topic_id):
            summary = migrate_influence(
                topic_id,
                self._walk_index,
                [int(v) for v in topic_nodes],
                [int(v) for v in reps],
                absorb_first=self._absorb_first,
                metrics=registry,
            )
        registry.inc("summaries.built")
        return summary
