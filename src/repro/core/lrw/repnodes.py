"""Representative-node selection via diversified PageRank - Algorithm 7 (S18).

Equation 5 of the paper blends PageRank with a vertex-reinforced random walk
(DivRank-style): at iteration ``T``,

``P_{T+1}(v) = (1-λ) P*(v) + λ Σ_{(u,v)∈E} P0(u,v) N_T(v) / D_T(u) · P_T(u)``

where ``P*`` is the topic-biased restart (``1/|V_t|`` on topic nodes),
``P0`` the organic edge transition probability, ``N_T(v)`` the time-variant
visiting frequency at iteration ``T``, and
``D_T(u) = Σ_{(u,w)∈E} P0(u,w) N_T(w)`` the reinforcement normalizer.

Running only ``L`` iterations confines each node's score to its L-hop
neighbourhood, so the highest scoring ``μ·|V_t|`` nodes are central,
diverse, *and* close to the topic - the paper's representative set.

Three deliberate interpretation choices (each keeps the literal pseudocode
reading available as an ablation; DESIGN.md section 5 and the ablation
bench justify the defaults empirically):

* ``initial`` - Algorithm 7 line 9 initializes ``PR[v].previous ← 1`` for
  every node; with that, the topic-independent component (total mass ``n``)
  swamps the restart (mass 1) and the ranking degenerates to global hubs.
  The default follows Equation 5's personalized-PageRank semantics and
  starts from the restart vector.
* ``reinforcement`` - the paper approximates the vertex-reinforced
  ``N_T(v)`` with the pre-sampled walk table ``H[T][v]``; that table is
  sparse (zero for most nodes at most steps) and zeroes out rank flow
  wholesale. The default uses the *self*-reinforced form of DivRank
  (Mei et al. 2010, the paper's reference [16]): ``N_T`` is the cumulative
  rank mass itself, which is dense and produces the diversity behaviour
  vertex reinforcement is cited for. ``"walk"`` selects the literal H-table
  variant.
* ``candidates`` - restrict the final μ-cut to topic nodes (default) or
  allow any node (literal). Unrestricted winners at laptop scale are
  one-hop-downstream hubs whose *forward* influence fields miss the
  topic's near field entirely, inverting the ranking the summary is
  supposed to preserve.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..._utils import require_in_range, require_probability, stable_top_indices
from ...exceptions import ConfigurationError
from ...graph import SocialGraph
from ...walks import WalkIndex

__all__ = ["diversified_pagerank", "select_representatives",
           "INITIALIZATIONS", "REINFORCEMENTS", "CANDIDATE_POOLS"]

INITIALIZATIONS = ("restart", "uniform")
REINFORCEMENTS = ("divrank", "walk")
CANDIDATE_POOLS = ("topic", "all")


def diversified_pagerank(
    graph: SocialGraph,
    topic_nodes: Sequence[int],
    walk_index: WalkIndex,
    *,
    damping: float = 0.85,
    iterations: Optional[int] = None,
    initial: str = "restart",
    reinforcement: str = "divrank",
) -> np.ndarray:
    """The time-variant reinforced PageRank vector after ``L`` iterations.

    Parameters
    ----------
    graph:
        The social graph (provides ``P0``).
    topic_nodes:
        ``V_t`` - nodes carrying the topic; they receive the restart mass.
    walk_index:
        Built walk index supplying ``H`` (used by ``reinforcement="walk"``);
        its ``L`` bounds the iteration count.
    damping:
        ``λ`` from Equation 5.
    iterations:
        Number of reinforcement iterations; defaults to the walk index's
        ``L`` and cannot exceed it (``H`` has no later rows).
    initial / reinforcement:
        Interpretation knobs; see the module docstring.

    Returns
    -------
    Dense score vector over all nodes (not normalized - only the ranking
    matters for representative selection).
    """
    require_probability("damping", damping)
    length = walk_index.walk_length if iterations is None else int(iterations)
    require_in_range("iterations", length, 1, walk_index.walk_length)
    if initial not in INITIALIZATIONS:
        raise ConfigurationError(
            f"initial must be one of {INITIALIZATIONS}, got {initial!r}"
        )
    if reinforcement not in REINFORCEMENTS:
        raise ConfigurationError(
            f"reinforcement must be one of {REINFORCEMENTS}, got {reinforcement!r}"
        )
    nodes = sorted(set(graph._check_node(v) for v in topic_nodes))
    if not nodes:
        raise ConfigurationError("topic node set is empty")

    n = graph.n_nodes
    restart = np.zeros(n, dtype=np.float64)
    restart[nodes] = 1.0 / len(nodes)

    transition = graph.transition_matrix()          # P0[u, v]
    transition_t = transition.T.tocsr()
    hit = walk_index.hitting_frequencies()          # H[j][v]

    rank = restart.copy() if initial == "restart" else np.ones(n, dtype=np.float64)
    cumulative = rank.copy()
    for step in range(1, length + 1):
        if reinforcement == "walk":
            frequency = hit[step]
        else:
            # Self-reinforced DivRank: visits so far ~ accumulated rank.
            frequency = cumulative + 1e-12
        # D_T(u) = Σ_w P0(u, w) · N_T(w); a node with D_T(u) = 0 has no
        # reinforcement mass to pass on.
        normalizer = transition @ frequency
        outflow = np.where(
            normalizer > 0.0,
            rank / np.where(normalizer > 0.0, normalizer, 1.0),
            0.0,
        )
        contribution = frequency * (transition_t @ outflow)
        rank = (1.0 - damping) * restart + damping * contribution
        cumulative = cumulative + rank
    return rank


def select_representatives(
    graph: SocialGraph,
    topic_nodes: Sequence[int],
    walk_index: WalkIndex,
    *,
    damping: float = 0.85,
    rep_fraction: float = 0.05,
    min_representatives: int = 1,
    initial: str = "restart",
    reinforcement: str = "divrank",
    candidates: str = "topic",
) -> np.ndarray:
    """Algorithm 7 lines 23-27: top ``μ·|V_t|`` nodes by diversified rank.

    Returns the representative node ids sorted by descending score (ties
    broken by smaller id, deterministically). ``candidates`` selects the
    pool the cut is taken from (see module docstring).
    """
    require_probability("rep_fraction", rep_fraction, inclusive_zero=False)
    require_in_range("min_representatives", min_representatives, 1)
    if candidates not in CANDIDATE_POOLS:
        raise ConfigurationError(
            f"candidates must be one of {CANDIDATE_POOLS}, got {candidates!r}"
        )
    scores = diversified_pagerank(
        graph,
        topic_nodes,
        walk_index,
        damping=damping,
        initial=initial,
        reinforcement=reinforcement,
    )
    nodes = sorted(set(int(v) for v in topic_nodes))
    cut = max(min_representatives, int(round(rep_fraction * len(nodes))))
    if candidates == "topic":
        pool = np.asarray(nodes, dtype=np.int64)
        order = np.argsort(-scores[pool], kind="stable")
        return pool[order[: min(cut, pool.size)]]
    cut = min(cut, graph.n_nodes)
    return stable_top_indices(scores, cut)
