"""Retained scalar reference for Algorithms 10 & 11 (parity baseline).

This is the pre-vectorization online path, kept verbatim: per-
representative ``Γ(v)`` hash probes, a ``dict(summary.weights)`` working
copy per topic per query, ``heapq.nlargest`` for the k-th bound, and a
full sort for top-k membership. It exists for two reasons:

* the parity test suite (``tests/core/test_search_parity.py``) asserts
  that :class:`~repro.core.search.PersonalizedSearcher` returns identical
  rankings, influences (to 1e-12), and work stats;
* ``benchmarks/bench_online_search.py`` measures the vectorized kernels
  against this exact baseline.

Do not optimize this module - its value is staying the fixed reference
point. It shares :class:`~repro.core.search.SearchResult` and
:class:`~repro.core.search.SearchStats` so outputs are directly
comparable.
"""

from __future__ import annotations

import heapq
from typing import Callable, Dict, List, Mapping, Set, Tuple, Union

from .._utils import require_in_range
from ..exceptions import ConfigurationError
from ..topics import KeywordQuery, TopicIndex
from .propagation import PropagationIndex
from .search import SearchResult, SearchStats
from .summarization import TopicSummary

__all__ = ["ScalarReferenceSearcher"]

SummaryProvider = Union[Mapping[int, TopicSummary], Callable[[int], TopicSummary]]


class ScalarReferenceSearcher:
    """The pre-vectorization :class:`PersonalizedSearcher`, frozen in time."""

    def __init__(
        self,
        topic_index: TopicIndex,
        summaries: SummaryProvider,
        propagation_index: PropagationIndex,
        *,
        max_expand_rounds: int = 8,
    ):
        require_in_range("max_expand_rounds", max_expand_rounds, 0)
        self._topic_index = topic_index
        self._summaries = summaries
        self._propagation = propagation_index
        self._max_expand_rounds = int(max_expand_rounds)

    # ------------------------------------------------------------------
    def _summary(self, topic_id: int) -> TopicSummary:
        if callable(self._summaries):
            return self._summaries(topic_id)
        try:
            return self._summaries[topic_id]
        except KeyError:
            raise ConfigurationError(
                f"no summary available for topic {topic_id}"
            ) from None

    @staticmethod
    def _kth_best(scores: Dict[int, float], k: int) -> float:
        """``min(T^k)`` - the k-th best current score (or -inf)."""
        if len(scores) < k:
            return float("-inf")
        return heapq.nlargest(k, scores.values())[-1]

    @staticmethod
    def _top_k_ids(scores: Dict[int, float], labels: Dict[int, str], k: int) -> Set[int]:
        ranked = sorted(scores, key=lambda t: (-scores[t], labels[t]))
        return set(ranked[:k])

    # ------------------------------------------------------------------
    def search(
        self,
        user: int,
        query: Union[str, KeywordQuery],
        k: int,
    ) -> Tuple[List[SearchResult], SearchStats]:
        """Top-k most influential q-related topics for *user*."""
        require_in_range("k", k, 1)
        stats = SearchStats()
        topic_ids = self._topic_index.related_topics(query)
        stats.topics_considered = len(topic_ids)
        if not topic_ids:
            return [], stats

        entry_v = self._propagation.entry(user)
        stats.entries_probed += 1
        gamma_v = entry_v.gamma

        labels = {t: self._topic_index.label(t) for t in topic_ids}
        heap: Dict[int, float] = {}
        remaining: Dict[int, Dict[int, float]] = {}
        remaining_weight: Dict[int, float] = {}

        # Algorithm 10 lines 4-13: aggregate in-index representatives.
        for topic_id in topic_ids:
            summary = self._summary(topic_id)
            weights = dict(summary.weights)
            influence = 0.0
            unconsumed = 0.0
            for rep in list(weights):
                stats.representatives_touched += 1
                probability = gamma_v.get(rep)
                if probability is not None:
                    influence += probability * weights.pop(rep)
                else:
                    unconsumed += weights[rep]
            heap[topic_id] = influence
            remaining[topic_id] = weights
            remaining_weight[topic_id] = unconsumed

        # Lines 14-20: initial pruning against the marked-frontier bound.
        frontier: Dict[int, float] = {
            u: gamma_v[u] for u in entry_v.marked
        }
        max_ep = max(frontier.values(), default=0.0)
        active = set(topic_ids)
        self._prune(active, heap, remaining, remaining_weight, max_ep, k, labels, stats)

        # Lines 21-22 + Algorithm 11: expand while an active topic is
        # outside the current top-k.
        expanded: Set[int] = set()
        rounds = 0
        while (
            frontier
            and rounds < self._max_expand_rounds
            and active - self._top_k_ids(heap, labels, k)
        ):
            rounds += 1
            stats.expansion_rounds += 1
            frontier = self._expand_round(
                frontier, expanded, active, heap, remaining, remaining_weight,
                k, labels, stats,
            )

        ranked = sorted(heap, key=lambda t: (-heap[t], labels[t]))[:k]
        results = [
            SearchResult(topic_id=t, label=labels[t], influence=heap[t])
            for t in ranked
        ]
        return results, stats

    # ------------------------------------------------------------------
    def _prune(
        self,
        active: Set[int],
        heap: Dict[int, float],
        remaining: Dict[int, Dict[int, float]],
        remaining_weight: Dict[int, float],
        max_ep: float,
        k: int,
        labels: Dict[int, str],
        stats: SearchStats,
    ) -> None:
        """Remove topics that can no longer change the top-k (lines 17-20)."""
        kth = self._kth_best(heap, k)
        for topic_id in list(active):
            exhausted = not remaining[topic_id]
            upper_bound = heap[topic_id] + remaining_weight[topic_id] * max_ep
            if exhausted or kth >= upper_bound:
                active.discard(topic_id)
                if not exhausted:
                    stats.topics_pruned += 1

    def _expand_round(
        self,
        frontier: Dict[int, float],
        expanded: Set[int],
        active: Set[int],
        heap: Dict[int, float],
        remaining: Dict[int, Dict[int, float]],
        remaining_weight: Dict[int, float],
        k: int,
        labels: Dict[int, str],
        stats: SearchStats,
    ) -> Dict[int, float]:
        """One Expand recursion (Algorithm 11); returns the next frontier."""
        next_frontier: Dict[int, float] = {}
        ordered = sorted(frontier, key=lambda u: (-frontier[u], u))
        for position, node in enumerate(ordered):
            if node in expanded:
                continue
            expanded.add(node)
            weight_to_v = frontier[node]
            entry_u = self._propagation.entry(node)
            stats.entries_probed += 1
            gamma_u = entry_u.gamma
            for topic_id in list(active):
                weights = remaining[topic_id]
                gained = 0.0
                consumed = 0.0
                for rep in list(weights):
                    stats.representatives_touched += 1
                    probability = gamma_u.get(rep)
                    if probability is not None:
                        weight = weights.pop(rep)
                        gained += weight_to_v * probability * weight
                        consumed += weight
                if gained:
                    heap[topic_id] += gained
                    remaining_weight[topic_id] = (
                        remaining_weight[topic_id] - consumed if weights else 0.0
                    )
            for marked in entry_u.marked:
                if marked in expanded:
                    continue
                reach = weight_to_v * gamma_u[marked]
                if reach > next_frontier.get(marked, 0.0):
                    next_frontier[marked] = reach
            pending_max = frontier[ordered[position + 1]] if position + 1 < len(ordered) else 0.0
            round_max_ep = max(pending_max, max(next_frontier.values(), default=0.0))
            self._prune(
                active, heap, remaining, remaining_weight, round_max_ep, k,
                labels, stats,
            )
            if not active - self._top_k_ids(heap, labels, k):
                return next_frontier
        max_ep = max(next_frontier.values(), default=0.0)
        self._prune(active, heap, remaining, remaining_weight, max_ep, k, labels, stats)
        return next_frontier
