"""Online query-serving primitives (library extension).

The paper's whole pitch is that summarization turns PIT-Search into an
*online* operation; serving it to many users needs the memory story that
the paper leaves implicit. This module supplies the bounded, byte-accounted
LRU cache used by :class:`~repro.core.search.PersonalizedSearcher` for

* **propagation entries** - ``Γ(v)`` arrays built lazily per query user;
  unbounded retention is exactly the §5.1 index's full footprint, which a
  serving node cannot afford for millions of users;
* **summary arrays** - the frozen
  :class:`~repro.core.summarization.SummaryArrays` form of each topic,
  shared across every user asking a query that touches the topic.

Eviction is least-recently-used under a byte budget (items are charged
their exact array payload). Hit/miss/eviction counters snapshot into
:class:`~repro.core.diagnostics.CacheStats` for the benchmarks and the
engine's memory accounting.

The cache also backs the tiered answer/plan caches of
:class:`~repro.core.serve_facade.ServingEngine`; the optional
``on_evict`` callback is the demotion seam between tiers (an answer
displaced by the byte budget can be downgraded to its compiled plan
rather than recomputed from scratch).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Generic, Hashable, Iterator, Optional, Tuple, TypeVar

from .._utils import require_in_range
from .diagnostics import CacheStats

__all__ = ["ByteLRUCache"]

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


class ByteLRUCache(Generic[K, V]):
    """LRU cache bounded by the total byte size of its payloads.

    Parameters
    ----------
    max_bytes:
        Byte budget. Inserting past it evicts least-recently-used items
        until the new item fits. An item larger than the whole budget is
        not cached at all (it would displace everything and still thrash).
    name:
        Label used in the :class:`CacheStats` snapshot.
    on_evict:
        Optional ``callback(key, value)`` invoked for every item the
        *byte budget* displaces (the tier-demotion hook). It fires only
        for LRU evictions: not for :meth:`clear` (an intentional drop),
        not when a re-``put`` replaces a key's value, and not for
        oversize items that were never admitted. The callback runs after
        the item has left the cache, so it may safely re-``put``.
    """

    __slots__ = ("_name", "_max_bytes", "_items", "_bytes", "_on_evict",
                 "hits", "misses", "evictions")

    def __init__(
        self,
        max_bytes: int,
        *,
        name: str = "cache",
        on_evict: Optional[Callable[[K, V], None]] = None,
    ):
        require_in_range("max_bytes", max_bytes, 1)
        self._name = str(name)
        self._max_bytes = int(max_bytes)
        self._on_evict = on_evict
        # key -> (value, nbytes); insertion end = most recently used.
        self._items: "OrderedDict[K, tuple]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    def get(self, key: K) -> Optional[V]:
        """The cached value (bumped to most-recent), or ``None``."""
        item = self._items.get(key)
        if item is None:
            self.misses += 1
            return None
        self._items.move_to_end(key)
        self.hits += 1
        return item[0]

    def put(self, key: K, value: V, nbytes: int) -> None:
        """Insert *value* charged at *nbytes*, evicting LRU items to fit."""
        nbytes = int(nbytes)
        old = self._items.pop(key, None)
        if old is not None:
            self._bytes -= old[1]
        if nbytes > self._max_bytes:
            return
        while self._bytes + nbytes > self._max_bytes and self._items:
            evicted_key, (evicted_value, evicted_bytes) = self._items.popitem(
                last=False
            )
            self._bytes -= evicted_bytes
            self.evictions += 1
            if self._on_evict is not None:
                self._on_evict(evicted_key, evicted_value)
        self._items[key] = (value, nbytes)
        self._bytes += nbytes

    def get_or_build(self, key: K, build: Callable[[], V],
                     size_of: Callable[[V], int]) -> V:
        """``get`` falling back to ``build()`` + ``put`` on a miss."""
        value = self.get(key)
        if value is None:
            value = build()
            self.put(key, value, size_of(value))
        return value

    def get_or_put(self, key: K, build: Callable[[], V],
                   size_of: Callable[[V], int]) -> V:
        """Atomic miss-then-insert helper for coalesced serving paths.

        Like :meth:`get_or_build`, but safe when ``build()`` re-enters
        the cache - e.g. a coalesced batch whose builder populates other
        entries (possibly evicting its way past this key's slot) or, via
        a recursive provider, inserts *key* itself. After ``build()``
        returns, the cache is re-checked: a value that appeared for *key*
        in the meantime wins (it is bumped to most-recent and returned,
        with no extra hit/miss recorded - the initial miss already
        accounted this lookup), so two interleaved builders never double
        -charge the byte budget for one key.
        """
        value = self.get(key)
        if value is not None:
            return value
        value = build()
        raced = self._items.get(key)
        if raced is not None:
            self._items.move_to_end(key)
            return raced[0]
        self.put(key, value, size_of(value))
        return value

    def clear(self) -> None:
        """Drop every item (counters are kept; they are cumulative).

        An intentional drop, not a capacity eviction: ``on_evict`` does
        not fire (invalidation must not demote stale values anywhere).
        """
        self._items.clear()
        self._bytes = 0

    def pop(self, key: K) -> Optional[V]:
        """Remove *key* and return its value (``None`` when absent).

        Like :meth:`clear`, an intentional removal: no ``on_evict``, no
        hit/miss accounting (this is maintenance, not a lookup).
        """
        item = self._items.pop(key, None)
        if item is None:
            return None
        self._bytes -= item[1]
        return item[0]

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, key: K) -> bool:
        return key in self._items

    def keys(self) -> Tuple[K, ...]:
        """Resident keys, least-recently-used first (a stable copy)."""
        return tuple(self._items.keys())

    def values(self) -> Iterator[V]:
        """Iterate resident values, least-recently-used first."""
        for value, _ in self._items.values():
            yield value

    @property
    def max_bytes(self) -> int:
        """The configured byte budget."""
        return self._max_bytes

    def memory_bytes(self) -> int:
        """Bytes currently charged to resident items."""
        return self._bytes

    def stats(self) -> CacheStats:
        """A :class:`CacheStats` snapshot of the cache's counters."""
        return CacheStats(
            name=self._name,
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            n_items=len(self._items),
            current_bytes=self._bytes,
            max_bytes=self._max_bytes,
        )
