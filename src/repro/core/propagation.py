"""Personalized influence propagation index - paper §5.1 (S21).

For a node ``v``, the index materializes every node that can reach ``v``
along at least one cycle-free path whose transition probability (product of
edge probabilities) is at least ``θ``, together with the *aggregated*
probability over all such paths - the ``v.hashmap`` of Algorithms 10/11,
written ``Γ(v)``.

Construction is the reverse branch expansion of Figure 3: starting from
``v``, in-edges extend branches backwards; a branch dies when its path
probability drops below ``θ`` or it would revisit one of its own nodes.
A node may appear on many branches (its contributions add up).

A node ``u ∈ Γ(v)`` is *marked* (``Γ*(v)``, "potential to be expanded")
when it has at least one in-neighbour outside ``Γ(v) ∪ {v}`` - influence
could flow into ``u`` from parts of the graph the index cannot see, which
is what the online search's upper bound and Expand step reason about. This
reproduces the Figure 3 narrative exactly (only node 11 is marked there).

Branch counts are worst-case exponential, so expansion takes a budget;
``strict`` selects raising versus truncating (truncation only loses
below-θ-adjacent mass and is safe for the search's bounds).
"""

from __future__ import annotations

import warnings
from collections import deque
from typing import Dict, Iterable, Mapping, Optional, Set, Tuple

import numpy as np

from .._utils import require_in_range, require_probability
from ..exceptions import BudgetExceededError, ConfigurationError
from ..graph import SocialGraph

__all__ = ["PropagationEntry", "PropagationIndex"]


class PropagationEntry:
    """Materialized neighbourhood of one node.

    Attributes
    ----------
    node:
        The target node ``v``.
    gamma:
        ``Γ(v)`` - ``source -> aggregated path probability`` for every
        source with a qualifying path to ``v``.
    marked:
        ``Γ*(v)`` - the subset of ``Γ(v)`` with expansion potential.
    branches:
        Number of branch extensions performed (diagnostics).
    """

    __slots__ = ("node", "gamma", "marked", "branches")

    def __init__(
        self,
        node: int,
        gamma: Dict[int, float],
        marked: Set[int],
        branches: int,
    ):
        self.node = node
        self.gamma = gamma
        self.marked = marked
        self.branches = branches

    def probability(self, source: int) -> float:
        """Aggregated propagation probability of *source* to this node."""
        return float(self.gamma.get(int(source), 0.0))

    def max_expandable_probability(self) -> float:
        """``maxEP`` - the largest Γ value among marked nodes (0 if none)."""
        if not self.marked:
            return 0.0
        return max(self.gamma[u] for u in self.marked)

    @property
    def size(self) -> int:
        """``|Γ(v)|``."""
        return len(self.gamma)

    def memory_bytes(self) -> int:
        """Approximate resident size (16 bytes per Γ entry, 8 per mark)."""
        return 16 * len(self.gamma) + 8 * len(self.marked)


class PropagationIndex:
    """Lazy, cached per-node propagation entries over a graph.

    Parameters
    ----------
    graph:
        The social graph.
    theta:
        ``θ`` - minimum path probability for materialization.
    max_branches:
        Per-node budget on branch extensions.
    strict:
        Raise :class:`BudgetExceededError` instead of truncating when the
        budget binds.

    Entries are built on first access and cached; :meth:`build_all`
    materializes every node up front (the paper's offline variant).
    """

    def __init__(
        self,
        graph: SocialGraph,
        theta: float = 0.05,
        *,
        max_branches: int = 200_000,
        strict: bool = False,
    ):
        require_probability("theta", theta, inclusive_zero=False)
        require_in_range("max_branches", max_branches, 1)
        self._graph = graph
        self._theta = float(theta)
        self._max_branches = int(max_branches)
        self._strict = bool(strict)
        self._entries: Dict[int, PropagationEntry] = {}

    # ------------------------------------------------------------------
    @property
    def graph(self) -> SocialGraph:
        """The indexed graph."""
        return self._graph

    @property
    def theta(self) -> float:
        """The path-probability threshold ``θ``."""
        return self._theta

    @property
    def n_cached(self) -> int:
        """Number of entries materialized so far."""
        return len(self._entries)

    def entry(self, node: int) -> PropagationEntry:
        """The propagation entry of *node*, building it if needed."""
        node = self._graph._check_node(node)
        cached = self._entries.get(node)
        if cached is None:
            cached = self._build_entry(node)
            self._entries[node] = cached
        return cached

    def build_all(self) -> "PropagationIndex":
        """Materialize every node (offline pre-processing)."""
        for node in range(self._graph.n_nodes):
            self.entry(node)
        return self

    def memory_bytes(self) -> int:
        """Approximate resident size of all cached entries."""
        return sum(e.memory_bytes() for e in self._entries.values())

    # ------------------------------------------------------------------
    def _build_entry(self, target: int) -> PropagationEntry:
        """Reverse branch expansion from *target* (Figure 3 procedure)."""
        theta = self._theta
        graph = self._graph
        gamma: Dict[int, float] = {}
        branches = 0
        # Each queue item is (node, path probability, nodes on this branch).
        # The branch set makes branches cycle-free; frozensets are shared
        # between siblings, only extended on push.
        queue: deque = deque()
        root_set = frozenset((target,))
        sources, probs = graph.in_edges(target)
        for source, probability in zip(sources, probs):
            probability = float(probability)
            if probability >= theta:
                queue.append((int(source), probability, root_set))
        truncated = False
        while queue:
            node, probability, branch = queue.popleft()
            branches += 1
            if branches > self._max_branches:
                if self._strict:
                    raise BudgetExceededError(
                        f"propagation entry of node {target}", self._max_branches
                    )
                truncated = True
                break
            gamma[node] = gamma.get(node, 0.0) + probability
            extended = branch | {node}
            sources, probs = graph.in_edges(node)
            for source, edge_probability in zip(sources, probs):
                source = int(source)
                if source in extended or source == target:
                    continue
                extended_probability = probability * float(edge_probability)
                if extended_probability >= theta:
                    queue.append((source, extended_probability, extended))
        if truncated:
            warnings.warn(
                f"propagation entry of node {target} truncated at "
                f"{self._max_branches} branches (theta={theta})",
                RuntimeWarning,
                stacklevel=3,
            )
        marked = self._mark_potential(target, gamma)
        return PropagationEntry(target, gamma, marked, branches)

    def _mark_potential(self, target: int, gamma: Dict[int, float]) -> Set[int]:
        """Nodes in Γ with an in-neighbour the index cannot see."""
        inside = set(gamma)
        inside.add(target)
        marked: Set[int] = set()
        for node in gamma:
            for source in self._graph.in_neighbors(node):
                if int(source) not in inside:
                    marked.add(node)
                    break
        return marked
