"""Personalized influence propagation index - paper §5.1 (S21).

For a node ``v``, the index materializes every node that can reach ``v``
along at least one cycle-free path whose transition probability (product of
edge probabilities) is at least ``θ``, together with the *aggregated*
probability over all such paths - the ``v.hashmap`` of Algorithms 10/11,
written ``Γ(v)``.

Construction is the reverse branch expansion of Figure 3: starting from
``v``, in-edges extend branches backwards; a branch dies when its path
probability drops below ``θ`` or it would revisit one of its own nodes.
A node may appear on many branches (its contributions add up).

The expansion runs as an explicit depth-first stack directly over the
graph's reverse-CSR arrays. Because a DFS holds exactly one branch (the
current stack path) at a time, cycle membership is a single reusable
byte-mask - set a bit on descent, clear it on backtrack - so the per-push
``frozenset`` copies and per-pop ``in_edges()`` tuple unpacking of the
naive formulation disappear entirely. The set of qualifying cycle-free
paths (and therefore ``Γ``) is identical to the breadth-first reading of
Figure 3; only the enumeration order differs.

A node ``u ∈ Γ(v)`` is *marked* (``Γ*(v)``, "potential to be expanded")
when it has at least one in-neighbour outside ``Γ(v) ∪ {v}`` - influence
could flow into ``u`` from parts of the graph the index cannot see, which
is what the online search's upper bound and Expand step reason about. This
reproduces the Figure 3 narrative exactly (only node 11 is marked there).

Branch counts are worst-case exponential, so expansion takes a budget;
``strict`` selects raising versus truncating (truncation only loses
below-θ-adjacent mass and is safe for the search's bounds). Budget
semantics: a branch extension is counted *before* it is consumed, so a
truncated entry contains the contribution of exactly ``max_branches``
extensions - the extension that would exceed the budget is never taken
and no probability mass is silently dropped mid-branch.

:meth:`PropagationIndex.build_all` shards nodes across a
``ProcessPoolExecutor`` when ``workers > 1``. Every entry build is
independent and deterministic (DFS order is fixed by the CSR layout), so
parallel results are byte-identical to serial ones.

The build is fault tolerant. With a ``checkpoint`` path, completed
entries are periodically flushed (atomically, checksummed) so a crash,
SIGINT, or OOM-killed worker costs at most ``checkpoint_every`` entries
of work: the next ``build_all`` call resumes from the checkpoint and -
because every entry is deterministic - produces output byte-identical to
an uninterrupted build. Failed chunks are retried with bounded
exponential backoff on a fresh process pool; nodes that still fail after
``max_retries`` either surface in
:attr:`~repro.core.diagnostics.PropagationBuildStats.failed_nodes`
(graceful degradation) or raise
:class:`~repro.exceptions.BuildFailedError` carrying the partial result,
per the ``strict`` flag.
"""

from __future__ import annotations

import os
import time
import warnings
from collections.abc import Mapping as MappingABC
from concurrent.futures import ProcessPoolExecutor, as_completed
from pathlib import Path
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

from .. import _faults
from .._utils import require_in_range, require_non_negative, require_probability
from ..exceptions import (
    BudgetExceededError,
    BuildFailedError,
    ConfigurationError,
    ReproError,
)
from ..graph import SocialGraph
from ..obs.registry import MetricsRegistry, get_registry
from ..obs.tracing import trace

__all__ = [
    "GammaView",
    "InMemoryBackend",
    "PropagationEntry",
    "PropagationIndex",
]

PathLike = Union[str, Path]

#: Bucket bounds (bytes) for the per-entry storage-size histogram
#: ``propagation.entry_bytes`` - powers of four from 256B to 16MiB.
_ENTRY_BYTES_BUCKETS: Tuple[float, ...] = (
    256.0, 1024.0, 4096.0, 16384.0, 65536.0,
    262144.0, 1048576.0, 4194304.0, 16777216.0,
)


class GammaView(MappingABC):
    """Dict-compatible read-only view over a compact ``Γ(v)``.

    Backed by a sorted ``int64`` source array and a parallel ``float64``
    probability array; lookups are ``np.searchsorted`` binary searches, so
    the view adds no storage beyond the arrays it wraps.
    """

    __slots__ = ("_sources", "_probabilities")

    def __init__(self, sources: np.ndarray, probabilities: np.ndarray):
        self._sources = sources
        self._probabilities = probabilities

    def _find(self, source) -> int:
        """Index of *source* in the sorted array, or -1."""
        sources = self._sources
        i = int(np.searchsorted(sources, source))
        if i < sources.size and sources[i] == source:
            return i
        return -1

    def __getitem__(self, source) -> float:
        i = self._find(source)
        if i < 0:
            raise KeyError(source)
        return float(self._probabilities[i])

    def get(self, source, default=None):
        i = self._find(source)
        if i < 0:
            return default
        return float(self._probabilities[i])

    def __contains__(self, source) -> bool:
        return self._find(source) >= 0

    def __iter__(self):
        return iter(self._sources.tolist())

    def __len__(self) -> int:
        return int(self._sources.size)

    def __eq__(self, other):
        if isinstance(other, MappingABC):
            return dict(self) == dict(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GammaView({dict(self)!r})"


class PropagationEntry:
    """Materialized neighbourhood of one node, stored compactly.

    ``Γ(v)`` lives in a sorted ``int64`` source array plus a parallel
    ``float64`` probability array (16 bytes per member); :attr:`gamma`
    exposes the familiar mapping interface over them.

    Attributes
    ----------
    node:
        The target node ``v``.
    branches:
        Number of branch extensions performed (diagnostics).
    """

    __slots__ = (
        "node",
        "branches",
        "_sources",
        "_probabilities",
        "_marked_array",
        "_marked_set",
        "_marked_pairs",
        "_gamma_view",
        "_mapped",
    )

    def __init__(
        self,
        node: int,
        gamma: Mapping[int, float],
        marked: Iterable[int],
        branches: int,
    ):
        items = sorted(gamma.items())
        sources = np.fromiter(
            (s for s, _ in items), dtype=np.int64, count=len(items)
        )
        probabilities = np.fromiter(
            (p for _, p in items), dtype=np.float64, count=len(items)
        )
        marked_array = np.fromiter(
            sorted(int(m) for m in marked), dtype=np.int64
        )
        self._init_arrays(node, sources, probabilities, marked_array, branches)

    def _init_arrays(
        self,
        node: int,
        sources: np.ndarray,
        probabilities: np.ndarray,
        marked: np.ndarray,
        branches: int,
        mapped: bool = False,
    ) -> None:
        self.node = int(node)
        self.branches = int(branches)
        self._sources = sources
        self._probabilities = probabilities
        self._marked_array = marked
        self._marked_set: Optional[FrozenSet[int]] = None
        self._marked_pairs: Optional[Tuple[List[int], np.ndarray]] = None
        self._gamma_view: Optional[GammaView] = None
        self._mapped = bool(mapped)

    @classmethod
    def from_arrays(
        cls,
        node: int,
        sources: np.ndarray,
        probabilities: np.ndarray,
        marked: np.ndarray,
        branches: int,
        *,
        mapped: bool = False,
    ) -> "PropagationEntry":
        """Zero-copy construction from pre-sorted CSR-style arrays.

        ``mapped=True`` declares the arrays as views into a memory-mapped
        artifact: the entry reports zero :meth:`memory_bytes` (the pages
        belong to the OS page cache and are reclaimable, not resident
        Python heap) while :meth:`storage_bytes` still gives the logical
        size.
        """
        entry = cls.__new__(cls)
        entry._init_arrays(
            node,
            np.asarray(sources, dtype=np.int64),
            np.asarray(probabilities, dtype=np.float64),
            np.asarray(marked, dtype=np.int64),
            branches,
            mapped=mapped,
        )
        return entry

    # ------------------------------------------------------------------
    @property
    def gamma(self) -> GammaView:
        """``Γ(v)`` as a mapping ``source -> aggregated path probability``."""
        view = self._gamma_view
        if view is None:
            view = GammaView(self._sources, self._probabilities)
            self._gamma_view = view
        return view

    @property
    def marked(self) -> FrozenSet[int]:
        """``Γ*(v)`` - the subset of ``Γ(v)`` with expansion potential."""
        cached = self._marked_set
        if cached is None:
            cached = frozenset(self._marked_array.tolist())
            self._marked_set = cached
        return cached

    @property
    def sources(self) -> np.ndarray:
        """Sorted ``int64`` members of ``Γ(v)`` (read-only storage array)."""
        return self._sources

    @property
    def probabilities(self) -> np.ndarray:
        """``float64`` probabilities parallel to :attr:`sources`."""
        return self._probabilities

    @property
    def marked_array(self) -> np.ndarray:
        """Sorted ``int64`` members of ``Γ*(v)`` (read-only storage array)."""
        return self._marked_array

    def probability(self, source: int) -> float:
        """Aggregated propagation probability of *source* to this node."""
        sources = self._sources
        i = int(np.searchsorted(sources, int(source)))
        if i < sources.size and sources[i] == source:
            return float(self._probabilities[i])
        return 0.0

    def marked_pairs(self) -> Tuple[List[int], np.ndarray]:
        """``Γ*(v)`` as ``(node list, aligned Γ probability array)``.

        The searchsorted resolution of the marked nodes against the source
        array is cached - the online Expand step probes a frontier entry's
        marked set once per expansion, and the resolution never changes.
        """
        cached = self._marked_pairs
        if cached is None:
            marked = self._marked_array
            if marked.size:
                positions = np.searchsorted(self._sources, marked)
                probabilities = self._probabilities[positions]
            else:
                probabilities = np.empty(0, dtype=np.float64)
            cached = (marked.tolist(), probabilities)
            self._marked_pairs = cached
        return cached

    def max_expandable_probability(self) -> float:
        """``maxEP`` - the largest Γ value among marked nodes (0 if none)."""
        if self._marked_array.size == 0:
            return 0.0
        _, probabilities = self.marked_pairs()
        return float(probabilities.max())

    @property
    def size(self) -> int:
        """``|Γ(v)|``."""
        return int(self._sources.size)

    @property
    def is_mapped(self) -> bool:
        """Whether the storage arrays are views into a memory-mapped file."""
        return self._mapped

    def storage_bytes(self) -> int:
        """Logical size of the entry's storage arrays (resident or mapped)."""
        return int(
            self._sources.nbytes
            + self._probabilities.nbytes
            + self._marked_array.nbytes
        )

    def memory_bytes(self) -> int:
        """Resident heap size of the entry's storage arrays.

        Zero for mapped entries: their bytes live in the OS page cache
        and are reclaimed under pressure, so charging them as RAM would
        over-report a mapped million-node index as resident.
        """
        if self._mapped:
            return 0
        return self.storage_bytes()


# ---------------------------------------------------------------------------
# Process-pool plumbing for build_all(workers > 1). The initializer gives
# every worker its own index over the (read-only, copy-on-write under fork)
# CSR arrays; chunks return raw arrays so nothing entry-shaped is pickled.
# ---------------------------------------------------------------------------

_WORKER_INDEX: Optional["PropagationIndex"] = None

_ChunkResult = Tuple[List[Tuple[int, np.ndarray, np.ndarray, np.ndarray, int]], int]


def _worker_init(
    graph: SocialGraph,
    theta: float,
    max_branches: int,
    strict: bool,
    faults: Optional[Dict[str, object]] = None,
) -> None:
    global _WORKER_INDEX
    if faults is not None:
        # Fault hooks registered in the parent travel through the pool
        # initializer so injected crashes fire inside worker processes
        # regardless of the multiprocessing start method.
        _faults.install(faults)
    _WORKER_INDEX = PropagationIndex(
        graph, theta, max_branches=max_branches, strict=strict
    )


def _worker_build_chunk(
    nodes: Sequence[int], chunk_id: int = 0, attempt: int = 0
) -> _ChunkResult:
    index = _WORKER_INDEX
    assert index is not None, "worker pool used before initialization"
    _faults.inject(
        "propagation.worker_chunk",
        chunk=chunk_id,
        attempt=attempt,
        nodes=tuple(nodes),
    )
    results = []
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        for node in nodes:
            entry = index._build_entry(node)
            results.append(
                (
                    entry.node,
                    entry.sources,
                    entry.probabilities,
                    entry.marked_array,
                    entry.branches,
                )
            )
    n_truncated = sum(1 for w in caught if "truncated" in str(w.message))
    return results, n_truncated


class _CheckpointWriter:
    """Periodic atomic flushes of an index's cached entries.

    The checkpoint file is an ordinary propagation-index artifact
    (checksummed, atomically replaced), so a partial checkpoint is always
    loadable and the final checkpoint of a completed build doubles as the
    finished artifact.
    """

    def __init__(
        self,
        index: "PropagationIndex",
        path: Optional[PathLike],
        every: int,
        registry: Optional[MetricsRegistry] = None,
    ):
        self._index = index
        self._path = None if path is None else Path(path)
        self._every = int(every)
        self._pending = 0
        self._registry = registry

    @property
    def enabled(self) -> bool:
        return self._path is not None

    def note_built(self, count: int = 1) -> None:
        """Record *count* newly built entries, flushing on the cadence."""
        if self._path is None:
            return
        self._pending += count
        if self._every > 0 and self._pending >= self._every:
            self.flush()

    def flush(self) -> None:
        """Persist the index's cached entries if any are unflushed."""
        if self._path is None or self._pending == 0:
            return
        from .persistence import save_propagation_index

        registry = self._registry
        with trace("propagation.checkpoint_flush", registry=registry):
            save_propagation_index(self._index, self._path)
        if registry is not None:
            registry.inc("propagation.checkpoint_flushes")
        self._pending = 0


class InMemoryBackend:
    """Dict-backed entry storage - the default, fully resident backend.

    The counterpart of :class:`~repro.core.shards.MmapShardBackend` on
    the index's backend seam: entries built (or loaded from NPZ) are held
    as ordinary heap arrays keyed by node. The index aliases
    :attr:`entries` directly, so the backend adds no indirection to the
    hot lookup path.
    """

    __slots__ = ("entries",)

    def __init__(
        self, entries: Optional[Dict[int, PropagationEntry]] = None
    ):
        self.entries: Dict[int, PropagationEntry] = (
            {} if entries is None else dict(entries)
        )

    def get(self, node: int) -> Optional[PropagationEntry]:
        """The stored entry of *node*, or ``None``."""
        return self.entries.get(node)

    def __len__(self) -> int:
        return len(self.entries)

    def memory_bytes(self) -> int:
        """Exact resident size of all stored entries' arrays."""
        return sum(e.memory_bytes() for e in self.entries.values())


class PropagationIndex:
    """Lazy, cached per-node propagation entries over a graph.

    Parameters
    ----------
    graph:
        The social graph.
    theta:
        ``θ`` - minimum path probability for materialization.
    max_branches:
        Per-node budget on branch extensions.
    strict:
        Raise :class:`BudgetExceededError` instead of truncating when the
        budget binds.

    Entries are built on first access and cached; :meth:`build_all`
    materializes every node up front (the paper's offline variant),
    optionally sharding across worker processes.

    Construction keeps two lazily-built scratch structures: a Python-list
    image of the reverse-CSR arrays (list indexing avoids the numpy scalar
    boxing that dominates a pure-Python traversal; transient ``O(E)``
    objects, freed with the index) and a ``bytearray`` membership mask
    reused across every branch and every entry.
    """

    def __init__(
        self,
        graph: SocialGraph,
        theta: float = 0.05,
        *,
        max_branches: int = 200_000,
        strict: bool = False,
        metrics: Optional[MetricsRegistry] = None,
    ):
        require_probability("theta", theta, inclusive_zero=False)
        require_in_range("max_branches", max_branches, 1)
        self._graph = graph
        self._theta = float(theta)
        self._max_branches = int(max_branches)
        self._strict = bool(strict)
        self._backend = InMemoryBackend()
        # Alias of the backend's dict: every internal code path keeps its
        # plain-dict access while the seam stays swappable.
        self._entries: Dict[int, PropagationEntry] = self._backend.entries
        self._shards = None  # Optional[repro.core.shards.MmapShardBackend]
        self._csr: Optional[Tuple[List[int], List[int], List[float]]] = None
        self._mask: Optional[bytearray] = None
        self._metrics = metrics
        self.last_build_stats = None
        #: Statistics of the partial rebuild that produced this index
        #: (see :meth:`rebuilt_for`); ``None`` for directly built ones.
        self.last_refresh_stats: Optional[Dict[str, int]] = None

    def set_metrics(self, registry: Optional[MetricsRegistry]) -> None:
        """Route build metrics to *registry* (None = process default)."""
        self._metrics = registry
        if self._shards is not None:
            self._shards.set_metrics(registry)

    def _registry(self) -> MetricsRegistry:
        metrics = self._metrics
        return metrics if metrics is not None else get_registry()

    # ------------------------------------------------------------------
    @property
    def graph(self) -> SocialGraph:
        """The indexed graph."""
        return self._graph

    @property
    def theta(self) -> float:
        """The path-probability threshold ``θ``."""
        return self._theta

    @property
    def max_branches(self) -> int:
        """The per-node branch-extension budget."""
        return self._max_branches

    @property
    def strict(self) -> bool:
        """Whether the budget raises instead of truncating."""
        return self._strict

    @property
    def n_cached(self) -> int:
        """Number of entries materialized (or shard-covered) so far."""
        if self._shards is not None:
            return self._graph.n_nodes
        return len(self._entries)

    @property
    def backend(self) -> InMemoryBackend:
        """The in-memory entry store (always present; may be empty)."""
        return self._backend

    @property
    def shards(self):
        """The attached :class:`~repro.core.shards.MmapShardBackend`, if any."""
        return self._shards

    def attach_shards(self, backend) -> "PropagationIndex":
        """Serve entries from a mapped shard *backend* (zero-copy).

        The backend must cover this index's graph and carry the same
        ``theta``/``max_branches`` (shards built under different
        parameters would silently change Γ). In-memory entries, when
        present, take precedence; every other node is served from the
        mapped shards without ever touching this index's heap.
        """
        if (backend.theta != self._theta
                or backend.max_branches != self._max_branches):
            raise ConfigurationError(
                f"sharded index was built with theta={backend.theta}, "
                f"max_branches={backend.max_branches}; this index uses "
                f"theta={self._theta}, max_branches={self._max_branches}"
            )
        self._shards = backend
        if self._metrics is not None:
            backend.set_metrics(self._metrics)
        return self

    def rebuilt_for(
        self, graph: SocialGraph, affected: np.ndarray
    ) -> "PropagationIndex":
        """A new index over *graph* reusing every unaffected cached entry.

        The targeted partial rebuild behind the delta engine
        (:mod:`repro.core.dynamics`): entries are graph-independent
        sorted arrays, so nodes outside *affected* carry their entry
        over untouched; affected nodes that were materialized are
        rebuilt eagerly against the new graph's CSR (same deterministic
        DFS, so a fully materialized index comes out byte-identical to
        a from-scratch build); never-built nodes stay lazy. The result
        records ``{"entries_rebuilt", "entries_copied"}`` in
        :attr:`last_refresh_stats` and the ``dynamics.*`` counters.

        Raises
        ------
        ConfigurationError
            When this index serves from mapped shards (refresh those
            with :func:`repro.core.shards.refresh_sharded_index`, which
            rewrites only the dirty shard files) or when *graph* has a
            different node count (deltas edit edges, never nodes).
        """
        if self._shards is not None:
            raise ConfigurationError(
                "rebuilt_for requires the in-memory backend; this index "
                "serves from mapped shards - refresh them with "
                "repro.core.shards.refresh_sharded_index instead"
            )
        if graph.n_nodes != self._graph.n_nodes:
            raise ConfigurationError(
                f"cannot rebuild for a graph with {graph.n_nodes} nodes; "
                f"this index covers {self._graph.n_nodes}"
            )
        fresh = PropagationIndex(
            graph,
            self._theta,
            max_branches=self._max_branches,
            strict=self._strict,
            metrics=self._metrics,
        )
        mask = np.zeros(graph.n_nodes, dtype=bool)
        mask[np.asarray(affected, dtype=np.int64)] = True
        rebuilt = 0
        copied = 0
        for node, entry in self._entries.items():
            if mask[node]:
                fresh._entries[node] = fresh._build_entry(node)
                rebuilt += 1
            else:
                fresh._entries[node] = entry
                copied += 1
        registry = self._registry()
        registry.inc("dynamics.entries_rebuilt", rebuilt)
        registry.inc("dynamics.entries_copied", copied)
        fresh.last_refresh_stats = {
            "entries_rebuilt": rebuilt,
            "entries_copied": copied,
        }
        return fresh

    def entry(self, node: int) -> PropagationEntry:
        """The propagation entry of *node*, building it if needed."""
        node = self._graph._check_node(node)
        cached = self._entries.get(node)
        if cached is None:
            if self._shards is not None:
                return self._shards.get(node)
            cached = self._build_entry(node)
            self._entries[node] = cached
        return cached

    def get_cached(self, node: int) -> Optional[PropagationEntry]:
        """The already-materialized entry of *node*, or ``None``.

        Never triggers a build; lets externally bounded caches (the online
        serving layer) serve prebuilt entries for free while keeping
        lazily built ones under their own byte budget. Shard-backed
        entries count as materialized - they are served from the mapped
        artifact at zero build cost.
        """
        node = self._graph._check_node(node)
        cached = self._entries.get(node)
        if cached is None and self._shards is not None:
            return self._shards.get(node)
        return cached

    def build_entry(self, node: int) -> PropagationEntry:
        """Build the entry of *node* WITHOUT inserting it into this index.

        The bounded serving caches use this to materialize entries they
        manage themselves; :meth:`entry` would pin every build into the
        index's unbounded cache.
        """
        return self._build_entry(self._graph._check_node(node))

    def load_checkpoint(self, path: PathLike) -> int:
        """Absorb entries from a checkpoint written by an earlier build.

        The checkpoint's graph signature, ``theta``, and ``max_branches``
        must match this index (a checkpoint built under different
        parameters would silently change Γ); mismatches raise
        :class:`~repro.exceptions.ConfigurationError`. Returns the number
        of entries absorbed (already-cached nodes are kept as-is).
        """
        from .persistence import load_propagation_index

        loaded = load_propagation_index(path, self._graph)
        if loaded.theta != self._theta or loaded.max_branches != self._max_branches:
            raise ConfigurationError(
                f"{path}: checkpoint was built with theta={loaded.theta}, "
                f"max_branches={loaded.max_branches}; this index uses "
                f"theta={self._theta}, max_branches={self._max_branches}"
            )
        absorbed = 0
        for node, entry in loaded._entries.items():
            if node not in self._entries:
                self._entries[node] = entry
                absorbed += 1
        return absorbed

    def build_all(
        self,
        workers: Optional[int] = 1,
        *,
        checkpoint: Optional[PathLike] = None,
        checkpoint_every: int = 1000,
        resume: bool = True,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
        strict: Optional[bool] = None,
    ) -> "PropagationIndex":
        """Materialize every node (offline pre-processing).

        Parameters
        ----------
        workers:
            Worker processes to shard the build across. ``1`` (default)
            builds serially in-process; ``None`` uses every available CPU.
            Parallel results are byte-identical to serial ones - each
            entry's DFS order is fixed by the CSR layout regardless of
            which process runs it.
        checkpoint:
            Path of a checkpoint artifact. When set, completed entries are
            flushed there every ``checkpoint_every`` entries (atomically,
            checksummed), on interruption, and when the build finishes -
            so a crashed build loses at most one flush interval of work.
        checkpoint_every:
            Entries between periodic checkpoint flushes; ``0`` flushes
            only at interruption/completion.
        resume:
            Load an existing checkpoint before building (default). The
            checkpoint must match this index's graph, ``theta``, and
            ``max_branches``.
        max_retries:
            Fresh-process retry rounds for chunks whose worker crashed or
            raised an unexpected error. Deterministic library errors
            (:class:`~repro.exceptions.ReproError`, e.g. a strict budget
            violation) are never retried - they propagate immediately.
        retry_backoff:
            Base of the bounded exponential backoff (seconds) slept
            before each retry round: ``retry_backoff * 2**(round-1)``,
            capped at 30s.
        strict:
            What to do with nodes that still fail after ``max_retries``:
            ``True`` raises :class:`~repro.exceptions.BuildFailedError`
            (with the partial index attached and the checkpoint flushed);
            ``False`` records them in ``failed_nodes`` on the build stats
            and continues. ``None`` (default) follows the index's own
            ``strict`` flag.

        Records a :class:`~repro.core.diagnostics.PropagationBuildStats`
        on :attr:`last_build_stats` (also when raising
        :class:`~repro.exceptions.BuildFailedError`). The stats are a
        *view over a registry delta*: the build increments cumulative
        counters on its metrics registry and the stats object is
        constructed from the before/after snapshot difference - one
        bookkeeping path feeds both the per-call report and the
        process-wide exporters.
        """
        from .diagnostics import PropagationBuildStats

        require_in_range("checkpoint_every", checkpoint_every, 0)
        require_in_range("max_retries", max_retries, 0)
        require_non_negative("retry_backoff", retry_backoff)
        if workers is None:
            workers = getattr(os, "process_cpu_count", os.cpu_count)() or 1
        workers = int(workers)
        strict_build = self._strict if strict is None else bool(strict)
        registry = self._registry()
        if not registry.enabled:
            # Stats must exist even with metrics disabled: account into a
            # private throwaway registry instead of forking a second
            # bookkeeping path.
            registry = MetricsRegistry()
        before = registry.snapshot()
        failed: List[int] = []
        with trace("propagation.build_all", registry=registry, workers=workers):
            n_resumed = 0
            if checkpoint is not None and resume and Path(checkpoint).exists():
                with trace("propagation.resume", registry=registry):
                    n_resumed = self.load_checkpoint(checkpoint)
            if n_resumed:
                registry.inc("propagation.entries_resumed", n_resumed)
            if self._shards is not None:
                missing = []  # every node is served from the mapped shards
            else:
                missing = [
                    node for node in range(self._graph.n_nodes)
                    if node not in self._entries
                ]
            writer = _CheckpointWriter(
                self, checkpoint, checkpoint_every, registry
            )
            try:
                if workers <= 1 or len(missing) <= 1:
                    workers = 1
                    with trace("propagation.build_serial", registry=registry):
                        failed = self._build_serial(
                            missing, max_retries, retry_backoff, writer,
                            registry,
                        )
                else:
                    workers = min(workers, len(missing))
                    with trace("propagation.build_parallel", registry=registry):
                        failed = self._build_parallel(
                            missing, workers, max_retries, retry_backoff,
                            writer, registry,
                        )
            finally:
                # One flush covers every exit: completion, a strict-budget
                # raise, and KeyboardInterrupt/SystemExit mid-build. Entries
                # built before the exit are on disk for the next resume.
                writer.flush()
        if failed:
            registry.inc("propagation.entries_failed", len(failed))
        delta = registry.snapshot().delta(before)
        self.last_build_stats = PropagationBuildStats.from_metrics(
            delta,
            n_entries=len(self._entries),
            workers=workers,
            total_bytes=self.memory_bytes(),
            failed_nodes=tuple(sorted(set(failed))),
            n_resumed=n_resumed,
        )
        if failed:
            if strict_build:
                error = BuildFailedError(failed, self.last_build_stats.n_built)
                error.partial_index = self
                raise error
            warnings.warn(
                f"{len(failed)} propagation entries failed to build after "
                f"{max_retries} retries and were skipped "
                f"(see last_build_stats.failed_nodes)",
                RuntimeWarning,
                stacklevel=2,
            )
        return self

    def build_sharded(
        self,
        directory: PathLike,
        *,
        shard_nodes: int = 4096,
        workers: Optional[int] = 1,
        resume: bool = True,
        max_retries: int = 2,
        retry_backoff: float = 0.5,
        strict: Optional[bool] = None,
    ) -> "PropagationIndex":
        """Materialize every node, streaming completed shards to disk.

        The bounded-RSS counterpart of :meth:`build_all`: nodes are built
        one contiguous ``shard_nodes`` range at a time, each finished
        range is packed to a flat binary shard and published atomically
        (with a per-shard SHA-256 in a checksummed manifest), and the
        built entries are then **dropped from memory** - peak residency
        is one shard range plus build scratch, independent of graph size.
        Serve the result with
        :func:`~repro.core.shards.load_sharded_index`.

        Determinism, checkpointing, and retries carry over from
        :meth:`build_all`:

        * entries are deterministic, so shard files are byte-identical
          across runs - an interrupted build resumed with ``resume=True``
          (the default) verifies already-published shards (size +
          digest), skips them, and finishes with a directory
          digest-identical to an uninterrupted build's;
        * the manifest is rewritten after every shard, so at most one
          shard range of work is lost to a crash;
        * per-node/per-chunk retries (``max_retries``, ``retry_backoff``)
          behave exactly as in :meth:`build_all`; nodes that still fail
          in keep-going mode are stored as empty shard slots and listed
          under ``failed_nodes`` in the manifest (and on the build
          stats), while ``strict`` raises
          :class:`~repro.exceptions.BuildFailedError` with every
          completed shard already safe on disk.

        Records :class:`~repro.core.diagnostics.PropagationBuildStats` on
        :attr:`last_build_stats`; shard progress is observable via the
        ``propagation.shards_written`` / ``propagation.shards_resumed``
        counters.
        """
        from .diagnostics import PropagationBuildStats
        from .shards import PropagationShardWriter

        require_in_range("shard_nodes", shard_nodes, 1)
        require_in_range("max_retries", max_retries, 0)
        require_non_negative("retry_backoff", retry_backoff)
        if workers is None:
            workers = getattr(os, "process_cpu_count", os.cpu_count)() or 1
        workers = int(workers)
        strict_build = self._strict if strict is None else bool(strict)
        registry = self._registry()
        if not registry.enabled:
            registry = MetricsRegistry()
        before = registry.snapshot()
        n_nodes = self._graph.n_nodes
        shard_nodes = int(shard_nodes)
        writer = PropagationShardWriter(directory, self, shard_nodes)
        null_checkpoint = _CheckpointWriter(self, None, 0)
        failed_all: List[int] = []
        n_resumed = 0
        bytes_written = 0
        with trace(
            "propagation.build_sharded", registry=registry, workers=workers
        ):
            done = writer.resume() if resume else {}
            for lo in range(0, n_nodes, shard_nodes):
                hi = min(lo + shard_nodes, n_nodes)
                record = done.get((lo, hi))
                if record is not None:
                    n_resumed += hi - lo
                    bytes_written += int(record["nbytes"])
                    registry.inc("propagation.shards_resumed")
                    continue
                missing = [
                    node for node in range(lo, hi)
                    if node not in self._entries
                ]
                if workers <= 1 or len(missing) <= 1:
                    failed = self._build_serial(
                        missing, max_retries, retry_backoff,
                        null_checkpoint, registry,
                    )
                else:
                    failed = self._build_parallel(
                        missing, min(workers, len(missing)), max_retries,
                        retry_backoff, null_checkpoint, registry,
                    )
                if failed and strict_build:
                    registry.inc("propagation.entries_failed", len(failed))
                    n_built = sum(
                        1 for node in self._entries if lo <= node < hi
                    )
                    error = BuildFailedError(failed, n_built)
                    error.partial_index = self
                    raise error
                record = writer.write_range(lo, hi, self._entries)
                bytes_written += int(record["nbytes"])
                registry.inc("propagation.shards_written")
                failed_all.extend(failed)
                # Streaming: the shard is safe on disk - free its entries
                # so peak residency stays one shard range.
                for node in range(lo, hi):
                    self._entries.pop(node, None)
            writer.finalize(failed_nodes=tuple(failed_all))
        if failed_all:
            registry.inc("propagation.entries_failed", len(failed_all))
        delta = registry.snapshot().delta(before)
        self.last_build_stats = PropagationBuildStats.from_metrics(
            delta,
            n_entries=n_nodes - len(failed_all),
            workers=workers,
            total_bytes=bytes_written,
            failed_nodes=tuple(sorted(set(failed_all))),
            n_resumed=n_resumed,
        )
        if failed_all:
            warnings.warn(
                f"{len(failed_all)} propagation entries failed to build "
                f"after {max_retries} retries and were stored as empty "
                f"shard slots (see last_build_stats.failed_nodes)",
                RuntimeWarning,
                stacklevel=2,
            )
        return self

    @staticmethod
    def _backoff(attempt: int, retry_backoff: float) -> None:
        if retry_backoff > 0:
            time.sleep(min(retry_backoff * (2 ** (attempt - 1)), 30.0))

    def _build_serial(
        self,
        missing: List[int],
        max_retries: int,
        retry_backoff: float,
        writer: _CheckpointWriter,
        registry: MetricsRegistry,
    ) -> List[int]:
        """In-process build with per-node retries; returns failed nodes."""
        failed: List[int] = []
        for node in missing:
            attempt = 0
            while True:
                try:
                    _faults.inject(
                        "propagation.build_entry", node=node, attempt=attempt
                    )
                    entry = self._build_entry(node)
                except ReproError:
                    raise  # deterministic (e.g. strict budget) - no retry
                except Exception:
                    attempt += 1
                    if attempt > max_retries:
                        failed.append(node)
                        break
                    registry.inc("propagation.entry_retries")
                    self._backoff(attempt, retry_backoff)
                else:
                    self._entries[node] = entry
                    self._account_entry(registry, entry)
                    writer.note_built()
                    break
        return failed

    @staticmethod
    def _account_entry(
        registry: MetricsRegistry, entry: PropagationEntry
    ) -> None:
        registry.inc("propagation.entries_built")
        registry.inc("propagation.branches", entry.branches)
        registry.inc("propagation.members", entry.size)
        registry.observe(
            "propagation.entry_bytes",
            entry.memory_bytes(),
            buckets=_ENTRY_BYTES_BUCKETS,
        )

    def _build_parallel(
        self,
        missing: List[int],
        workers: int,
        max_retries: int,
        retry_backoff: float,
        writer: _CheckpointWriter,
        registry: MetricsRegistry,
    ) -> List[int]:
        """Sharded build with fresh-pool chunk retries; returns failures.

        Small contiguous chunks keep workers load-balanced when entry
        sizes are skewed (hubs cost far more than leaves). A crashed
        worker breaks its whole pool, so each retry round runs the still
        -failing chunks on a freshly spawned pool; chunks that completed
        before the crash are kept and never rebuilt.
        """
        chunk_size = max(1, len(missing) // (workers * 4))
        pending = [
            (i, missing[i * chunk_size : (i + 1) * chunk_size])
            for i in range((len(missing) + chunk_size - 1) // chunk_size)
        ]
        n_truncated = 0
        for attempt in range(max_retries + 1):
            if attempt:
                self._backoff(attempt, retry_backoff)
            still_failing: List[Tuple[int, List[int]]] = []
            with ProcessPoolExecutor(
                max_workers=min(workers, len(pending)),
                initializer=_worker_init,
                initargs=(
                    self._graph,
                    self._theta,
                    self._max_branches,
                    self._strict,
                    _faults.snapshot(),
                ),
            ) as pool:
                futures = {
                    pool.submit(_worker_build_chunk, chunk, chunk_id, attempt):
                        (chunk_id, chunk)
                    for chunk_id, chunk in pending
                }
                for future in as_completed(futures):
                    chunk_id, chunk = futures[future]
                    try:
                        results, chunk_truncated = future.result()
                    except ReproError:
                        raise  # deterministic - propagate immediately
                    except Exception:
                        # Worker crash (BrokenProcessPool fails every
                        # in-flight chunk of the round) or an unexpected
                        # in-worker error: retry on a fresh pool.
                        still_failing.append((chunk_id, chunk))
                    else:
                        n_truncated += chunk_truncated
                        for node, sources, probabilities, marked, branches in results:
                            entry = PropagationEntry.from_arrays(
                                node, sources, probabilities, marked, branches
                            )
                            self._entries[node] = entry
                            self._account_entry(registry, entry)
                        writer.note_built(len(results))
            if not still_failing:
                pending = []
                break
            if attempt < max_retries:
                registry.inc("propagation.chunk_retries", len(still_failing))
            pending = sorted(still_failing)
        if n_truncated:
            warnings.warn(
                f"{n_truncated} propagation entries truncated at "
                f"{self._max_branches} branches (theta={self._theta})",
                RuntimeWarning,
                stacklevel=4,
            )
        return [node for _, chunk in pending for node in chunk]

    def memory_bytes(self) -> int:
        """Exact resident size of the index (heap entries + paged shards).

        Mapped shard segments are charged at the bytes their paging cache
        currently holds, not their full on-disk size - see
        :meth:`mapped_bytes` for the virtual footprint.
        """
        total = self._backend.memory_bytes()
        if self._shards is not None:
            total += self._shards.resident_bytes()
        return total

    def mapped_bytes(self) -> int:
        """Total on-disk bytes of attached shard segments (0 if none)."""
        if self._shards is None:
            return 0
        return self._shards.mapped_bytes()

    # ------------------------------------------------------------------
    def _csr_lists(self) -> Tuple[List[int], List[int], List[float], List[float]]:
        cache = self._csr
        if cache is None:
            graph = self._graph
            indptr_arr = graph._in_indptr
            probs_arr = graph._in_probs
            indptr = indptr_arr.tolist()
            in_probs = probs_arr.tolist()
            # Strongest in-edge per node: a branch at probability p only
            # needs its node expanded when p * max_in >= θ - every
            # extension through a weaker node provably fails the per-edge
            # test, so the expansion skips the whole scan. Segmented max
            # via reduceat (starts clipped so trailing empty rows stay
            # in bounds; empty rows zeroed after).
            if probs_arr.size:
                starts = np.minimum(indptr_arr[:-1], probs_arr.size - 1)
                peak = np.maximum.reduceat(probs_arr, starts)
                peak[indptr_arr[:-1] == indptr_arr[1:]] = 0.0
                max_in = peak.tolist()
            else:
                max_in = [0.0] * graph.n_nodes
            cache = (indptr, graph._in_sources.tolist(), in_probs, max_in)
            self._csr = cache
        return cache

    def _membership_mask(self) -> bytearray:
        mask = self._mask
        if mask is None:
            mask = bytearray(self._graph.n_nodes)
            self._mask = mask
        return mask

    def _build_entry(self, target: int) -> PropagationEntry:
        """Reverse branch expansion from *target* (Figure 3 procedure).

        Iterative DFS over the reverse-CSR arrays. The stack *is* the
        current branch; ``mask`` holds its membership bits (plus the
        target), giving O(1) cycle checks with zero per-extension
        allocation. An extension is counted against the budget before it
        is consumed, so truncation never drops the mass of an
        already-taken branch.
        """
        indptr, in_sources, in_probs, max_in = self._csr_lists()
        mask = self._membership_mask()
        theta = self._theta
        max_branches = self._max_branches
        gamma: Dict[int, float] = {}
        gamma_get = gamma.get
        branches = 0
        truncated = False

        # The active frame lives in locals; suspended frames are flat
        # (node, prob, cursor, end) quadruples on one stack. A node is
        # only pushed (and its membership bit only set) when its own
        # expansion can still clear θ - a leaf visit touches no stack.
        mask[target] = 1
        node = target
        prob = 1.0
        cursor = indptr[target]
        end = indptr[target + 1]
        stack: List = []
        push = stack.append
        pop = stack.pop
        try:
            while True:
                if cursor == end:
                    mask[node] = 0
                    if not stack:
                        break
                    end = pop()
                    cursor = pop()
                    prob = pop()
                    node = pop()
                    continue
                source = in_sources[cursor]
                edge_probability = in_probs[cursor]
                cursor += 1
                if mask[source]:
                    continue
                probability = prob * edge_probability
                if probability < theta:
                    continue
                if branches >= max_branches:
                    if self._strict:
                        raise BudgetExceededError(
                            f"propagation entry of node {target}", max_branches
                        )
                    truncated = True
                    break
                branches += 1
                gamma[source] = gamma_get(source, 0.0) + probability
                if probability * max_in[source] >= theta:
                    mask[source] = 1
                    push(node)
                    push(prob)
                    push(cursor)
                    push(end)
                    node = source
                    prob = probability
                    cursor = indptr[source]
                    end = indptr[source + 1]
        finally:
            # The mask is shared scratch: clear whatever is still set (the
            # target plus the branch live at truncation/raise time).
            mask[node] = 0
            for suspended in stack[0::4]:
                mask[suspended] = 0
            mask[target] = 0

        if truncated:
            warnings.warn(
                f"propagation entry of node {target} truncated at "
                f"{max_branches} branches (theta={theta})",
                RuntimeWarning,
                stacklevel=3,
            )
        marked = self._mark_potential(target, gamma)
        return PropagationEntry(target, gamma, marked, branches)

    def _mark_potential(self, target: int, gamma: Dict[int, float]) -> List[int]:
        """Nodes in Γ with an in-neighbour the index cannot see."""
        indptr, in_sources, _, _ = self._csr_lists()
        mask = self._membership_mask()
        mask[target] = 1
        for node in gamma:
            mask[node] = 1
        marked: List[int] = []
        for node in gamma:
            for cursor in range(indptr[node], indptr[node + 1]):
                if not mask[in_sources[cursor]]:
                    marked.append(node)
                    break
        mask[target] = 0
        for node in gamma:
            mask[node] = 0
        return marked
